//! Glue between the transports and the training stack.
//!
//! * [`LogicHandler`] adapts `AsyncServerLogic` (the engine-shared server
//!   logic: MDT server + curves + traffic accounting) to the transport
//!   layer's [`UpdateHandler`] seam, adding the per-worker applied
//!   counters the reconnect protocol needs. It is served behind one
//!   `Mutex`, so connection threads take turns.
//! * [`ShardedLogicHandler`] is the lock-striped counterpart: it adapts
//!   `ShardedServerLogic` (over `ShardedMdtServer`) to the concurrent
//!   [`SharedUpdateHandler`] seam with one tiny *per-worker* lock, so
//!   connection threads for different workers apply updates in parallel —
//!   no connection-shared lock on the update path.
//! * [`train_loopback`] replays a pinned [`Schedule`] with every message
//!   round-tripped through the codec — the transport side of the
//!   differential test against `train_scheduled`.
//! * [`serve_training`] / [`run_worker`] are the process-mode halves that
//!   `dgs-cli serve` / `dgs-cli work` call.
//!
//! Unlike its siblings, this module imports the training crates directly
//! (not via `crate::msg`), so it is *not* part of the standalone rustc
//! harness — the harness covers the codec/transport/tcp layers with toy
//! handlers, and this file is exercised by the cargo tests and the
//! two-process smoke test.

use crate::codec::Hello;
use crate::error::{NetError, NetResult};
use crate::event_loop::{serve_cluster_evented, EventedOpts};
use crate::tcp::{serve_cluster, ServerOpts, TcpOpts, TcpWorkerTransport};
use crate::transport::{
    Loopback, Sequenced, SharedUpdateHandler, Transport, UpdateHandler, WireStats, POISONED_REASON,
};
use dgs_core::config::TrainConfig;
use dgs_core::curves::RunResult;
use dgs_core::trainer::sharded::ShardedServerLogic;
use dgs_core::trainer::threaded::{build_participants, AsyncServerLogic};
use dgs_core::trainer::{ModelBuilder, Schedule};
use dgs_core::worker::TrainWorker;
use dgs_nn::data::Dataset;
use std::cell::RefCell;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// CRC-32 fingerprint of a model's parameters (little-endian f32 bytes).
/// Both sides of the TCP handshake compute this over their `θ_0` so a
/// worker built from a different seed, architecture, or config is
/// rejected up front instead of silently corrupting the run.
pub fn theta0_crc(params: &[f32]) -> u32 {
    let mut state = crate::crc::CRC_INIT;
    let mut buf = [0u8; 4 * 1024];
    for chunk in params.chunks(1024) {
        let mut n = 0;
        for &v in chunk {
            buf[n..n + 4].copy_from_slice(&v.to_le_bytes());
            n += 4;
        }
        state = crate::crc::crc32_update(state, &buf[..n]);
    }
    crate::crc::crc32_finish(state)
}

/// [`UpdateHandler`] over the engine-shared server logic. Tracks how many
/// updates each worker has had applied — the counter the handshake and
/// duplicate suppression are built on.
pub struct LogicHandler {
    logic: AsyncServerLogic,
    applied: Vec<u64>,
}

impl LogicHandler {
    /// Wraps server logic for `workers` workers.
    pub fn new(logic: AsyncServerLogic, workers: usize) -> Self {
        LogicHandler { logic, applied: vec![0; workers] }
    }

    /// The wrapped logic (read access).
    pub fn logic(&self) -> &AsyncServerLogic {
        &self.logic
    }

    /// Unwraps the logic for result finalisation.
    pub fn into_logic(self) -> AsyncServerLogic {
        self.logic
    }
}

impl UpdateHandler for LogicHandler {
    fn handle_update(
        &mut self,
        worker: u16,
        up: dgs_core::protocol::UpMsg,
    ) -> dgs_core::protocol::DownMsg {
        self.applied[usize::from(worker)] += 1;
        self.logic.process(usize::from(worker), up)
    }

    fn handle_resync(&mut self, worker: u16) -> dgs_core::protocol::DownMsg {
        self.logic.resync(usize::from(worker))
    }

    fn applied(&self, worker: u16) -> u64 {
        self.applied[usize::from(worker)]
    }
}

/// [`SharedUpdateHandler`] over the lock-striped server logic. Each
/// worker owns a `Mutex<u64>` applied counter, and that lock is held
/// across the whole sequence-check → apply/resync → counter-publish
/// span — per worker, exactly what the `Mutex` blanket impl does
/// globally. Consequences:
///
/// * a retransmit racing its own apply blocks on the lock and then takes
///   the duplicate path, so an update is never folded in twice;
/// * a reconnecting worker's resync can never run concurrently with that
///   same worker's still-in-flight apply (which would let shard-local
///   `v_k` advance past the model the resync just delivered);
/// * [`Self::applied`] (the reconnect handshake's counter) blocks until
///   the in-flight apply finishes and only ever reports *completed*
///   applies.
///
/// Cross-worker concurrency — the point of the sharding — is untouched:
/// different workers hold different locks and fan out to the shard locks
/// underneath in parallel.
///
/// Training-state panics (a poisoned shard lock, a bug in an apply) are
/// caught at this boundary and surfaced to peers as error frames, keeping
/// the transport's no-panic promise without putting the whole logic
/// behind a lock. `guard` catches the unwind *inside* the per-worker
/// critical section, so a panicking apply cannot poison the worker lock.
pub struct ShardedLogicHandler {
    logic: ShardedServerLogic,
    applied: Vec<Mutex<u64>>,
}

impl ShardedLogicHandler {
    /// Wraps sharded server logic for `workers` workers.
    pub fn new(logic: ShardedServerLogic, workers: usize) -> Self {
        ShardedLogicHandler { logic, applied: (0..workers).map(|_| Mutex::new(0)).collect() }
    }

    /// The wrapped logic (read access).
    pub fn logic(&self) -> &ShardedServerLogic {
        &self.logic
    }

    /// Unwraps the logic for result finalisation.
    pub fn into_logic(self) -> ShardedServerLogic {
        self.logic
    }

    /// Runs `f` with the poisoned-state check and panic containment the
    /// wire path requires: once any apply has panicked, every subsequent
    /// call answers with the poisoned reason instead of panicking the
    /// connection thread.
    fn guard<T>(&self, f: impl FnOnce() -> T) -> Result<T, &'static str> {
        if self.logic.server().poisoned() {
            return Err(POISONED_REASON);
        }
        catch_unwind(AssertUnwindSafe(f)).map_err(|_| POISONED_REASON)
    }
}

impl SharedUpdateHandler for ShardedLogicHandler {
    fn handle_sequenced(
        &self,
        worker: u16,
        seq: u32,
        up: dgs_core::protocol::UpMsg,
    ) -> Result<Sequenced, &'static str> {
        let w = usize::from(worker);
        let slot = self.applied.get(w).ok_or("unknown worker id")?;
        // Hold this worker's lock across check + apply + publish, so the
        // counter only ever reflects completed applies and a duplicate's
        // resync cannot overlap its own in-flight apply. The lock cannot
        // poison: `guard` contains any apply panic inside the section.
        let mut applied = slot.lock().map_err(|_| POISONED_REASON)?;
        if u64::from(seq) <= *applied {
            return self.guard(|| self.logic.resync(w)).map(Sequenced::Duplicate);
        }
        if u64::from(seq) > *applied + 1 {
            return Ok(Sequenced::Gap { applied: *applied });
        }
        let reply = self.guard(|| self.logic.process(w, up))?;
        *applied += 1;
        Ok(Sequenced::Applied(reply))
    }

    fn handle_resync(&self, worker: u16) -> Result<dgs_core::protocol::DownMsg, &'static str> {
        let w = usize::from(worker);
        let slot = self.applied.get(w).ok_or("unknown worker id")?;
        // Serialize with this worker's own applies: a resync racing an
        // in-flight apply would hand back a model the tail of that apply
        // then silently advances v_k past.
        let _applied = slot.lock().map_err(|_| POISONED_REASON)?;
        self.guard(|| self.logic.resync(w))
    }

    fn applied(&self, worker: u16) -> Result<u64, &'static str> {
        self.applied
            .get(usize::from(worker))
            .ok_or("unknown worker id")?
            .lock()
            .map(|a| *a)
            .map_err(|_| POISONED_REASON)
    }
}

/// Which I/O backend drives the server's connections.
///
/// Both backends speak the identical protocol (they share
/// `conn::protocol_step`) and produce bitwise-identical wire traffic for
/// the same update schedule; they differ only in how connections are
/// multiplexed onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// One blocking OS thread per connection ([`serve_cluster`]).
    #[default]
    Threads,
    /// One readiness event loop for all connections
    /// ([`serve_cluster_evented`]): scales to tens of thousands of
    /// connections on a single thread.
    Evented,
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(IoMode::Threads),
            "evented" => Ok(IoMode::Evented),
            other => Err(format!("unknown io mode {other:?} (expected threads|evented)")),
        }
    }
}

/// Server I/O configuration: the backend plus the evented backend's
/// knobs (ignored under [`IoMode::Threads`]).
#[derive(Debug, Clone, Default)]
pub struct IoConfig {
    /// Which backend accepts and drives connections.
    pub mode: IoMode,
    /// Connection budget and write-queue bound for the evented backend.
    pub evented: EventedOpts,
}

impl IoConfig {
    /// An evented config with the given connection budget.
    pub fn evented(max_conns: usize) -> Self {
        IoConfig {
            mode: IoMode::Evented,
            evented: EventedOpts { max_conns, ..EventedOpts::default() },
        }
    }
}

/// Dispatches to the configured accept loop.
fn serve_with_io<H: SharedUpdateHandler + 'static>(
    listener: TcpListener,
    handler: Arc<H>,
    opts: ServerOpts,
    io: &IoConfig,
) -> NetResult<WireStats> {
    match io.mode {
        IoMode::Threads => serve_cluster(listener, handler, opts),
        IoMode::Evented => serve_cluster_evented(listener, handler, opts, io.evented.clone()),
    }
}

/// A finished transport-mode run: the usual record plus final model
/// states and both endpoints' byte counters.
pub struct TransportRun {
    /// Curves, traffic, staleness — the engine-standard record.
    pub result: RunResult,
    /// Server's final global model.
    pub server_model: Vec<f32>,
    /// Each worker's final local model.
    pub worker_models: Vec<Vec<f32>>,
    /// Per-worker transport byte counters.
    pub worker_stats: Vec<WireStats>,
    /// Aggregated server-side byte counters.
    pub server_stats: WireStats,
}

/// Replays `schedule` with every message encoded to bytes and decoded
/// back — `train_scheduled` seen through the wire. Because the codec is
/// lossless, the result is bitwise identical to the direct-struct run;
/// the `transport_equivalence` test asserts exactly that.
pub fn train_loopback(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let (logic, mut workers) = build_participants(cfg, build_model, &train, &val, 50.0);
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let handler = Rc::new(RefCell::new(LogicHandler::new(logic, cfg.workers)));
    let mut transports: Vec<Loopback<LogicHandler>> =
        (0..cfg.workers).map(|k| Loopback::new(k as u16, Rc::clone(&handler))).collect();

    let start = Instant::now();
    for &k in schedule.order() {
        let up = workers[k].local_step();
        let reply = transports[k].exchange(&up)?;
        workers[k].apply_reply(reply);
    }
    let mut worker_stats = Vec::with_capacity(cfg.workers);
    let mut server_stats = WireStats::default();
    for t in &mut transports {
        t.shutdown()?;
    }
    for t in &transports {
        worker_stats.push(t.stats());
        server_stats.merge(&t.server_stats());
    }
    drop(transports);

    let handler = Rc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("loopback handler still shared".into()))?
        .into_inner();
    let logic = handler.into_logic();
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    Ok(TransportRun { result, server_model, worker_models, worker_stats, server_stats })
}

/// Replays `schedule` over **real TCP** against an in-process server
/// running on `io`'s backend: the server thread accepts every worker
/// connection while a single driver thread owns all the
/// [`TcpWorkerTransport`]s and replays the pinned schedule in lockstep
/// (one exchange at a time). Lockstep makes the server-side arrival order
/// exactly the schedule order, so for an empty `reconnect_at` the run is
/// bitwise comparable to [`train_loopback`] / `train_scheduled` — and two
/// runs on different I/O backends are *always* bitwise comparable to each
/// other, including byte counters on both endpoints.
///
/// `faults` injects deterministic mid-run recovery scenarios (reconnects
/// and resyncs, see [`Fault`]); because they fire at fixed schedule steps
/// from the single driver thread, a faulted run is still bitwise
/// reproducible — and still backend-independent.
pub fn train_tcp(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
    io: &IoConfig,
    faults: &[Fault],
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let (logic, workers) = build_participants(cfg, build_model, &train, &val, 50.0);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let workers_n = cfg.workers;
    let io_cfg = io.clone();
    let start = Instant::now();
    let server = std::thread::spawn(move || {
        serve_training_io(listener, logic, workers_n, Some(SERVE_SAFETY_DEADLINE), &io_cfg)
    });
    let (workers, worker_stats) = drive_schedule(&addr, workers, schedule, faults)?;
    let (logic, server_stats) = server
        .join()
        .map_err(|_| NetError::Protocol("server thread panicked".into()))??;
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    Ok(TransportRun { result, server_model, worker_models, worker_stats, server_stats })
}

/// [`train_tcp`] over the lock-striped server logic (`shards` stripes).
pub fn train_tcp_sharded(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
    shards: usize,
    io: &IoConfig,
    faults: &[Fault],
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let (logic, workers) =
        dgs_core::trainer::sharded::build_sharded_participants(cfg, build_model, &train, &val, 50.0, shards);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let workers_n = cfg.workers;
    let io_cfg = io.clone();
    let start = Instant::now();
    let server = std::thread::spawn(move || {
        serve_training_sharded_io(listener, logic, workers_n, Some(SERVE_SAFETY_DEADLINE), &io_cfg)
    });
    let (workers, worker_stats) = drive_schedule(&addr, workers, schedule, faults)?;
    let (logic, server_stats) = server
        .join()
        .map_err(|_| NetError::Protocol("server thread panicked".into()))??;
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    Ok(TransportRun { result, server_model, worker_models, worker_stats, server_stats })
}

/// Safety net for the in-process server thread: far beyond any test's
/// runtime, just low enough that a wedged run fails instead of hanging.
const SERVE_SAFETY_DEADLINE: Duration = Duration::from_secs(120);

/// A deterministic fault injected during [`train_tcp`]'s schedule replay,
/// fired just before the named worker's exchange at the named step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop the worker's TCP connection; the next exchange reconnects
    /// (handshake + applied-count realignment, resyncing if needed).
    Reconnect {
        /// Schedule step index the fault fires at.
        step: usize,
        /// Worker whose connection is dropped.
        worker: usize,
    },
    /// Issue an explicit resync request: the worker refreshes its local
    /// model from the server's dense reply, like a recovering straggler.
    Resync {
        /// Schedule step index the fault fires at.
        step: usize,
        /// Worker that requests the resync.
        worker: usize,
    },
}

/// The worker half of [`train_tcp`]: connects every worker, replays the
/// schedule in lockstep, shuts down gracefully, and returns the stepped
/// workers plus their transport counters.
fn drive_schedule(
    addr: &str,
    mut workers: Vec<TrainWorker>,
    schedule: &Schedule,
    faults: &[Fault],
) -> NetResult<(Vec<TrainWorker>, Vec<WireStats>)> {
    let mut transports: Vec<TcpWorkerTransport> = workers
        .iter()
        .enumerate()
        .map(|(k, w)| {
            let dim = w.model_params().len() as u64;
            let mut t_opts = TcpOpts::new(addr, k as u16, dim, theta0_crc(w.model_params()));
            // Lockstep replies arrive immediately; a long timeout keeps
            // idle-probe heartbeats out of the byte counters so runs are
            // deterministic across backends.
            t_opts.read_timeout = Duration::from_secs(5);
            TcpWorkerTransport::new(t_opts)
        })
        .collect();
    for (i, &k) in schedule.order().iter().enumerate() {
        for fault in faults {
            match *fault {
                Fault::Reconnect { step, worker } if step == i && worker == k => {
                    transports[k].force_reconnect();
                }
                Fault::Resync { step, worker } if step == i && worker == k => {
                    let model = transports[k].resync()?;
                    workers[k].apply_reply(model);
                }
                _ => {}
            }
        }
        let up = workers[k].local_step();
        let reply = transports[k].exchange(&up)?;
        workers[k].apply_reply(reply);
    }
    for t in &mut transports {
        t.shutdown()?;
    }
    Ok((workers, transports.iter().map(|t| t.stats()).collect()))
}

/// Serves a training run over TCP until all `workers` have gracefully
/// shut down (or `deadline` expires). Returns the finalised logic (for
/// result reporting) and the server-side byte counters.
pub fn serve_training(
    listener: TcpListener,
    logic: AsyncServerLogic,
    workers: usize,
    deadline: Option<Duration>,
) -> NetResult<(AsyncServerLogic, WireStats)> {
    serve_training_io(listener, logic, workers, deadline, &IoConfig::default())
}

/// [`serve_training`] with an explicit I/O backend selection.
pub fn serve_training_io(
    listener: TcpListener,
    logic: AsyncServerLogic,
    workers: usize,
    deadline: Option<Duration>,
    io: &IoConfig,
) -> NetResult<(AsyncServerLogic, WireStats)> {
    let dim = logic.server().dim() as u64;
    let crc = theta0_crc(logic.server().theta0());
    let handler = Arc::new(Mutex::new(LogicHandler::new(logic, workers)));
    let mut opts = ServerOpts::new(workers, dim, crc);
    opts.deadline = deadline;
    let stats = serve_with_io(listener, Arc::clone(&handler), opts, io)?;
    let handler = Arc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("server threads still hold the handler".into()))?
        .into_inner()
        .map_err(|_| NetError::Protocol("server handler mutex poisoned".into()))?;
    Ok((handler.into_logic(), stats))
}

/// [`serve_training`] over the lock-striped server: same accept loop and
/// protocol, but updates from different workers are applied concurrently
/// through [`ShardedLogicHandler`] instead of taking turns on one mutex.
/// Byte-for-byte the wire traffic is what the single-lock server would
/// produce for the same update schedule.
pub fn serve_training_sharded(
    listener: TcpListener,
    logic: ShardedServerLogic,
    workers: usize,
    deadline: Option<Duration>,
) -> NetResult<(ShardedServerLogic, WireStats)> {
    serve_training_sharded_io(listener, logic, workers, deadline, &IoConfig::default())
}

/// [`serve_training_sharded`] with an explicit I/O backend selection.
pub fn serve_training_sharded_io(
    listener: TcpListener,
    logic: ShardedServerLogic,
    workers: usize,
    deadline: Option<Duration>,
    io: &IoConfig,
) -> NetResult<(ShardedServerLogic, WireStats)> {
    let dim = logic.server().dim() as u64;
    let crc = theta0_crc(&logic.server().theta0());
    let handler = Arc::new(ShardedLogicHandler::new(logic, workers));
    let mut opts = ServerOpts::new(workers, dim, crc);
    opts.deadline = deadline;
    let stats = serve_with_io(listener, Arc::clone(&handler), opts, io)?;
    let handler = Arc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("server threads still hold the handler".into()))?;
    Ok((handler.into_logic(), stats))
}

/// Runs one worker's training loop against a remote server: `iters`
/// local steps, each exchanged over TCP, then a graceful shutdown.
/// `hello` for the handshake is fingerprinted from the worker's initial
/// parameters, so call this before any local training has happened.
pub fn run_worker(
    addr: &str,
    worker_id: u16,
    mut worker: TrainWorker,
    iters: usize,
) -> NetResult<(TrainWorker, WireStats)> {
    let dim = worker.model_params().len() as u64;
    let crc = theta0_crc(worker.model_params());
    let mut transport = TcpWorkerTransport::new(TcpOpts::new(addr, worker_id, dim, crc));
    for _ in 0..iters {
        let up = worker.local_step();
        let reply = transport.exchange(&up)?;
        worker.apply_reply(reply);
    }
    transport.shutdown()?;
    Ok((worker, transport.stats()))
}

/// Convenience: the [`Hello`] a server with this model would send.
pub fn hello_for(params: &[f32], applied: u64) -> Hello {
    Hello { dim: params.len() as u64, applied, theta0_crc: theta0_crc(params) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32;
    use dgs_core::trainer::sharded::build_sharded_participants;
    use dgs_core::Method;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;
    use std::thread;

    /// A small sharded logic + its workers, for driving the handler the
    /// way connection threads do.
    fn sharded_fixture(workers: usize) -> (ShardedLogicHandler, Vec<TrainWorker>) {
        let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 1);
        let val: Arc<dyn Dataset> = Arc::new(blobs.validation(64));
        let train: Arc<dyn Dataset> = Arc::new(blobs);
        let mut cfg = dgs_core::config::TrainConfig::paper_default(Method::Dgs, workers, 2);
        cfg.batch_per_worker = 16;
        cfg.sparsity_ratio = 0.05;
        cfg.evals = 1;
        let build = || mlp(8, &[16], 4, 7);
        let (logic, w) = build_sharded_participants(&cfg, &build, &train, &val, 50.0, 3);
        (ShardedLogicHandler::new(logic, workers), w)
    }

    /// The per-worker critical section's sequential contract: in-order
    /// seqs apply and advance the counter, a retransmit takes the
    /// duplicate path without re-applying, a gap reports the completed
    /// count, and unknown worker ids are errors, not panics.
    #[test]
    fn sharded_handler_sequence_contract() {
        let (handler, mut workers) = sharded_fixture(2);
        let up1 = workers[0].local_step();
        match handler.handle_sequenced(0, 1, up1.clone()).unwrap() {
            Sequenced::Applied(reply) => workers[0].apply_reply(reply),
            other => panic!("first seq must apply, got {other:?}"),
        }
        assert_eq!(handler.applied(0).unwrap(), 1);
        assert_eq!(handler.applied(1).unwrap(), 0, "other worker untouched");
        let t_after_first = handler.logic().server().timestamp();
        // Retransmit of seq 1: must NOT fold the update in again — the
        // clock stays put and the answer is a dense resync model.
        match handler.handle_sequenced(0, 1, up1).unwrap() {
            Sequenced::Duplicate(dgs_core::protocol::DownMsg::DenseModel(m)) => {
                assert_eq!(m.len(), handler.logic().server().dim());
            }
            other => panic!("retransmit must resync, got {other:?}"),
        }
        assert_eq!(handler.applied(0).unwrap(), 1, "duplicate must not advance the counter");
        assert_eq!(handler.logic().server().timestamp(), t_after_first);
        // A gap reports how far the server actually got.
        let up3 = workers[0].local_step();
        match handler.handle_sequenced(0, 3, up3).unwrap() {
            Sequenced::Gap { applied } => assert_eq!(applied, 1),
            other => panic!("gap must be reported, got {other:?}"),
        }
        assert!(handler.handle_sequenced(9, 1, workers[0].local_step()).is_err());
        assert!(handler.handle_resync(9).is_err());
        assert!(handler.applied(9).is_err());
    }

    /// Retransmit storm: many threads race the *same* (worker, seq) while
    /// other workers make progress and a reconnect-style resync fires
    /// mid-storm. Exactly one submission per seq may apply; the applied
    /// counters and the server clock must agree with the dedup exactly —
    /// the regression this guards is a duplicate/resync overlapping its
    /// own in-flight apply (per-worker lock, not a pre-apply claim).
    #[test]
    fn sharded_handler_retransmit_storm_applies_once() {
        let (handler, workers) = sharded_fixture(2);
        let rounds = 8u32;
        let racers = 3;
        let handler = Arc::new(handler);
        let mut steppers = workers;
        let ups0: Vec<_> = (0..rounds).map(|_| steppers[0].local_step()).collect();
        let ups1: Vec<_> = (0..rounds).map(|_| steppers[1].local_step()).collect();
        thread::scope(|scope| {
            // Worker 1 runs a clean in-order lane.
            let h = Arc::clone(&handler);
            let lane = &ups1;
            scope.spawn(move || {
                for (i, up) in lane.iter().enumerate() {
                    match h.handle_sequenced(1, i as u32 + 1, up.clone()) {
                        Ok(Sequenced::Applied(_)) => {}
                        other => panic!("clean lane must apply: {other:?}"),
                    }
                }
            });
            // Worker 0's update storm: every seq submitted by N racers.
            for _ in 0..racers {
                let h = Arc::clone(&handler);
                let lane = &ups0;
                scope.spawn(move || {
                    for (i, up) in lane.iter().enumerate() {
                        let seq = i as u32 + 1;
                        loop {
                            match h.handle_sequenced(0, seq, up.clone()) {
                                Ok(Sequenced::Applied(_) | Sequenced::Duplicate(_)) => break,
                                // Another racer hasn't applied seq-1 yet.
                                Ok(Sequenced::Gap { .. }) => thread::yield_now(),
                                Err(e) => panic!("storm hit a poisoned server: {e}"),
                            }
                        }
                    }
                });
            }
            // Reconnect-style probes while applies are in flight: the
            // counters may only ever show *completed* applies — every
            // completed apply has already advanced the global clock, so
            // Σ applied ≤ t at any instant (reading t last is safe: it
            // only grows). The pre-apply claim this replaced published
            // the counter first and could violate exactly this. The
            // resync also must serialize with worker 0's own applies.
            let h = Arc::clone(&handler);
            scope.spawn(move || {
                for _ in 0..16 {
                    let sum = h.applied(0).unwrap() + h.applied(1).unwrap();
                    let t = h.logic().server().timestamp();
                    assert!(
                        sum <= t,
                        "counters over-report: {sum} applies published but clock is {t}"
                    );
                    h.handle_resync(0).unwrap();
                    thread::yield_now();
                }
            });
        });
        let handler = Arc::into_inner(handler).expect("threads joined");
        assert_eq!(handler.applied(0).unwrap(), u64::from(rounds));
        assert_eq!(handler.applied(1).unwrap(), u64::from(rounds));
        // Every seq folded in exactly once: the global clock counts each
        // worker's rounds once, no double applies from the storm.
        assert_eq!(handler.logic().server().timestamp(), u64::from(rounds) * 2);
        assert!(!handler.logic().server().poisoned());
    }

    #[test]
    fn theta0_crc_matches_oneshot_and_detects_drift() {
        let params = [0.5f32, -1.25, 3.0, f32::MIN_POSITIVE, 0.0];
        let mut bytes = Vec::new();
        for v in params {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(theta0_crc(&params), crc32(&bytes));
        let mut drifted = params;
        drifted[2] = 3.0 + f32::EPSILON * 4.0;
        assert_ne!(theta0_crc(&params), theta0_crc(&drifted));
        // Chunking boundary: > 1024 params takes the multi-chunk path.
        let big: Vec<f32> = (0..3000).map(|i| i as f32 * 0.25).collect();
        let mut big_bytes = Vec::new();
        for v in &big {
            big_bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(theta0_crc(&big), crc32(&big_bytes));
    }

    #[test]
    fn hello_for_fingerprints_model() {
        let params = vec![1.0f32; 10];
        let h = hello_for(&params, 3);
        assert_eq!(h.dim, 10);
        assert_eq!(h.applied, 3);
        assert_eq!(h.theta0_crc, theta0_crc(&params));
    }
}
