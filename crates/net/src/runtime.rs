//! Glue between the transports and the training stack.
//!
//! * [`LogicHandler`] adapts `AsyncServerLogic` (the engine-shared server
//!   logic: MDT server + curves + traffic accounting) to the transport
//!   layer's [`UpdateHandler`] seam, adding the per-worker applied
//!   counters the reconnect protocol needs. It is served behind one
//!   `Mutex`, so connection threads take turns.
//! * [`ShardedLogicHandler`] is the lock-striped counterpart: it adapts
//!   `ShardedServerLogic` (over `ShardedMdtServer`) to the concurrent
//!   [`SharedUpdateHandler`] seam with per-worker *atomic* applied
//!   counters, so connection threads for different workers apply updates
//!   in parallel — no connection-shared lock on the update path.
//! * [`train_loopback`] replays a pinned [`Schedule`] with every message
//!   round-tripped through the codec — the transport side of the
//!   differential test against `train_scheduled`.
//! * [`serve_training`] / [`run_worker`] are the process-mode halves that
//!   `dgs-cli serve` / `dgs-cli work` call.
//!
//! Unlike its siblings, this module imports the training crates directly
//! (not via `crate::msg`), so it is *not* part of the standalone rustc
//! harness — the harness covers the codec/transport/tcp layers with toy
//! handlers, and this file is exercised by the cargo tests and the
//! two-process smoke test.

use crate::codec::Hello;
use crate::error::{NetError, NetResult};
use crate::tcp::{serve_cluster, ServerOpts, TcpOpts, TcpWorkerTransport};
use crate::transport::{
    Loopback, Sequenced, SharedUpdateHandler, Transport, UpdateHandler, WireStats, POISONED_REASON,
};
use dgs_core::config::TrainConfig;
use dgs_core::curves::RunResult;
use dgs_core::trainer::sharded::ShardedServerLogic;
use dgs_core::trainer::threaded::{build_participants, AsyncServerLogic};
use dgs_core::trainer::{ModelBuilder, Schedule};
use dgs_core::worker::TrainWorker;
use dgs_nn::data::Dataset;
use std::cell::RefCell;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// CRC-32 fingerprint of a model's parameters (little-endian f32 bytes).
/// Both sides of the TCP handshake compute this over their `θ_0` so a
/// worker built from a different seed, architecture, or config is
/// rejected up front instead of silently corrupting the run.
pub fn theta0_crc(params: &[f32]) -> u32 {
    let mut state = crate::crc::CRC_INIT;
    let mut buf = [0u8; 4 * 1024];
    for chunk in params.chunks(1024) {
        let mut n = 0;
        for &v in chunk {
            buf[n..n + 4].copy_from_slice(&v.to_le_bytes());
            n += 4;
        }
        state = crate::crc::crc32_update(state, &buf[..n]);
    }
    crate::crc::crc32_finish(state)
}

/// [`UpdateHandler`] over the engine-shared server logic. Tracks how many
/// updates each worker has had applied — the counter the handshake and
/// duplicate suppression are built on.
pub struct LogicHandler {
    logic: AsyncServerLogic,
    applied: Vec<u64>,
}

impl LogicHandler {
    /// Wraps server logic for `workers` workers.
    pub fn new(logic: AsyncServerLogic, workers: usize) -> Self {
        LogicHandler { logic, applied: vec![0; workers] }
    }

    /// The wrapped logic (read access).
    pub fn logic(&self) -> &AsyncServerLogic {
        &self.logic
    }

    /// Unwraps the logic for result finalisation.
    pub fn into_logic(self) -> AsyncServerLogic {
        self.logic
    }
}

impl UpdateHandler for LogicHandler {
    fn handle_update(
        &mut self,
        worker: u16,
        up: dgs_core::protocol::UpMsg,
    ) -> dgs_core::protocol::DownMsg {
        self.applied[usize::from(worker)] += 1;
        self.logic.process(usize::from(worker), up)
    }

    fn handle_resync(&mut self, worker: u16) -> dgs_core::protocol::DownMsg {
        self.logic.resync(usize::from(worker))
    }

    fn applied(&self, worker: u16) -> u64 {
        self.applied[usize::from(worker)]
    }
}

/// [`SharedUpdateHandler`] over the lock-striped server logic. The
/// per-worker applied counters are atomics, and the sequence check
/// reserves its slot with a compare-exchange *before* applying, so a
/// retransmit racing its own apply takes the duplicate path instead of
/// folding the update in twice — the same guarantee the `Mutex` path gets
/// from holding one lock across check + apply.
///
/// Training-state panics (a poisoned shard lock, a bug in an apply) are
/// caught at this boundary and surfaced to peers as error frames, keeping
/// the transport's no-panic promise without putting the whole logic
/// behind a lock.
pub struct ShardedLogicHandler {
    logic: ShardedServerLogic,
    applied: Vec<AtomicU64>,
}

impl ShardedLogicHandler {
    /// Wraps sharded server logic for `workers` workers.
    pub fn new(logic: ShardedServerLogic, workers: usize) -> Self {
        ShardedLogicHandler { logic, applied: (0..workers).map(|_| AtomicU64::new(0)).collect() }
    }

    /// The wrapped logic (read access).
    pub fn logic(&self) -> &ShardedServerLogic {
        &self.logic
    }

    /// Unwraps the logic for result finalisation.
    pub fn into_logic(self) -> ShardedServerLogic {
        self.logic
    }

    /// Runs `f` with the poisoned-state check and panic containment the
    /// wire path requires: once any apply has panicked, every subsequent
    /// call answers with the poisoned reason instead of panicking the
    /// connection thread.
    fn guard<T>(&self, f: impl FnOnce() -> T) -> Result<T, &'static str> {
        if self.logic.server().poisoned() {
            return Err(POISONED_REASON);
        }
        catch_unwind(AssertUnwindSafe(f)).map_err(|_| POISONED_REASON)
    }
}

impl SharedUpdateHandler for ShardedLogicHandler {
    fn handle_sequenced(
        &self,
        worker: u16,
        seq: u32,
        up: dgs_core::protocol::UpMsg,
    ) -> Result<Sequenced, &'static str> {
        let w = usize::from(worker);
        let slot = self.applied.get(w).ok_or("unknown worker id")?;
        enum Decision {
            Apply,
            Duplicate,
            Gap(u64),
        }
        let decision = loop {
            let cur = slot.load(Ordering::SeqCst);
            if u64::from(seq) <= cur {
                break Decision::Duplicate;
            }
            if u64::from(seq) > cur + 1 {
                break Decision::Gap(cur);
            }
            // Claim seq before applying; a concurrent claim of the same
            // seq loses the exchange and re-reads the counter.
            if slot.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
                break Decision::Apply;
            }
        };
        match decision {
            Decision::Apply => self.guard(|| self.logic.process(w, up)).map(Sequenced::Applied),
            Decision::Duplicate => self.guard(|| self.logic.resync(w)).map(Sequenced::Duplicate),
            Decision::Gap(applied) => Ok(Sequenced::Gap { applied }),
        }
    }

    fn handle_resync(&self, worker: u16) -> Result<dgs_core::protocol::DownMsg, &'static str> {
        let w = usize::from(worker);
        if w >= self.applied.len() {
            return Err("unknown worker id");
        }
        self.guard(|| self.logic.resync(w))
    }

    fn applied(&self, worker: u16) -> Result<u64, &'static str> {
        self.applied
            .get(usize::from(worker))
            .map(|a| a.load(Ordering::SeqCst))
            .ok_or("unknown worker id")
    }
}

/// A finished transport-mode run: the usual record plus final model
/// states and both endpoints' byte counters.
pub struct TransportRun {
    /// Curves, traffic, staleness — the engine-standard record.
    pub result: RunResult,
    /// Server's final global model.
    pub server_model: Vec<f32>,
    /// Each worker's final local model.
    pub worker_models: Vec<Vec<f32>>,
    /// Per-worker transport byte counters.
    pub worker_stats: Vec<WireStats>,
    /// Aggregated server-side byte counters.
    pub server_stats: WireStats,
}

/// Replays `schedule` with every message encoded to bytes and decoded
/// back — `train_scheduled` seen through the wire. Because the codec is
/// lossless, the result is bitwise identical to the direct-struct run;
/// the `transport_equivalence` test asserts exactly that.
pub fn train_loopback(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let (logic, mut workers) = build_participants(cfg, build_model, &train, &val, 50.0);
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let handler = Rc::new(RefCell::new(LogicHandler::new(logic, cfg.workers)));
    let mut transports: Vec<Loopback<LogicHandler>> =
        (0..cfg.workers).map(|k| Loopback::new(k as u16, Rc::clone(&handler))).collect();

    let start = Instant::now();
    for &k in schedule.order() {
        let up = workers[k].local_step();
        let reply = transports[k].exchange(&up)?;
        workers[k].apply_reply(reply);
    }
    let mut worker_stats = Vec::with_capacity(cfg.workers);
    let mut server_stats = WireStats::default();
    for t in &mut transports {
        t.shutdown()?;
    }
    for t in &transports {
        worker_stats.push(t.stats());
        server_stats.merge(&t.server_stats());
    }
    drop(transports);

    let handler = Rc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("loopback handler still shared".into()))?
        .into_inner();
    let logic = handler.into_logic();
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    Ok(TransportRun { result, server_model, worker_models, worker_stats, server_stats })
}

/// Serves a training run over TCP until all `workers` have gracefully
/// shut down (or `deadline` expires). Returns the finalised logic (for
/// result reporting) and the server-side byte counters.
pub fn serve_training(
    listener: TcpListener,
    logic: AsyncServerLogic,
    workers: usize,
    deadline: Option<Duration>,
) -> NetResult<(AsyncServerLogic, WireStats)> {
    let dim = logic.server().dim() as u64;
    let crc = theta0_crc(logic.server().theta0());
    let handler = Arc::new(Mutex::new(LogicHandler::new(logic, workers)));
    let mut opts = ServerOpts::new(workers, dim, crc);
    opts.deadline = deadline;
    let stats = serve_cluster(listener, Arc::clone(&handler), opts)?;
    let handler = Arc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("server threads still hold the handler".into()))?
        .into_inner()
        .map_err(|_| NetError::Protocol("server handler mutex poisoned".into()))?;
    Ok((handler.into_logic(), stats))
}

/// [`serve_training`] over the lock-striped server: same accept loop and
/// protocol, but updates from different workers are applied concurrently
/// through [`ShardedLogicHandler`] instead of taking turns on one mutex.
/// Byte-for-byte the wire traffic is what the single-lock server would
/// produce for the same update schedule.
pub fn serve_training_sharded(
    listener: TcpListener,
    logic: ShardedServerLogic,
    workers: usize,
    deadline: Option<Duration>,
) -> NetResult<(ShardedServerLogic, WireStats)> {
    let dim = logic.server().dim() as u64;
    let crc = theta0_crc(&logic.server().theta0());
    let handler = Arc::new(ShardedLogicHandler::new(logic, workers));
    let mut opts = ServerOpts::new(workers, dim, crc);
    opts.deadline = deadline;
    let stats = serve_cluster(listener, Arc::clone(&handler), opts)?;
    let handler = Arc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("server threads still hold the handler".into()))?;
    Ok((handler.into_logic(), stats))
}

/// Runs one worker's training loop against a remote server: `iters`
/// local steps, each exchanged over TCP, then a graceful shutdown.
/// `hello` for the handshake is fingerprinted from the worker's initial
/// parameters, so call this before any local training has happened.
pub fn run_worker(
    addr: &str,
    worker_id: u16,
    mut worker: TrainWorker,
    iters: usize,
) -> NetResult<(TrainWorker, WireStats)> {
    let dim = worker.model_params().len() as u64;
    let crc = theta0_crc(worker.model_params());
    let mut transport = TcpWorkerTransport::new(TcpOpts::new(addr, worker_id, dim, crc));
    for _ in 0..iters {
        let up = worker.local_step();
        let reply = transport.exchange(&up)?;
        worker.apply_reply(reply);
    }
    transport.shutdown()?;
    Ok((worker, transport.stats()))
}

/// Convenience: the [`Hello`] a server with this model would send.
pub fn hello_for(params: &[f32], applied: u64) -> Hello {
    Hello { dim: params.len() as u64, applied, theta0_crc: theta0_crc(params) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32;

    #[test]
    fn theta0_crc_matches_oneshot_and_detects_drift() {
        let params = [0.5f32, -1.25, 3.0, f32::MIN_POSITIVE, 0.0];
        let mut bytes = Vec::new();
        for v in params {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(theta0_crc(&params), crc32(&bytes));
        let mut drifted = params;
        drifted[2] = 3.0 + f32::EPSILON * 4.0;
        assert_ne!(theta0_crc(&params), theta0_crc(&drifted));
        // Chunking boundary: > 1024 params takes the multi-chunk path.
        let big: Vec<f32> = (0..3000).map(|i| i as f32 * 0.25).collect();
        let mut big_bytes = Vec::new();
        for v in &big {
            big_bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(theta0_crc(&big), crc32(&big_bytes));
    }

    #[test]
    fn hello_for_fingerprints_model() {
        let params = vec![1.0f32; 10];
        let h = hello_for(&params, 3);
        assert_eq!(h.dim, 10);
        assert_eq!(h.applied, 3);
        assert_eq!(h.theta0_crc, theta0_crc(&params));
    }
}
