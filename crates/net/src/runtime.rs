//! Glue between the transports and the training stack.
//!
//! * [`LogicHandler`] adapts `AsyncServerLogic` (the engine-shared server
//!   logic: MDT server + curves + traffic accounting) to the transport
//!   layer's [`UpdateHandler`] seam, adding the per-worker applied
//!   counters the reconnect protocol needs. It is served behind one
//!   `Mutex`, so connection threads take turns.
//! * [`ShardedLogicHandler`] is the lock-striped counterpart: it adapts
//!   `ShardedServerLogic` (over `ShardedMdtServer`) to the concurrent
//!   [`SharedUpdateHandler`] seam with one tiny *per-worker* lock, so
//!   connection threads for different workers apply updates in parallel —
//!   no connection-shared lock on the update path.
//! * [`train_loopback`] replays a pinned [`Schedule`] with every message
//!   round-tripped through the codec — the transport side of the
//!   differential test against `train_scheduled`.
//! * [`serve_training`] / [`run_worker`] are the process-mode halves that
//!   `dgs-cli serve` / `dgs-cli work` call.
//!
//! Unlike its siblings, this module imports the training crates directly
//! (not via `crate::msg`), so it is *not* part of the standalone rustc
//! harness — the harness covers the codec/transport/tcp layers with toy
//! handlers, and this file is exercised by the cargo tests and the
//! two-process smoke test.

use crate::cluster::{assemble_replies, ClusterTransport};
use crate::codec::Hello;
use crate::edge::EdgeHandler;
use crate::error::{NetError, NetResult};
use crate::event_loop::{serve_cluster_evented, EventedOpts};
use crate::tcp::{serve_cluster, ServerOpts, SpanOpts, TcpOpts, TcpWorkerTransport};
use crate::transport::{
    Loopback, Sequenced, SharedUpdateHandler, Tier, Transport, UpdateHandler, WireStats,
    POISONED_REASON,
};
use dgs_core::cluster::ClusterLayout;
use dgs_core::config::TrainConfig;
use dgs_core::curves::{CurvePoint, RunResult};
use dgs_core::server::{DiffStrategy, Downlink, MdtServer, StalenessDamping};
use dgs_core::trainer::sharded::ShardedServerLogic;
use dgs_core::trainer::threaded::{build_participants, AsyncServerLogic};
use dgs_core::trainer::{ModelBuilder, Schedule};
use dgs_core::worker::TrainWorker;
use dgs_nn::data::Dataset;
use dgs_nn::metrics::evaluate;
use dgs_nn::model::Network;
use dgs_sparsify::{Partition, ShardSpan};
use std::cell::RefCell;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// CRC-32 fingerprint of a model's parameters (little-endian f32 bytes).
/// Both sides of the TCP handshake compute this over their `θ_0` so a
/// worker built from a different seed, architecture, or config is
/// rejected up front instead of silently corrupting the run.
pub fn theta0_crc(params: &[f32]) -> u32 {
    let mut state = crate::crc::CRC_INIT;
    let mut buf = [0u8; 4 * 1024];
    for chunk in params.chunks(1024) {
        let mut n = 0;
        for &v in chunk {
            buf[n..n + 4].copy_from_slice(&v.to_le_bytes());
            n += 4;
        }
        state = crate::crc::crc32_update(state, &buf[..n]);
    }
    crate::crc::crc32_finish(state)
}

/// [`UpdateHandler`] over the engine-shared server logic. Tracks how many
/// updates each worker has had applied — the counter the handshake and
/// duplicate suppression are built on.
pub struct LogicHandler {
    logic: AsyncServerLogic,
    applied: Vec<u64>,
}

impl LogicHandler {
    /// Wraps server logic for `workers` workers.
    pub fn new(logic: AsyncServerLogic, workers: usize) -> Self {
        LogicHandler { logic, applied: vec![0; workers] }
    }

    /// The wrapped logic (read access).
    pub fn logic(&self) -> &AsyncServerLogic {
        &self.logic
    }

    /// Unwraps the logic for result finalisation.
    pub fn into_logic(self) -> AsyncServerLogic {
        self.logic
    }
}

impl UpdateHandler for LogicHandler {
    fn handle_update(
        &mut self,
        worker: u16,
        up: dgs_core::protocol::UpMsg,
    ) -> dgs_core::protocol::DownMsg {
        self.applied[usize::from(worker)] += 1;
        self.logic.process(usize::from(worker), up)
    }

    fn handle_resync(&mut self, worker: u16) -> dgs_core::protocol::DownMsg {
        self.logic.resync(usize::from(worker))
    }

    fn applied(&self, worker: u16) -> u64 {
        self.applied[usize::from(worker)]
    }
}

/// [`SharedUpdateHandler`] over the lock-striped server logic. Each
/// worker owns a `Mutex<u64>` applied counter, and that lock is held
/// across the whole sequence-check → apply/resync → counter-publish
/// span — per worker, exactly what the `Mutex` blanket impl does
/// globally. Consequences:
///
/// * a retransmit racing its own apply blocks on the lock and then takes
///   the duplicate path, so an update is never folded in twice;
/// * a reconnecting worker's resync can never run concurrently with that
///   same worker's still-in-flight apply (which would let shard-local
///   `v_k` advance past the model the resync just delivered);
/// * [`Self::applied`] (the reconnect handshake's counter) blocks until
///   the in-flight apply finishes and only ever reports *completed*
///   applies.
///
/// Cross-worker concurrency — the point of the sharding — is untouched:
/// different workers hold different locks and fan out to the shard locks
/// underneath in parallel.
///
/// Training-state panics (a poisoned shard lock, a bug in an apply) are
/// caught at this boundary and surfaced to peers as error frames, keeping
/// the transport's no-panic promise without putting the whole logic
/// behind a lock. `guard` catches the unwind *inside* the per-worker
/// critical section, so a panicking apply cannot poison the worker lock.
pub struct ShardedLogicHandler {
    logic: ShardedServerLogic,
    applied: Vec<Mutex<u64>>,
}

impl ShardedLogicHandler {
    /// Wraps sharded server logic for `workers` workers.
    pub fn new(logic: ShardedServerLogic, workers: usize) -> Self {
        ShardedLogicHandler { logic, applied: (0..workers).map(|_| Mutex::new(0)).collect() }
    }

    /// The wrapped logic (read access).
    pub fn logic(&self) -> &ShardedServerLogic {
        &self.logic
    }

    /// Unwraps the logic for result finalisation.
    pub fn into_logic(self) -> ShardedServerLogic {
        self.logic
    }

    /// Runs `f` with the poisoned-state check and panic containment the
    /// wire path requires: once any apply has panicked, every subsequent
    /// call answers with the poisoned reason instead of panicking the
    /// connection thread.
    fn guard<T>(&self, f: impl FnOnce() -> T) -> Result<T, &'static str> {
        if self.logic.server().poisoned() {
            return Err(POISONED_REASON);
        }
        catch_unwind(AssertUnwindSafe(f)).map_err(|_| POISONED_REASON)
    }
}

impl SharedUpdateHandler for ShardedLogicHandler {
    fn handle_sequenced(
        &self,
        worker: u16,
        seq: u32,
        up: dgs_core::protocol::UpMsg,
    ) -> Result<Sequenced, &'static str> {
        let w = usize::from(worker);
        let slot = self.applied.get(w).ok_or("unknown worker id")?;
        // Hold this worker's lock across check + apply + publish, so the
        // counter only ever reflects completed applies and a duplicate's
        // resync cannot overlap its own in-flight apply. The lock cannot
        // poison: `guard` contains any apply panic inside the section.
        let mut applied = slot.lock().map_err(|_| POISONED_REASON)?;
        if u64::from(seq) <= *applied {
            return self.guard(|| self.logic.resync(w)).map(Sequenced::Duplicate);
        }
        if u64::from(seq) > *applied + 1 {
            return Ok(Sequenced::Gap { applied: *applied });
        }
        let reply = self.guard(|| self.logic.process(w, up))?;
        *applied += 1;
        Ok(Sequenced::Applied(reply))
    }

    fn handle_resync(&self, worker: u16) -> Result<dgs_core::protocol::DownMsg, &'static str> {
        let w = usize::from(worker);
        let slot = self.applied.get(w).ok_or("unknown worker id")?;
        // Serialize with this worker's own applies: a resync racing an
        // in-flight apply would hand back a model the tail of that apply
        // then silently advances v_k past.
        let _applied = slot.lock().map_err(|_| POISONED_REASON)?;
        self.guard(|| self.logic.resync(w))
    }

    fn applied(&self, worker: u16) -> Result<u64, &'static str> {
        self.applied
            .get(usize::from(worker))
            .ok_or("unknown worker id")?
            .lock()
            .map(|a| *a)
            .map_err(|_| POISONED_REASON)
    }
}

/// Which I/O backend drives the server's connections.
///
/// Both backends speak the identical protocol (they share
/// `conn::protocol_step`) and produce bitwise-identical wire traffic for
/// the same update schedule; they differ only in how connections are
/// multiplexed onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// One blocking OS thread per connection ([`serve_cluster`]).
    #[default]
    Threads,
    /// One readiness event loop for all connections
    /// ([`serve_cluster_evented`]): scales to tens of thousands of
    /// connections on a single thread.
    Evented,
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(IoMode::Threads),
            "evented" => Ok(IoMode::Evented),
            other => Err(format!("unknown io mode {other:?} (expected threads|evented)")),
        }
    }
}

/// Server I/O configuration: the backend plus the evented backend's
/// knobs (ignored under [`IoMode::Threads`]).
#[derive(Debug, Clone, Default)]
pub struct IoConfig {
    /// Which backend accepts and drives connections.
    pub mode: IoMode,
    /// Connection budget and write-queue bound for the evented backend.
    pub evented: EventedOpts,
}

impl IoConfig {
    /// An evented config with the given connection budget.
    pub fn evented(max_conns: usize) -> Self {
        IoConfig {
            mode: IoMode::Evented,
            evented: EventedOpts { max_conns, ..EventedOpts::default() },
        }
    }
}

/// Dispatches to the configured accept loop: serves `listener` with
/// either the thread-per-connection or the evented backend until the
/// run completes, returning the server-side byte counters.
pub fn serve_with_io<H: SharedUpdateHandler + 'static>(
    listener: TcpListener,
    handler: Arc<H>,
    opts: ServerOpts,
    io: &IoConfig,
) -> NetResult<WireStats> {
    match io.mode {
        IoMode::Threads => serve_cluster(listener, handler, opts),
        IoMode::Evented => serve_cluster_evented(listener, handler, opts, io.evented.clone()),
    }
}

/// A finished transport-mode run: the usual record plus final model
/// states and both endpoints' byte counters.
pub struct TransportRun {
    /// Curves, traffic, staleness — the engine-standard record.
    pub result: RunResult,
    /// Server's final global model.
    pub server_model: Vec<f32>,
    /// Each worker's final local model.
    pub worker_models: Vec<Vec<f32>>,
    /// Per-worker transport byte counters.
    pub worker_stats: Vec<WireStats>,
    /// Aggregated server-side byte counters.
    pub server_stats: WireStats,
    /// Per-edge aggregator counters (member side as a `Tier::Edge` link,
    /// upstream side with its per-span `Tier::Root` links). Empty for
    /// runs without an edge tier.
    pub edge_stats: Vec<WireStats>,
}

/// Replays `schedule` with every message encoded to bytes and decoded
/// back — `train_scheduled` seen through the wire. Because the codec is
/// lossless, the result is bitwise identical to the direct-struct run;
/// the `transport_equivalence` test asserts exactly that.
pub fn train_loopback(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let (logic, mut workers) = build_participants(cfg, build_model, &train, &val, 50.0);
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let handler = Rc::new(RefCell::new(LogicHandler::new(logic, cfg.workers)));
    let mut transports: Vec<Loopback<LogicHandler>> =
        (0..cfg.workers).map(|k| Loopback::new(k as u16, Rc::clone(&handler))).collect();

    let start = Instant::now();
    for &k in schedule.order() {
        let up = workers[k].local_step();
        let reply = transports[k].exchange(&up)?;
        workers[k].apply_reply(reply);
    }
    let mut worker_stats = Vec::with_capacity(cfg.workers);
    let mut server_stats = WireStats::default();
    for t in &mut transports {
        t.shutdown()?;
    }
    for t in &transports {
        worker_stats.push(t.stats());
        server_stats.merge(&t.server_stats());
    }
    drop(transports);

    let handler = Rc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("loopback handler still shared".into()))?
        .into_inner();
    let logic = handler.into_logic();
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    Ok(TransportRun {
        result,
        server_model,
        worker_models,
        worker_stats,
        server_stats,
        edge_stats: Vec::new(),
    })
}

/// Replays `schedule` over **real TCP** against an in-process server
/// running on `io`'s backend: the server thread accepts every worker
/// connection while a single driver thread owns all the
/// [`TcpWorkerTransport`]s and replays the pinned schedule in lockstep
/// (one exchange at a time). Lockstep makes the server-side arrival order
/// exactly the schedule order, so for an empty `reconnect_at` the run is
/// bitwise comparable to [`train_loopback`] / `train_scheduled` — and two
/// runs on different I/O backends are *always* bitwise comparable to each
/// other, including byte counters on both endpoints.
///
/// `faults` injects deterministic mid-run recovery scenarios (reconnects
/// and resyncs, see [`Fault`]); because they fire at fixed schedule steps
/// from the single driver thread, a faulted run is still bitwise
/// reproducible — and still backend-independent.
pub fn train_tcp(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
    io: &IoConfig,
    faults: &[Fault],
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let (logic, workers) = build_participants(cfg, build_model, &train, &val, 50.0);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let workers_n = cfg.workers;
    let io_cfg = io.clone();
    let start = Instant::now();
    let server = std::thread::spawn(move || {
        serve_training_io(listener, logic, workers_n, Some(SERVE_SAFETY_DEADLINE), &io_cfg)
    });
    let (workers, worker_stats) = drive_schedule(&addr, workers, schedule, faults)?;
    let (logic, server_stats) = server
        .join()
        .map_err(|_| NetError::Protocol("server thread panicked".into()))??;
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    Ok(TransportRun {
        result,
        server_model,
        worker_models,
        worker_stats,
        server_stats,
        edge_stats: Vec::new(),
    })
}

/// [`train_tcp`] over the lock-striped server logic (`shards` stripes).
pub fn train_tcp_sharded(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
    shards: usize,
    io: &IoConfig,
    faults: &[Fault],
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let (logic, workers) =
        dgs_core::trainer::sharded::build_sharded_participants(cfg, build_model, &train, &val, 50.0, shards);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let workers_n = cfg.workers;
    let io_cfg = io.clone();
    let start = Instant::now();
    let server = std::thread::spawn(move || {
        serve_training_sharded_io(listener, logic, workers_n, Some(SERVE_SAFETY_DEADLINE), &io_cfg)
    });
    let (workers, worker_stats) = drive_schedule(&addr, workers, schedule, faults)?;
    let (logic, server_stats) = server
        .join()
        .map_err(|_| NetError::Protocol("server thread panicked".into()))??;
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    Ok(TransportRun {
        result,
        server_model,
        worker_models,
        worker_stats,
        server_stats,
        edge_stats: Vec::new(),
    })
}

/// Safety net for the in-process server thread: far beyond any test's
/// runtime, just low enough that a wedged run fails instead of hanging.
const SERVE_SAFETY_DEADLINE: Duration = Duration::from_secs(120);

/// A deterministic fault injected during [`train_tcp`]'s schedule replay,
/// fired just before the named worker's exchange at the named step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop the worker's TCP connection; the next exchange reconnects
    /// (handshake + applied-count realignment, resyncing if needed).
    Reconnect {
        /// Schedule step index the fault fires at.
        step: usize,
        /// Worker whose connection is dropped.
        worker: usize,
    },
    /// Issue an explicit resync request: the worker refreshes its local
    /// model from the server's dense reply, like a recovering straggler.
    Resync {
        /// Schedule step index the fault fires at.
        step: usize,
        /// Worker that requests the resync.
        worker: usize,
    },
    /// Cluster runs only ([`train_cluster`]): crash-restart one span
    /// server from its own checkpoint and drop **every** worker's
    /// connection to it. The restarted span rebuilds its dirty sets from
    /// `M − v_k` and each worker's next exchange re-handshakes against
    /// the same layout hash — per-span recovery with no double apply,
    /// while the other spans keep training undisturbed.
    KillSpan {
        /// Schedule step index the fault fires at.
        step: usize,
        /// Span server to crash-restart.
        span: usize,
    },
    /// Cluster runs only: one worker resyncs a **single** span (dense
    /// span-slice reply applied through the span sub-partition) while
    /// its other spans continue on the sparse-diff path — exercising the
    /// mixed per-span reply reassembly.
    ResyncSpan {
        /// Schedule step index the fault fires at.
        step: usize,
        /// Worker that requests the span resync.
        worker: usize,
        /// Span index to resync.
        span: usize,
    },
}

/// The worker half of [`train_tcp`]: connects every worker, replays the
/// schedule in lockstep, shuts down gracefully, and returns the stepped
/// workers plus their transport counters.
fn drive_schedule(
    addr: &str,
    mut workers: Vec<TrainWorker>,
    schedule: &Schedule,
    faults: &[Fault],
) -> NetResult<(Vec<TrainWorker>, Vec<WireStats>)> {
    let mut transports: Vec<TcpWorkerTransport> = workers
        .iter()
        .enumerate()
        .map(|(k, w)| {
            let dim = w.model_params().len() as u64;
            let mut t_opts = TcpOpts::new(addr, k as u16, dim, theta0_crc(w.model_params()));
            // Lockstep replies arrive immediately; a long timeout keeps
            // idle-probe heartbeats out of the byte counters so runs are
            // deterministic across backends.
            t_opts.read_timeout = Duration::from_secs(5);
            TcpWorkerTransport::new(t_opts)
        })
        .collect();
    for (i, &k) in schedule.order().iter().enumerate() {
        for fault in faults {
            match *fault {
                Fault::Reconnect { step, worker } if step == i && worker == k => {
                    transports[k].force_reconnect();
                }
                Fault::Resync { step, worker } if step == i && worker == k => {
                    let model = transports[k].resync()?;
                    workers[k].apply_reply(model);
                }
                _ => {}
            }
        }
        let up = workers[k].local_step();
        let reply = transports[k].exchange(&up)?;
        workers[k].apply_reply(reply);
    }
    for t in &mut transports {
        t.shutdown()?;
    }
    Ok((workers, transports.iter().map(|t| t.stats()).collect()))
}

/// Serves a training run over TCP until all `workers` have gracefully
/// shut down (or `deadline` expires). Returns the finalised logic (for
/// result reporting) and the server-side byte counters.
pub fn serve_training(
    listener: TcpListener,
    logic: AsyncServerLogic,
    workers: usize,
    deadline: Option<Duration>,
) -> NetResult<(AsyncServerLogic, WireStats)> {
    serve_training_io(listener, logic, workers, deadline, &IoConfig::default())
}

/// [`serve_training`] with an explicit I/O backend selection.
pub fn serve_training_io(
    listener: TcpListener,
    logic: AsyncServerLogic,
    workers: usize,
    deadline: Option<Duration>,
    io: &IoConfig,
) -> NetResult<(AsyncServerLogic, WireStats)> {
    let dim = logic.server().dim() as u64;
    let crc = theta0_crc(logic.server().theta0());
    let handler = Arc::new(Mutex::new(LogicHandler::new(logic, workers)));
    let mut opts = ServerOpts::new(workers, dim, crc);
    opts.deadline = deadline;
    let stats = serve_with_io(listener, Arc::clone(&handler), opts, io)?;
    let handler = Arc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("server threads still hold the handler".into()))?
        .into_inner()
        .map_err(|_| NetError::Protocol("server handler mutex poisoned".into()))?;
    Ok((handler.into_logic(), stats))
}

/// [`serve_training`] over the lock-striped server: same accept loop and
/// protocol, but updates from different workers are applied concurrently
/// through [`ShardedLogicHandler`] instead of taking turns on one mutex.
/// Byte-for-byte the wire traffic is what the single-lock server would
/// produce for the same update schedule.
pub fn serve_training_sharded(
    listener: TcpListener,
    logic: ShardedServerLogic,
    workers: usize,
    deadline: Option<Duration>,
) -> NetResult<(ShardedServerLogic, WireStats)> {
    serve_training_sharded_io(listener, logic, workers, deadline, &IoConfig::default())
}

/// [`serve_training_sharded`] with an explicit I/O backend selection.
pub fn serve_training_sharded_io(
    listener: TcpListener,
    logic: ShardedServerLogic,
    workers: usize,
    deadline: Option<Duration>,
    io: &IoConfig,
) -> NetResult<(ShardedServerLogic, WireStats)> {
    let dim = logic.server().dim() as u64;
    let crc = theta0_crc(&logic.server().theta0());
    let handler = Arc::new(ShardedLogicHandler::new(logic, workers));
    let mut opts = ServerOpts::new(workers, dim, crc);
    opts.deadline = deadline;
    let stats = serve_with_io(listener, Arc::clone(&handler), opts, io)?;
    let handler = Arc::try_unwrap(handler)
        .map_err(|_| NetError::Protocol("server threads still hold the handler".into()))?;
    Ok((handler.into_logic(), stats))
}

/// Runs one worker's training loop against a remote server: `iters`
/// local steps, each exchanged over TCP, then a graceful shutdown.
/// `hello` for the handshake is fingerprinted from the worker's initial
/// parameters, so call this before any local training has happened.
pub fn run_worker(
    addr: &str,
    worker_id: u16,
    mut worker: TrainWorker,
    iters: usize,
) -> NetResult<(TrainWorker, WireStats)> {
    let dim = worker.model_params().len() as u64;
    let crc = theta0_crc(worker.model_params());
    let mut transport = TcpWorkerTransport::new(TcpOpts::new(addr, worker_id, dim, crc));
    for _ in 0..iters {
        let up = worker.local_step();
        let reply = transport.exchange(&up)?;
        worker.apply_reply(reply);
    }
    transport.shutdown()?;
    Ok((worker, transport.stats()))
}

/// Convenience: the [`Hello`] a server with this model would send.
pub fn hello_for(params: &[f32], applied: u64) -> Hello {
    Hello { dim: params.len() as u64, applied, theta0_crc: theta0_crc(params) }
}

// ---------------------------------------------------------------------------
// Multi-process span-server cluster (and the two-level edge tier on top).
// ---------------------------------------------------------------------------

/// One span server's training-side state: a plain [`MdtServer`] over the
/// span's sub-partition, plus the per-worker applied counters the
/// reconnect handshake needs. Wrap in `Arc<Mutex<_>>` and hand to
/// [`serve_cluster`] / [`serve_cluster_evented`] (the blanket
/// [`SharedUpdateHandler`] impl over `Mutex<H: UpdateHandler>` holds one
/// lock across the sequence-check + apply, so a retransmit can never
/// double-apply).
///
/// Bitwise equivalence with the in-process sharded server: a span's
/// `MdtServer` is constructed exactly like one `ShardedMdtServer` shard
/// (same θ0 slice, same sub-partition, same downlink), every update
/// visits every span — possibly with empty chunks — so under lockstep
/// replay each span's own clock equals the global clock, and the damping
/// scale it derives matches the one the sharded front computes.
pub struct SpanLogic {
    server: MdtServer,
    applied: Vec<u64>,
}

impl SpanLogic {
    /// Wraps a span server for `workers` workers.
    pub fn new(server: MdtServer, workers: usize) -> Self {
        SpanLogic { server, applied: vec![0; workers] }
    }

    /// The wrapped span server (read access).
    pub fn server(&self) -> &MdtServer {
        &self.server
    }

    /// Per-worker applied counts (indexed by worker id).
    pub fn applied_counts(&self) -> &[u64] {
        &self.applied
    }
}

impl UpdateHandler for SpanLogic {
    fn handle_update(
        &mut self,
        worker: u16,
        up: dgs_core::protocol::UpMsg,
    ) -> dgs_core::protocol::DownMsg {
        self.applied[usize::from(worker)] += 1;
        self.server.handle_update(usize::from(worker), &up)
    }

    fn handle_resync(&mut self, worker: u16) -> dgs_core::protocol::DownMsg {
        self.server.resync_worker(usize::from(worker))
    }

    fn applied(&self, worker: u16) -> u64 {
        self.applied[usize::from(worker)]
    }
}

/// Builds the cluster partition map for `theta0` striped over at most
/// `max_spans` span servers: the spans come from
/// [`Partition::shard_spans`] (the same greedy whole-segment fill the
/// in-process sharded server uses), each fingerprinted with the CRC-32
/// of its slice of θ0 so a span server and its clients agree on both the
/// geometry and the initial model at handshake time.
pub fn cluster_layout(theta0: &[f32], partition: &Partition, max_spans: usize) -> ClusterLayout {
    let spans = partition.shard_spans(max_spans);
    let crcs: Vec<u32> = spans.iter().map(|s| theta0_crc(&theta0[s.range()])).collect();
    ClusterLayout::from_spans(theta0.len() as u64, &spans, &crcs)
}

/// Builds one span's [`SpanLogic`] from the full initial model and the
/// training config. The log-capacity share is proportional by span
/// length; log budget is payload-invariant (it only moves work between
/// the merge and dense-scan paths), so exact apportionment is not needed
/// for bitwise equivalence.
pub fn build_span_logic(
    cfg: &TrainConfig,
    theta0: &[f32],
    partition: &Partition,
    span: &ShardSpan,
    downlink: Downlink,
) -> SpanLogic {
    let sub = partition.subpartition(span);
    let mut server = MdtServer::new(theta0[span.range()].to_vec(), sub, cfg.workers, downlink);
    if cfg.staleness_damping > 0.0 {
        server.set_damping(StalenessDamping { alpha: cfg.staleness_damping });
    }
    if cfg.server_log_nnz > 0 {
        server.set_log_capacity(((cfg.server_log_nnz * span.len) / theta0.len().max(1)).max(1));
    }
    if cfg.server_dense_scan {
        server.set_diff_strategy(DiffStrategy::DenseScan);
    }
    SpanLogic::new(server, cfg.workers)
}

/// The in-process span tier: per-span addresses, shared handlers (the
/// driver reads models/counters through them), and the serve threads.
struct SpanTier {
    addrs: Vec<String>,
    handlers: Vec<Arc<Mutex<SpanLogic>>>,
    joins: Vec<std::thread::JoinHandle<NetResult<WireStats>>>,
}

/// Binds and serves one span server per layout entry on `io`'s backend.
/// `expected_workers` is the id bound for the tier's direct clients —
/// the workers for a plain cluster, the edge aggregators for a two-level
/// topology.
fn spawn_span_tier(
    cfg: &TrainConfig,
    theta0: &[f32],
    partition: &Partition,
    layout: &ClusterLayout,
    downlink: Downlink,
    io: &IoConfig,
    expected_workers: usize,
) -> NetResult<SpanTier> {
    let hash = layout.layout_hash();
    let bytes = layout.encode();
    let mut addrs = Vec::with_capacity(layout.num_spans());
    let mut handlers = Vec::with_capacity(layout.num_spans());
    let mut joins = Vec::with_capacity(layout.num_spans());
    for (k, info) in layout.spans.iter().enumerate() {
        let span = layout.shard_span(k);
        let handler =
            Arc::new(Mutex::new(build_span_logic(cfg, theta0, partition, &span, downlink)));
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?.to_string());
        let mut opts = ServerOpts::new(expected_workers, info.len, info.theta0_crc);
        opts.deadline = Some(SERVE_SAFETY_DEADLINE);
        opts.span = Some(SpanOpts {
            index: k as u32,
            num_spans: layout.num_spans() as u32,
            layout_hash: hash,
            layout_bytes: bytes.clone(),
        });
        let h = Arc::clone(&handler);
        let io_cfg = io.clone();
        joins.push(std::thread::spawn(move || serve_with_io(listener, h, opts, &io_cfg)));
        handlers.push(handler);
    }
    Ok(SpanTier { addrs, handlers, joins })
}

/// Concatenation of the spans' current models in shard order — the
/// cluster's global `θ_t`, read at lockstep-quiescent points (evals and
/// run finalisation), exactly like `ShardedMdtServer::current_model`.
fn span_models(handlers: &[Arc<Mutex<SpanLogic>>]) -> NetResult<Vec<f32>> {
    let mut out = Vec::new();
    for h in handlers {
        let guard =
            h.lock().map_err(|_| NetError::Protocol("span handler poisoned".to_string()))?;
        out.extend(guard.server.current_model());
    }
    Ok(out)
}

/// Σ over spans of the per-worker tracking bytes (`v_k` slices) — sums
/// to exactly the single-process server's `tracking_bytes`.
fn span_tracking_bytes(handlers: &[Arc<Mutex<SpanLogic>>]) -> NetResult<usize> {
    let mut total = 0usize;
    for h in handlers {
        let guard =
            h.lock().map_err(|_| NetError::Protocol("span handler poisoned".to_string()))?;
        total += guard.server.memory_report().tracking_bytes;
    }
    Ok(total)
}

/// Simulates a span-server crash/restart: checkpoint the span's MDT
/// state, rebuild a fresh server from it (update log empty, dirty sets
/// recomputed from `M − v_k` — replies stay bitwise identical, see
/// [`MdtServer::restore`]), and swap it in under the handler lock.
/// Applied counters survive (they are derived state the real process
/// would persist with the checkpoint). Dropping the workers' connections
/// is the caller's job.
fn restart_span(
    handler: &Arc<Mutex<SpanLogic>>,
    cfg: &TrainConfig,
    dim: usize,
    partition: &Partition,
    span: &ShardSpan,
    downlink: Downlink,
) -> NetResult<()> {
    let sub = partition.subpartition(span);
    let mut guard =
        handler.lock().map_err(|_| NetError::Protocol("span handler poisoned".to_string()))?;
    let ckpt = guard.server.checkpoint();
    let mut restored = MdtServer::restore(ckpt, sub, downlink);
    // `restore` resets the tunables to defaults — re-apply the same
    // settings `build_span_logic` chose (payload-invariant, but the
    // restarted process must match the crashed one's configuration).
    if cfg.staleness_damping > 0.0 {
        restored.set_damping(StalenessDamping { alpha: cfg.staleness_damping });
    }
    if cfg.server_log_nnz > 0 {
        restored.set_log_capacity(((cfg.server_log_nnz * span.len) / dim.max(1)).max(1));
    }
    if cfg.server_dense_scan {
        restored.set_diff_strategy(DiffStrategy::DenseScan);
    }
    guard.server = restored;
    Ok(())
}

/// Driver-side telemetry for cluster runs: the global clock, staleness,
/// loss/byte counters and the eval cadence that `AsyncServerLogic` /
/// `ShardedServerLogic` keep server-side. No single span owns the full
/// model, so the lockstep driver — which sees every assembled update and
/// reply — owns the run record instead, with identical accounting rules
/// (the bitwise curve equality in `tests/cluster_equivalence.rs` rests
/// on this).
struct DriverTelemetry {
    eval_net: Network,
    val: Arc<dyn Dataset>,
    eval_batch: usize,
    eval_every: u64,
    total_updates: u64,
    updates_per_epoch: u64,
    curve: Vec<CurvePoint>,
    loss_sum: f64,
    loss_n: u64,
    bytes_up: u64,
    bytes_down: u64,
    t: u64,
    prev: Vec<u64>,
    stale_sum: u64,
    stale_max: u64,
    stale_n: u64,
}

impl DriverTelemetry {
    fn new(cfg: &TrainConfig, eval_net: Network, val: Arc<dyn Dataset>, total_updates: u64) -> Self {
        DriverTelemetry {
            eval_net,
            val,
            eval_batch: cfg.eval_batch,
            eval_every: (total_updates / cfg.evals.max(1) as u64).max(1),
            total_updates,
            updates_per_epoch: (total_updates / cfg.epochs.max(1) as u64).max(1),
            curve: Vec::new(),
            loss_sum: 0.0,
            loss_n: 0,
            bytes_up: 0,
            bytes_down: 0,
            t: 0,
            prev: vec![0; cfg.workers],
            stale_sum: 0,
            stale_max: 0,
            stale_n: 0,
        }
    }

    /// Stamps one applied update on the global clock and accounts its
    /// bytes/loss; returns `true` when an eval is due at this tick.
    fn record(&mut self, worker: usize, up_bytes: u64, down_bytes: u64, train_loss: f64) -> bool {
        let staleness = self.t - self.prev[worker];
        self.stale_sum += staleness;
        self.stale_max = self.stale_max.max(staleness);
        self.stale_n += 1;
        self.t += 1;
        self.prev[worker] = self.t;
        self.bytes_up += up_bytes;
        self.bytes_down += down_bytes;
        self.loss_sum += train_loss;
        self.loss_n += 1;
        self.t.is_multiple_of(self.eval_every) || self.t == self.total_updates
    }

    /// Evaluates `model` and appends the curve point for the current tick.
    fn eval(&mut self, model: &[f32]) {
        self.eval_net.params_mut().load_data(model);
        let res = evaluate(&mut self.eval_net, self.val.as_ref(), self.eval_batch);
        self.curve.push(CurvePoint {
            epoch: (self.t / self.updates_per_epoch) as usize,
            updates: self.t,
            train_loss: if self.loss_n > 0 { self.loss_sum / self.loss_n as f64 } else { 0.0 },
            val_loss: res.loss,
            val_acc: res.top1,
            virtual_time: 0.0,
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
        });
        self.loss_sum = 0.0;
        self.loss_n = 0;
    }

    fn into_result(
        self,
        cfg: TrainConfig,
        wall_secs: f64,
        server_tracking_bytes: usize,
        worker_aux_bytes: usize,
    ) -> RunResult {
        let last = self.curve.last().copied();
        RunResult {
            config: cfg,
            final_acc: last.map(|p| p.val_acc).unwrap_or(0.0),
            final_loss: last.map(|p| p.val_loss).unwrap_or(0.0),
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
            virtual_time: 0.0,
            wall_secs,
            mean_staleness: if self.stale_n > 0 {
                self.stale_sum as f64 / self.stale_n as f64
            } else {
                0.0
            },
            max_staleness: self.stale_max,
            server_tracking_bytes,
            worker_aux_bytes,
            curve: self.curve,
        }
    }
}

/// Builds the cluster run's worker fleet; every worker must start from
/// the same θ0 the span tier was built from.
fn build_cluster_workers(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: &Arc<dyn Dataset>,
    theta0: &[f32],
) -> Vec<TrainWorker> {
    (0..cfg.workers)
        .map(|k| {
            let net = build_model();
            assert_eq!(net.params().data(), theta0, "builder must be deterministic");
            TrainWorker::new(k, net, Arc::clone(train), cfg.clone(), 50.0)
        })
        .collect()
}

/// Joins the span serve threads, folding their counters into one
/// server-side [`WireStats`] with a `Tier::Root` link per span.
fn join_span_tier(joins: Vec<std::thread::JoinHandle<NetResult<WireStats>>>) -> NetResult<WireStats> {
    let mut server_stats = WireStats::default();
    for (k, join) in joins.into_iter().enumerate() {
        let s = join
            .join()
            .map_err(|_| NetError::Protocol("span server thread panicked".to_string()))??;
        server_stats.add_link(Tier::Root, k as u16, s.data_up, s.data_down);
        server_stats.merge(&s);
    }
    Ok(server_stats)
}

/// How long an edge member may wait for the rest of its round before the
/// group is torn down.
pub const EDGE_ROUND_TIMEOUT: Duration = Duration::from_secs(60);

/// Replays `schedule` against a **K-process span-server cluster**: one
/// in-process server (thread) per [`Partition::shard_spans`] span, each
/// owning its slice of the model behind the cluster handshake, with every
/// worker fanning uplinks out per span over a [`ClusterTransport`] and
/// reassembling downlink diffs in shard order.
///
/// For an empty fault list the run is **bitwise identical** to
/// [`train_tcp_sharded`] with `shards = max_spans` (and to
/// `train_scheduled`): same models, same curves, same staleness, same
/// assembled byte accounting — the in-process sharding seam lifted onto
/// the wire. `faults` adds the cluster-specific recovery scenarios
/// ([`Fault::KillSpan`], [`Fault::ResyncSpan`]) on top of the existing
/// per-worker ones; faulted runs remain bitwise reproducible and
/// backend-independent.
#[allow(clippy::too_many_arguments)]
pub fn train_cluster(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
    max_spans: usize,
    io: &IoConfig,
    faults: &[Fault],
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let net0 = build_model();
    let partition = net0.params().partition().clone();
    let theta0 = net0.params().data().to_vec();
    let layout = cluster_layout(&theta0, &partition, max_spans);
    let secondary = if cfg.secondary_compression { Some(cfg.sparsity_ratio) } else { None };
    let downlink = Downlink::for_method(cfg.method, secondary);
    let start = Instant::now();
    let tier = spawn_span_tier(cfg, &theta0, &partition, &layout, downlink, io, cfg.workers)?;
    let mut workers = build_cluster_workers(cfg, build_model, &train, &theta0);
    let mut transports = (0..cfg.workers)
        .map(|k| {
            ClusterTransport::with_opts(layout.clone(), &tier.addrs, k as u16, |o| {
                o.read_timeout = Duration::from_secs(5);
            })
        })
        .collect::<NetResult<Vec<_>>>()?;
    let total_updates = (cfg.iters_per_worker(train.len()) * cfg.workers) as u64;
    let mut tel = DriverTelemetry::new(cfg, build_model(), Arc::clone(&val), total_updates);

    for (i, &k) in schedule.order().iter().enumerate() {
        for fault in faults {
            match *fault {
                Fault::Reconnect { step, worker } if step == i && worker == k => {
                    for j in 0..layout.num_spans() {
                        transports[k].drop_span_conn(j)?;
                    }
                }
                Fault::Resync { step, worker } if step == i && worker == k => {
                    let replies = transports[k].resync()?;
                    match assemble_replies(&replies) {
                        Some(reply) => {
                            tel.bytes_down += reply.wire_bytes() as u64;
                            workers[k].apply_reply(reply);
                        }
                        None => {
                            return Err(NetError::Protocol(
                                "cluster resync replies must all be dense".to_string(),
                            ))
                        }
                    }
                }
                Fault::KillSpan { step, span } if step == i => {
                    restart_span(
                        &tier.handlers[span],
                        cfg,
                        theta0.len(),
                        &partition,
                        &layout.shard_span(span),
                        downlink,
                    )?;
                    for t in transports.iter_mut() {
                        t.drop_span_conn(span)?;
                    }
                }
                Fault::ResyncSpan { step, worker, span } if step == i && worker == k => {
                    let reply = transports[k].resync_span(span)?;
                    tel.bytes_down += reply.wire_bytes() as u64;
                    workers[k].apply_span_reply(&layout.shard_span(span), reply);
                }
                _ => {}
            }
        }
        let up = workers[k].local_step();
        let up_bytes = up.wire_bytes() as u64;
        let train_loss = up.train_loss;
        let replies = transports[k].exchange(&up)?;
        // Clean rounds assemble into exactly the single-process reply (and
        // its byte count); mixed per-span replies — possible only right
        // after a span-level fault — are applied spanwise and accounted as
        // the sum of their parts.
        let down_bytes = match assemble_replies(&replies) {
            Some(reply) => {
                let b = reply.wire_bytes() as u64;
                workers[k].apply_reply(reply);
                b
            }
            None => {
                let mut b = 0u64;
                for (j, r) in replies.into_iter().enumerate() {
                    b += r.wire_bytes() as u64;
                    workers[k].apply_span_reply(&layout.shard_span(j), r);
                }
                b
            }
        };
        if tel.record(k, up_bytes, down_bytes, train_loss) {
            let model = span_models(&tier.handlers)?;
            tel.eval(&model);
        }
    }

    for t in &mut transports {
        t.shutdown()?;
    }
    let worker_stats: Vec<WireStats> = transports.iter().map(|t| t.stats()).collect();
    let server_stats = join_span_tier(tier.joins)?;
    let server_model = span_models(&tier.handlers)?;
    let tracking = span_tracking_bytes(&tier.handlers)?;
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = tel.into_result(cfg.clone(), start.elapsed().as_secs_f64(), tracking, worker_aux);
    Ok(TransportRun {
        result,
        server_model,
        worker_models,
        worker_stats,
        server_stats,
        edge_stats: Vec::new(),
    })
}

/// [`train_cluster`] with a two-level **edge aggregation tier**: every
/// worker talks the plain single-server protocol to its own
/// [`EdgeHandler`] (singleton group, `G = 1`), which forwards the payload
/// verbatim upstream over a per-edge [`ClusterTransport`] and fans the
/// assembled reply back — so the run replays the plain cluster schedule
/// (and therefore the single-process sharded schedule) **bitwise**, while
/// every uplink crosses two tiers with exact per-tier byte accounting
/// ([`TransportRun::edge_stats`]).
///
/// `io` selects the root tier's backend; the member-facing edge listeners
/// always run thread-per-connection, because edge members block on the
/// group round barrier (see [`crate::edge`]).
pub fn train_cluster_edge(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
    max_spans: usize,
    io: &IoConfig,
) -> NetResult<TransportRun> {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let net0 = build_model();
    let partition = net0.params().partition().clone();
    let theta0 = net0.params().data().to_vec();
    let layout = cluster_layout(&theta0, &partition, max_spans);
    let secondary = if cfg.secondary_compression { Some(cfg.sparsity_ratio) } else { None };
    let downlink = Downlink::for_method(cfg.method, secondary);
    let dim = theta0.len() as u64;
    let full_crc = theta0_crc(&theta0);
    let start = Instant::now();
    // Root tier: the edges connect as one logical worker per group, and
    // with singleton groups the group index IS the worker id.
    let tier = spawn_span_tier(cfg, &theta0, &partition, &layout, downlink, io, cfg.workers)?;

    let mut edge_addrs = Vec::with_capacity(cfg.workers);
    let mut edges: Vec<Arc<EdgeHandler>> = Vec::with_capacity(cfg.workers);
    let mut edge_joins = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let upstream = ClusterTransport::with_opts(layout.clone(), &tier.addrs, w as u16, |o| {
            o.read_timeout = Duration::from_secs(5);
        })?;
        let edge = EdgeHandler::new(
            upstream,
            partition.clone(),
            theta0.clone(),
            w as u16,
            1,
            EDGE_ROUND_TIMEOUT,
        )?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        edge_addrs.push(listener.local_addr()?.to_string());
        let mut opts = ServerOpts::new(w + 1, dim, full_crc);
        opts.deadline = Some(SERVE_SAFETY_DEADLINE);
        opts.done_target = 1;
        let h = Arc::clone(&edge);
        edge_joins.push(std::thread::spawn(move || serve_cluster(listener, h, opts)));
        edges.push(edge);
    }

    let mut workers = build_cluster_workers(cfg, build_model, &train, &theta0);
    let mut transports: Vec<TcpWorkerTransport> = (0..cfg.workers)
        .map(|w| {
            let mut o = TcpOpts::new(edge_addrs[w].clone(), w as u16, dim, full_crc);
            o.read_timeout = Duration::from_secs(5);
            TcpWorkerTransport::new(o)
        })
        .collect();
    let total_updates = (cfg.iters_per_worker(train.len()) * cfg.workers) as u64;
    let mut tel = DriverTelemetry::new(cfg, build_model(), Arc::clone(&val), total_updates);

    for &k in schedule.order() {
        let up = workers[k].local_step();
        let up_bytes = up.wire_bytes() as u64;
        let train_loss = up.train_loss;
        let reply = transports[k].exchange(&up)?;
        let down_bytes = reply.wire_bytes() as u64;
        workers[k].apply_reply(reply);
        if tel.record(k, up_bytes, down_bytes, train_loss) {
            let model = span_models(&tier.handlers)?;
            tel.eval(&model);
        }
    }

    for t in &mut transports {
        t.shutdown()?;
    }
    let worker_stats: Vec<WireStats> = transports.iter().map(|t| t.stats()).collect();
    let mut edge_stats = Vec::with_capacity(cfg.workers);
    for (w, join) in edge_joins.into_iter().enumerate() {
        let member_side = join
            .join()
            .map_err(|_| NetError::Protocol("edge aggregator thread panicked".to_string()))??;
        let mut s = WireStats::default();
        s.add_link(Tier::Edge, w as u16, member_side.data_up, member_side.data_down);
        s.merge(&member_side);
        let upstream = edges[w].finish().map_err(|e| NetError::Protocol(e.to_string()))?;
        s.merge(&upstream);
        edge_stats.push(s);
    }
    let server_stats = join_span_tier(tier.joins)?;
    let server_model = span_models(&tier.handlers)?;
    let tracking = span_tracking_bytes(&tier.handlers)?;
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = tel.into_result(cfg.clone(), start.elapsed().as_secs_f64(), tracking, worker_aux);
    Ok(TransportRun { result, server_model, worker_models, worker_stats, server_stats, edge_stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32;
    use dgs_core::trainer::sharded::build_sharded_participants;
    use dgs_core::Method;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;
    use std::thread;

    /// A small sharded logic + its workers, for driving the handler the
    /// way connection threads do.
    fn sharded_fixture(workers: usize) -> (ShardedLogicHandler, Vec<TrainWorker>) {
        let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 1);
        let val: Arc<dyn Dataset> = Arc::new(blobs.validation(64));
        let train: Arc<dyn Dataset> = Arc::new(blobs);
        let mut cfg = dgs_core::config::TrainConfig::paper_default(Method::Dgs, workers, 2);
        cfg.batch_per_worker = 16;
        cfg.sparsity_ratio = 0.05;
        cfg.evals = 1;
        let build = || mlp(8, &[16], 4, 7);
        let (logic, w) = build_sharded_participants(&cfg, &build, &train, &val, 50.0, 3);
        (ShardedLogicHandler::new(logic, workers), w)
    }

    /// The per-worker critical section's sequential contract: in-order
    /// seqs apply and advance the counter, a retransmit takes the
    /// duplicate path without re-applying, a gap reports the completed
    /// count, and unknown worker ids are errors, not panics.
    #[test]
    fn sharded_handler_sequence_contract() {
        let (handler, mut workers) = sharded_fixture(2);
        let up1 = workers[0].local_step();
        match handler.handle_sequenced(0, 1, up1.clone()).unwrap() {
            Sequenced::Applied(reply) => workers[0].apply_reply(reply),
            other => panic!("first seq must apply, got {other:?}"),
        }
        assert_eq!(handler.applied(0).unwrap(), 1);
        assert_eq!(handler.applied(1).unwrap(), 0, "other worker untouched");
        let t_after_first = handler.logic().server().timestamp();
        // Retransmit of seq 1: must NOT fold the update in again — the
        // clock stays put and the answer is a dense resync model.
        match handler.handle_sequenced(0, 1, up1).unwrap() {
            Sequenced::Duplicate(dgs_core::protocol::DownMsg::DenseModel(m)) => {
                assert_eq!(m.len(), handler.logic().server().dim());
            }
            other => panic!("retransmit must resync, got {other:?}"),
        }
        assert_eq!(handler.applied(0).unwrap(), 1, "duplicate must not advance the counter");
        assert_eq!(handler.logic().server().timestamp(), t_after_first);
        // A gap reports how far the server actually got.
        let up3 = workers[0].local_step();
        match handler.handle_sequenced(0, 3, up3).unwrap() {
            Sequenced::Gap { applied } => assert_eq!(applied, 1),
            other => panic!("gap must be reported, got {other:?}"),
        }
        assert!(handler.handle_sequenced(9, 1, workers[0].local_step()).is_err());
        assert!(handler.handle_resync(9).is_err());
        assert!(handler.applied(9).is_err());
    }

    /// Retransmit storm: many threads race the *same* (worker, seq) while
    /// other workers make progress and a reconnect-style resync fires
    /// mid-storm. Exactly one submission per seq may apply; the applied
    /// counters and the server clock must agree with the dedup exactly —
    /// the regression this guards is a duplicate/resync overlapping its
    /// own in-flight apply (per-worker lock, not a pre-apply claim).
    #[test]
    fn sharded_handler_retransmit_storm_applies_once() {
        let (handler, workers) = sharded_fixture(2);
        let rounds = 8u32;
        let racers = 3;
        let handler = Arc::new(handler);
        let mut steppers = workers;
        let ups0: Vec<_> = (0..rounds).map(|_| steppers[0].local_step()).collect();
        let ups1: Vec<_> = (0..rounds).map(|_| steppers[1].local_step()).collect();
        thread::scope(|scope| {
            // Worker 1 runs a clean in-order lane.
            let h = Arc::clone(&handler);
            let lane = &ups1;
            scope.spawn(move || {
                for (i, up) in lane.iter().enumerate() {
                    match h.handle_sequenced(1, i as u32 + 1, up.clone()) {
                        Ok(Sequenced::Applied(_)) => {}
                        other => panic!("clean lane must apply: {other:?}"),
                    }
                }
            });
            // Worker 0's update storm: every seq submitted by N racers.
            for _ in 0..racers {
                let h = Arc::clone(&handler);
                let lane = &ups0;
                scope.spawn(move || {
                    for (i, up) in lane.iter().enumerate() {
                        let seq = i as u32 + 1;
                        loop {
                            match h.handle_sequenced(0, seq, up.clone()) {
                                Ok(Sequenced::Applied(_) | Sequenced::Duplicate(_)) => break,
                                // Another racer hasn't applied seq-1 yet.
                                Ok(Sequenced::Gap { .. }) => thread::yield_now(),
                                Err(e) => panic!("storm hit a poisoned server: {e}"),
                            }
                        }
                    }
                });
            }
            // Reconnect-style probes while applies are in flight: the
            // counters may only ever show *completed* applies — every
            // completed apply has already advanced the global clock, so
            // Σ applied ≤ t at any instant (reading t last is safe: it
            // only grows). The pre-apply claim this replaced published
            // the counter first and could violate exactly this. The
            // resync also must serialize with worker 0's own applies.
            let h = Arc::clone(&handler);
            scope.spawn(move || {
                for _ in 0..16 {
                    let sum = h.applied(0).unwrap() + h.applied(1).unwrap();
                    let t = h.logic().server().timestamp();
                    assert!(
                        sum <= t,
                        "counters over-report: {sum} applies published but clock is {t}"
                    );
                    h.handle_resync(0).unwrap();
                    thread::yield_now();
                }
            });
        });
        let handler = Arc::into_inner(handler).expect("threads joined");
        assert_eq!(handler.applied(0).unwrap(), u64::from(rounds));
        assert_eq!(handler.applied(1).unwrap(), u64::from(rounds));
        // Every seq folded in exactly once: the global clock counts each
        // worker's rounds once, no double applies from the storm.
        assert_eq!(handler.logic().server().timestamp(), u64::from(rounds) * 2);
        assert!(!handler.logic().server().poisoned());
    }

    #[test]
    fn theta0_crc_matches_oneshot_and_detects_drift() {
        let params = [0.5f32, -1.25, 3.0, f32::MIN_POSITIVE, 0.0];
        let mut bytes = Vec::new();
        for v in params {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(theta0_crc(&params), crc32(&bytes));
        let mut drifted = params;
        drifted[2] = 3.0 + f32::EPSILON * 4.0;
        assert_ne!(theta0_crc(&params), theta0_crc(&drifted));
        // Chunking boundary: > 1024 params takes the multi-chunk path.
        let big: Vec<f32> = (0..3000).map(|i| i as f32 * 0.25).collect();
        let mut big_bytes = Vec::new();
        for v in &big {
            big_bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(theta0_crc(&big), crc32(&big_bytes));
    }

    #[test]
    fn hello_for_fingerprints_model() {
        let params = vec![1.0f32; 10];
        let h = hello_for(&params, 3);
        assert_eq!(h.dim, 10);
        assert_eq!(h.applied, 3);
        assert_eq!(h.theta0_crc, theta0_crc(&params));
    }
}
