//! Length-delimited binary framing.
//!
//! Every message — data or control — travels as one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        b"DGS1"
//!      4     1  version      protocol version (currently 1)
//!      5     1  msg_type     see [`MsgType`]
//!      6     2  worker_id    u16 LE (0 on frames where it is meaningless)
//!      8     4  seq          u32 LE per-worker update sequence (0 = none)
//!     12     4  payload_len  u32 LE
//!     16     4  crc32        u32 LE, CRC-32 (IEEE) of the payload bytes
//!     20     …  payload
//! ```
//!
//! The header is exactly [`HEADER_BYTES`] = 20 bytes — the same constant
//! `dgs_core::protocol` charges per message in the simulated wire
//! accounting, asserted at compile time below so the simulated and real
//! byte counts can never drift.
//!
//! Reading is strictly bounded: the declared payload length is validated
//! against the caller's maximum *before* any allocation, the body is read
//! with `read_exact` (never past the frame), and a CRC mismatch or bad
//! magic is an error, never a panic.

use crate::crc::crc32;
use crate::error::{NetError, NetResult};
use crate::msg::HEADER_BYTES;
use std::io::{ErrorKind, Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"DGS1";

/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;

/// Header length in bytes; must equal the simulated accounting's
/// [`HEADER_BYTES`].
pub const HEADER_LEN: usize = 20;

// The wire header and the simulated per-message overhead are the same
// number by construction; a drift is a compile error.
const _: () = assert!(HEADER_LEN == HEADER_BYTES, "frame header must match HEADER_BYTES");

/// Frame discriminator. Data frames (`Up*`/`Down*`) carry training
/// payloads and are charged to the data byte counters; everything else is
/// control traffic (handshake, heartbeats, shutdown, errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Worker→server dense update (ASGD uplink).
    UpDense = 0x01,
    /// Worker→server sparse Top-k update (GD-async / DGC-async / DGS).
    UpSparse = 0x02,
    /// Worker→server ternary-quantized sparse update (§6 extension).
    UpTernary = 0x03,
    /// Worker→server resynchronisation request (after a lost reply the
    /// worker's model no longer matches the server's `v_k`; the server
    /// answers with a dense model and resets its tracking).
    Resync = 0x04,
    /// Server→worker dense model (ASGD downlink, or a resync reply).
    DownDense = 0x11,
    /// Server→worker sparse model difference (MDT downlink).
    DownSparse = 0x12,
    /// Worker→server handshake: version (header), dim, applied count, θ0
    /// checksum.
    Hello = 0x21,
    /// Server→worker handshake acknowledgement; mirrors [`MsgType::Hello`].
    HelloAck = 0x22,
    /// Worker→span-server cluster handshake: span coordinates, partition
    /// layout hash, and the per-span θ0 checksum. A span server refuses a
    /// plain [`MsgType::Hello`] and a plain server refuses this, so a
    /// mis-wired topology fails at connect time rather than corrupting θ.
    ClusterHello = 0x23,
    /// Span-server→worker cluster handshake acknowledgement; echoes the
    /// validated coordinates and carries the full encoded partition map.
    ClusterHelloAck = 0x24,
    /// Worker→server liveness probe while waiting on a slow reply.
    Heartbeat = 0x31,
    /// Server→worker liveness answer.
    HeartbeatAck = 0x32,
    /// Worker→server graceful end-of-run. The byte stream is ordered, so
    /// any in-flight update was already drained before this arrives.
    Shutdown = 0x41,
    /// Server→worker shutdown acknowledgement.
    ShutdownAck = 0x42,
    /// Either direction: fatal condition description (UTF-8 payload).
    Error = 0x51,
}

impl MsgType {
    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<MsgType> {
        Some(match b {
            0x01 => MsgType::UpDense,
            0x02 => MsgType::UpSparse,
            0x03 => MsgType::UpTernary,
            0x04 => MsgType::Resync,
            0x11 => MsgType::DownDense,
            0x12 => MsgType::DownSparse,
            0x21 => MsgType::Hello,
            0x22 => MsgType::HelloAck,
            0x23 => MsgType::ClusterHello,
            0x24 => MsgType::ClusterHelloAck,
            0x31 => MsgType::Heartbeat,
            0x32 => MsgType::HeartbeatAck,
            0x41 => MsgType::Shutdown,
            0x42 => MsgType::ShutdownAck,
            0x51 => MsgType::Error,
            _ => return None,
        })
    }

    /// True for frames carrying training payloads (counted as data bytes).
    pub fn is_data(self) -> bool {
        matches!(
            self,
            MsgType::UpDense
                | MsgType::UpSparse
                | MsgType::UpTernary
                | MsgType::DownDense
                | MsgType::DownSparse
        )
    }

    /// True for worker→server frames.
    pub fn is_up(self) -> bool {
        matches!(
            self,
            MsgType::UpDense
                | MsgType::UpSparse
                | MsgType::UpTernary
                | MsgType::Resync
                | MsgType::Hello
                | MsgType::ClusterHello
                | MsgType::Heartbeat
                | MsgType::Shutdown
        )
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version from the wire.
    pub version: u8,
    /// Message discriminator.
    pub msg_type: MsgType,
    /// Sending/addressed worker id.
    pub worker: u16,
    /// Per-worker update sequence number (0 when not applicable).
    pub seq: u32,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// Encodes a complete frame (header + payload) into a caller-owned
/// buffer, clearing it first. Connections reuse one scratch buffer across
/// sends, so the steady state allocates nothing: the buffer grows to the
/// largest frame ever sent and stays there. The encoded length is exactly
/// `HEADER_LEN + payload.len()`; a payload whose length does not fit the
/// u32 header field is refused with [`NetError::TooLarge`] rather than
/// silently truncated.
pub fn encode_frame_into(
    buf: &mut Vec<u8>,
    msg_type: MsgType,
    worker: u16,
    seq: u32,
    payload: &[u8],
) -> NetResult<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| NetError::TooLarge { what: "frame payload", len: payload.len() })?;
    buf.clear();
    buf.reserve(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    // dgs::allow(no-truncating-cast): repr(u8) enum discriminant, value-preserving by construction
    buf.push(msg_type as u8);
    buf.extend_from_slice(&worker.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(())
}

/// Encodes a complete frame (header + payload) into a fresh buffer.
pub fn encode_frame(
    msg_type: MsgType,
    worker: u16,
    seq: u32,
    payload: &[u8],
) -> NetResult<Vec<u8>> {
    let mut buf = Vec::new();
    encode_frame_into(&mut buf, msg_type, worker, seq, payload)?;
    Ok(buf)
}

/// Writes one frame; returns the exact number of bytes put on the wire.
/// Header and payload go down in a single `write_all` so a frame is never
/// split across two syscalls by this layer.
pub fn write_frame<W: Write>(
    w: &mut W,
    msg_type: MsgType,
    worker: u16,
    seq: u32,
    payload: &[u8],
) -> NetResult<usize> {
    let frame = encode_frame(msg_type, worker, seq, payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// [`write_frame`] through a caller-owned scratch buffer: same bytes on
/// the wire, same return value, no per-send allocation. `WireConn` routes
/// every send through this with its connection-local buffer.
pub fn write_frame_buffered<W: Write>(
    w: &mut W,
    buf: &mut Vec<u8>,
    msg_type: MsgType,
    worker: u16,
    seq: u32,
    payload: &[u8],
) -> NetResult<usize> {
    encode_frame_into(buf, msg_type, worker, seq, payload)?;
    w.write_all(buf)?;
    w.flush()?;
    Ok(buf.len())
}

/// Parses a 20-byte header buffer (magic/version/type validation only —
/// the CRC is checked against the body by [`read_frame`]).
pub fn parse_header(raw: &[u8; HEADER_LEN]) -> NetResult<FrameHeader> {
    // Irrefutable destructure of the fixed-size header: field offsets
    // live in one pattern and no byte is reached by indexing.
    let [m0, m1, m2, m3, version, ty, w0, w1, s0, s1, s2, s3, l0, l1, l2, l3, c0, c1, c2, c3] =
        *raw;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    if version != VERSION {
        return Err(NetError::BadVersion(version));
    }
    let msg_type = MsgType::from_u8(ty).ok_or(NetError::BadMsgType(ty))?;
    Ok(FrameHeader {
        version,
        msg_type,
        worker: u16::from_le_bytes([w0, w1]),
        seq: u32::from_le_bytes([s0, s1, s2, s3]),
        len: u32::from_le_bytes([l0, l1, l2, l3]),
        crc: u32::from_le_bytes([c0, c1, c2, c3]),
    })
}

/// Reads one frame. `max_payload` bounds the declared length *before* any
/// allocation. A clean EOF at a frame boundary is [`NetError::Closed`];
/// EOF mid-frame is an I/O error (truncation).
pub fn read_frame<R: Read>(r: &mut R, max_payload: usize) -> NetResult<(FrameHeader, Vec<u8>)> {
    let mut raw = [0u8; HEADER_LEN];
    // First byte distinguishes clean close from truncation.
    let mut got = 0usize;
    while got < HEADER_LEN {
        // The loop bound keeps this `Some`; get_mut() keeps the wire
        // path free of panic sites even against a misbehaving reader.
        let Some(dst) = raw.get_mut(got..) else { break };
        match r.read(dst) {
            Ok(0) if got == 0 => return Err(NetError::Closed),
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // With nothing consumed, a timeout is clean: the caller can
            // heartbeat and come back. Mid-header, the peer has stalled
            // and retrying would desynchronise the stream — fail hard.
            Err(e) if got == 0 => return Err(NetError::Io(e)),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(NetError::Io(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "peer stalled inside frame header",
                )))
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let header = parse_header(&raw)?;
    let len = usize::try_from(header.len)
        .map_err(|_| NetError::Malformed("declared length exceeds address space"))?;
    if len > max_payload {
        return Err(NetError::Oversized { len, max: max_payload });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        let Some(dst) = payload.get_mut(got..) else { break };
        match r.read(dst) {
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(NetError::Io(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "peer stalled inside frame payload",
                )))
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let actual = crc32(&payload);
    if actual != header.crc {
        return Err(NetError::BadCrc { expected: header.crc, actual });
    }
    Ok((header, payload))
}

// ---------------------------------------------------------------------------
// incremental decoding

/// Decoder progress between [`FrameDecoder::advance`] calls.
enum DecodeState {
    /// Accumulating the fixed-size header.
    Header {
        /// Header bytes received so far.
        buf: [u8; HEADER_LEN],
        /// How many of `buf`'s bytes are filled.
        got: usize,
    },
    /// Header parsed and validated; accumulating `len` payload bytes
    /// (`buf.len()` tracks progress).
    Payload {
        /// The already-validated header.
        header: FrameHeader,
        /// `header.len` as a checked `usize` (validated ≤ `max_payload`).
        len: usize,
        /// Payload bytes received so far.
        buf: Vec<u8>,
    },
    /// A previous `advance` returned an error. The stream offset is no
    /// longer known, so resynchronising is impossible — every further
    /// call errors until the connection is torn down.
    Poisoned,
}

/// Incremental, push-based counterpart of [`read_frame`]: feed it byte
/// slices as they arrive from a nonblocking socket and it hands back
/// complete frames. Decoding decisions are identical to [`read_frame`] —
/// magic/version/type validated as soon as the header completes, the
/// declared length checked against `max_payload` *before* the payload
/// buffer is allocated, and the CRC verified over the full payload
/// (including the empty one). Errors, never panics, on hostile input;
/// after an error the decoder is poisoned and refuses further bytes, so a
/// desynchronised stream cannot be misparsed as fresh frames.
pub struct FrameDecoder {
    max_payload: usize,
    state: DecodeState,
}

impl FrameDecoder {
    /// A decoder accepting payloads up to `max_payload` bytes.
    pub fn new(max_payload: usize) -> Self {
        FrameDecoder { max_payload, state: DecodeState::Header { buf: [0; HEADER_LEN], got: 0 } }
    }

    /// True when the decoder sits exactly on a frame boundary — an EOF
    /// here is a clean close, anywhere else it is truncation.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, DecodeState::Header { got: 0, .. })
    }

    /// Consumes a prefix of `input` and returns `(consumed, frame)`. A
    /// non-empty `input` always consumes at least one byte (or errors),
    /// so draining a buffer with a `while` loop over the unconsumed tail
    /// terminates. At most one frame is returned per call; call again
    /// with the remaining bytes for the next one.
    pub fn advance(&mut self, input: &[u8]) -> NetResult<(usize, Option<(FrameHeader, Vec<u8>)>)> {
        match &mut self.state {
            DecodeState::Poisoned => {
                Err(NetError::Malformed("frame decoder poisoned by an earlier error"))
            }
            DecodeState::Header { buf, got } => {
                let take = input.len().min(HEADER_LEN - *got);
                // Both sub-slices exist by construction of `take`;
                // get()-style access keeps this panic-free regardless.
                if let (Some(dst), Some(src)) =
                    (buf.get_mut(*got..*got + take), input.get(..take))
                {
                    dst.copy_from_slice(src);
                }
                *got += take;
                if *got < HEADER_LEN {
                    return Ok((take, None));
                }
                let (header, len) = match self.validate_header() {
                    Ok(h) => h,
                    Err(e) => {
                        self.state = DecodeState::Poisoned;
                        return Err(e);
                    }
                };
                if len == 0 {
                    // Zero-payload frames complete with the header; the
                    // CRC still has to cover the empty payload.
                    let frame = match finish_payload(header, Vec::new()) {
                        Ok(f) => f,
                        Err(e) => {
                            self.state = DecodeState::Poisoned;
                            return Err(e);
                        }
                    };
                    self.state = DecodeState::Header { buf: [0; HEADER_LEN], got: 0 };
                    return Ok((take, Some(frame)));
                }
                self.state = DecodeState::Payload {
                    header,
                    len,
                    // The length was just checked against max_payload, so
                    // this allocation is bounded by the caller's ceiling.
                    buf: Vec::with_capacity(len),
                };
                Ok((take, None))
            }
            DecodeState::Payload { header, len, buf } => {
                let need = *len - buf.len();
                let take = input.len().min(need);
                buf.extend_from_slice(input.get(..take).unwrap_or_default());
                if buf.len() < *len {
                    return Ok((take, None));
                }
                let header = *header;
                let payload = std::mem::take(buf);
                let frame = match finish_payload(header, payload) {
                    Ok(f) => f,
                    Err(e) => {
                        self.state = DecodeState::Poisoned;
                        return Err(e);
                    }
                };
                self.state = DecodeState::Header { buf: [0; HEADER_LEN], got: 0 };
                Ok((take, Some(frame)))
            }
        }
    }

    /// Parses and bounds-checks a completed header buffer.
    fn validate_header(&self) -> NetResult<(FrameHeader, usize)> {
        let DecodeState::Header { buf, .. } = &self.state else {
            return Err(NetError::Malformed("decoder state desynchronised"));
        };
        let header = parse_header(buf)?;
        let len = usize::try_from(header.len)
            .map_err(|_| NetError::Malformed("declared length exceeds address space"))?;
        if len > self.max_payload {
            return Err(NetError::Oversized { len, max: self.max_payload });
        }
        Ok((header, len))
    }
}

/// CRC gate shared by both completion paths.
fn finish_payload(header: FrameHeader, payload: Vec<u8>) -> NetResult<(FrameHeader, Vec<u8>)> {
    let actual = crc32(&payload);
    if actual != header.crc {
        return Err(NetError::BadCrc { expected: header.crc, actual });
    }
    Ok((header, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn header_is_exactly_header_bytes() {
        // The layout: 4 magic + 1 version + 1 type + 2 worker + 4 seq +
        // 4 len + 4 crc.
        assert_eq!(4 + 1 + 1 + 2 + 4 + 4 + 4, HEADER_LEN);
        assert_eq!(HEADER_LEN, HEADER_BYTES);
        let frame = encode_frame(MsgType::Heartbeat, 0, 0, &[]).unwrap();
        assert_eq!(frame.len(), HEADER_LEN);
    }

    #[test]
    fn roundtrip_with_payload() {
        let payload = b"some bytes".to_vec();
        let frame = encode_frame(MsgType::UpSparse, 7, 42, &payload).unwrap();
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        let (h, body) = read_frame(&mut Cursor::new(&frame), 1024).unwrap();
        assert_eq!(h.msg_type, MsgType::UpSparse);
        assert_eq!(h.worker, 7);
        assert_eq!(h.seq, 42);
        assert_eq!(h.len as usize, payload.len());
        assert_eq!(body, payload);
    }

    #[test]
    fn golden_header_bytes() {
        // Pin the exact layout so accidental field reorders fail loudly.
        let frame = encode_frame(MsgType::UpDense, 0x0102, 0x0304_0506, b"\x09").unwrap();
        assert_eq!(&frame[0..4], b"DGS1");
        assert_eq!(frame[4], 1); // version
        assert_eq!(frame[5], 0x01); // UpDense
        assert_eq!(&frame[6..8], &[0x02, 0x01]); // worker LE
        assert_eq!(&frame[8..12], &[0x06, 0x05, 0x04, 0x03]); // seq LE
        assert_eq!(&frame[12..16], &[0x01, 0x00, 0x00, 0x00]); // len LE
        assert_eq!(&frame[16..20], &crate::crc::crc32(b"\x09").to_le_bytes());
        assert_eq!(frame[20], 0x09);
    }

    #[test]
    fn buffered_write_is_byte_identical_and_reuses_the_buffer() {
        let payload = b"reused scratch".to_vec();
        let mut plain = Vec::new();
        let n_plain = write_frame(&mut plain, MsgType::UpSparse, 3, 17, &payload).unwrap();

        let mut scratch = Vec::new();
        let mut buffered = Vec::new();
        let n_buf =
            write_frame_buffered(&mut buffered, &mut scratch, MsgType::UpSparse, 3, 17, &payload)
                .unwrap();
        assert_eq!(n_plain, n_buf);
        assert_eq!(plain, buffered);

        // A second, smaller send through the same scratch buffer must not
        // leak bytes from the first and must not grow the allocation.
        let cap = scratch.capacity();
        let mut second = Vec::new();
        let n2 = write_frame_buffered(&mut second, &mut scratch, MsgType::Heartbeat, 0, 0, &[])
            .unwrap();
        assert_eq!(n2, HEADER_LEN);
        assert_eq!(second, encode_frame(MsgType::Heartbeat, 0, 0, &[]).unwrap());
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn clean_eof_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut Cursor::new(empty), 64), Err(NetError::Closed)));
    }

    #[test]
    fn truncated_header_and_payload_error() {
        let frame = encode_frame(MsgType::DownSparse, 1, 1, b"payload").unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, frame.len() - 1] {
            let err = read_frame(&mut Cursor::new(&frame[..cut]), 64).unwrap_err();
            assert!(
                matches!(err, NetError::Io(_)),
                "cut {cut} should be a truncation error, got {err}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(MsgType::Hello, 0, 0, &[]).unwrap();
        frame[0] = b'X';
        assert!(matches!(read_frame(&mut Cursor::new(&frame), 64), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut frame = encode_frame(MsgType::Hello, 0, 0, &[]).unwrap();
        frame[4] = 99;
        assert!(matches!(read_frame(&mut Cursor::new(&frame), 64), Err(NetError::BadVersion(99))));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut frame = encode_frame(MsgType::Hello, 0, 0, &[]).unwrap();
        frame[5] = 0x7F;
        assert!(matches!(
            read_frame(&mut Cursor::new(&frame), 64),
            Err(NetError::BadMsgType(0x7F))
        ));
    }

    #[test]
    fn oversized_len_rejected_before_allocation() {
        let mut frame = encode_frame(MsgType::UpDense, 0, 1, &[0u8; 8]).unwrap();
        // Forge a 4 GiB-ish declared length; read_frame must refuse based
        // on the cap alone, without attempting the allocation.
        frame[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&frame), 1 << 20).unwrap_err();
        assert!(matches!(err, NetError::Oversized { .. }), "{err}");
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut frame = encode_frame(MsgType::DownDense, 3, 9, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert!(matches!(read_frame(&mut Cursor::new(&frame), 64), Err(NetError::BadCrc { .. })));
    }

    #[test]
    fn msg_type_roundtrip_and_classes() {
        for ty in [
            MsgType::UpDense,
            MsgType::UpSparse,
            MsgType::UpTernary,
            MsgType::Resync,
            MsgType::DownDense,
            MsgType::DownSparse,
            MsgType::Hello,
            MsgType::HelloAck,
            MsgType::ClusterHello,
            MsgType::ClusterHelloAck,
            MsgType::Heartbeat,
            MsgType::HeartbeatAck,
            MsgType::Shutdown,
            MsgType::ShutdownAck,
            MsgType::Error,
        ] {
            assert_eq!(MsgType::from_u8(ty as u8), Some(ty));
        }
        assert_eq!(MsgType::from_u8(0x00), None);
        assert!(MsgType::UpDense.is_data() && MsgType::UpDense.is_up());
        assert!(MsgType::DownSparse.is_data() && !MsgType::DownSparse.is_up());
        assert!(!MsgType::Hello.is_data() && MsgType::Hello.is_up());
        assert!(!MsgType::HelloAck.is_up());
        assert!(!MsgType::ClusterHello.is_data() && MsgType::ClusterHello.is_up());
        assert!(!MsgType::ClusterHelloAck.is_data() && !MsgType::ClusterHelloAck.is_up());
    }

    // -- FrameDecoder (incremental path) ------------------------------------

    /// A stream of three frames covering empty, small, and multi-KB
    /// payloads — the decoder-test workload.
    fn sample_stream() -> (Vec<u8>, Vec<(MsgType, Vec<u8>)>) {
        let specs = vec![
            (MsgType::Heartbeat, Vec::new()),
            (MsgType::UpSparse, b"tiny payload".to_vec()),
            (MsgType::DownDense, (0..4096u32).flat_map(|i| i.to_le_bytes()).collect()),
        ];
        let mut stream = Vec::new();
        for (i, (ty, payload)) in specs.iter().enumerate() {
            stream.extend_from_slice(&encode_frame(*ty, i as u16, i as u32, payload).unwrap());
        }
        (stream, specs)
    }

    /// Drains `input` through the decoder in chunks produced by `next`,
    /// returning the decoded frames.
    fn drain_chunked(
        dec: &mut FrameDecoder,
        input: &[u8],
        mut next: impl FnMut(usize) -> usize,
    ) -> NetResult<Vec<(FrameHeader, Vec<u8>)>> {
        let mut frames = Vec::new();
        let mut off = 0;
        while off < input.len() {
            let chunk_end = (off + next(off).max(1)).min(input.len());
            let mut chunk = &input[off..chunk_end];
            while !chunk.is_empty() {
                let (n, frame) = dec.advance(chunk)?;
                assert!(n > 0, "non-empty input must consume bytes");
                chunk = &chunk[n..];
                if let Some(f) = frame {
                    frames.push(f);
                }
            }
            off = chunk_end;
        }
        Ok(frames)
    }

    #[test]
    fn decoder_byte_at_a_time_matches_read_frame() {
        let (stream, specs) = sample_stream();
        let mut dec = FrameDecoder::new(MAX_TEST_PAYLOAD);
        let frames = drain_chunked(&mut dec, &stream, |_| 1).unwrap();
        assert!(dec.is_idle());
        assert_eq!(frames.len(), specs.len());
        let mut cursor = Cursor::new(&stream);
        for (frame, (ty, payload)) in frames.iter().zip(&specs) {
            assert_eq!(frame.0.msg_type, *ty);
            assert_eq!(&frame.1, payload);
            let (h, body) = read_frame(&mut cursor, MAX_TEST_PAYLOAD).unwrap();
            assert_eq!((h, body), (frame.0, frame.1.clone()));
        }
    }

    const MAX_TEST_PAYLOAD: usize = 1 << 20;

    #[test]
    fn decoder_random_splits_match_one_shot() {
        let (stream, specs) = sample_stream();
        // Deterministic xorshift so every CI run feeds the same splits.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut dec = FrameDecoder::new(MAX_TEST_PAYLOAD);
            let frames =
                drain_chunked(&mut dec, &stream, |_| (rng() % 977) as usize + 1).unwrap();
            assert!(dec.is_idle());
            assert_eq!(frames.len(), specs.len());
            for (frame, (ty, payload)) in frames.iter().zip(&specs) {
                assert_eq!(frame.0.msg_type, *ty);
                assert_eq!(&frame.1, payload);
            }
        }
    }

    #[test]
    fn decoder_mid_header_truncation_is_not_idle() {
        let frame = encode_frame(MsgType::UpSparse, 1, 1, b"abc").unwrap();
        for cut in 1..frame.len() {
            let mut dec = FrameDecoder::new(64);
            let got = drain_chunked(&mut dec, &frame[..cut], |_| 7).unwrap();
            assert!(got.is_empty(), "cut {cut} must not yield a frame");
            assert!(!dec.is_idle(), "cut {cut} leaves the decoder mid-frame");
        }
    }

    /// Flip one bit at every offset of an encoded frame. The decoder must
    /// never panic; payload- or CRC-byte corruption must fail the CRC;
    /// frames that do decode may differ from the original only in the
    /// fields the CRC does not cover (worker, seq).
    #[test]
    fn decoder_survives_corruption_at_every_offset() {
        let payload = b"corruptible payload bytes".to_vec();
        let clean = encode_frame(MsgType::UpSparse, 3, 9, &payload).unwrap();
        for offset in 0..clean.len() {
            let mut bad = clean.clone();
            bad[offset] ^= 0x40;
            let mut dec = FrameDecoder::new(64);
            match drain_chunked(&mut dec, &bad, |_| 3) {
                Ok(frames) => {
                    for (_h, body) in frames {
                        // The CRC covers only the payload, so a frame that
                        // still decodes may differ in type/worker/seq — but
                        // its payload must be untouched, and magic/version/
                        // len corruption can never slip through (it errors
                        // or starves the payload instead).
                        assert_eq!(body, payload, "offset {offset}");
                        assert!(
                            (5..12).contains(&offset),
                            "offset {offset} decoded despite covered-byte corruption"
                        );
                    }
                }
                Err(e) => {
                    // Payload and CRC corruption must be caught as a CRC
                    // mismatch specifically.
                    if offset >= HEADER_LEN || (16..20).contains(&offset) {
                        assert!(
                            matches!(e, NetError::BadCrc { .. }),
                            "offset {offset}: expected BadCrc, got {e}"
                        );
                    }
                    // Poisoned: further feeding errors instead of
                    // resynchronising on garbage.
                    assert!(dec.advance(&clean).is_err());
                }
            }
        }
    }

    #[test]
    fn decoder_rejects_oversized_length_before_allocation() {
        let mut frame = encode_frame(MsgType::UpDense, 0, 1, &[0u8; 8]).unwrap();
        frame[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new(1 << 20);
        let err = drain_chunked(&mut dec, &frame, |_| 5).unwrap_err();
        assert!(matches!(err, NetError::Oversized { .. }), "{err}");
        // And the poisoned decoder refuses clean bytes afterwards.
        let clean = encode_frame(MsgType::Heartbeat, 0, 0, &[]).unwrap();
        assert!(dec.advance(&clean).is_err());
    }

    #[test]
    fn decoder_zero_payload_frames_complete_on_header() {
        let mut stream = encode_frame(MsgType::Heartbeat, 2, 0, &[]).unwrap();
        stream.extend_from_slice(&encode_frame(MsgType::Shutdown, 2, 0, &[]).unwrap());
        let mut dec = FrameDecoder::new(0);
        let frames = drain_chunked(&mut dec, &stream, |_| 2).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0.msg_type, MsgType::Heartbeat);
        assert_eq!(frames[1].0.msg_type, MsgType::Shutdown);
        assert!(dec.is_idle());
    }
}
