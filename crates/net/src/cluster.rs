//! Cluster-aware worker client: one uplink fanned out across span
//! servers, downlink diffs reassembled in shard order.
//!
//! A K-process PS cluster runs one [`crate::tcp::serve_cluster`] (or
//! evented) process per [`ShardSpan`] of the model partition.
//! [`ClusterTransport`] is the worker side: it holds one
//! [`TcpWorkerTransport`] per span and, for every training update,
//! slices the payload exactly the way the in-process sharded server's
//! fan-out does (`dgs_core::shard`) — a dense payload by coordinate
//! range, sparse/ternary payloads by whole-segment chunk ranges — so a
//! span server receives precisely the sub-update its in-process shard
//! twin would see. Replies come back one per span; when they are
//! homogeneous (the steady state), [`assemble_replies`] concatenates
//! them in span order into the exact message a single sharded server
//! would have sent, which is what makes the K-process schedule replay
//! the single-process one bitwise.
//!
//! Fault behaviour is *per span*: each sub-transport keeps its own
//! sequence/applied counters and its own reconnect-with-backoff
//! machinery, so a dead span server stalls only its slice of the
//! exchange — the other spans keep applying — and the reconnect
//! handshake's per-span `applied` count guarantees the recovered span
//! never double-applies (same argument as the single-server reconnect
//! path, now per slice).

use crate::error::{NetError, NetResult};
use crate::msg::{ClusterLayout, DownMsg, SparseUpdate, TernaryUpdate, UpMsg, UpPayload};
use crate::tcp::{ClusterClientOpts, TcpOpts, TcpWorkerTransport};
use crate::transport::{Tier, Transport, WireStats};
use std::sync::Arc;

/// Worker-side transport over a span-sharded PS cluster: one TCP
/// sub-transport per span server, driven in span order.
pub struct ClusterTransport {
    layout: ClusterLayout,
    spans: Vec<TcpWorkerTransport>,
}

impl ClusterTransport {
    /// Builds a transport for `worker` over the cluster described by
    /// `layout`, with `addrs[k]` the address of span server `k`.
    /// Connections are made lazily on first exchange. Errors if the
    /// address count does not match the layout's span count.
    pub fn new(layout: ClusterLayout, addrs: &[String], worker: u16) -> NetResult<Self> {
        Self::with_opts(layout, addrs, worker, |_| {})
    }

    /// [`ClusterTransport::new`] with a hook to adjust each generated
    /// per-span [`TcpOpts`] (timeouts, backoff) before it is frozen.
    pub fn with_opts(
        layout: ClusterLayout,
        addrs: &[String],
        worker: u16,
        mut tweak: impl FnMut(&mut TcpOpts),
    ) -> NetResult<Self> {
        if addrs.len() != layout.num_spans() {
            return Err(NetError::Protocol(format!(
                "cluster has {} spans but {} addresses were given",
                layout.num_spans(),
                addrs.len()
            )));
        }
        let layout_hash = layout.layout_hash();
        let layout_bytes = layout.encode();
        let spans = addrs
            .iter()
            .zip(layout.spans.iter().enumerate())
            .map(|(addr, (k, info))| {
                let mut opts = TcpOpts::new(addr.clone(), worker, info.len, info.theta0_crc);
                opts.cluster = Some(ClusterClientOpts {
                    span_index: k as u32,
                    num_spans: layout.num_spans() as u32,
                    layout_hash,
                    expected_layout: layout_bytes.clone(),
                });
                tweak(&mut opts);
                TcpWorkerTransport::new(opts)
            })
            .collect();
        Ok(ClusterTransport { layout, spans })
    }

    /// The partition map this transport slices by.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// Number of span servers.
    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// Slices one full update into per-span sub-updates, mirroring the
    /// in-process sharded fan-out: dense by coordinate range,
    /// sparse/ternary by whole-segment chunk ranges. Every sub-update
    /// carries the full `train_loss` (each span's telemetry sees the
    /// same scalar, exactly like every in-process shard does).
    fn fan_out(&self, up: &UpMsg) -> NetResult<Vec<UpMsg>> {
        let mut parts = Vec::with_capacity(self.spans.len());
        for k in 0..self.spans.len() {
            let span = self.layout.shard_span(k);
            let payload = match &up.payload {
                UpPayload::Dense(g) => {
                    if g.len() != self.layout.dim as usize {
                        return Err(NetError::Protocol(format!(
                            "dense update has {} coordinates, layout covers {}",
                            g.len(),
                            self.layout.dim
                        )));
                    }
                    UpPayload::Dense(g[span.range()].to_vec())
                }
                UpPayload::Sparse(s) => {
                    if s.chunks.len() < span.seg_end {
                        return Err(NetError::Protocol(format!(
                            "sparse update has {} chunks, span {k} needs segments up to {}",
                            s.chunks.len(),
                            span.seg_end
                        )));
                    }
                    UpPayload::Sparse(SparseUpdate { chunks: s.chunks[span.seg_range()].to_vec() })
                }
                UpPayload::TernarySparse(t) => {
                    if t.chunks.len() < span.seg_end {
                        return Err(NetError::Protocol(format!(
                            "ternary update has {} chunks, span {k} needs segments up to {}",
                            t.chunks.len(),
                            span.seg_end
                        )));
                    }
                    UpPayload::TernarySparse(TernaryUpdate {
                        chunks: t.chunks[span.seg_range()].to_vec(),
                    })
                }
            };
            parts.push(UpMsg { payload, train_loss: up.train_loss });
        }
        Ok(parts)
    }

    /// Sends one training update to every span server and collects the
    /// per-span replies, in span order. Each sub-exchange runs the full
    /// single-link protocol (sequencing, heartbeats, reconnect +
    /// retransmit-or-resync recovery) independently.
    pub fn exchange(&mut self, up: &UpMsg) -> NetResult<Vec<DownMsg>> {
        let parts = self.fan_out(up)?;
        self.spans
            .iter_mut()
            .zip(parts.iter())
            .map(|(t, part)| t.exchange(part))
            .collect()
    }

    /// Requests a full resynchronisation from every span server; the
    /// replies (in span order) concatenate to the full recovery model.
    pub fn resync(&mut self) -> NetResult<Vec<DownMsg>> {
        self.spans.iter_mut().map(Transport::resync).collect()
    }

    /// Resynchronises a single span — the recovery path when only one
    /// span server's state diverged (e.g. after it was restarted).
    pub fn resync_span(&mut self, k: usize) -> NetResult<DownMsg> {
        self.span_mut(k)?.resync()
    }

    /// Drops span `k`'s connection without telling it — fault-injection
    /// hook; the next exchange reconnects that span through the cluster
    /// handshake's retransmit-or-resync recovery while the other spans'
    /// connections stay up.
    pub fn drop_span_conn(&mut self, k: usize) -> NetResult<()> {
        self.span_mut(k)?.force_reconnect();
        Ok(())
    }

    /// Gracefully ends the run on every span server.
    pub fn shutdown(&mut self) -> NetResult<()> {
        for t in &mut self.spans {
            t.shutdown()?;
        }
        Ok(())
    }

    /// Worker-side byte counters, summed over the span links, with one
    /// `(Root, k)` entry per span in the per-link breakdown.
    pub fn stats(&self) -> WireStats {
        let mut total = WireStats::default();
        for (k, t) in self.spans.iter().enumerate() {
            let s = t.stats();
            total.add_link(Tier::Root, k as u16, s.data_up, s.data_down);
            total.merge(&s);
        }
        total
    }

    fn span_mut(&mut self, k: usize) -> NetResult<&mut TcpWorkerTransport> {
        let n = self.spans.len();
        self.spans
            .get_mut(k)
            .ok_or_else(|| NetError::Protocol(format!("span {k} out of range ({n} spans)")))
    }
}

/// Concatenates homogeneous per-span replies (in span order) into the
/// message a single sharded server would have sent: dense models by
/// coordinate concatenation, sparse diffs by chunk concatenation.
/// Returns `None` for an empty list or mixed reply kinds — the
/// post-fault case where one span answered with a dense resync while
/// the others sent sparse diffs; the caller then applies the replies
/// per span instead.
pub fn assemble_replies(replies: &[DownMsg]) -> Option<DownMsg> {
    let (first, _) = replies.split_first()?;
    match first {
        DownMsg::DenseModel(_) => {
            let mut model: Vec<f32> = Vec::new();
            for r in replies {
                match r {
                    DownMsg::DenseModel(m) => model.extend_from_slice(m),
                    DownMsg::SparseDiff(_) => return None,
                }
            }
            Some(DownMsg::DenseModel(Arc::new(model)))
        }
        DownMsg::SparseDiff(first_chunks) => {
            let mut chunks =
                Vec::with_capacity(first_chunks.chunks.len() * replies.len().max(1));
            for r in replies {
                match r {
                    DownMsg::SparseDiff(s) => chunks.extend(s.chunks.iter().cloned()),
                    DownMsg::DenseModel(_) => return None,
                }
            }
            Some(DownMsg::SparseDiff(SparseUpdate { chunks }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Partition, SparseVec, UpPayload};
    use crate::tcp::{serve_cluster, ServerOpts, SpanOpts};
    use crate::transport::UpdateHandler;
    use std::net::TcpListener;
    use std::sync::Mutex;
    use std::thread;
    use std::time::Duration;

    /// Replies with a sparse diff tagging (span marker, apply count) so
    /// the test can tell which span answered what.
    struct SpanHandler {
        marker: f32,
        applied: Vec<u64>,
        resyncs: usize,
    }

    impl UpdateHandler for SpanHandler {
        fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg {
            self.applied[worker as usize] += 1;
            let tag = self.marker + self.applied[worker as usize] as f32 + up.train_loss as f32;
            DownMsg::SparseDiff(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![0], val: vec![tag] }],
            })
        }

        fn handle_resync(&mut self, worker: u16) -> DownMsg {
            self.resyncs += 1;
            DownMsg::DenseModel(Arc::new(vec![self.marker + f32::from(worker); 2]))
        }

        fn applied(&self, worker: u16) -> u64 {
            self.applied[worker as usize]
        }
    }

    fn test_layout() -> ClusterLayout {
        let p = Partition::from_layer_sizes([("a", 2), ("b", 3)]);
        let spans = p.shard_spans(2);
        ClusterLayout::from_spans(p.total_len() as u64, &spans, &[0x100, 0x101])
    }

    /// Spawns one toy span server per layout span; returns addresses,
    /// handlers, and join handles.
    #[allow(clippy::type_complexity)]
    fn spawn_span_servers(
        layout: &ClusterLayout,
        workers: usize,
    ) -> (Vec<String>, Vec<Arc<Mutex<SpanHandler>>>, Vec<thread::JoinHandle<NetResult<WireStats>>>)
    {
        let layout_hash = layout.layout_hash();
        let layout_bytes = layout.encode();
        let mut addrs = Vec::new();
        let mut handlers = Vec::new();
        let mut joins = Vec::new();
        for (k, info) in layout.spans.iter().enumerate() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap().to_string());
            let handler = Arc::new(Mutex::new(SpanHandler {
                marker: (k as f32 + 1.0) * 100.0,
                applied: vec![0; workers],
                resyncs: 0,
            }));
            handlers.push(Arc::clone(&handler));
            let mut opts = ServerOpts::new(workers, info.len, info.theta0_crc);
            opts.read_timeout = Duration::from_millis(50);
            opts.deadline = Some(Duration::from_secs(30));
            opts.span = Some(SpanOpts {
                index: k as u32,
                num_spans: layout.num_spans() as u32,
                layout_hash,
                layout_bytes: layout_bytes.clone(),
            });
            joins.push(thread::spawn(move || serve_cluster(listener, handler, opts)));
        }
        (addrs, handlers, joins)
    }

    fn connect(layout: ClusterLayout, addrs: &[String]) -> ClusterTransport {
        ClusterTransport::with_opts(layout, addrs, 0, |o| {
            o.read_timeout = Duration::from_millis(100);
            o.backoff_base = Duration::from_millis(20);
        })
        .unwrap()
    }

    fn sparse_up(loss: f64) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate {
                chunks: vec![
                    SparseVec { idx: vec![1], val: vec![1.0] },
                    SparseVec { idx: vec![0, 2], val: vec![2.0, 3.0] },
                ],
            }),
            train_loss: loss,
        }
    }

    #[test]
    fn fan_out_slices_match_the_sharded_fan_out() {
        let layout = test_layout();
        let t = ClusterTransport::new(layout.clone(), &[String::new(), String::new()], 0).unwrap();
        // Sparse: whole-segment chunk ranges.
        let parts = t.fan_out(&sparse_up(0.5)).unwrap();
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.train_loss, 0.5, "every span sees the full loss scalar");
        }
        match (&parts[0].payload, &parts[1].payload) {
            (UpPayload::Sparse(a), UpPayload::Sparse(b)) => {
                assert_eq!(a.chunks.len(), 1);
                assert_eq!(a.chunks[0].idx, vec![1]);
                assert_eq!(b.chunks.len(), 1);
                assert_eq!(b.chunks[0].idx, vec![0, 2]);
            }
            other => panic!("unexpected fan-out {other:?}"),
        }
        // Dense: coordinate ranges.
        let dense = UpMsg { payload: UpPayload::Dense(vec![1.0, 2.0, 3.0, 4.0, 5.0]), train_loss: 0.0 };
        let parts = t.fan_out(&dense).unwrap();
        match (&parts[0].payload, &parts[1].payload) {
            (UpPayload::Dense(a), UpPayload::Dense(b)) => {
                assert_eq!(a, &vec![1.0, 2.0]);
                assert_eq!(b, &vec![3.0, 4.0, 5.0]);
            }
            other => panic!("unexpected fan-out {other:?}"),
        }
        // Wrong dense length is a protocol error, not silent corruption.
        let bad = UpMsg { payload: UpPayload::Dense(vec![0.0; 4]), train_loss: 0.0 };
        assert!(t.fan_out(&bad).is_err());
    }

    #[test]
    fn assemble_replies_concatenates_in_span_order() {
        let sparse = |tag: f32| {
            DownMsg::SparseDiff(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![0], val: vec![tag] }],
            })
        };
        match assemble_replies(&[sparse(1.0), sparse(2.0)]) {
            Some(DownMsg::SparseDiff(s)) => {
                assert_eq!(s.chunks.len(), 2);
                assert_eq!(s.chunks[0].val, vec![1.0]);
                assert_eq!(s.chunks[1].val, vec![2.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let dense = |v: Vec<f32>| DownMsg::DenseModel(Arc::new(v));
        match assemble_replies(&[dense(vec![1.0, 2.0]), dense(vec![3.0])]) {
            Some(DownMsg::DenseModel(m)) => assert_eq!(*m, vec![1.0, 2.0, 3.0]),
            other => panic!("unexpected {other:?}"),
        }
        // Mixed kinds (post-fault) and the empty list refuse to assemble.
        assert!(assemble_replies(&[sparse(1.0), dense(vec![0.0])]).is_none());
        assert!(assemble_replies(&[]).is_none());
    }

    #[test]
    fn cluster_exchange_reaches_every_span_and_accounts_per_link() {
        let layout = test_layout();
        let (addrs, handlers, joins) = spawn_span_servers(&layout, 1);
        let mut t = connect(layout, &addrs);
        let mut span_up = [0u64; 2];
        let mut span_down = [0u64; 2];
        for i in 1..=3 {
            let up = sparse_up(f64::from(i));
            let parts = t.fan_out(&up).unwrap();
            for (k, p) in parts.iter().enumerate() {
                span_up[k] += p.wire_bytes() as u64;
            }
            let replies = t.exchange(&up).unwrap();
            assert_eq!(replies.len(), 2);
            for (k, r) in replies.iter().enumerate() {
                span_down[k] += r.wire_bytes() as u64;
                match r {
                    DownMsg::SparseDiff(s) => {
                        let expect = (k as f32 + 1.0) * 100.0 + i as f32 + i as f32;
                        assert_eq!(s.chunks[0].val, vec![expect], "span {k} round {i}");
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            }
        }
        let stats = t.stats();
        for k in 0..2u16 {
            let link = stats.link(Tier::Root, k).unwrap();
            assert_eq!(link.uplink_bytes, span_up[k as usize], "span {k} uplink");
            assert_eq!(link.downlink_bytes, span_down[k as usize], "span {k} downlink");
        }
        assert_eq!(stats.data_up, span_up.iter().sum::<u64>());
        assert_eq!(stats.data_down, span_down.iter().sum::<u64>());
        t.shutdown().unwrap();
        for (j, h) in joins.into_iter().zip(&handlers) {
            j.join().unwrap().unwrap();
            assert_eq!(h.lock().unwrap().applied, vec![3]);
        }
    }

    #[test]
    fn one_span_reconnect_leaves_other_spans_untouched() {
        let layout = test_layout();
        let (addrs, handlers, joins) = spawn_span_servers(&layout, 1);
        let mut t = connect(layout, &addrs);
        t.exchange(&sparse_up(1.0)).unwrap();
        // Silently drop span 0's connection; span 1's stays up.
        t.drop_span_conn(0).unwrap();
        let replies = t.exchange(&sparse_up(2.0)).unwrap();
        // Span 0 reconnected through the cluster handshake: its applied
        // count (1) matches the client's acked (1), so seq 2 proceeds as
        // a normal apply — no resync, no double apply.
        match &replies[0] {
            DownMsg::SparseDiff(s) => assert_eq!(s.chunks[0].val, vec![100.0 + 2.0 + 2.0]),
            other => panic!("unexpected reply {other:?}"),
        }
        t.shutdown().unwrap();
        for (j, h) in joins.into_iter().zip(&handlers) {
            j.join().unwrap().unwrap();
            let h = h.lock().unwrap();
            assert_eq!(h.applied, vec![2], "both spans applied both updates exactly once");
            assert_eq!(h.resyncs, 0);
        }
    }
}
