//! Carry-less-multiplication CRC-32 — the [`Kernel::Simd`] backend of
//! [`crate::crc`].
//!
//! The hot kernel folds 64 payload bytes per iteration with `PCLMULQDQ`
//! (Gueron & Kounavis, "Fast CRC Computation for Generic Polynomials
//! Using PCLMULQDQ", the reflected-data variant), then reduces 128 → 64 →
//! 32 bits with a Barrett step. All folding constants are *derived at
//! compile time* from the polynomial by [`fold_const`] / [`barrett_mu`] —
//! no magic numbers — so the relationship between the constants and the
//! table-driven scalar kernel is checkable in the tests below.
//!
//! CRC-32 over GF(2) has exactly one correct answer, so this backend is
//! bitwise identical to the slicing-by-8 kernel by construction; the
//! differential tests (here and in `tests/crc_differential.rs`) enforce
//! it against the byte-at-a-time oracle across every length and
//! alignment. Inputs shorter than one fold width, the sub-16-byte tail,
//! and machines without `pclmulqdq` all take the scalar kernel.
//!
//! Like [`crate::poll`], this module is part of the crate's sanctioned
//! `unsafe` budget (dgs-audit `unsafe-budget` scope): the intrinsics
//! below need `unsafe` only for the feature-gated call boundary and the
//! unaligned loads, and every block carries a `// SAFETY:` note.

// The second sanctioned hole in the workspace-wide `unsafe_code = "deny"`
// wall (Cargo.toml): explicit SIMD intrinsics have no safe alternative on
// std alone. Policed by dgs-audit's unsafe-budget rule instead.
#![allow(unsafe_code)]

use crate::crc::{crc32_update_sliced, POLY};

/// `x^n mod P(x)` in the *normal* (non-reflected) bit order: bit `i`
/// holds the coefficient of `x^i`, reduction polynomial
/// `P = x^32 + (bits of 0x04C11DB7)`.
const fn xnmodp(n: u64) -> u32 {
    // 0x04C11DB7 is POLY bit-reflected; deriving it here keeps the one
    // source of truth in crc.rs.
    let poly_normal = ((POLY as u64).reverse_bits() >> 32) as u32;
    let mut r: u32 = 1; // x^0
    let mut i = 0;
    while i < n {
        let carry = r & 0x8000_0000;
        r <<= 1;
        if carry != 0 {
            r ^= poly_normal;
        }
        i += 1;
    }
    r
}

/// Bit-reverses the low 33 bits of `v` (bit 0 ↔ bit 32).
const fn reflect33(v: u64) -> u64 {
    let mut r = 0u64;
    let mut i = 0;
    while i < 33 {
        if (v >> i) & 1 == 1 {
            r |= 1 << (32 - i);
        }
        i += 1;
    }
    r
}

/// Folding constant for a shift of `n` bits, in the reflected form
/// `PCLMULQDQ` consumes: `reflect33(x^n mod P)`.
const fn fold_const(n: u64) -> u64 {
    reflect33(xnmodp(n) as u64)
}

/// Barrett constant `μ = ⌊x^64 / P(x)⌋`, reflected.
const fn barrett_mu() -> u64 {
    // Full 33-bit P(x): the implicit x^32 term plus the reflected low bits.
    let poly_normal = ((POLY as u64).reverse_bits() >> 32) | (1 << 32);
    let mut rem: u128 = 1u128 << 64;
    let mut q: u64 = 0;
    let mut i: u64 = 32;
    loop {
        if (rem >> (32 + i)) & 1 == 1 {
            q |= 1 << i;
            rem ^= (poly_normal as u128) << i;
        }
        if i == 0 {
            break;
        }
        i -= 1;
    }
    reflect33(q)
}

/// Fold constants: 4×128-bit distance (k1/k2), 1×128-bit distance
/// (k3/k4), final 64-bit fold (k5), Barrett pair (μ, reflected full P).
const K1: u64 = fold_const(4 * 128 + 32);
const K2: u64 = fold_const(4 * 128 - 32);
const K3: u64 = fold_const(128 + 32);
const K4: u64 = fold_const(128 - 32);
const K5: u64 = fold_const(64);
const MU: u64 = barrett_mu();
const POLY_FULL: u64 = reflect33(((POLY as u64).reverse_bits() >> 32) | (1 << 32));

/// Is the carry-less-multiply kernel usable on this CPU?
pub(crate) fn clmul_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Folds `data` into a running CRC state on the carry-less-multiply
/// kernel, falling back to slicing-by-8 when the CPU lacks `pclmulqdq`
/// or the buffer is shorter than one 64-byte fold block. Bitwise
/// identical to [`crate::crc::crc32_update`]'s scalar kernel on every
/// input — CRC-32 has one correct answer.
pub(crate) fn crc32_update_clmul(state: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if data.len() >= 64 && clmul_available() {
        // SAFETY: `pclmulqdq` and `sse4.1` presence was just verified at
        // runtime, which is the only precondition of the target_feature
        // function.
        return unsafe { pclmul::update(state, data) };
    }
    crc32_update_sliced(state, data)
}

#[cfg(target_arch = "x86_64")]
mod pclmul {
    use super::{crc32_update_sliced, K1, K2, K3, K4, K5, MU, POLY_FULL};
    use core::arch::x86_64::*;

    /// One 128-bit fold step: carry the accumulator `acc` forward over
    /// `dist` bits via its two 64-bit halves and XOR in the next block.
    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    fn fold16(acc: __m128i, consts: __m128i, next: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128::<0x00>(acc, consts);
        let hi = _mm_clmulepi64_si128::<0x11>(acc, consts);
        _mm_xor_si128(_mm_xor_si128(lo, hi), next)
    }

    /// The 64-byte-per-iteration folding kernel. Caller guarantees
    /// `data.len() >= 64` and CPU support.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub(super) fn update(state: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64);
        let k1k2 = _mm_set_epi64x(K2 as i64, K1 as i64);
        let k3k4 = _mm_set_epi64x(K4 as i64, K3 as i64);
        let mut ptr = data.as_ptr();
        let mut len = data.len();
        // SAFETY: `len >= 64`, so the first 64 bytes of `data` are in
        // bounds for the four unaligned 16-byte loads.
        let (mut x0, mut x1, mut x2, mut x3) = unsafe {
            (
                _mm_loadu_si128(ptr.cast()),
                _mm_loadu_si128(ptr.add(16).cast()),
                _mm_loadu_si128(ptr.add(32).cast()),
                _mm_loadu_si128(ptr.add(48).cast()),
            )
        };
        // Reflected convention: the running state XORs into the *low*
        // 32 bits of the first block.
        x0 = _mm_xor_si128(x0, _mm_cvtsi32_si128(state as i32));
        // SAFETY: advancing past the 64 bytes just loaded stays within
        // the original `data` allocation (len tracked alongside).
        ptr = unsafe { ptr.add(64) };
        len -= 64;
        while len >= 64 {
            // SAFETY: `len >= 64`, so the next four unaligned 16-byte
            // loads from `ptr` are in bounds.
            let (y0, y1, y2, y3) = unsafe {
                (
                    _mm_loadu_si128(ptr.cast()),
                    _mm_loadu_si128(ptr.add(16).cast()),
                    _mm_loadu_si128(ptr.add(32).cast()),
                    _mm_loadu_si128(ptr.add(48).cast()),
                )
            };
            x0 = fold16(x0, k1k2, y0);
            x1 = fold16(x1, k1k2, y1);
            x2 = fold16(x2, k1k2, y2);
            x3 = fold16(x3, k1k2, y3);
            // SAFETY: same 64 bytes just consumed; pointer stays inside
            // the allocation.
            ptr = unsafe { ptr.add(64) };
            len -= 64;
        }
        // Fold the four accumulators into one.
        let mut x = fold16(x0, k3k4, x1);
        x = fold16(x, k3k4, x2);
        x = fold16(x, k3k4, x3);
        while len >= 16 {
            // SAFETY: `len >= 16`, so one more unaligned 16-byte load
            // from `ptr` is in bounds.
            let y = unsafe { _mm_loadu_si128(ptr.cast()) };
            x = fold16(x, k3k4, y);
            // SAFETY: 16 bytes consumed, pointer stays in bounds.
            ptr = unsafe { ptr.add(16) };
            len -= 16;
        }
        // Reduce 128 → 64 bits: fold the low half over 64 bits (k4).
        let t = _mm_clmulepi64_si128::<0x10>(x, k3k4);
        x = _mm_xor_si128(_mm_srli_si128::<8>(x), t);
        // Reduce 64 → 32 bits with k5 (x^64 mod P).
        let mask32 = _mm_set_epi32(0, -1, 0, -1);
        let k5 = _mm_set_epi64x(0, K5 as i64);
        let t = _mm_clmulepi64_si128::<0x00>(_mm_and_si128(x, mask32), k5);
        x = _mm_xor_si128(_mm_srli_si128::<4>(x), t);
        // Barrett reduction to the final 32-bit remainder.
        let polymu = _mm_set_epi64x(MU as i64, POLY_FULL as i64);
        let t = _mm_clmulepi64_si128::<0x10>(_mm_and_si128(x, mask32), polymu);
        let t = _mm_clmulepi64_si128::<0x00>(_mm_and_si128(t, mask32), polymu);
        let crc = _mm_extract_epi32::<1>(_mm_xor_si128(x, t)) as u32;
        // The scalar tail (< 16 bytes) reuses the table kernel.
        let consumed = data.len() - len;
        crc32_update_sliced(crc, &data[consumed..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::{crc32_finish, crc32_update, crc32_update_bytewise, CRC_INIT};

    #[test]
    fn derived_constants_match_published_values() {
        // The reflected CRC-32 folding constants from the Intel paper /
        // zlib's crc32_simd. A mismatch here means `xnmodp` broke, not
        // that the published values are authoritative — the differential
        // tests below are the ground truth.
        assert_eq!(K1, 0x01_5444_2bd4);
        assert_eq!(K2, 0x01_c6e4_1596);
        assert_eq!(K3, 0x01_7519_97d0);
        assert_eq!(K4, 0x00_ccaa_009e);
        assert_eq!(K5, 0x01_63cd_6124);
        assert_eq!(MU, 0x01_f701_1641);
        assert_eq!(POLY_FULL, 0x01_db71_0641);
    }

    #[test]
    fn clmul_matches_bytewise_oracle_every_length_and_alignment() {
        if !clmul_available() {
            eprintln!("notice: no pclmulqdq on this CPU; clmul path untested");
        }
        let mut x = 0x0123_4567_89AB_CDEFu64;
        let mut data = vec![0u8; 2048];
        for b in data.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        // Lengths straddling every kernel boundary: scalar (< 64), one
        // fold block, 16-byte folds, odd tails; at every start offset so
        // each load alignment is hit.
        for len in [0, 1, 15, 16, 63, 64, 65, 79, 80, 127, 128, 129, 191, 192, 256, 1000] {
            for start in 0..8usize {
                let slice = &data[start..start + len];
                assert_eq!(
                    crc32_update_clmul(CRC_INIT, slice),
                    crc32_update_bytewise(CRC_INIT, slice),
                    "len {len} start {start}"
                );
            }
        }
    }

    #[test]
    fn clmul_is_interchangeable_mid_stream() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        // clmul for the head, slicing for the middle, bytewise tail: one
        // shared state convention.
        let mixed = crc32_update_bytewise(
            crc32_update(crc32_update_clmul(CRC_INIT, &data[..512]), &data[512..900]),
            &data[900..],
        );
        assert_eq!(crc32_finish(mixed), crc32_finish(crc32_update(CRC_INIT, &data)));
    }

    #[test]
    fn known_check_value_through_clmul() {
        // 9 bytes takes the scalar fallback; pad to reach the vector
        // kernel and cross-check both against the oracle.
        let mut data = b"123456789".to_vec();
        assert_eq!(crc32_finish(crc32_update_clmul(CRC_INIT, &data)), 0xCBF4_3926);
        while data.len() < 100 {
            data.push(b'x');
        }
        assert_eq!(
            crc32_update_clmul(CRC_INIT, &data),
            crc32_update_bytewise(CRC_INIT, &data)
        );
    }
}
