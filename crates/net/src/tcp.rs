//! TCP transport: the same framed protocol as [`crate::transport`], but
//! across processes.
//!
//! Worker side — [`TcpWorkerTransport`]:
//!
//! ```text
//! connect ──► Hello(dim, applied, θ0-crc) ──► HelloAck ──► ready
//!    ▲            │ mismatch → Handshake error (fatal, no retry)
//!    │ backoff    ▼
//!    └── io error / unresponsive peer (heartbeat_limit misses)
//! ```
//!
//! While waiting for a reply the worker sends a [`MsgType::Heartbeat`]
//! every read-timeout tick; `heartbeat_limit` unanswered probes mark the
//! connection dead and trigger reconnect-with-backoff. After a reconnect
//! the handshake's `applied` counters disambiguate the three possible
//! states of the in-flight update:
//!
//! * server `applied  < seq` — the update never arrived: retransmit it;
//! * server `applied >= seq` — it was applied but the reply was lost: the
//!   worker's model no longer matches the server's `v_k`, so it requests a
//!   [`MsgType::Resync`] and receives a fresh dense model (the server
//!   resets its per-worker tracking in [`UpdateHandler::handle_resync`]).
//!
//! Server side — [`serve_cluster`]: one blocking connection thread per
//! worker, updates serialized through a shared `Mutex<H>`. Duplicate
//! sequence numbers (a retransmit that raced its own reply) are answered
//! with a resync instead of a second apply, so an update is never folded
//! into the model twice. Graceful end: each worker sends
//! [`MsgType::Shutdown`] after its last reply has been received — the
//! byte stream is ordered, so nothing can still be in flight — and the
//! server exits once every expected worker has done so.

use crate::codec::{ClusterHello, Hello};
use crate::conn::{protocol_step, ConnPhase, Outgoing};
use crate::error::{NetError, NetResult};
use crate::frame::MsgType;
use crate::msg::{DownMsg, UpMsg};
use crate::transport::{
    Event, SharedUpdateHandler, Transport, WireConn, WireStats, MAX_PAYLOAD,
};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Worker-side connection options.
#[derive(Debug, Clone)]
pub struct TcpOpts {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// This worker's id (must be `< expected_workers` on the server).
    pub worker: u16,
    /// Model dimensionality; must match the server's exactly.
    pub dim: u64,
    /// CRC-32 of the initial model bytes; must match the server's.
    pub theta0_crc: u32,
    /// Socket read timeout — also the heartbeat cadence while waiting.
    pub read_timeout: Duration,
    /// Unanswered heartbeats before the connection is declared dead.
    pub heartbeat_limit: u32,
    /// Connection attempts (with exponential backoff) before giving up.
    pub connect_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// When talking to one span server of a PS cluster: the span
    /// coordinates this client expects on the other end. In this mode
    /// `dim` and `theta0_crc` above describe the *span* (its length and
    /// the CRC of its slice of θ0), and the handshake is a
    /// [`MsgType::ClusterHello`] instead of a plain hello.
    pub cluster: Option<ClusterClientOpts>,
}

/// Span coordinates for a cluster-mode [`TcpWorkerTransport`].
#[derive(Debug, Clone)]
pub struct ClusterClientOpts {
    /// Span index `K` (0-based) the remote server must own.
    pub span_index: u32,
    /// Total span count `N` of the cluster.
    pub num_spans: u32,
    /// Hash of the encoded partition map both sides must share.
    pub layout_hash: u32,
    /// The encoded partition map this client derived locally; the ack's
    /// layout bytes must match exactly.
    pub expected_layout: Vec<u8>,
}

impl TcpOpts {
    /// Sensible defaults for localhost training runs.
    pub fn new(addr: impl Into<String>, worker: u16, dim: u64, theta0_crc: u32) -> Self {
        TcpOpts {
            addr: addr.into(),
            worker,
            dim,
            theta0_crc,
            read_timeout: Duration::from_millis(500),
            heartbeat_limit: 20,
            connect_attempts: 8,
            backoff_base: Duration::from_millis(50),
            cluster: None,
        }
    }
}

/// Blocking TCP implementation of [`Transport`].
pub struct TcpWorkerTransport {
    opts: TcpOpts,
    conn: Option<WireConn<TcpStream>>,
    /// Sequence of the last update sent (1-based; 0 = none yet).
    sent: u32,
    /// Sequence of the last reply applied locally.
    acked: u32,
    /// Counters carried over from connections that have been torn down.
    closed_stats: WireStats,
}

impl TcpWorkerTransport {
    /// Creates a transport; the first connection is made lazily.
    pub fn new(opts: TcpOpts) -> Self {
        TcpWorkerTransport {
            opts,
            conn: None,
            sent: 0,
            acked: 0,
            closed_stats: WireStats::default(),
        }
    }

    /// Connects (with backoff) and completes the handshake. Returns the
    /// server's applied-count for this worker.
    fn connect(&mut self) -> NetResult<u64> {
        let mut delay = self.opts.backoff_base;
        let mut last: Option<NetError> = None;
        for attempt in 0..self.opts.connect_attempts {
            if attempt > 0 {
                thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match self.try_connect() {
                Ok(applied) => return Ok(applied),
                // Handshake rejections are config errors; retrying cannot
                // fix a dim or θ0 mismatch.
                Err(e @ NetError::Handshake(_)) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(NetError::Closed))
    }

    fn try_connect(&mut self) -> NetResult<u64> {
        let addr = self
            .opts
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Handshake(format!("cannot resolve {}", self.opts.addr)))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(self.opts.read_timeout))?;
        stream.set_nodelay(true)?;
        let mut conn = WireConn::new(stream);
        if self.opts.cluster.is_some() {
            return self.cluster_handshake(conn);
        }
        conn.send_hello(
            MsgType::Hello,
            self.opts.worker,
            &Hello {
                dim: self.opts.dim,
                applied: u64::from(self.acked),
                theta0_crc: self.opts.theta0_crc,
            },
        )?;
        let ack = loop {
            match conn.read_event()? {
                Event::HelloAck { hello } => break hello,
                Event::Error { reason } => return Err(NetError::Handshake(reason)),
                other => {
                    return Err(NetError::Protocol(format!("expected hello ack, got {other:?}")))
                }
            }
        };
        if ack.dim != self.opts.dim {
            return Err(NetError::Handshake(format!(
                "dim mismatch: server {} vs worker {}",
                ack.dim, self.opts.dim
            )));
        }
        if ack.theta0_crc != self.opts.theta0_crc {
            return Err(NetError::Handshake(format!(
                "initial model mismatch: server θ0 crc {:#010x} vs worker {:#010x}",
                ack.theta0_crc, self.opts.theta0_crc
            )));
        }
        self.conn = Some(conn);
        Ok(ack.applied)
    }

    /// Cluster-mode handshake: send a [`MsgType::ClusterHello`] with our
    /// span coordinates and validate the echoed ack field-for-field,
    /// including the byte-exact partition map — after this, both sides
    /// provably slice θ at the same boundaries. The reconnect/resync
    /// semantics are untouched: `applied` counts flow exactly as in the
    /// plain handshake, just per span.
    fn cluster_handshake(&mut self, mut conn: WireConn<TcpStream>) -> NetResult<u64> {
        let Some(cluster) = self.opts.cluster.clone() else {
            return Err(NetError::Protocol("cluster handshake without cluster opts".to_string()));
        };
        conn.send_cluster_hello(
            MsgType::ClusterHello,
            self.opts.worker,
            &ClusterHello {
                span_index: cluster.span_index,
                num_spans: cluster.num_spans,
                layout_hash: cluster.layout_hash,
                dim: self.opts.dim,
                applied: u64::from(self.acked),
                span_crc: self.opts.theta0_crc,
            },
            &[],
        )?;
        let (ack, layout) = loop {
            match conn.read_event()? {
                Event::ClusterHelloAck { hello, layout } => break (hello, layout),
                Event::Error { reason } => return Err(NetError::Handshake(reason)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected cluster hello ack, got {other:?}"
                    )))
                }
            }
        };
        if (ack.span_index, ack.num_spans) != (cluster.span_index, cluster.num_spans) {
            return Err(NetError::Handshake(format!(
                "span mismatch: server is span {}/{}, client expects {}/{}",
                ack.span_index, ack.num_spans, cluster.span_index, cluster.num_spans
            )));
        }
        if ack.layout_hash != cluster.layout_hash || layout != cluster.expected_layout {
            return Err(NetError::Handshake(format!(
                "partition layout mismatch: server {:#010x} vs client {:#010x}",
                ack.layout_hash, cluster.layout_hash
            )));
        }
        if ack.dim != self.opts.dim {
            return Err(NetError::Handshake(format!(
                "span dim mismatch: server {} vs client {}",
                ack.dim, self.opts.dim
            )));
        }
        if ack.span_crc != self.opts.theta0_crc {
            return Err(NetError::Handshake(format!(
                "span θ0 mismatch: server crc {:#010x} vs client {:#010x}",
                ack.span_crc, self.opts.theta0_crc
            )));
        }
        self.conn = Some(conn);
        Ok(ack.applied)
    }

    /// Tears down the current connection, keeping its byte counters.
    fn drop_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.closed_stats.merge(&conn.stats());
        }
    }

    /// Drops the live connection without telling the server — the next
    /// exchange reconnects and runs the handshake recovery path
    /// (retransmit or resync, depending on the server's applied count).
    /// Fault-injection hook for the reconnect/resync equivalence tests.
    pub fn force_reconnect(&mut self) {
        self.drop_conn();
    }

    /// Reads events until a data reply arrives, heartbeating through
    /// timeouts. `want_seq == None` accepts any reply (resync).
    fn await_reply(&mut self, want_seq: Option<u32>) -> NetResult<DownMsg> {
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| NetError::Protocol("await_reply without a connection".to_string()))?;
        let worker = self.opts.worker;
        let mut unanswered = 0u32;
        loop {
            match conn.read_event() {
                Ok(Event::Reply { worker: w, seq, msg }) => {
                    if w != worker {
                        return Err(NetError::Protocol(format!(
                            "reply addressed to worker {w}, this is {worker}"
                        )));
                    }
                    if let Some(want) = want_seq {
                        if seq != want {
                            return Err(NetError::Protocol(format!(
                                "reply for seq {seq}, expected {want}"
                            )));
                        }
                    }
                    return Ok(msg);
                }
                Ok(Event::HeartbeatAck) => {
                    // The server is alive, just slow; reset the clock.
                    unanswered = 0;
                }
                Ok(Event::Error { reason }) => return Err(NetError::Remote(reason)),
                Ok(other) => {
                    return Err(NetError::Protocol(format!("expected reply, got {other:?}")))
                }
                Err(e) if e.is_timeout() => {
                    unanswered += 1;
                    if unanswered > self.opts.heartbeat_limit {
                        // Recoverable: exchange() reconnects and recovers.
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            format!("server unresponsive after {unanswered} heartbeats"),
                        )));
                    }
                    conn.send_control(MsgType::Heartbeat, worker)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends a resync request on the live connection and applies the
    /// dense-model reply.
    fn resync_on_conn(&mut self) -> NetResult<DownMsg> {
        let worker = self.opts.worker;
        let acked = self.acked;
        self.conn.as_mut().ok_or(NetError::Closed)?.send_resync(worker, acked)?;
        self.await_reply(None)
    }
}

impl Transport for TcpWorkerTransport {
    fn exchange(&mut self, up: &UpMsg) -> NetResult<DownMsg> {
        self.sent += 1;
        let seq = self.sent;
        let mut recoveries = 0u32;
        loop {
            if self.conn.is_none() {
                let server_applied = self.connect()?;
                if server_applied >= u64::from(seq) {
                    // The update landed but its reply died with the old
                    // connection; a resync both recovers the model and
                    // realigns the server's v_k with what we now hold.
                    let model = self.resync_on_conn()?;
                    self.acked = seq;
                    return Ok(model);
                }
            }
            let worker = self.opts.worker;
            // connect() just populated `conn` above; treat a gap as a
            // recoverable close rather than a panic.
            let send = match self.conn.as_mut() {
                Some(conn) => conn.send_update(worker, seq, up),
                None => Err(NetError::Closed),
            };
            let result = match send {
                Ok(()) => self.await_reply(Some(seq)),
                Err(e) => Err(e),
            };
            match result {
                Ok(reply) => {
                    self.acked = seq;
                    return Ok(reply);
                }
                Err(e) if e.is_recoverable() && recoveries < self.opts.connect_attempts => {
                    recoveries += 1;
                    self.drop_conn();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn resync(&mut self) -> NetResult<DownMsg> {
        if self.conn.is_none() {
            self.connect()?;
        }
        let model = self.resync_on_conn()?;
        self.acked = self.sent;
        Ok(model)
    }

    fn shutdown(&mut self) -> NetResult<()> {
        if let Some(conn) = self.conn.as_mut() {
            let worker = self.opts.worker;
            conn.send_control(MsgType::Shutdown, worker)?;
            loop {
                match conn.read_event() {
                    Ok(Event::ShutdownAck) => break,
                    Ok(Event::HeartbeatAck) => continue,
                    Ok(other) => {
                        return Err(NetError::Protocol(format!(
                            "expected shutdown ack, got {other:?}"
                        )))
                    }
                    // The ack is a courtesy; a server that already exited
                    // still counts as a clean shutdown.
                    Err(NetError::Closed) => break,
                    Err(e) if e.is_timeout() => break,
                    Err(e) => return Err(e),
                }
            }
        }
        self.drop_conn();
        Ok(())
    }

    fn stats(&self) -> WireStats {
        let mut s = self.closed_stats.clone();
        if let Some(conn) = &self.conn {
            s.merge(&conn.stats());
        }
        s
    }
}

// ---------------------------------------------------------------------------
// server

/// Server-side options for [`serve_cluster`].
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Highest acceptable worker id + 1 (handshake bound).
    pub expected_workers: usize,
    /// Model dimensionality advertised in the handshake. For a span
    /// server this is the *span* length.
    pub dim: u64,
    /// CRC-32 of the initial model bytes (the span's slice of θ0 for a
    /// span server).
    pub theta0_crc: u32,
    /// Per-connection socket read timeout (idle poll cadence).
    pub read_timeout: Duration,
    /// Largest payload a connection will accept.
    pub max_payload: usize,
    /// Overall wall-clock budget; `None` waits forever. On expiry the
    /// server stops accepting, asks live connections to wind down, and
    /// returns an error.
    pub deadline: Option<Duration>,
    /// Number of graceful worker shutdowns that end the serve loop.
    /// Defaults to `expected_workers`; an edge aggregator listening for a
    /// worker *group* sets this to the group size while keeping
    /// `expected_workers` as the id bound.
    pub done_target: usize,
    /// When set, this process serves one span of a PS cluster: plain
    /// hellos are refused and cluster hellos are validated against these
    /// coordinates (see [`SpanOpts`]).
    pub span: Option<SpanOpts>,
}

/// Span-server identity for the cluster handshake. Kept to primitives
/// (plus the pre-encoded layout bytes) so the protocol layer never needs
/// to understand the partition map itself.
#[derive(Debug, Clone)]
pub struct SpanOpts {
    /// This server's span index `K` (0-based).
    pub index: u32,
    /// Total span count `N`.
    pub num_spans: u32,
    /// Hash of the encoded partition map.
    pub layout_hash: u32,
    /// The encoded partition map, appended verbatim to every ack.
    pub layout_bytes: Vec<u8>,
}

impl ServerOpts {
    /// Defaults for localhost training runs.
    pub fn new(expected_workers: usize, dim: u64, theta0_crc: u32) -> Self {
        ServerOpts {
            expected_workers,
            dim,
            theta0_crc,
            read_timeout: Duration::from_millis(200),
            max_payload: MAX_PAYLOAD,
            deadline: None,
            done_target: expected_workers,
            span: None,
        }
    }
}

/// Runs the accept loop until every expected worker has sent a graceful
/// shutdown. Updates go through the shared `handler` — pass an
/// `Arc<Mutex<H>>` to serialize them through one lock (the
/// [`crate::transport::UpdateHandler`] blanket impl), or a natively
/// concurrent [`SharedUpdateHandler`] such as the sharded runtime handler
/// to let connection threads apply updates in parallel. Returns the
/// aggregated server-side byte counters.
pub fn serve_cluster<H: SharedUpdateHandler + 'static>(
    listener: TcpListener,
    handler: Arc<H>,
    opts: ServerOpts,
) -> NetResult<WireStats> {
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicUsize::new(0));
    let stats = Arc::new(Mutex::new(WireStats::default()));
    let started = Instant::now();
    let mut threads = Vec::new();
    let deadline_hit = loop {
        if done.load(Ordering::SeqCst) >= opts.done_target {
            break false;
        }
        if let Some(limit) = opts.deadline {
            if started.elapsed() > limit {
                break true;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let done = Arc::clone(&done);
                let stats = Arc::clone(&stats);
                let opts = opts.clone();
                threads.push(thread::spawn(move || {
                    let conn_stats = serve_conn(stream, handler, &opts, &stop, &done);
                    // Counters are plain integers; a sibling thread's panic
                    // cannot leave them half-updated, so recover the lock.
                    stats.lock().unwrap_or_else(|e| e.into_inner()).merge(&conn_stats);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                stop.store(true, Ordering::SeqCst);
                for t in threads {
                    let _ = t.join();
                }
                return Err(NetError::Io(e));
            }
        }
    };
    stop.store(true, Ordering::SeqCst);
    for t in threads {
        let _ = t.join();
    }
    if deadline_hit {
        return Err(NetError::Protocol(format!(
            "deadline expired with {}/{} workers finished",
            done.load(Ordering::SeqCst),
            opts.done_target
        )));
    }
    let s = stats.lock().unwrap_or_else(|e| e.into_inner()).clone();
    Ok(s)
}

/// Maps one protocol-level [`Outgoing`] onto the blocking send path. The
/// bytes (and therefore the [`WireStats`] counters) are identical to what
/// the evented backend's queue encodes for the same `Outgoing`.
fn send_outgoing(conn: &mut WireConn<TcpStream>, out: &Outgoing) -> NetResult<()> {
    match out {
        Outgoing::HelloAck { worker, hello } => conn.send_hello(MsgType::HelloAck, *worker, hello),
        Outgoing::ClusterHelloAck { worker, hello, layout } => {
            conn.send_cluster_hello(MsgType::ClusterHelloAck, *worker, hello, layout)
        }
        Outgoing::Reply { worker, seq, msg } => conn.send_reply(*worker, *seq, msg),
        Outgoing::Control { ty, worker } => conn.send_control(*ty, *worker),
        Outgoing::Error { worker, reason } => conn.send_error(*worker, reason),
    }
}

/// Serves one connection to completion. Returns its byte counters.
///
/// The protocol decisions all live in [`protocol_step`] — shared with the
/// evented backend — so this function is only the blocking I/O shell:
/// read a frame, step the state machine, write the frames it produced,
/// heartbeat-timeout housekeeping.
fn serve_conn<H: SharedUpdateHandler>(
    stream: TcpStream,
    handler: Arc<H>,
    opts: &ServerOpts,
    stop: &AtomicBool,
    done: &AtomicUsize,
) -> WireStats {
    if stream.set_read_timeout(Some(opts.read_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return WireStats::default();
    }
    let mut conn = WireConn::with_max_payload(stream, opts.max_payload);
    let mut phase = ConnPhase::Handshake;

    loop {
        match conn.read_event() {
            Ok(event) => {
                let step = protocol_step(&mut phase, event, handler.as_ref(), opts);
                // Failed sends close the connection; error frames are
                // best-effort (the peer may already be gone).
                let mut send_failed = false;
                for out in &step.send {
                    if send_outgoing(&mut conn, out).is_err() {
                        send_failed = true;
                        break;
                    }
                }
                if step.done {
                    done.fetch_add(1, Ordering::SeqCst);
                }
                if step.close || send_failed {
                    break;
                }
            }
            Err(e) if e.is_timeout() => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Closed or malformed: the worker may be reconnecting on a new
            // socket; this thread's job is done either way.
            Err(_) => break,
        }
    }
    conn.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{write_frame, HEADER_LEN};
    use crate::msg::{SparseUpdate, SparseVec, UpPayload};
    use crate::transport::UpdateHandler;

    /// Same toy handler as the transport tests: dense reply tagging the
    /// per-worker apply count.
    struct ToyHandler {
        applied: Vec<u64>,
        resyncs: usize,
    }

    impl ToyHandler {
        fn shared(workers: usize) -> Arc<Mutex<ToyHandler>> {
            Arc::new(Mutex::new(ToyHandler { applied: vec![0; workers], resyncs: 0 }))
        }
    }

    impl UpdateHandler for ToyHandler {
        fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg {
            self.applied[worker as usize] += 1;
            let tag = self.applied[worker as usize] as f32 + up.train_loss as f32;
            DownMsg::SparseDiff(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![u32::from(worker)], val: vec![tag] }],
            })
        }

        fn handle_resync(&mut self, worker: u16) -> DownMsg {
            self.resyncs += 1;
            DownMsg::DenseModel(std::sync::Arc::new(vec![f32::from(worker); 3]))
        }

        fn applied(&self, worker: u16) -> u64 {
            self.applied[worker as usize]
        }
    }

    const DIM: u64 = 3;
    const CRC: u32 = 0x1234_5678;

    fn spawn_server(
        workers: usize,
    ) -> (String, Arc<Mutex<ToyHandler>>, thread::JoinHandle<NetResult<WireStats>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handler = ToyHandler::shared(workers);
        let h = Arc::clone(&handler);
        let mut opts = ServerOpts::new(workers, DIM, CRC);
        opts.read_timeout = Duration::from_millis(50);
        opts.deadline = Some(Duration::from_secs(30));
        let join = thread::spawn(move || serve_cluster(listener, h, opts));
        (addr, handler, join)
    }

    fn worker_opts(addr: &str, worker: u16) -> TcpOpts {
        let mut o = TcpOpts::new(addr, worker, DIM, CRC);
        o.read_timeout = Duration::from_millis(100);
        o.backoff_base = Duration::from_millis(20);
        o
    }

    fn up(loss: f64) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![1], val: vec![2.0] }],
            }),
            train_loss: loss,
        }
    }

    #[test]
    fn two_workers_exchange_and_shutdown() {
        let (addr, handler, join) = spawn_server(2);
        let mut joins = Vec::new();
        for w in 0..2u16 {
            let addr = addr.clone();
            joins.push(thread::spawn(move || {
                let mut t = TcpWorkerTransport::new(worker_opts(&addr, w));
                let mut up_bytes = 0u64;
                let mut down_bytes = 0u64;
                for i in 1..=5 {
                    let msg = up(i as f64);
                    up_bytes += msg.wire_bytes() as u64;
                    let reply = t.exchange(&msg).unwrap();
                    down_bytes += reply.wire_bytes() as u64;
                    match reply {
                        DownMsg::SparseDiff(s) => {
                            assert_eq!(s.chunks[0].idx, vec![u32::from(w)]);
                            assert_eq!(s.chunks[0].val, vec![i as f32 + i as f32]);
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
                t.shutdown().unwrap();
                let s = t.stats();
                assert_eq!(s.data_up, up_bytes, "worker {w} uplink accounting");
                assert_eq!(s.data_down, down_bytes, "worker {w} downlink accounting");
                (up_bytes, down_bytes)
            }));
        }
        let mut total_up = 0;
        let mut total_down = 0;
        for j in joins {
            let (u, d) = j.join().unwrap();
            total_up += u;
            total_down += d;
        }
        let server_stats = join.join().unwrap().unwrap();
        assert_eq!(server_stats.data_up, total_up, "server uplink == sum of worker uplinks");
        assert_eq!(server_stats.data_down, total_down);
        assert_eq!(server_stats.frames_up, 10);
        let h = handler.lock().unwrap();
        assert_eq!(h.applied, vec![5, 5]);
        assert_eq!(h.resyncs, 0);
    }

    #[test]
    fn worker_retries_until_server_appears() {
        // Bind the address, but only start serving after a delay longer
        // than the first backoff — the worker's retry loop must cover it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handler = ToyHandler::shared(1);
        let h = Arc::clone(&handler);
        let join = thread::spawn(move || {
            thread::sleep(Duration::from_millis(150));
            let mut opts = ServerOpts::new(1, DIM, CRC);
            opts.read_timeout = Duration::from_millis(50);
            opts.deadline = Some(Duration::from_secs(30));
            serve_cluster(listener, h, opts)
        });
        let mut t = TcpWorkerTransport::new(worker_opts(&addr, 0));
        t.exchange(&up(1.0)).unwrap();
        t.shutdown().unwrap();
        join.join().unwrap().unwrap();
        assert_eq!(handler.lock().unwrap().applied, vec![1]);
    }

    #[test]
    fn handshake_rejects_config_drift() {
        let (addr, _handler, join) = spawn_server(1);
        // Wrong dim.
        let mut bad_dim = worker_opts(&addr, 0);
        bad_dim.dim = DIM + 1;
        let err = TcpWorkerTransport::new(bad_dim).exchange(&up(0.0)).unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "{err}");
        // Wrong θ0 checksum.
        let mut bad_crc = worker_opts(&addr, 0);
        bad_crc.theta0_crc = CRC ^ 1;
        let err = TcpWorkerTransport::new(bad_crc).exchange(&up(0.0)).unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "{err}");
        // Unknown worker id.
        let err = TcpWorkerTransport::new(worker_opts(&addr, 7)).exchange(&up(0.0)).unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "{err}");
        // Let the server finish: run the real worker to completion.
        let mut ok = TcpWorkerTransport::new(worker_opts(&addr, 0));
        ok.exchange(&up(0.0)).unwrap();
        ok.shutdown().unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn duplicate_update_resyncs_instead_of_double_apply() {
        let (addr, handler, join) = spawn_server(1);
        // Hand-rolled client so we can replay a sequence number.
        let mut conn = {
            let stream = TcpStream::connect(&addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            WireConn::new(stream)
        };
        conn.send_hello(MsgType::Hello, 0, &Hello { dim: DIM, applied: 0, theta0_crc: CRC })
            .unwrap();
        assert!(matches!(conn.read_event().unwrap(), Event::HelloAck { .. }));
        conn.send_update(0, 1, &up(1.0)).unwrap();
        assert!(matches!(conn.read_event().unwrap(), Event::Reply { .. }));
        // Replay seq 1 — as if our first reply had been lost and we
        // retransmitted. Must NOT apply twice; must answer with a resync.
        conn.send_update(0, 1, &up(1.0)).unwrap();
        match conn.read_event().unwrap() {
            Event::Reply { msg: DownMsg::DenseModel(m), .. } => assert_eq!(m.len(), 3),
            other => panic!("expected dense resync reply, got {other:?}"),
        }
        {
            let h = handler.lock().unwrap();
            assert_eq!(h.applied, vec![1], "duplicate must not re-apply");
            assert_eq!(h.resyncs, 1);
        }
        // A sequence gap is a hard protocol error.
        conn.send_update(0, 5, &up(1.0)).unwrap();
        match conn.read_event().unwrap() {
            Event::Error { reason } => assert!(reason.contains("gap"), "{reason}"),
            other => panic!("expected error frame, got {other:?}"),
        }
        // That connection is dead; finish the run on a fresh one.
        let mut t = TcpWorkerTransport::new(worker_opts(&addr, 0));
        // Server already applied seq 1; the fresh transport learns that
        // from the handshake and recovers with a resync (dense model).
        match t.exchange(&up(9.0)).unwrap() {
            DownMsg::DenseModel(m) => assert_eq!(m.len(), 3),
            other => panic!("expected resync dense model, got {other:?}"),
        }
        t.shutdown().unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn reconnect_recovers_when_reply_lost() {
        let (addr, handler, join) = spawn_server(1);
        // First connection: apply seq 1, then vanish without reading the
        // state into a transport — simulating a crash after the server
        // applied but before the worker processed the reply.
        {
            let stream = TcpStream::connect(&addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut conn = WireConn::new(stream);
            conn.send_hello(MsgType::Hello, 0, &Hello { dim: DIM, applied: 0, theta0_crc: CRC })
                .unwrap();
            assert!(matches!(conn.read_event().unwrap(), Event::HelloAck { .. }));
            conn.send_update(0, 1, &up(1.0)).unwrap();
            assert!(matches!(conn.read_event().unwrap(), Event::Reply { .. }));
            // Connection dropped here.
        }
        // Fresh transport believes nothing was ever sent. Its handshake
        // learns the server applied 1 already; sending seq 1 again would
        // be a duplicate, which the server converts to a resync — either
        // way the model state converges and nothing is applied twice.
        let mut t = TcpWorkerTransport::new(worker_opts(&addr, 0));
        match t.exchange(&up(2.0)).unwrap() {
            DownMsg::DenseModel(m) => assert_eq!(m.len(), 3),
            other => panic!("expected dense recovery, got {other:?}"),
        }
        // Next update proceeds normally as seq 2.
        match t.exchange(&up(3.0)).unwrap() {
            DownMsg::SparseDiff(s) => assert_eq!(s.chunks[0].val, vec![2.0 + 3.0]),
            other => panic!("expected sparse reply, got {other:?}"),
        }
        t.shutdown().unwrap();
        join.join().unwrap().unwrap();
        let h = handler.lock().unwrap();
        assert_eq!(h.applied, vec![2]);
    }

    #[test]
    fn span_server_handshake_accepts_matching_coordinates_only() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handler = ToyHandler::shared(1);
        let h = Arc::clone(&handler);
        let layout = vec![9u8, 8, 7, 6];
        let mut opts = ServerOpts::new(1, DIM, CRC);
        opts.read_timeout = Duration::from_millis(50);
        opts.deadline = Some(Duration::from_secs(30));
        opts.span = Some(SpanOpts {
            index: 1,
            num_spans: 3,
            layout_hash: 0xBEEF,
            layout_bytes: layout.clone(),
        });
        let join = thread::spawn(move || serve_cluster(listener, h, opts));

        let cluster = |hash: u32, expect: Vec<u8>| ClusterClientOpts {
            span_index: 1,
            num_spans: 3,
            layout_hash: hash,
            expected_layout: expect,
        };

        // A plain hello is refused by a span server.
        let err = TcpWorkerTransport::new(worker_opts(&addr, 0)).exchange(&up(0.0)).unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "{err}");
        // A diverged partition layout hash is refused.
        let mut bad = worker_opts(&addr, 0);
        bad.cluster = Some(cluster(0xDEAD, layout.clone()));
        let err = TcpWorkerTransport::new(bad).exchange(&up(0.0)).unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "{err}");
        // Matching coordinates: the full exchange works and the ack's
        // layout bytes equal the client's expectation byte-for-byte.
        let mut good = worker_opts(&addr, 0);
        good.cluster = Some(cluster(0xBEEF, layout));
        let mut t = TcpWorkerTransport::new(good);
        t.exchange(&up(1.0)).unwrap();
        t.shutdown().unwrap();
        join.join().unwrap().unwrap();
        assert_eq!(handler.lock().unwrap().applied, vec![1]);
    }

    #[test]
    fn plain_server_refuses_cluster_hello() {
        let (addr, _handler, join) = spawn_server(1);
        let mut bad = worker_opts(&addr, 0);
        bad.cluster = Some(ClusterClientOpts {
            span_index: 0,
            num_spans: 2,
            layout_hash: 1,
            expected_layout: Vec::new(),
        });
        let err = TcpWorkerTransport::new(bad).exchange(&up(0.0)).unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "{err}");
        // Finish the run so the server exits.
        let mut ok = TcpWorkerTransport::new(worker_opts(&addr, 0));
        ok.exchange(&up(0.0)).unwrap();
        ok.shutdown().unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn garbage_on_the_wire_does_not_kill_the_server() {
        let (addr, _handler, join) = spawn_server(1);
        // Raw garbage instead of a handshake.
        {
            use std::io::Write;
            let mut stream = TcpStream::connect(&addr).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        }
        // A frame with a forged huge length.
        {
            use std::io::Write;
            let mut stream = TcpStream::connect(&addr).unwrap();
            let mut frame = Vec::new();
            write_frame(&mut frame, MsgType::Hello, 0, 0, &[0u8; HEADER_LEN]).unwrap();
            frame[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&frame).unwrap();
        }
        // The server shrugs both off and still serves a real worker.
        let mut t = TcpWorkerTransport::new(worker_opts(&addr, 0));
        t.exchange(&up(1.0)).unwrap();
        t.shutdown().unwrap();
        join.join().unwrap().unwrap();
    }
}
