//! Payload codec: byte encodings for every [`UpMsg`]/[`DownMsg`] variant
//! plus the handshake payload.
//!
//! All integers and floats are little-endian, matching the simulated COO
//! encodings in `dgs_sparsify` (`SparseUpdate::encode` / `TernaryUpdate::
//! encode`). The invariant this module exists to uphold:
//!
//! > `encode_up_frame(..).len() == up.wire_bytes()` and
//! > `encode_down_frame(..).len() == down.wire_bytes()` for every message.
//!
//! so the byte counters of a real socket run are equal — not approximately,
//! *equal* — to what the discrete-event simulator charges for the same
//! message sequence.
//!
//! Body layouts (the 20-byte frame header from [`crate::frame`] precedes
//! each):
//!
//! ```text
//! UpDense    := [train_loss: f64] [val: f32]*n            (n from frame len)
//! UpSparse   := [train_loss: f64] SparseBody
//! UpTernary  := [train_loss: f64] TernaryBody
//! DownDense  := [val: f32]*n
//! DownSparse := SparseBody
//! SparseBody := [num_chunks: u32] ([nnz: u32] [idx: u32]*nnz [val: f32]*nnz)*
//! TernaryBody:= [num_chunks: u32] ([scale: f32] [nnz: u32] [idx: u32]*nnz
//!                                  [signs: u8]*ceil(nnz/8))*
//! Hello/Ack  := [dim: u64] [applied: u64] [theta0_crc: u32]
//! ```
//!
//! Decoding is defensive: every length is checked against the remaining
//! buffer before use, allocations are bounded by what was actually
//! received, and malformed input returns [`NetError`] — never a panic or
//! an over-read.

use crate::error::{NetError, NetResult};
use crate::frame::{encode_frame, MsgType, HEADER_LEN};
use crate::msg::{
    DownMsg, SparseUpdate, SparseVec, TernaryUpdate, TernaryVec, UpMsg, UpPayload, UP_LOSS_BYTES,
};
use std::sync::Arc;

/// Handshake payload, sent as [`MsgType::Hello`] by the worker and echoed
/// (with the server's own view) as [`MsgType::HelloAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Model dimensionality — both sides must agree exactly.
    pub dim: u64,
    /// Number of updates from this worker the sender has seen applied
    /// (worker: replies applied locally; server: updates folded into `M`).
    /// The reconnect protocol compares the two to decide between
    /// retransmission and resynchronisation.
    pub applied: u64,
    /// CRC-32 of the initial model `θ_0` (little-endian f32 bytes): both
    /// processes must have built the same starting point.
    pub theta0_crc: u32,
}

/// Encoded size of a [`Hello`] payload.
pub const HELLO_BYTES: usize = 8 + 8 + 4;

impl Hello {
    /// Encodes the handshake payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HELLO_BYTES);
        buf.extend_from_slice(&self.dim.to_le_bytes());
        buf.extend_from_slice(&self.applied.to_le_bytes());
        buf.extend_from_slice(&self.theta0_crc.to_le_bytes());
        buf
    }

    /// Decodes a handshake payload.
    pub fn decode(payload: &[u8]) -> NetResult<Hello> {
        let mut r = Reader::new(payload);
        let hello = Hello { dim: r.u64()?, applied: r.u64()?, theta0_crc: r.u32()? };
        r.finish()?;
        Ok(hello)
    }
}

/// Cluster handshake payload, sent as [`MsgType::ClusterHello`] by a
/// cluster-aware worker (or edge aggregator) and echoed — with the
/// server's own view plus the full encoded partition map appended — as
/// [`MsgType::ClusterHelloAck`]. Compared to the plain [`Hello`], `dim`
/// and the CRC cover only this server's span of θ, and the extra fields
/// pin *which* span of *which* partition layout both sides think they
/// are talking about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterHello {
    /// This server's span index `K` in `0..num_spans`.
    pub span_index: u32,
    /// Total span count `N` of the cluster.
    pub num_spans: u32,
    /// FNV-1a hash of the encoded partition map
    /// (`ClusterLayout::layout_hash`); both sides must have derived the
    /// same span boundaries from the same model.
    pub layout_hash: u32,
    /// Length of this span (not the full model).
    pub dim: u64,
    /// Updates applied, same reconnect semantics as [`Hello::applied`] —
    /// but counted per span, which is what keeps resync-after-reconnect
    /// local to one span server.
    pub applied: u64,
    /// CRC-32 of this span's slice of `θ_0` (little-endian f32 bytes).
    pub span_crc: u32,
}

/// Encoded size of a [`ClusterHello`] payload, excluding the layout
/// suffix an ack appends.
pub const CLUSTER_HELLO_BYTES: usize = 4 + 4 + 4 + 8 + 8 + 4;

impl ClusterHello {
    /// Encodes the cluster handshake payload. `layout` is empty on the
    /// worker→server hello and the full encoded `ClusterLayout` on the
    /// server→worker ack.
    pub fn encode(&self, layout: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(CLUSTER_HELLO_BYTES + layout.len());
        buf.extend_from_slice(&self.span_index.to_le_bytes());
        buf.extend_from_slice(&self.num_spans.to_le_bytes());
        buf.extend_from_slice(&self.layout_hash.to_le_bytes());
        buf.extend_from_slice(&self.dim.to_le_bytes());
        buf.extend_from_slice(&self.applied.to_le_bytes());
        buf.extend_from_slice(&self.span_crc.to_le_bytes());
        buf.extend_from_slice(layout);
        buf
    }

    /// Decodes a cluster handshake payload, returning the fixed fields
    /// and whatever layout bytes follow (empty on a worker hello).
    pub fn decode(payload: &[u8]) -> NetResult<(ClusterHello, Vec<u8>)> {
        let mut r = Reader::new(payload);
        let hello = ClusterHello {
            span_index: r.u32()?,
            num_spans: r.u32()?,
            layout_hash: r.u32()?,
            dim: r.u64()?,
            applied: r.u64()?,
            span_crc: r.u32()?,
        };
        let layout = r.bytes(r.remaining())?.to_vec();
        r.finish()?;
        Ok((hello, layout))
    }
}

/// The frame type an uplink payload travels as.
pub fn up_msg_type(payload: &UpPayload) -> MsgType {
    match payload {
        UpPayload::Dense(_) => MsgType::UpDense,
        UpPayload::Sparse(_) => MsgType::UpSparse,
        UpPayload::TernarySparse(_) => MsgType::UpTernary,
    }
}

/// The frame type a downlink message travels as.
pub fn down_msg_type(down: &DownMsg) -> MsgType {
    match down {
        DownMsg::DenseModel(_) => MsgType::DownDense,
        DownMsg::SparseDiff(_) => MsgType::DownSparse,
    }
}

/// Encodes an uplink body (loss prefix + payload). Errors with
/// [`NetError::TooLarge`] if a chunk count or nnz does not fit its u32
/// wire field — truncating would alias another (valid-looking) message.
pub fn encode_up_payload(up: &UpMsg) -> NetResult<Vec<u8>> {
    let mut buf = Vec::with_capacity(up.wire_bytes() - HEADER_LEN);
    buf.extend_from_slice(&up.train_loss.to_le_bytes());
    match &up.payload {
        UpPayload::Dense(v) => put_f32s(&mut buf, v),
        UpPayload::Sparse(s) => put_sparse(&mut buf, s)?,
        UpPayload::TernarySparse(t) => put_ternary(&mut buf, t)?,
    }
    Ok(buf)
}

/// Encodes a downlink body; same [`NetError::TooLarge`] contract.
pub fn encode_down_payload(down: &DownMsg) -> NetResult<Vec<u8>> {
    let mut buf = Vec::with_capacity(down.wire_bytes() - HEADER_LEN);
    match down {
        DownMsg::DenseModel(v) => put_f32s(&mut buf, v),
        DownMsg::SparseDiff(s) => put_sparse(&mut buf, s)?,
    }
    Ok(buf)
}

/// Encodes a complete uplink frame. Its length equals `up.wire_bytes()` —
/// the codec-level guarantee that keeps real and simulated traffic
/// accounting identical (unit-tested below for every variant).
pub fn encode_up_frame(worker: u16, seq: u32, up: &UpMsg) -> NetResult<Vec<u8>> {
    let frame = encode_frame(up_msg_type(&up.payload), worker, seq, &encode_up_payload(up)?)?;
    debug_assert_eq!(frame.len(), up.wire_bytes());
    Ok(frame)
}

/// Encodes a complete downlink frame; length equals `down.wire_bytes()`.
pub fn encode_down_frame(worker: u16, seq: u32, down: &DownMsg) -> NetResult<Vec<u8>> {
    let frame = encode_frame(down_msg_type(down), worker, seq, &encode_down_payload(down)?)?;
    debug_assert_eq!(frame.len(), down.wire_bytes());
    Ok(frame)
}

/// Decodes an uplink body for the given frame type.
pub fn decode_up(msg_type: MsgType, payload: &[u8]) -> NetResult<UpMsg> {
    let mut r = Reader::new(payload);
    let train_loss = r.f64()?;
    let payload = match msg_type {
        MsgType::UpDense => UpPayload::Dense(r.take_f32s()?),
        MsgType::UpSparse => UpPayload::Sparse(take_sparse(&mut r)?),
        MsgType::UpTernary => UpPayload::TernarySparse(take_ternary(&mut r)?),
        other => return Err(NetError::Protocol(format!("{other:?} is not an uplink data frame"))),
    };
    r.finish()?;
    Ok(UpMsg { payload, train_loss })
}

/// Decodes a downlink body for the given frame type.
pub fn decode_down(msg_type: MsgType, payload: &[u8]) -> NetResult<DownMsg> {
    let mut r = Reader::new(payload);
    let down = match msg_type {
        MsgType::DownDense => DownMsg::DenseModel(Arc::new(r.take_f32s()?)),
        MsgType::DownSparse => DownMsg::SparseDiff(take_sparse(&mut r)?),
        other => return Err(NetError::Protocol(format!("{other:?} is not a downlink data frame"))),
    };
    r.finish()?;
    Ok(down)
}

/// Loss-prefix size re-exported for size arithmetic at call sites.
pub const LOSS_BYTES: usize = UP_LOSS_BYTES;

// ---------------------------------------------------------------------------
// body primitives

/// Checked count → u32 wire field; refuses rather than truncates.
fn wire_count(what: &'static str, n: usize) -> NetResult<u32> {
    u32::try_from(n).map_err(|_| NetError::TooLarge { what, len: n })
}

/// Checked u32 wire field → usize. Infallible on 64-bit hosts, checked
/// anyway so a 16-bit target could never over-allocate from a count.
fn wire_len(n: u32) -> NetResult<usize> {
    usize::try_from(n).map_err(|_| NetError::Malformed("count exceeds address space"))
}

fn put_f32s(buf: &mut Vec<u8>, vals: &[f32]) {
    buf.reserve(4 * vals.len());
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_sparse(buf: &mut Vec<u8>, s: &SparseUpdate) -> NetResult<()> {
    buf.extend_from_slice(&wire_count("sparse chunk count", s.chunks.len())?.to_le_bytes());
    for chunk in &s.chunks {
        buf.extend_from_slice(&wire_count("sparse nnz", chunk.idx.len())?.to_le_bytes());
        for &i in &chunk.idx {
            buf.extend_from_slice(&i.to_le_bytes());
        }
        for &v in &chunk.val {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(())
}

fn put_ternary(buf: &mut Vec<u8>, t: &TernaryUpdate) -> NetResult<()> {
    buf.extend_from_slice(&wire_count("ternary chunk count", t.chunks.len())?.to_le_bytes());
    for chunk in &t.chunks {
        buf.extend_from_slice(&chunk.scale.to_le_bytes());
        buf.extend_from_slice(&wire_count("ternary nnz", chunk.idx.len())?.to_le_bytes());
        for &i in &chunk.idx {
            buf.extend_from_slice(&i.to_le_bytes());
        }
        buf.extend_from_slice(&chunk.signs);
    }
    Ok(())
}

fn take_sparse(r: &mut Reader<'_>) -> NetResult<SparseUpdate> {
    let num_chunks = wire_len(r.u32()?)?;
    // Each chunk costs at least 4 bytes; a larger count is a lie.
    if num_chunks > r.remaining() / 4 {
        return Err(NetError::Malformed("sparse chunk count exceeds payload"));
    }
    let mut chunks = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        let nnz = wire_len(r.u32()?)?;
        if nnz > r.remaining() / 8 {
            return Err(NetError::Malformed("sparse nnz exceeds payload"));
        }
        let mut idx = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            idx.push(r.u32()?);
        }
        let mut val = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            val.push(r.f32()?);
        }
        chunks.push(SparseVec { idx, val });
    }
    Ok(SparseUpdate { chunks })
}

fn take_ternary(r: &mut Reader<'_>) -> NetResult<TernaryUpdate> {
    let num_chunks = wire_len(r.u32()?)?;
    // Each ternary chunk costs at least 8 bytes (scale + count).
    if num_chunks > r.remaining() / 8 {
        return Err(NetError::Malformed("ternary chunk count exceeds payload"));
    }
    let mut chunks = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        let scale = r.f32()?;
        let nnz = wire_len(r.u32()?)?;
        let sign_bytes = nnz.div_ceil(8);
        if nnz > r.remaining() / 4 || sign_bytes > r.remaining().saturating_sub(4 * nnz) {
            return Err(NetError::Malformed("ternary nnz exceeds payload"));
        }
        let mut idx = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            idx.push(r.u32()?);
        }
        let signs = r.bytes(sign_bytes)?.to_vec();
        chunks.push(TernaryVec { scale, idx, signs });
    }
    Ok(TernaryUpdate { chunks })
}

/// Bounds-checked little-endian reader over a received payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> NetResult<&'a [u8]> {
        // `n` comes from wire-declared counts: bounds-checked slicing
        // (overflow included) so no input can panic the decoder.
        let out = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end))
            .ok_or(NetError::Malformed("payload truncated"))?;
        self.pos += n;
        Ok(out)
    }

    /// Fixed-size read. `bytes(N)` already guarantees the slice length,
    /// but the conversion stays checked so no panic path exists here.
    fn arr<const N: usize>(&mut self) -> NetResult<[u8; N]> {
        self.bytes(N)?.try_into().map_err(|_| NetError::Malformed("internal length mismatch"))
    }

    fn u32(&mut self) -> NetResult<u32> {
        Ok(u32::from_le_bytes(self.arr()?))
    }

    fn u64(&mut self) -> NetResult<u64> {
        Ok(u64::from_le_bytes(self.arr()?))
    }

    fn f32(&mut self) -> NetResult<f32> {
        Ok(f32::from_le_bytes(self.arr()?))
    }

    fn f64(&mut self) -> NetResult<f64> {
        Ok(f64::from_le_bytes(self.arr()?))
    }

    /// Consumes the rest of the payload as f32s (the pair of `put_f32s`);
    /// errors unless the remainder is f32-aligned.
    fn take_f32s(&mut self) -> NetResult<Vec<f32>> {
        if self.remaining() % 4 != 0 {
            return Err(NetError::Malformed("dense payload not f32-aligned"));
        }
        let mut out = Vec::with_capacity(self.remaining() / 4);
        while self.remaining() > 0 {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    /// Asserts full consumption — trailing garbage is malformed input.
    fn finish(self) -> NetResult<()> {
        if self.pos != self.buf.len() {
            return Err(NetError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_fixture() -> SparseUpdate {
        SparseUpdate {
            chunks: vec![
                SparseVec { idx: vec![1, 5, 9], val: vec![0.5, -2.0, 3.25] },
                SparseVec { idx: vec![], val: vec![] },
                SparseVec { idx: vec![0], val: vec![f32::MIN_POSITIVE] },
            ],
        }
    }

    fn ternary_fixture() -> TernaryUpdate {
        TernaryUpdate {
            chunks: vec![
                TernaryVec {
                    scale: 1.5,
                    idx: vec![2, 4, 6, 8, 10, 12, 14, 16, 18],
                    signs: vec![0b1010_1010, 0b1],
                },
                TernaryVec { scale: 0.0, idx: vec![], signs: vec![] },
            ],
        }
    }

    fn roundtrip_up(up: &UpMsg) {
        let frame = encode_up_frame(3, 7, up).unwrap();
        assert_eq!(frame.len(), up.wire_bytes(), "frame length must equal wire accounting");
        let (h, body) =
            crate::frame::read_frame(&mut std::io::Cursor::new(&frame), frame.len()).unwrap();
        assert_eq!(h.worker, 3);
        assert_eq!(h.seq, 7);
        let back = decode_up(h.msg_type, &body).unwrap();
        assert_eq!(back.train_loss.to_bits(), up.train_loss.to_bits());
        match (&back.payload, &up.payload) {
            (UpPayload::Dense(a), UpPayload::Dense(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            (UpPayload::Sparse(a), UpPayload::Sparse(b)) => assert_eq!(a, b),
            (UpPayload::TernarySparse(a), UpPayload::TernarySparse(b)) => assert_eq!(a, b),
            _ => panic!("variant changed in roundtrip"),
        }
    }

    #[test]
    fn dense_up_roundtrips_bit_exactly() {
        let v = vec![0.0f32, -0.0, 1.5, f32::NAN, f32::INFINITY, -123.456, f32::MIN_POSITIVE];
        roundtrip_up(&UpMsg { payload: UpPayload::Dense(v), train_loss: 0.75 });
    }

    #[test]
    fn sparse_up_roundtrips() {
        roundtrip_up(&UpMsg { payload: UpPayload::Sparse(sparse_fixture()), train_loss: 1e-9 });
    }

    #[test]
    fn ternary_up_roundtrips() {
        roundtrip_up(&UpMsg {
            payload: UpPayload::TernarySparse(ternary_fixture()),
            train_loss: f64::MAX,
        });
    }

    #[test]
    fn down_variants_roundtrip_and_match_wire_bytes() {
        let dense = DownMsg::DenseModel(Arc::new(vec![1.0f32, -2.5, 0.0, 42.0]));
        let sparse = DownMsg::SparseDiff(sparse_fixture());
        for down in [dense, sparse] {
            let frame = encode_down_frame(1, 2, &down).unwrap();
            assert_eq!(frame.len(), down.wire_bytes());
            let (h, body) =
                crate::frame::read_frame(&mut std::io::Cursor::new(&frame), frame.len()).unwrap();
            let back = decode_down(h.msg_type, &body).unwrap();
            match (&back, &down) {
                (DownMsg::DenseModel(a), DownMsg::DenseModel(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b.iter()) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (DownMsg::SparseDiff(a), DownMsg::SparseDiff(b)) => assert_eq!(a, b),
                _ => panic!("variant changed"),
            }
        }
    }

    #[test]
    fn empty_payloads_roundtrip() {
        roundtrip_up(&UpMsg { payload: UpPayload::Dense(vec![]), train_loss: 0.0 });
        roundtrip_up(&UpMsg {
            payload: UpPayload::Sparse(SparseUpdate { chunks: vec![] }),
            train_loss: 0.0,
        });
        roundtrip_up(&UpMsg {
            payload: UpPayload::TernarySparse(TernaryUpdate { chunks: vec![] }),
            train_loss: 0.0,
        });
    }

    #[test]
    fn hello_roundtrip_and_size() {
        let hello = Hello { dim: 123_456_789_012, applied: 42, theta0_crc: 0xDEAD_BEEF };
        let enc = hello.encode();
        assert_eq!(enc.len(), HELLO_BYTES);
        assert_eq!(Hello::decode(&enc).unwrap(), hello);
        assert!(Hello::decode(&enc[..HELLO_BYTES - 1]).is_err());
        let mut long = enc.clone();
        long.push(0);
        assert!(Hello::decode(&long).is_err());
    }

    #[test]
    fn cluster_hello_roundtrip_with_and_without_layout() {
        let hello = ClusterHello {
            span_index: 2,
            num_spans: 3,
            layout_hash: 0xF00D_CAFE,
            dim: 12_345,
            applied: 99,
            span_crc: 0xDEAD_BEEF,
        };
        let bare = hello.encode(&[]);
        assert_eq!(bare.len(), CLUSTER_HELLO_BYTES);
        assert_eq!(ClusterHello::decode(&bare).unwrap(), (hello, Vec::new()));

        let layout = vec![1u8, 2, 3, 4, 5];
        let with_layout = hello.encode(&layout);
        assert_eq!(with_layout.len(), CLUSTER_HELLO_BYTES + layout.len());
        assert_eq!(ClusterHello::decode(&with_layout).unwrap(), (hello, layout));

        assert!(ClusterHello::decode(&bare[..CLUSTER_HELLO_BYTES - 1]).is_err());
    }

    #[test]
    fn golden_sparse_body_layout() {
        // Pin the byte-for-byte body so the layout can never silently
        // change: one chunk, nnz=2, idx [3, 7], val [1.0, -2.0].
        let s = SparseUpdate { chunks: vec![SparseVec { idx: vec![3, 7], val: vec![1.0, -2.0] }] };
        let up = UpMsg { payload: UpPayload::Sparse(s), train_loss: 2.0 };
        let body = encode_up_payload(&up).unwrap();
        let expect: Vec<u8> = [
            2.0f64.to_le_bytes().as_slice(), // train loss
            &1u32.to_le_bytes(),             // num_chunks
            &2u32.to_le_bytes(),             // nnz
            &3u32.to_le_bytes(),             // idx[0]
            &7u32.to_le_bytes(),             // idx[1]
            &1.0f32.to_le_bytes(),           // val[0]
            &(-2.0f32).to_le_bytes(),        // val[1]
        ]
        .concat();
        assert_eq!(body, expect);
    }

    #[test]
    fn golden_ternary_body_layout() {
        let t = TernaryUpdate {
            chunks: vec![TernaryVec { scale: 0.5, idx: vec![1, 9], signs: vec![0b10] }],
        };
        let down_body = {
            let up = UpMsg { payload: UpPayload::TernarySparse(t), train_loss: 0.0 };
            encode_up_payload(&up).unwrap()
        };
        let expect: Vec<u8> = [
            0.0f64.to_le_bytes().as_slice(), // loss
            &1u32.to_le_bytes(),             // num_chunks
            &0.5f32.to_le_bytes(),           // scale
            &2u32.to_le_bytes(),             // nnz
            &1u32.to_le_bytes(),             // idx[0]
            &9u32.to_le_bytes(),             // idx[1]
            &[0b10u8],                       // signs
        ]
        .concat();
        assert_eq!(down_body, expect);
    }

    #[test]
    fn malformed_bodies_error_not_panic() {
        // Truncations at every length of a valid sparse uplink body.
        let up = UpMsg { payload: UpPayload::Sparse(sparse_fixture()), train_loss: 1.0 };
        let body = encode_up_payload(&up).unwrap();
        for cut in 0..body.len() {
            assert!(decode_up(MsgType::UpSparse, &body[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = body.clone();
        long.push(7);
        assert!(decode_up(MsgType::UpSparse, &long).is_err());
        // A lying chunk count cannot cause a huge allocation or over-read.
        let mut forged = 1.0f64.to_le_bytes().to_vec();
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_up(MsgType::UpSparse, &forged).is_err());
        assert!(decode_up(MsgType::UpTernary, &forged).is_err());
        // Dense body not f32-aligned.
        let mut misaligned = 0.0f64.to_le_bytes().to_vec();
        misaligned.extend_from_slice(&[1, 2, 3]);
        assert!(decode_up(MsgType::UpDense, &misaligned).is_err());
        // A lying nnz inside an otherwise fine chunk list.
        let mut forged_nnz = 0.0f64.to_le_bytes().to_vec();
        forged_nnz.extend_from_slice(&1u32.to_le_bytes());
        forged_nnz.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(decode_up(MsgType::UpSparse, &forged_nnz).is_err());
    }

    #[test]
    fn control_types_rejected_as_data() {
        assert!(decode_up(MsgType::Hello, &0.0f64.to_le_bytes()).is_err());
        assert!(decode_down(MsgType::Heartbeat, &[]).is_err());
        assert!(decode_down(MsgType::UpSparse, &[]).is_err());
    }
}
