//! Readiness polling over raw file descriptors — the single seam where
//! `dgs-net` talks to the OS below `std`'s blocking socket API.
//!
//! The registry is offline in the build container, so there is no `mio`
//! and no `libc` crate here: the handful of syscalls the event loop needs
//! are declared directly as a minimal FFI shim. Two interchangeable
//! backends sit behind [`Poller`]:
//!
//! * **`poll(2)`** (default) — portable across unix, O(n) per wakeup. The
//!   registration table is a dense `pollfd` array plus a token→slot map,
//!   so register/reregister/deregister are O(1).
//! * **`epoll(7)`** (`net-epoll` feature, linux) — O(ready) per wakeup,
//!   the right backend for the tens-of-thousands-connection budget.
//!
//! Both are level-triggered: a socket with unread bytes (or writable
//! space) keeps reporting ready, so the event loop can stop reading
//! mid-buffer without losing a wakeup. Hangups and errors are folded into
//! *readability* — the owner's next `read` observes the EOF/error and
//! tears the connection down through the normal path.
//!
//! This module is the crate's entire `unsafe` budget (see `dgs-audit`'s
//! `unsafe-budget` scope): every block carries a `// SAFETY:` note, and
//! nothing above this file touches a raw pointer or syscall.

// The one sanctioned hole in the workspace-wide `unsafe_code = "deny"`
// wall (Cargo.toml): raw syscall FFI has no safe alternative on std
// alone. Policed by dgs-audit's unsafe-budget rule instead.
#![allow(unsafe_code)]

use std::io;
use std::time::Duration;

/// Raw file descriptor as the poller sees it.
#[cfg(unix)]
pub type Fd = std::os::unix::io::RawFd;
/// Raw file descriptor as the poller sees it (non-unix placeholder).
#[cfg(not(unix))]
pub type Fd = i32;

/// Caller-chosen identifier attached to a registration; delivered back in
/// every [`PollEvent`]. The event loop uses dense slab indices — the
/// `poll(2)` backend's token→slot map is a `Vec`, so sparse huge tokens
/// would waste memory.
pub type Token = usize;

/// Which readiness a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes (or a hangup/error) to read.
    pub readable: bool,
    /// Wake when the fd can accept more written bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read + write interest — a connection with a non-empty write queue.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The registration's token.
    pub token: Token,
    /// Readable now (includes hangup/error — read to observe it).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
}

/// Readiness selector over registered file descriptors.
pub struct Poller {
    imp: imp::Backend,
}

impl Poller {
    /// Opens a poller with the compiled-in backend.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { imp: imp::Backend::new()? })
    }

    /// Name of the active backend (`"poll"` or `"epoll"`), for logs and
    /// bench provenance.
    pub fn backend_name(&self) -> &'static str {
        imp::NAME
    }

    /// Adds `fd` with `token` and `interest`. One registration per fd.
    pub fn register(&mut self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
        self.imp.register(fd, token, interest)
    }

    /// Replaces the interest of an existing registration.
    pub fn reregister(&mut self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
        self.imp.reregister(fd, token, interest)
    }

    /// Removes a registration. The fd may already be closed — errors from
    /// the OS about unknown fds are swallowed, since deregistration is
    /// part of teardown paths that must not fail.
    pub fn deregister(&mut self, fd: Fd, token: Token) {
        self.imp.deregister(fd, token);
    }

    /// Blocks until at least one registration is ready or `timeout`
    /// expires, appending reports to `events` (cleared first). A signal
    /// interruption returns an empty set rather than an error.
    pub fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.imp.wait(events, timeout_ms(timeout))
    }
}

/// Clamps a timeout to the `int` milliseconds the syscalls take
/// (`None` → infinite → `-1`).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend — default, portable unix

#[cfg(all(unix, not(feature = "net-epoll")))]
mod imp {
    use super::{Fd, Interest, PollEvent, Token};
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    pub const NAME: &str = "poll";

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// Mirror of `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    fn events_for(interest: Interest) -> i16 {
        let mut ev = 0i16;
        if interest.readable {
            ev |= POLLIN;
        }
        if interest.writable {
            ev |= POLLOUT;
        }
        ev
    }

    /// Dense `pollfd` array + parallel token array + token→slot map.
    pub struct Backend {
        fds: Vec<PollFd>,
        tokens: Vec<Token>,
        /// `slot_of[token] == Some(i)` ⇔ `fds[i]`/`tokens[i]` is `token`.
        slot_of: Vec<Option<usize>>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend { fds: Vec::new(), tokens: Vec::new(), slot_of: Vec::new() })
        }

        fn slot(&mut self, token: Token) -> &mut Option<usize> {
            if self.slot_of.len() <= token {
                self.slot_of.resize(token + 1, None);
            }
            &mut self.slot_of[token]
        }

        pub fn register(&mut self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            if self.slot(token).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "token already registered",
                ));
            }
            let i = self.fds.len();
            self.fds.push(PollFd { fd, events: events_for(interest), revents: 0 });
            self.tokens.push(token);
            *self.slot(token) = Some(i);
            Ok(())
        }

        pub fn reregister(&mut self, _fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            match self.slot_of.get(token).copied().flatten() {
                Some(i) => {
                    self.fds[i].events = events_for(interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "token not registered")),
            }
        }

        pub fn deregister(&mut self, _fd: Fd, token: Token) {
            let Some(i) = self.slot_of.get(token).copied().flatten() else { return };
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            self.slot_of[token] = None;
            // swap_remove moved the former tail (if any) into slot i; its
            // token→slot entry must follow it or it goes stale.
            if let Some(&moved) = self.tokens.get(i) {
                self.slot_of[moved] = Some(i);
            }
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            for f in &mut self.fds {
                f.revents = 0;
            }
            let nfds = self.fds.len() as c_ulong;
            // SAFETY: `fds` points at `self.fds.len()` initialised,
            // properly-laid-out (`repr(C)`) pollfd entries owned by this
            // Vec; the kernel writes only `revents` within that span.
            let n = unsafe { poll(self.fds.as_mut_ptr(), nfds, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            if n == 0 {
                return Ok(());
            }
            for (f, &token) in self.fds.iter().zip(&self.tokens) {
                let r = f.revents;
                if r == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: r & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0,
                    writable: r & (POLLOUT | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend — linux, behind the net-epoll feature

#[cfg(all(unix, feature = "net-epoll"))]
mod imp {
    use super::{Fd, Interest, PollEvent, Token};
    use std::io;
    use std::os::raw::c_int;

    pub const NAME: &str = "epoll";

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Mirror of `struct epoll_event`; packed on x86-64, exactly as the
    /// kernel ABI defines it there.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
            -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn mask_for(interest: Interest) -> u32 {
        let mut ev = 0u32;
        if interest.readable {
            ev |= EPOLLIN;
        }
        if interest.writable {
            ev |= EPOLLOUT;
        }
        ev
    }

    pub struct Backend {
        epfd: c_int,
        /// Scratch buffer handed to `epoll_wait`.
        buf: Vec<EpollEvent>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            // SAFETY: plain syscall with no pointers; the returned fd is
            // owned by this Backend and closed in Drop.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Backend { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        fn ctl(&mut self, op: c_int, fd: Fd, mask: u32, token: Token) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask, data: token as u64 };
            // SAFETY: `ev` is a live, properly-laid-out epoll_event for
            // the duration of the call; the kernel only reads it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask_for(interest), token)
        }

        pub fn reregister(&mut self, fd: Fd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask_for(interest), token)
        }

        pub fn deregister(&mut self, fd: Fd, token: Token) {
            // Teardown must not fail: the fd may already be closed, in
            // which case the kernel dropped the registration itself.
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, token);
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            let cap = c_int::try_from(self.buf.len()).unwrap_or(c_int::MAX);
            // SAFETY: `buf` holds `cap` properly-laid-out epoll_event
            // slots owned by this Vec; the kernel writes at most `cap`.
            let n = unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), cap, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            let n = usize::try_from(n).unwrap_or(0).min(self.buf.len());
            for i in 0..n {
                // Copy out of the (possibly packed) struct before field use.
                let ev = self.buf[i];
                let mask = ev.events;
                let token = usize::try_from(ev.data).unwrap_or(usize::MAX);
                out.push(PollEvent {
                    token,
                    readable: mask & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: mask & (EPOLLOUT | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: `epfd` was returned by epoll_create1 and is closed
            // exactly once, here.
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// non-unix stub — keeps the crate compiling; the evented server reports
// the platform gap as an error instead of failing the build.

#[cfg(not(unix))]
mod imp {
    use super::{Fd, Interest, PollEvent, Token};
    use std::io;

    pub const NAME: &str = "unsupported";

    pub struct Backend;

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "evented io requires a unix poll(2)/epoll(7) backend",
            ))
        }

        pub fn register(&mut self, _fd: Fd, _t: Token, _i: Interest) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        pub fn reregister(&mut self, _fd: Fd, _t: Token, _i: Interest) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        pub fn deregister(&mut self, _fd: Fd, _t: Token) {}

        pub fn wait(&mut self, _out: &mut Vec<PollEvent>, _ms: i32) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    const TICK: Option<Duration> = Some(Duration::from_millis(500));

    /// A connected localhost socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn wait_for(
        poller: &mut Poller,
        events: &mut Vec<PollEvent>,
        pred: impl Fn(&PollEvent) -> bool,
    ) -> PollEvent {
        for _ in 0..20 {
            poller.wait(events, TICK).unwrap();
            if let Some(ev) = events.iter().find(|e| pred(e)) {
                return *ev;
            }
        }
        panic!("readiness never arrived");
    }

    #[test]
    fn accept_readiness_fires_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a short wait returns empty.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));
        let _client = TcpStream::connect(addr).unwrap();
        let ev = wait_for(&mut poller, &mut events, |e| e.token == 7 && e.readable);
        assert_eq!(ev.token, 7);
        listener.accept().unwrap();
    }

    #[test]
    fn read_and_write_interest_toggle() {
        let (mut a, b) = pair();
        let mut poller = Poller::new().unwrap();
        // A fresh socket is writable but not readable.
        poller.register(b.as_raw_fd(), 3, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        let ev = wait_for(&mut poller, &mut events, |e| e.token == 3 && e.writable);
        assert!(!ev.readable, "no bytes yet");
        // Narrow to read interest: now nothing is ready until bytes arrive.
        poller.reregister(b.as_raw_fd(), 3, Interest::READ).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "read-only interest with empty buffer: {events:?}");
        a.write_all(b"ping").unwrap();
        let ev = wait_for(&mut poller, &mut events, |e| e.token == 3 && e.readable);
        assert!(ev.readable);
        let mut buf = [0u8; 4];
        let mut b_read = &b;
        b_read.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn hangup_reports_readable() {
        let (a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        let ev = wait_for(&mut poller, &mut events, |e| e.token == 1);
        assert!(ev.readable, "hangup must surface as readability: {ev:?}");
    }

    #[test]
    fn deregister_stops_reports_and_tolerates_closed_fds() {
        let (mut a, b) = pair();
        let fd = b.as_raw_fd();
        let mut poller = Poller::new().unwrap();
        poller.register(fd, 0, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        wait_for(&mut poller, &mut events, |e| e.token == 0 && e.readable);
        poller.deregister(fd, 0);
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "deregistered fd still reported: {events:?}");
        // Double-deregister and deregister-after-close are teardown-path
        // no-ops, never errors.
        poller.deregister(fd, 0);
        drop(b);
        poller.deregister(fd, 0);
        // The poller survives for further registrations.
        let (_c, d) = pair();
        poller.register(d.as_raw_fd(), 2, Interest::BOTH).unwrap();
        wait_for(&mut poller, &mut events, |e| e.token == 2 && e.writable);
    }

    #[test]
    fn deregister_relinks_the_moved_tail_registration() {
        // Regression: the poll backend's deregister swap_removes slot i,
        // which moves the former *tail* registration into i — and
        // `swap_remove`'s return value is the removed element, not that
        // tail. The tail's token→slot entry must be re-pointed at i or
        // every later lookup for it is stale (out-of-bounds panics or
        // events delivered against the wrong connection).
        let (_a1, b1) = pair();
        let (_a2, b2) = pair();
        let (mut a3, b3) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b1.as_raw_fd(), 0, Interest::READ).unwrap();
        poller.register(b2.as_raw_fd(), 1, Interest::READ).unwrap();
        poller.register(b3.as_raw_fd(), 2, Interest::READ).unwrap();
        // Remove the head: the tail (token 2) moves into its slot.
        poller.deregister(b1.as_raw_fd(), 0);
        // The moved registration stays fully operational under its token…
        poller.reregister(b3.as_raw_fd(), 2, Interest::READ).unwrap();
        a3.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let ev = wait_for(&mut poller, &mut events, |e| e.readable);
        assert_eq!(ev.token, 2, "readiness delivered against the wrong token");
        // …and tears down cleanly (the stale-slot bug panicked here).
        poller.deregister(b3.as_raw_fd(), 2);
        poller.deregister(b2.as_raw_fd(), 1);
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "deregistered fds still reported: {events:?}");
    }

    #[test]
    fn register_rejects_duplicate_tokens() {
        let (_a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 5, Interest::READ).unwrap();
        // poll backend tracks tokens itself; epoll rejects the duplicate
        // fd at the kernel. Either way a second add must fail.
        assert!(poller.register(b.as_raw_fd(), 5, Interest::READ).is_err());
        assert!(poller.reregister(b.as_raw_fd(), 5, Interest::BOTH).is_ok());
        assert_eq!(
            poller.backend_name(),
            if cfg!(feature = "net-epoll") { "epoll" } else { "poll" }
        );
    }
}
