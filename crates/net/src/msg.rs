//! Message-type indirection.
//!
//! Every codec/transport module in this crate imports the protocol types
//! through `crate::msg` instead of naming `dgs_core`/`dgs_sparsify`
//! directly. That single seam is what lets the offline verification
//! harness (`crates/net/harness/`, see the repo's verify skill) compile
//! the real `crc.rs`/`frame.rs`/`codec.rs`/`transport.rs`/`tcp.rs`
//! sources standalone with `rustc --test` by substituting a dependency-free
//! shim for this module — the container's cargo cannot resolve the
//! registry, so the harness is the only way to *run* these tests locally.
//!
//! Keep this module to plain re-exports; logic belongs in the other files.

pub use dgs_core::cluster::{ClusterLayout, SpanInfo};
pub use dgs_core::protocol::{DownMsg, UpMsg, UpPayload, HEADER_BYTES, UP_LOSS_BYTES};
pub use dgs_sparsify::{
    merge_sparse_updates, try_merge_sparse_updates, Partition, ShardSpan, SparseUpdate, SparseVec,
    TernaryUpdate, TernaryVec,
};
