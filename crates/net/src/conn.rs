//! Per-connection server state machine, shared by both transports.
//!
//! [`protocol_step`] is the single source of truth for the server's
//! protocol semantics: handshake validation order, the duplicate→resync /
//! gap→error sequencing rules, heartbeat and shutdown handling. The
//! thread-per-connection server (`tcp::serve_conn`) and the readiness
//! event loop (`event_loop::serve_cluster_evented`) both drive it, so
//! "the evented backend replays bitwise against the threaded oracle"
//! holds by construction — the two differ only in *how* bytes move, never
//! in *which* frames are produced.
//!
//! [`Conn`] wraps one nonblocking stream for the event loop:
//!
//! ```text
//!            readable                      protocol_step
//! socket ──► FrameDecoder ──► Event ──► (replies, close?, done?)
//!   ▲   (partial reads ok)                    │ enqueue
//!   │        writable                         ▼
//!   └──────── writev ◄── bounded write queue (budget-checked)
//! ```
//!
//! The write queue is bounded: a worker that stops draining its downlink
//! trips [`NetError::Backpressure`] and is disconnected (its
//! reconnect/resync path recovers the stream) instead of growing the
//! queue without bound. Byte accounting happens at enqueue time with the
//! same [`WireStats::record`] call the blocking path uses, so clean runs
//! produce *identical* counters on both backends.

use crate::codec::{down_msg_type, encode_down_payload, ClusterHello, Hello};
use crate::error::{NetError, NetResult};
use crate::frame::{encode_frame, FrameDecoder, MsgType, HEADER_LEN};
use crate::msg::DownMsg;
use crate::tcp::ServerOpts;
use crate::transport::{decode_event, Event, Sequenced, SharedUpdateHandler, WireStats};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};

/// Where a server-side connection is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnPhase {
    /// Waiting for the worker's `Hello`.
    Handshake,
    /// Handshake accepted; serving updates for this worker id.
    Running {
        /// The worker id pinned at handshake time.
        worker: u16,
    },
}

/// One frame the server wants to send, described at the protocol level so
/// each backend can map it onto its own write path (blocking `WireConn`
/// sends vs the bounded queue below).
#[derive(Debug)]
pub(crate) enum Outgoing {
    /// Handshake acceptance.
    HelloAck {
        /// Addressed worker.
        worker: u16,
        /// Negotiation payload (dim, applied count, θ0 crc).
        hello: Hello,
    },
    /// Cluster handshake acceptance (span servers only).
    ClusterHelloAck {
        /// Addressed worker.
        worker: u16,
        /// Span negotiation payload.
        hello: ClusterHello,
        /// Encoded partition map appended to the ack.
        layout: Vec<u8>,
    },
    /// Data reply to an update or resync.
    Reply {
        /// Addressed worker.
        worker: u16,
        /// Sequence being answered (0 for resync replies).
        seq: u32,
        /// The model reply.
        msg: DownMsg,
    },
    /// Empty-payload control frame (heartbeat ack, shutdown ack).
    Control {
        /// Control frame type.
        ty: MsgType,
        /// Addressed worker.
        worker: u16,
    },
    /// Error frame; the connection closes after it.
    Error {
        /// Addressed worker.
        worker: u16,
        /// Reason string for the peer.
        reason: String,
    },
}

/// What one protocol step decided.
#[derive(Debug, Default)]
pub(crate) struct StepOut {
    /// Frames to send, in order.
    pub send: Vec<Outgoing>,
    /// Close the connection after sending.
    pub close: bool,
    /// The worker finished gracefully (counts toward `expected_workers`).
    pub done: bool,
}

impl StepOut {
    fn send1(out: Outgoing) -> StepOut {
        StepOut { send: vec![out], close: false, done: false }
    }

    fn close_silent() -> StepOut {
        StepOut { send: Vec::new(), close: true, done: false }
    }

    fn close_with(out: Outgoing) -> StepOut {
        StepOut { send: vec![out], close: true, done: false }
    }
}

/// Advances one connection by one decoded frame. Mirrors the blocking
/// `serve_conn` loop decision-for-decision; any change here changes both
/// backends at once (and `tests/evented_equivalence.rs` checks they still
/// agree with each other bitwise).
pub(crate) fn protocol_step<H: SharedUpdateHandler + ?Sized>(
    phase: &mut ConnPhase,
    event: Event,
    handler: &H,
    opts: &ServerOpts,
) -> StepOut {
    match *phase {
        ConnPhase::Handshake => match event {
            Event::Hello { worker, hello } => {
                if opts.span.is_some() {
                    // A span server owns a slice of θ; a plain worker that
                    // connected here has a mis-wired topology.
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: "span server requires a cluster hello".to_string(),
                    });
                }
                if usize::from(worker) >= opts.expected_workers {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!("unknown worker id {worker}"),
                    });
                }
                if hello.dim != opts.dim {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!(
                            "dim mismatch: server {} vs worker {}",
                            opts.dim, hello.dim
                        ),
                    });
                }
                if hello.theta0_crc != opts.theta0_crc {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!(
                            "initial model mismatch: server θ0 crc {:#010x} vs worker {:#010x}",
                            opts.theta0_crc, hello.theta0_crc
                        ),
                    });
                }
                // An `Err` here means a handler panicked mid-update: the
                // training state cannot be trusted, so refuse the
                // handshake instead of panicking.
                let applied = match handler.applied(worker) {
                    Ok(applied) => applied,
                    Err(reason) => {
                        return StepOut::close_with(Outgoing::Error {
                            worker,
                            reason: reason.to_string(),
                        })
                    }
                };
                *phase = ConnPhase::Running { worker };
                StepOut::send1(Outgoing::HelloAck {
                    worker,
                    hello: Hello { dim: opts.dim, applied, theta0_crc: opts.theta0_crc },
                })
            }
            Event::ClusterHello { worker, hello } => {
                let Some(span) = &opts.span else {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: "not a span server; use a plain hello".to_string(),
                    });
                };
                if usize::from(worker) >= opts.expected_workers {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!("unknown worker id {worker}"),
                    });
                }
                if (hello.span_index, hello.num_spans) != (span.index, span.num_spans) {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!(
                            "span mismatch: server is span {}/{}, worker expects {}/{}",
                            span.index, span.num_spans, hello.span_index, hello.num_spans
                        ),
                    });
                }
                if hello.layout_hash != span.layout_hash {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!(
                            "partition layout mismatch: server {:#010x} vs worker {:#010x}",
                            span.layout_hash, hello.layout_hash
                        ),
                    });
                }
                if hello.dim != opts.dim {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!(
                            "span dim mismatch: server {} vs worker {}",
                            opts.dim, hello.dim
                        ),
                    });
                }
                if hello.span_crc != opts.theta0_crc {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!(
                            "span θ0 mismatch: server crc {:#010x} vs worker {:#010x}",
                            opts.theta0_crc, hello.span_crc
                        ),
                    });
                }
                let applied = match handler.applied(worker) {
                    Ok(applied) => applied,
                    Err(reason) => {
                        return StepOut::close_with(Outgoing::Error {
                            worker,
                            reason: reason.to_string(),
                        })
                    }
                };
                *phase = ConnPhase::Running { worker };
                StepOut::send1(Outgoing::ClusterHelloAck {
                    worker,
                    hello: ClusterHello {
                        span_index: span.index,
                        num_spans: span.num_spans,
                        layout_hash: span.layout_hash,
                        dim: opts.dim,
                        applied,
                        span_crc: opts.theta0_crc,
                    },
                    layout: span.layout_bytes.clone(),
                })
            }
            // Anything else on a fresh connection: close without ceremony,
            // exactly like the blocking server.
            _ => StepOut::close_silent(),
        },
        ConnPhase::Running { worker } => match event {
            Event::Update { worker: w, seq, msg } => {
                if w != worker {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: "worker id changed mid-connection".to_string(),
                    });
                }
                // The duplicate/gap decision is atomic with the apply
                // inside the handler (see `SharedUpdateHandler`).
                match handler.handle_sequenced(worker, seq, *msg) {
                    Ok(Sequenced::Applied(reply)) | Ok(Sequenced::Duplicate(reply)) => {
                        StepOut::send1(Outgoing::Reply { worker, seq, msg: reply })
                    }
                    Ok(Sequenced::Gap { applied }) => StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: format!("sequence gap: got {seq}, applied {applied}"),
                    }),
                    Err(reason) => StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: reason.to_string(),
                    }),
                }
            }
            Event::Resync { worker: w, .. } => {
                if w != worker {
                    return StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: "worker id changed mid-connection".to_string(),
                    });
                }
                match handler.handle_resync(worker) {
                    Ok(reply) => StepOut::send1(Outgoing::Reply { worker, seq: 0, msg: reply }),
                    Err(reason) => StepOut::close_with(Outgoing::Error {
                        worker,
                        reason: reason.to_string(),
                    }),
                }
            }
            Event::Heartbeat { worker: w } => {
                StepOut::send1(Outgoing::Control { ty: MsgType::HeartbeatAck, worker: w })
            }
            Event::Shutdown { .. } => StepOut {
                send: vec![Outgoing::Control { ty: MsgType::ShutdownAck, worker }],
                close: true,
                done: true,
            },
            Event::Error { .. } => StepOut::close_silent(),
            other => StepOut::close_with(Outgoing::Error {
                worker,
                reason: format!("unexpected frame: {other:?}"),
            }),
        },
    }
}

/// Encodes an [`Outgoing`] into a complete wire frame, returning the
/// message type (for byte accounting) alongside the bytes.
fn encode_outgoing(out: &Outgoing) -> NetResult<(MsgType, Vec<u8>)> {
    Ok(match out {
        Outgoing::HelloAck { worker, hello } => {
            (MsgType::HelloAck, encode_frame(MsgType::HelloAck, *worker, 0, &hello.encode())?)
        }
        Outgoing::ClusterHelloAck { worker, hello, layout } => (
            MsgType::ClusterHelloAck,
            encode_frame(MsgType::ClusterHelloAck, *worker, 0, &hello.encode(layout))?,
        ),
        Outgoing::Reply { worker, seq, msg } => {
            let ty = down_msg_type(msg);
            (ty, encode_frame(ty, *worker, *seq, &encode_down_payload(msg)?)?)
        }
        Outgoing::Control { ty, worker } => (*ty, encode_frame(*ty, *worker, 0, &[])?),
        Outgoing::Error { worker, reason } => {
            (MsgType::Error, encode_frame(MsgType::Error, *worker, 0, reason.as_bytes())?)
        }
    })
}

/// At most this many queued frames go into one `writev`.
const WRITEV_BATCH: usize = 16;

/// What driving a connection produced; the event loop acts on it.
#[derive(Debug, Default)]
pub(crate) struct DriveOutcome {
    /// Graceful worker shutdowns observed during this drive.
    pub finished: usize,
}

/// One evented server-side connection: nonblocking stream + incremental
/// decoder + protocol phase + bounded write queue.
pub(crate) struct Conn<S> {
    stream: S,
    decoder: FrameDecoder,
    phase: ConnPhase,
    stats: WireStats,
    /// Encoded frames awaiting the socket, oldest first.
    wq: VecDeque<Vec<u8>>,
    /// Bytes of `wq.front()` already written.
    front_off: usize,
    /// Total unwritten bytes across the queue.
    wq_bytes: usize,
    /// Budget for `wq_bytes`; exceeded ⇒ backpressure disconnect.
    budget: usize,
    /// No more reads; close once the queue drains.
    closing: bool,
    /// Hard-closed (I/O error, peer gone, backpressure): tear down now,
    /// nothing left worth flushing.
    dead: bool,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps an already-nonblocking stream.
    pub fn new(stream: S, max_payload: usize, write_budget: usize) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_payload),
            phase: ConnPhase::Handshake,
            stats: WireStats::default(),
            wq: VecDeque::new(),
            front_off: 0,
            wq_bytes: 0,
            budget: write_budget,
            closing: false,
            dead: false,
        }
    }

    /// Byte counters accumulated so far.
    pub fn stats(&self) -> WireStats {
        self.stats.clone()
    }

    /// The wrapped stream (the event loop flips blocking mode on it for
    /// the final drain).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// True while there are queued bytes the socket has not accepted.
    pub fn wants_write(&self) -> bool {
        self.wq_bytes > 0 && !self.dead
    }

    /// True once the connection should be deregistered and dropped.
    pub fn should_teardown(&self) -> bool {
        self.dead || (self.closing && self.wq_bytes == 0)
    }

    /// Queues one outgoing frame, enforcing the write budget: a frame is
    /// refused only when the queue is already non-empty *and* adding it
    /// would exceed the budget, so a single frame larger than the budget
    /// still goes out on an otherwise-drained connection. Counted into
    /// [`WireStats`] at enqueue time — the frame is committed to the wire
    /// from here on.
    fn enqueue(&mut self, out: &Outgoing) -> NetResult<()> {
        let (ty, frame) = encode_outgoing(out)?;
        if self.wq_bytes > 0 && self.wq_bytes + frame.len() > self.budget {
            return Err(NetError::Backpressure { queued: self.wq_bytes, budget: self.budget });
        }
        self.stats.record(ty, frame.len());
        self.wq_bytes += frame.len();
        self.wq.push_back(frame);
        Ok(())
    }

    /// Drives the connection on read readiness: drains the socket through
    /// the incremental decoder, feeds each frame to [`protocol_step`], and
    /// opportunistically flushes the replies (most sockets are writable,
    /// so the common case never waits for a writable wakeup).
    pub fn handle_readable<H: SharedUpdateHandler + ?Sized>(
        &mut self,
        handler: &H,
        opts: &ServerOpts,
        scratch: &mut [u8],
    ) -> DriveOutcome {
        let mut outcome = DriveOutcome::default();
        while !self.closing && !self.dead {
            let n = match self.stream.read(scratch) {
                // Peer closed. Like the blocking server, whatever was
                // mid-decode is abandoned; queued replies still drain.
                Ok(0) => {
                    self.closing = true;
                    break;
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return outcome;
                }
            };
            self.feed(scratch.get(..n).unwrap_or_default(), handler, opts, &mut outcome);
        }
        self.flush_ready();
        outcome
    }

    /// Pushes freshly read bytes through decoder → event → protocol step.
    fn feed<H: SharedUpdateHandler + ?Sized>(
        &mut self,
        mut input: &[u8],
        handler: &H,
        opts: &ServerOpts,
        outcome: &mut DriveOutcome,
    ) {
        // Once a step closes the connection, the rest of the buffer is
        // discarded — the blocking server's `break` does the same.
        while !input.is_empty() && !self.closing && !self.dead {
            let (used, frame) = match self.decoder.advance(input) {
                Ok(step) => step,
                // Malformed framing (bad magic/version/crc/length): the
                // blocking server closes silently; so do we.
                Err(_) => {
                    self.closing = true;
                    return;
                }
            };
            // `used <= input.len()` per the decoder contract; a checked
            // slice (empty on violation) keeps the wire path panic-free.
            input = input.get(used..).unwrap_or_default();
            let Some((header, payload)) = frame else { continue };
            self.stats.record(header.msg_type, HEADER_LEN + payload.len());
            let event = match decode_event(header, payload) {
                Ok(ev) => ev,
                // Undecodable payload: silent close, like the oracle.
                Err(_) => {
                    self.closing = true;
                    return;
                }
            };
            let step = protocol_step(&mut self.phase, event, handler, opts);
            outcome.finished += usize::from(step.done);
            for out in &step.send {
                if self.enqueue(out).is_err() {
                    // Backpressure (or an encode refusal): hard disconnect.
                    // The peer is not draining, so flushing is pointless;
                    // its reconnect/resync path recovers the stream.
                    self.dead = true;
                    return;
                }
            }
            if step.close {
                self.closing = true;
            }
        }
    }

    /// Writes as much of the queue as the socket will take, coalescing up
    /// to [`WRITEV_BATCH`] frames per `writev`. `WouldBlock` leaves the
    /// remainder queued for the next writable wakeup.
    pub fn flush_ready(&mut self) {
        while self.wq_bytes > 0 && !self.dead {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.wq.len().min(WRITEV_BATCH));
            for (i, seg) in self.wq.iter().take(WRITEV_BATCH).enumerate() {
                let start = if i == 0 { self.front_off } else { 0 };
                slices.push(IoSlice::new(seg.get(start..).unwrap_or_default()));
            }
            match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.consume_written(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        let _ = self.stream.flush();
    }

    /// Final drain for graceful closes (shutdown acks, error frames) when
    /// the loop is exiting: the caller has switched the stream to blocking
    /// with a write timeout, so this terminates even against a slow peer.
    /// Errors are swallowed — teardown must not fail.
    pub fn flush_remaining(&mut self) {
        if self.dead {
            return;
        }
        while let Some(front) = self.wq.front() {
            let len = front.len().saturating_sub(self.front_off);
            if self.stream.write_all(front.get(self.front_off..).unwrap_or_default()).is_err() {
                self.dead = true;
                return;
            }
            self.front_off = 0;
            self.wq_bytes = self.wq_bytes.saturating_sub(len);
            self.wq.pop_front();
        }
        let _ = self.stream.flush();
    }

    /// Retires `n` accepted bytes from the front of the queue.
    fn consume_written(&mut self, mut n: usize) {
        self.wq_bytes = self.wq_bytes.saturating_sub(n);
        while n > 0 {
            let Some(front) = self.wq.front() else { return };
            let remaining = front.len() - self.front_off;
            if n >= remaining {
                n -= remaining;
                self.front_off = 0;
                self.wq.pop_front();
            } else {
                self.front_off += n;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{SparseUpdate, SparseVec, UpMsg, UpPayload};
    use crate::transport::{loopback_pair, LoopbackStream, UpdateHandler, WireConn};
    use std::sync::Mutex;

    /// Toy handler matching the tcp.rs test double.
    struct ToyHandler {
        applied: Vec<u64>,
    }

    impl UpdateHandler for ToyHandler {
        fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg {
            self.applied[worker as usize] += 1;
            let tag = self.applied[worker as usize] as f32 + up.train_loss as f32;
            DownMsg::SparseDiff(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![u32::from(worker)], val: vec![tag] }],
            })
        }

        fn handle_resync(&mut self, worker: u16) -> DownMsg {
            DownMsg::DenseModel(std::sync::Arc::new(vec![f32::from(worker); 3]))
        }

        fn applied(&self, worker: u16) -> u64 {
            self.applied[worker as usize]
        }
    }

    fn handler(workers: usize) -> Mutex<ToyHandler> {
        Mutex::new(ToyHandler { applied: vec![0; workers] })
    }

    fn opts(workers: usize) -> ServerOpts {
        ServerOpts::new(workers, 3, 0xABCD)
    }

    fn up(loss: f64) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![1], val: vec![2.0] }],
            }),
            train_loss: loss,
        }
    }

    /// Evented conn over a loopback pair plus the peer's WireConn.
    fn rig(
        workers: usize,
        budget: usize,
    ) -> (Conn<LoopbackStream>, WireConn<LoopbackStream>, ServerOpts) {
        let (server_side, worker_side) = loopback_pair();
        let o = opts(workers);
        (Conn::new(server_side, o.max_payload, budget), WireConn::new(worker_side), o)
    }

    fn drive(
        conn: &mut Conn<LoopbackStream>,
        h: &Mutex<ToyHandler>,
        o: &ServerOpts,
    ) -> DriveOutcome {
        let mut scratch = [0u8; 4096];
        conn.handle_readable(h, o, &mut scratch)
    }

    #[test]
    fn full_session_through_the_state_machine() {
        let (mut conn, mut peer, o) = rig(2, 1 << 20);
        let h = handler(2);
        peer.send_hello(MsgType::Hello, 1, &Hello { dim: 3, applied: 0, theta0_crc: 0xABCD })
            .unwrap();
        drive(&mut conn, &h, &o);
        assert!(matches!(peer.read_event().unwrap(), Event::HelloAck { hello } if hello.dim == 3));
        assert_eq!(conn.phase, ConnPhase::Running { worker: 1 });
        // In-order updates produce replies; a heartbeat mid-stream acks.
        peer.send_update(1, 1, &up(0.5)).unwrap();
        peer.send_control(MsgType::Heartbeat, 1).unwrap();
        peer.send_update(1, 2, &up(0.5)).unwrap();
        drive(&mut conn, &h, &o);
        assert!(matches!(peer.read_event().unwrap(), Event::Reply { seq: 1, .. }));
        assert!(matches!(peer.read_event().unwrap(), Event::HeartbeatAck));
        assert!(matches!(peer.read_event().unwrap(), Event::Reply { seq: 2, .. }));
        // Duplicate → resync reply, not a double apply.
        peer.send_update(1, 2, &up(0.5)).unwrap();
        drive(&mut conn, &h, &o);
        match peer.read_event().unwrap() {
            Event::Reply { msg: DownMsg::DenseModel(m), .. } => assert_eq!(m.len(), 3),
            other => panic!("expected dense resync, got {other:?}"),
        }
        assert_eq!(h.lock().unwrap().applied, vec![0, 2]);
        // Graceful shutdown: ack + close + done, all flushed.
        peer.send_control(MsgType::Shutdown, 1).unwrap();
        let outcome = drive(&mut conn, &h, &o);
        assert_eq!(outcome.finished, 1);
        assert!(conn.should_teardown());
        assert!(matches!(peer.read_event().unwrap(), Event::ShutdownAck));
        // Counters: both ends saw identical bytes.
        assert_eq!(conn.stats(), peer.stats());
    }

    #[test]
    fn sequence_gap_closes_with_error_frame() {
        let (mut conn, mut peer, o) = rig(1, 1 << 20);
        let h = handler(1);
        peer.send_hello(MsgType::Hello, 0, &Hello { dim: 3, applied: 0, theta0_crc: 0xABCD })
            .unwrap();
        peer.send_update(0, 5, &up(1.0)).unwrap();
        drive(&mut conn, &h, &o);
        assert!(matches!(peer.read_event().unwrap(), Event::HelloAck { .. }));
        match peer.read_event().unwrap() {
            Event::Error { reason } => assert!(reason.contains("gap"), "{reason}"),
            other => panic!("expected error frame, got {other:?}"),
        }
        assert!(conn.should_teardown());
        assert_eq!(h.lock().unwrap().applied, vec![0], "gap must not apply");
    }

    #[test]
    fn handshake_rejections_mirror_the_blocking_server() {
        // Unknown worker id.
        let (mut conn, mut peer, o) = rig(1, 1 << 20);
        let h = handler(1);
        peer.send_hello(MsgType::Hello, 9, &Hello { dim: 3, applied: 0, theta0_crc: 0xABCD })
            .unwrap();
        drive(&mut conn, &h, &o);
        match peer.read_event().unwrap() {
            Event::Error { reason } => assert!(reason.contains("unknown worker id 9"), "{reason}"),
            other => panic!("expected error, got {other:?}"),
        }
        assert!(conn.should_teardown());
        // Dim mismatch.
        let (mut conn, mut peer, o) = rig(1, 1 << 20);
        peer.send_hello(MsgType::Hello, 0, &Hello { dim: 4, applied: 0, theta0_crc: 0xABCD })
            .unwrap();
        drive(&mut conn, &h, &o);
        match peer.read_event().unwrap() {
            Event::Error { reason } => assert!(reason.contains("dim mismatch"), "{reason}"),
            other => panic!("expected error, got {other:?}"),
        }
        // Non-hello opener: silent close, no frame back.
        let (mut conn, mut peer, o) = rig(1, 1 << 20);
        peer.send_control(MsgType::Heartbeat, 0).unwrap();
        drive(&mut conn, &h, &o);
        assert!(conn.should_teardown());
        assert_eq!(conn.stats().control, HEADER_LEN as u64, "nothing sent back");
    }

    #[test]
    fn garbage_closes_silently_without_panic() {
        let (mut conn, mut peer, o) = rig(1, 1 << 20);
        let h = handler(1);
        // Must be at least HEADER_LEN bytes: the decoder (like the blocking
        // server's read_frame) buffers a partial header until it is complete.
        std::io::Write::write_all(peer.stream_mut(), b"GET /index.html HTTP/1.1\r\n\r\n").unwrap();
        drive(&mut conn, &h, &o);
        assert!(conn.should_teardown());
    }

    /// Sink that accepts nothing: a perfectly stalled reader.
    struct Stalled;

    impl Read for Stalled {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::ErrorKind::WouldBlock.into())
        }
    }

    impl Write for Stalled {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::ErrorKind::WouldBlock.into())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_budget_disconnects_instead_of_buffering_unboundedly() {
        // Tiny budget: the second queued reply must trip backpressure.
        let mut conn: Conn<Stalled> = Conn::new(Stalled, 1 << 20, 64);
        conn.phase = ConnPhase::Running { worker: 0 };
        let reply = Outgoing::Reply {
            worker: 0,
            seq: 1,
            msg: DownMsg::DenseModel(std::sync::Arc::new(vec![1.0; 16])),
        };
        // First frame exceeds the budget alone but the queue is empty, so
        // it is accepted (a connection must always be able to make
        // progress on one frame).
        conn.enqueue(&reply).unwrap();
        let before = conn.stats();
        let err = conn.enqueue(&reply).unwrap_err();
        match err {
            NetError::Backpressure { queued, budget } => {
                assert!(queued > budget, "queued {queued} vs budget {budget}");
            }
            other => panic!("expected backpressure, got {other}"),
        }
        // The refused frame was never counted: accounting covers only
        // frames committed to the wire.
        assert_eq!(conn.stats(), before);
        assert_eq!(conn.wq.len(), 1);
    }

    #[test]
    fn vectored_flush_handles_partial_writes() {
        /// Accepts at most `cap` bytes per call — forces partial writes
        /// across frame boundaries.
        struct Trickle {
            out: Vec<u8>,
            cap: usize,
        }

        impl Read for Trickle {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::ErrorKind::WouldBlock.into())
            }
        }

        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(self.cap);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }

            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut conn: Conn<Trickle> = Conn::new(Trickle { out: Vec::new(), cap: 7 }, 1 << 20, 1 << 20);
        let mut want = Vec::new();
        for _ in 0..5 {
            let out = Outgoing::Control { ty: MsgType::HeartbeatAck, worker: 0 };
            let (_, frame) = encode_outgoing(&out).unwrap();
            want.extend_from_slice(&frame);
            conn.enqueue(&out).unwrap();
        }
        conn.flush_ready();
        assert!(!conn.wants_write(), "everything drained");
        assert_eq!(conn.stream_mut().out, want, "bytes survive 7-byte write slices in order");
    }
}
