//! Edge aggregation tier: merge a worker group's sparse uplinks before
//! forwarding one combined update to the root span servers.
//!
//! The two-level topology (cf. the two-level gradient-averaging design
//! in PAPERS.md) bounds root-server ingress by the number of *groups*
//! instead of the number of workers: G members connect to one
//! [`EdgeHandler`], which presents the ordinary single-server protocol
//! to them (full model dim, full θ0 CRC — a member cannot tell an edge
//! from a root), collects one update per member per round, merges them
//! in worker-id order with the same sparse-merge kernels the server
//! stack uses, and forwards the combined update upstream over a
//! [`ClusterTransport`] as a single logical worker (its group index).
//!
//! Equivalence anchors:
//!
//! * `G = 1` forwards the member's payload **verbatim** — no
//!   re-encoding, no dequantize/requantize — so a cluster+edge run with
//!   singleton groups replays the plain cluster schedule bitwise (the
//!   differential bar in `tests/cluster_equivalence.rs`).
//! * The assembled upstream reply is fanned back to every member
//!   unchanged, and also folded into the edge's cached dense model
//!   `θ_edge`. In MDT terms the cache tracks `v_g` (the root's
//!   delivered-vector for this group), which is exactly the model every
//!   in-sync member holds — so member resyncs and duplicate replies are
//!   served **from the cache with zero upstream traffic**.
//!
//! Threading: member connections block in [`EdgeHandler::handle_sequenced`]
//! on a round barrier (mutex + condvar) until the last member of the
//! round arrives; that member runs the upstream exchange and publishes
//! the shared reply to every slot. The upstream link sits behind its own
//! mutex (the `edge-upstream` lock class in `audit-lock-order.toml`),
//! **never** nested inside the state lock: the state lock guards only
//! in-memory aggregation, so member resyncs and duplicate replies are
//! served from the cache even while an upstream round-trip is in
//! flight (`in_flight` bridges the two critical sections). The
//! member-facing listener must run the thread-per-connection backend
//! ([`crate::tcp::serve_cluster`]) — an evented single-thread listener
//! would deadlock on the barrier.

use crate::cluster::{assemble_replies, ClusterTransport};
use crate::error::{NetError, NetResult};
use crate::msg::{
    try_merge_sparse_updates, ClusterLayout, DownMsg, Partition, SparseUpdate, UpMsg, UpPayload,
};
use crate::transport::{Sequenced, SharedUpdateHandler, WireStats};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Static failure reasons (the [`SharedUpdateHandler`] contract reports
/// errors as `&'static str` reason strings for the peer's error frame).
const EDGE_POISONED: &str = "edge aggregator state poisoned";
const EDGE_UPSTREAM_FAILED: &str = "edge upstream exchange failed";
const EDGE_ROUND_TIMEOUT: &str = "edge round timed out waiting for group members";
const EDGE_ROUND_OVERLAP: &str = "member update overlaps an unfinished round";
const EDGE_MIXED_PAYLOADS: &str = "edge cannot merge mixed payload kinds";
const EDGE_MISALIGNED: &str = "edge cannot merge updates cut to different partitions";
const EDGE_BAD_MEMBER: &str = "worker id outside this edge's group";

/// Mutable aggregation state, all behind one lock. Holds **no** I/O:
/// the upstream link lives in its own mutex on [`EdgeHandler`] so the
/// state lock is never held across a syscall.
struct EdgeState {
    partition: Partition,
    /// Cached dense model `θ_edge = v_g`: θ0 plus every assembled reply
    /// this edge has applied. Serves member resyncs locally.
    cache: Vec<f32>,
    /// Per-worker-id applied counts (indexed by global worker id; only
    /// ids in `[base, base + group)` are ever touched).
    applied: Vec<u64>,
    /// Current round's stashed updates, one slot per group member.
    pending: Vec<Option<UpMsg>>,
    /// How many of `pending` are filled.
    arrived: usize,
    /// Completed round's reply, one copy per member slot; a member takes
    /// (and clears) its slot when it wakes.
    reply_slots: Vec<Option<DownMsg>>,
    /// First hard failure; poisons every subsequent member call so the
    /// group tears down instead of hanging.
    failed: Option<&'static str>,
    /// An upstream exchange is running outside the state lock: the
    /// round's updates are taken but its replies are not yet published.
    /// Stashing new updates is refused until it clears.
    in_flight: bool,
}

/// The edge aggregator's server-side handler: plug into
/// [`crate::tcp::serve_cluster`] with `expected_workers = base + group`
/// and `done_target = group`.
pub struct EdgeHandler {
    state: Mutex<EdgeState>,
    /// The root-tier link, behind its own lock (`edge-upstream` class —
    /// the one edge-tier lock blocking I/O is allowed under). Ordered
    /// strictly after `state` in the manifest, and the code never nests
    /// the two: each round drops the state guard before locking this.
    upstream: Mutex<ClusterTransport>,
    /// Upstream span layout, immutable per transport — cached here so
    /// reply folding needs no upstream lock.
    layout: ClusterLayout,
    barrier: Condvar,
    /// First member worker id of this group.
    base: u16,
    /// Group size G.
    group: usize,
    /// How long a member may wait for the rest of its round.
    round_timeout: Duration,
}

impl EdgeHandler {
    /// Builds the handler for group members `[base, base + group)`.
    /// `theta0` is the full initial model (the cache's starting point);
    /// `partition` must cover it and match `upstream`'s layout.
    pub fn new(
        upstream: ClusterTransport,
        partition: Partition,
        theta0: Vec<f32>,
        base: u16,
        group: usize,
        round_timeout: Duration,
    ) -> NetResult<Arc<Self>> {
        if group == 0 {
            return Err(NetError::Protocol("edge group size must be at least 1".to_string()));
        }
        if theta0.len() != partition.total_len()
            || theta0.len() != upstream.layout().dim as usize
        {
            return Err(NetError::Protocol(format!(
                "edge θ0 has {} coordinates, partition covers {}, layout {}",
                theta0.len(),
                partition.total_len(),
                upstream.layout().dim
            )));
        }
        let layout = upstream.layout().clone();
        Ok(Arc::new(EdgeHandler {
            state: Mutex::new(EdgeState {
                partition,
                cache: theta0,
                applied: vec![0; usize::from(base) + group],
                pending: vec![None; group],
                arrived: 0,
                reply_slots: vec![None; group],
                failed: None,
                in_flight: false,
            }),
            upstream: Mutex::new(upstream),
            layout,
            barrier: Condvar::new(),
            base,
            group,
            round_timeout,
        }))
    }

    /// Shuts the upstream links down gracefully and returns the edge's
    /// upstream-side byte counters (with their per-span `Root` links).
    /// Call after the member-facing serve loop has exited.
    pub fn finish(&self) -> Result<WireStats, &'static str> {
        // Upstream guard first and alone: blocking I/O is allowed under
        // `edge-upstream` but never under `edge-state`, and acquiring
        // state inside the upstream guard would invert the declared
        // order — so the guard is dropped before failure is recorded.
        let (shut, stats) = {
            let mut up = self.upstream.lock().map_err(|_| EDGE_POISONED)?;
            (up.shutdown(), up.stats())
        };
        if shut.is_err() {
            // The run is over either way; the stats still hold every
            // byte that actually moved.
            let mut st = self.state.lock().map_err(|_| EDGE_POISONED)?;
            st.failed.get_or_insert(EDGE_UPSTREAM_FAILED);
        }
        Ok(stats)
    }

    /// Upstream byte counters so far, without ending the run.
    pub fn upstream_stats(&self) -> Result<WireStats, &'static str> {
        self.upstream.lock().map_err(|_| EDGE_POISONED).map(|up| up.stats())
    }

    /// Maps a global worker id onto its slot in this group.
    fn slot(&self, worker: u16) -> Result<usize, &'static str> {
        let slot = usize::from(worker).checked_sub(usize::from(self.base));
        match slot {
            Some(s) if s < self.group => Ok(s),
            _ => Err(EDGE_BAD_MEMBER),
        }
    }

    /// Merges one round's member updates (worker-id order) into the one
    /// update forwarded upstream. `G = 1` forwards verbatim.
    fn merge_round(&self, ups: Vec<UpMsg>) -> Result<UpMsg, &'static str> {
        debug_assert_eq!(ups.len(), self.group);
        if ups.len() == 1 {
            let Some(up) = ups.into_iter().next() else { return Err(EDGE_ROUND_OVERLAP) };
            return Ok(up);
        }
        let train_loss = ups.iter().map(|u| u.train_loss).sum::<f64>() / ups.len() as f64;
        let payload = match &ups[0].payload {
            UpPayload::Sparse(_) => {
                let mut sparse = Vec::with_capacity(ups.len());
                for u in &ups {
                    match &u.payload {
                        UpPayload::Sparse(s) => sparse.push(s),
                        _ => return Err(EDGE_MIXED_PAYLOADS),
                    }
                }
                // Member payloads come off the wire: a chunk-count
                // mismatch is a protocol error, never a panic.
                UpPayload::Sparse(try_merge_sparse_updates(&sparse).ok_or(EDGE_MISALIGNED)?)
            }
            UpPayload::TernarySparse(_) => {
                // Ternary payloads carry per-chunk scales that cannot be
                // combined losslessly; dequantize, merge exactly, and
                // forward the merged update as plain sparse.
                let mut dequantized = Vec::with_capacity(ups.len());
                for u in &ups {
                    match &u.payload {
                        UpPayload::TernarySparse(t) => dequantized.push(t.dequantize()),
                        _ => return Err(EDGE_MIXED_PAYLOADS),
                    }
                }
                let refs: Vec<&SparseUpdate> = dequantized.iter().collect();
                UpPayload::Sparse(try_merge_sparse_updates(&refs).ok_or(EDGE_MISALIGNED)?)
            }
            UpPayload::Dense(first) => {
                let mut sum = first.clone();
                for u in &ups[1..] {
                    match &u.payload {
                        UpPayload::Dense(g) if g.len() == sum.len() => {
                            for (acc, x) in sum.iter_mut().zip(g) {
                                *acc += x;
                            }
                        }
                        _ => return Err(EDGE_MIXED_PAYLOADS),
                    }
                }
                UpPayload::Dense(sum)
            }
        };
        Ok(UpMsg { payload, train_loss })
    }

    /// Runs one complete round in three critical sections — take the
    /// stashed updates and merge (state lock), exchange upstream
    /// (upstream lock only: the state lock is **not** held across the
    /// network round-trip, so resyncs and duplicates stay servable),
    /// then fold the reply into the cache and publish one copy per
    /// member slot (state lock again).
    fn run_round(&self) -> Result<(), &'static str> {
        let fwd = {
            let mut st = self.state.lock().map_err(|_| EDGE_POISONED)?;
            let mut ups = Vec::with_capacity(self.group);
            for slot in &mut st.pending {
                match slot.take() {
                    Some(u) => ups.push(u),
                    None => return Err(EDGE_ROUND_OVERLAP),
                }
            }
            st.arrived = 0;
            let fwd = self.merge_round(ups)?;
            st.in_flight = true;
            fwd
        };
        let exchanged = {
            let mut up = self.upstream.lock().map_err(|_| EDGE_POISONED)?;
            up.exchange(&fwd).map_err(|_| EDGE_UPSTREAM_FAILED)
        };
        let mut st = self.state.lock().map_err(|_| EDGE_POISONED)?;
        let st = &mut *st; // split-borrow fields through the guard
        st.in_flight = false;
        let replies = exchanged?;
        let reply = match assemble_replies(&replies) {
            Some(DownMsg::SparseDiff(s)) => {
                s.try_apply_add(&mut st.cache, &st.partition, 1.0).ok_or(EDGE_MISALIGNED)?;
                DownMsg::SparseDiff(s)
            }
            Some(DownMsg::DenseModel(m)) => {
                if m.len() != st.cache.len() {
                    return Err(EDGE_MISALIGNED);
                }
                st.cache.copy_from_slice(&m);
                DownMsg::DenseModel(m)
            }
            None => {
                // Mixed per-span replies (one span resynced mid-run):
                // fold each span's reply into its slice of the cache and
                // hand members the coherent dense result.
                for (k, r) in replies.iter().enumerate() {
                    let span = self.layout.shard_span(k);
                    let dst =
                        st.cache.get_mut(span.range()).ok_or(EDGE_MISALIGNED)?;
                    match r {
                        DownMsg::DenseModel(m) => {
                            if m.len() != dst.len() {
                                return Err(EDGE_MISALIGNED);
                            }
                            dst.copy_from_slice(m);
                        }
                        DownMsg::SparseDiff(s) => {
                            let sub = st.partition.subpartition(&span);
                            s.try_apply_add(dst, &sub, 1.0).ok_or(EDGE_MISALIGNED)?;
                        }
                    }
                }
                DownMsg::DenseModel(Arc::new(st.cache.clone()))
            }
        };
        for slot in &mut st.reply_slots {
            *slot = Some(reply.clone());
        }
        Ok(())
    }

    /// Blocks until this member's reply slot fills (or the round fails /
    /// times out), then takes the reply.
    fn await_reply<'a>(
        &'a self,
        mut st: MutexGuard<'a, EdgeState>,
        slot: usize,
    ) -> Result<(MutexGuard<'a, EdgeState>, DownMsg), &'static str> {
        let mut waited = Duration::ZERO;
        loop {
            if let Some(reply) = st.reply_slots[slot].take() {
                return Ok((st, reply));
            }
            if let Some(reason) = st.failed {
                return Err(reason);
            }
            if waited >= self.round_timeout {
                st.failed = Some(EDGE_ROUND_TIMEOUT);
                self.barrier.notify_all();
                return Err(EDGE_ROUND_TIMEOUT);
            }
            let tick = Duration::from_millis(50).min(self.round_timeout);
            let (guard, _timeout) =
                self.barrier.wait_timeout(st, tick).map_err(|_| EDGE_POISONED)?;
            st = guard;
            waited += tick;
        }
    }
}

impl SharedUpdateHandler for EdgeHandler {
    fn handle_sequenced(
        &self,
        worker: u16,
        seq: u32,
        up: UpMsg,
    ) -> Result<Sequenced, &'static str> {
        let slot = self.slot(worker)?;
        let mut st = self.state.lock().map_err(|_| EDGE_POISONED)?;
        if let Some(reason) = st.failed {
            return Err(reason);
        }
        let applied = st.applied[usize::from(worker)];
        if u64::from(seq) <= applied {
            // Retransmit of an already-merged update: its reply is lost,
            // but the cache *is* the post-reply model — serve it locally,
            // exactly like a single server answers duplicates with a
            // resync, and send nothing upstream.
            return Ok(Sequenced::Duplicate(DownMsg::DenseModel(Arc::new(st.cache.clone()))));
        }
        if u64::from(seq) > applied + 1 {
            return Ok(Sequenced::Gap { applied });
        }
        if st.in_flight || st.pending[slot].is_some() || st.reply_slots[slot].is_some() {
            return Err(EDGE_ROUND_OVERLAP);
        }
        st.pending[slot] = Some(up);
        st.arrived += 1;
        if st.arrived == self.group {
            // Run the round with no state guard live: `run_round` takes
            // the state and upstream locks one at a time.
            drop(st);
            match self.run_round() {
                Ok(()) => self.barrier.notify_all(),
                Err(reason) => {
                    if let Ok(mut st) = self.state.lock() {
                        st.failed.get_or_insert(reason);
                    }
                    self.barrier.notify_all();
                    return Err(reason);
                }
            }
            st = self.state.lock().map_err(|_| EDGE_POISONED)?;
        }
        let (mut st, reply) = self.await_reply(st, slot)?;
        st.applied[usize::from(worker)] += 1;
        Ok(Sequenced::Applied(reply))
    }

    fn handle_resync(&self, worker: u16) -> Result<DownMsg, &'static str> {
        self.slot(worker)?;
        let st = self.state.lock().map_err(|_| EDGE_POISONED)?;
        // The cache is v_g — the model every in-sync member holds — so
        // recovery never touches the root tier.
        Ok(DownMsg::DenseModel(Arc::new(st.cache.clone())))
    }

    fn applied(&self, worker: u16) -> Result<u64, &'static str> {
        self.slot(worker)?;
        let st = self.state.lock().map_err(|_| EDGE_POISONED)?;
        Ok(st.applied[usize::from(worker)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ClusterLayout, SparseVec};
    use crate::tcp::{serve_cluster, ServerOpts, SpanOpts, TcpOpts, TcpWorkerTransport};
    use crate::transport::{Tier, Transport, UpdateHandler};
    use std::net::TcpListener;
    use std::thread;

    /// Root-span toy: accumulates sparse updates into a span-local model
    /// and replies with the applied update echoed back (a stand-in for
    /// the MDT diff — members then track the summed state).
    struct RootSpan {
        model: Vec<f32>,
        sub: Partition,
        applied: Vec<u64>,
        got: Vec<UpMsg>,
    }

    impl UpdateHandler for RootSpan {
        fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg {
            self.applied[worker as usize] += 1;
            self.got.push(up.clone());
            match &up.payload {
                UpPayload::Sparse(s) => {
                    s.apply_add(&mut self.model, &self.sub, 1.0);
                    DownMsg::SparseDiff(s.clone())
                }
                other => panic!("toy root only speaks sparse, got {other:?}"),
            }
        }

        fn handle_resync(&mut self, _worker: u16) -> DownMsg {
            DownMsg::DenseModel(Arc::new(self.model.clone()))
        }

        fn applied(&self, worker: u16) -> u64 {
            self.applied[worker as usize]
        }
    }

    fn full_partition() -> Partition {
        Partition::from_layer_sizes([("a", 2), ("b", 3)])
    }

    fn layout() -> ClusterLayout {
        let p = full_partition();
        ClusterLayout::from_spans(p.total_len() as u64, &p.shard_spans(2), &[0x200, 0x201])
    }

    #[allow(clippy::type_complexity)]
    fn spawn_roots(
        groups: usize,
    ) -> (Vec<String>, Vec<Arc<Mutex<RootSpan>>>, Vec<thread::JoinHandle<NetResult<WireStats>>>)
    {
        let layout = layout();
        let p = full_partition();
        let hash = layout.layout_hash();
        let bytes = layout.encode();
        let mut addrs = Vec::new();
        let mut handlers = Vec::new();
        let mut joins = Vec::new();
        for (k, info) in layout.spans.iter().enumerate() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap().to_string());
            let span = layout.shard_span(k);
            let handler = Arc::new(Mutex::new(RootSpan {
                model: vec![0.0; span.len],
                sub: p.subpartition(&span),
                applied: vec![0; groups],
                got: Vec::new(),
            }));
            handlers.push(Arc::clone(&handler));
            let mut opts = ServerOpts::new(groups, info.len, info.theta0_crc);
            opts.read_timeout = Duration::from_millis(50);
            opts.deadline = Some(Duration::from_secs(30));
            opts.span = Some(SpanOpts {
                index: k as u32,
                num_spans: layout.num_spans() as u32,
                layout_hash: hash,
                layout_bytes: bytes.clone(),
            });
            joins.push(thread::spawn(move || serve_cluster(listener, handler, opts)));
        }
        (addrs, handlers, joins)
    }

    fn upstream(addrs: &[String], group_index: u16) -> ClusterTransport {
        ClusterTransport::with_opts(layout(), addrs, group_index, |o| {
            o.read_timeout = Duration::from_millis(100);
            o.backoff_base = Duration::from_millis(20);
        })
        .unwrap()
    }

    /// Member update: one sparse chunk per segment, values tagged by
    /// `worker` so the merged sums are recognisable.
    fn member_up(worker: u16, round: u32) -> UpMsg {
        let w = f32::from(worker) + 1.0;
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate {
                chunks: vec![
                    SparseVec { idx: vec![0], val: vec![w] },
                    SparseVec { idx: vec![1], val: vec![10.0 * w] },
                ],
            }),
            train_loss: f64::from(round),
        }
    }

    fn edge_server_opts(base: u16, group: usize, dim: u64, crc: u32) -> ServerOpts {
        let mut o = ServerOpts::new(usize::from(base) + group, dim, crc);
        o.read_timeout = Duration::from_millis(50);
        o.deadline = Some(Duration::from_secs(30));
        o.done_target = group;
        o
    }

    /// Root span that parks inside `handle_update` until released —
    /// pins down what the edge keeps serving while its upstream
    /// round-trip is in flight.
    struct StallingRoot {
        inner: RootSpan,
        entered: Arc<(Mutex<bool>, Condvar)>,
        release: Arc<(Mutex<bool>, Condvar)>,
    }

    impl UpdateHandler for StallingRoot {
        fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg {
            let (flag, cv) = &*self.entered;
            *flag.lock().unwrap() = true;
            cv.notify_all();
            let (gate, cv) = &*self.release;
            let mut go = gate.lock().unwrap();
            while !*go {
                let (guard, timed_out) =
                    cv.wait_timeout(go, Duration::from_secs(10)).unwrap();
                go = guard;
                assert!(!timed_out.timed_out(), "test never released the root");
            }
            drop(go);
            self.inner.handle_update(worker, up)
        }

        fn handle_resync(&mut self, worker: u16) -> DownMsg {
            self.inner.handle_resync(worker)
        }

        fn applied(&self, worker: u16) -> u64 {
            self.inner.applied(worker)
        }
    }

    /// Regression test for the edge-state/upstream lock split: with the
    /// upstream exchange formerly run under the state lock, a member
    /// resync (or duplicate reply, or `applied` probe) queued behind the
    /// whole root round-trip — and this test deadlocked, because the
    /// stalled root is only released *after* the resync returns.
    #[test]
    fn resync_served_from_cache_while_upstream_exchange_in_flight() {
        let layout = layout();
        let p = full_partition();
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let hash = layout.layout_hash();
        let bytes = layout.encode();
        let mut addrs = Vec::new();
        let mut joins = Vec::new();
        for (k, info) in layout.spans.iter().enumerate() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap().to_string());
            let span = layout.shard_span(k);
            let handler = Arc::new(Mutex::new(StallingRoot {
                inner: RootSpan {
                    model: vec![0.0; span.len],
                    sub: p.subpartition(&span),
                    applied: vec![0; 1],
                    got: Vec::new(),
                },
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            }));
            let mut opts = ServerOpts::new(1, info.len, info.theta0_crc);
            opts.read_timeout = Duration::from_millis(50);
            opts.deadline = Some(Duration::from_secs(30));
            opts.span = Some(SpanOpts {
                index: k as u32,
                num_spans: layout.num_spans() as u32,
                layout_hash: hash,
                layout_bytes: bytes.clone(),
            });
            joins.push(thread::spawn(move || serve_cluster(listener, handler, opts)));
        }
        let up = ClusterTransport::with_opts(layout, &addrs, 0, |o| {
            o.read_timeout = Duration::from_secs(10);
            o.backoff_base = Duration::from_millis(20);
        })
        .unwrap();
        let edge = EdgeHandler::new(
            up,
            full_partition(),
            vec![0.0; 5],
            0,
            1,
            Duration::from_secs(10),
        )
        .unwrap();

        // The (single) member's update completes the round: the runner
        // thread blocks inside the root's stalled `handle_update`.
        let edge2 = Arc::clone(&edge);
        let member = thread::spawn(move || edge2.handle_sequenced(0, 1, member_up(0, 1)));
        {
            let (flag, cv) = &*entered;
            let mut seen = flag.lock().unwrap();
            while !*seen {
                let (guard, timed_out) =
                    cv.wait_timeout(seen, Duration::from_secs(10)).unwrap();
                seen = guard;
                assert!(!timed_out.timed_out(), "upstream exchange never reached the root");
            }
        }
        // Upstream round-trip is in flight. Resync and the applied
        // probe must be served from the edge cache immediately — the
        // root is only released below, after they return.
        match edge.handle_resync(0).unwrap() {
            DownMsg::DenseModel(m) => assert_eq!(*m, vec![0.0; 5], "pre-round cache"),
            other => panic!("unexpected resync reply {other:?}"),
        }
        assert_eq!(edge.applied(0).unwrap(), 0, "round not yet applied");
        {
            let (gate, cv) = &*release;
            *gate.lock().unwrap() = true;
            cv.notify_all();
        }
        match member.join().unwrap().unwrap() {
            Sequenced::Applied(DownMsg::SparseDiff(s)) => assert_eq!(s.chunks.len(), 2),
            other => panic!("unexpected member reply {other:?}"),
        }
        edge.finish().unwrap();
        for j in joins {
            j.join().unwrap().unwrap();
        }
    }

    #[test]
    fn single_member_group_forwards_verbatim_and_serves_resync_from_cache() {
        let (addrs, roots, root_joins) = spawn_roots(1);
        let edge = EdgeHandler::new(
            upstream(&addrs, 0),
            full_partition(),
            vec![0.0; 5],
            0,
            1,
            Duration::from_secs(10),
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let edge_addr = listener.local_addr().unwrap().to_string();
        // Members see a plain full-dim server; CRC of the all-zero θ0 is
        // whatever the member side presents — use a fixed token both set.
        let opts = edge_server_opts(0, 1, 5, 0xE0E0);
        let edge2 = Arc::clone(&edge);
        let serve = thread::spawn(move || serve_cluster(listener, edge2, opts));

        let mut member = TcpWorkerTransport::new({
            let mut o = TcpOpts::new(edge_addr, 0, 5, 0xE0E0);
            o.read_timeout = Duration::from_millis(100);
            o.backoff_base = Duration::from_millis(20);
            o
        });
        let up1 = member_up(0, 1);
        match member.exchange(&up1).unwrap() {
            DownMsg::SparseDiff(s) => assert_eq!(s.chunks.len(), 2, "assembled from both spans"),
            other => panic!("unexpected reply {other:?}"),
        }
        // The roots saw the member's payload verbatim, sliced per span.
        {
            let r0 = roots[0].lock().unwrap();
            assert_eq!(r0.got.len(), 1);
            match &r0.got[0].payload {
                UpPayload::Sparse(s) => {
                    assert_eq!(s.chunks.len(), 1);
                    assert_eq!(s.chunks[0].val, vec![1.0]);
                }
                other => panic!("unexpected {other:?}"),
            }
            assert_eq!(r0.got[0].train_loss, 1.0, "loss forwarded untouched at G=1");
        }
        // Resync is served from the edge cache with no upstream traffic.
        let upstream_before = edge.upstream_stats().unwrap();
        match member.resync().unwrap() {
            DownMsg::DenseModel(m) => {
                // Chunk 1's idx 1 is segment-local: global coord 2 + 1.
                assert_eq!(*m, vec![1.0, 0.0, 0.0, 10.0, 0.0], "cache = θ0 + applied reply");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(edge.upstream_stats().unwrap(), upstream_before, "resync stayed local");
        member.shutdown().unwrap();
        let member_side = serve.join().unwrap().unwrap();
        assert!(member_side.data_up > 0);
        let upstream_stats = edge.finish().unwrap();
        for k in 0..2u16 {
            assert!(upstream_stats.link(Tier::Root, k).is_some(), "span {k} link recorded");
        }
        for j in root_joins {
            j.join().unwrap().unwrap();
        }
    }

    #[test]
    fn two_member_round_merges_in_worker_order_and_shares_the_reply() {
        let (addrs, roots, root_joins) = spawn_roots(1);
        let edge = EdgeHandler::new(
            upstream(&addrs, 0),
            full_partition(),
            vec![0.0; 5],
            0,
            2,
            Duration::from_secs(10),
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let edge_addr = listener.local_addr().unwrap().to_string();
        let opts = edge_server_opts(0, 2, 5, 0xE0E0);
        let edge2 = Arc::clone(&edge);
        let serve = thread::spawn(move || serve_cluster(listener, edge2, opts));

        let mut members = Vec::new();
        for w in 0..2u16 {
            let addr = edge_addr.clone();
            members.push(thread::spawn(move || {
                let mut t = TcpWorkerTransport::new({
                    let mut o = TcpOpts::new(addr, w, 5, 0xE0E0);
                    o.read_timeout = Duration::from_millis(100);
                    o.backoff_base = Duration::from_millis(20);
                    o
                });
                let reply = t.exchange(&member_up(w, 1)).unwrap();
                t.shutdown().unwrap();
                reply
            }));
        }
        let replies: Vec<DownMsg> = members.into_iter().map(|j| j.join().unwrap()).collect();
        // Both members got the identical assembled reply: the merged
        // update summed 1+2 on segment 0, 10+20 on segment 1.
        for r in &replies {
            match r {
                DownMsg::SparseDiff(s) => {
                    assert_eq!(s.chunks.len(), 2);
                    assert_eq!(s.chunks[0].val, vec![3.0]);
                    assert_eq!(s.chunks[1].val, vec![30.0]);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Each root span saw exactly ONE upstream update for the round —
        // ingress scales with groups, not members.
        for (k, root) in roots.iter().enumerate() {
            let r = root.lock().unwrap();
            assert_eq!(r.got.len(), 1, "span {k}");
            assert_eq!(r.got[0].train_loss, 1.0, "mean member loss");
        }
        serve.join().unwrap().unwrap();
        edge.finish().unwrap();
        for j in root_joins {
            j.join().unwrap().unwrap();
        }
    }
}
