//! Transport abstraction: how a worker exchanges update/reply pairs with
//! the server.
//!
//! Two implementations ship with the crate:
//!
//! * [`Loopback`] — in-process, but *not* a shortcut: every message is
//!   encoded to bytes, pushed through a [`ByteQueue`], and decoded on the
//!   other side, so the full codec path is exercised. The differential
//!   test in `tests/transport_equivalence.rs` relies on this to prove the
//!   wire format is lossless (bit-identical models vs the direct-struct
//!   trainer).
//! * [`crate::tcp::TcpWorkerTransport`] — real sockets across processes.
//!
//! [`WireConn`] is the shared send/receive engine over any
//! `Read + Write` stream; both transports and the TCP server use it, so
//! byte accounting is defined in exactly one place.

use crate::codec::{
    decode_down, decode_up, down_msg_type, encode_down_payload, encode_up_payload, up_msg_type,
    ClusterHello, Hello,
};
use crate::error::{NetError, NetResult};
use crate::frame::{read_frame, write_frame_buffered, FrameHeader, MsgType, HEADER_LEN};
use crate::msg::{DownMsg, UpMsg};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Hard ceiling on a single payload this endpoint will accept. Models in
/// this codebase are a few MB dense; 256 MiB leaves room for growth while
/// still rejecting forged multi-GiB lengths before allocation.
pub const MAX_PAYLOAD: usize = 256 << 20;

/// Which aggregation tier a per-link byte counter belongs to. `Root` is
/// traffic with a root (span) server; `Edge` is member traffic with an
/// edge aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Link to a root span server.
    Root,
    /// Link between a worker-group member and its edge aggregator.
    Edge,
}

/// Data-byte counters for one link, keyed by aggregation tier and span
/// index (0 for the single-span / edge-member case). Cluster transports
/// and the edge aggregator populate these so the byte-counter equality
/// proofs extend per tier; single-server paths leave the list empty,
/// keeping the existing exact-equality assertions untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Aggregation tier of the link.
    pub tier: Tier,
    /// Span index the link talks to (0 when spans don't apply).
    pub span: u16,
    /// Data bytes sent toward the server on this link.
    pub uplink_bytes: u64,
    /// Data bytes received from the server on this link.
    pub downlink_bytes: u64,
}

/// Byte counters, split the same way the simulator's accounting is:
/// data frames (training payloads, header included — frame length equals
/// `wire_bytes()` by construction) vs control frames (handshake,
/// heartbeats, shutdown, errors), which the simulator does not model.
///
/// `PartialEq` stays exact over every counter — including the per-link
/// breakdown — so "two runs produced the same stats" means byte-for-byte,
/// link-for-link equality.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// Bytes of worker→server data frames (updates, resync requests).
    pub data_up: u64,
    /// Bytes of server→worker data frames (model replies).
    pub data_down: u64,
    /// Bytes of control frames, both directions.
    pub control: u64,
    /// Number of data frames counted into `data_up`.
    pub frames_up: u64,
    /// Number of data frames counted into `data_down`.
    pub frames_down: u64,
    /// Serve-side only: connections refused because the server's
    /// `--max-conns` budget was full (each got an explicit error frame —
    /// whose bytes land in `control` — before the close). Always zero on
    /// worker-side counters, so clean-run equality checks are unaffected.
    pub rejected_conns: u64,
    /// Per-tier/per-span data-byte breakdown (see [`LinkStats`]). Empty
    /// everywhere except cluster/edge endpoints, sorted by `(tier, span)`.
    pub links: Vec<LinkStats>,
}

impl WireStats {
    /// Folds a frame of `bytes` length into the right counter.
    pub fn record(&mut self, msg_type: MsgType, bytes: usize) {
        if msg_type.is_data() {
            if msg_type.is_up() {
                self.data_up += bytes as u64;
                self.frames_up += 1;
            } else {
                self.data_down += bytes as u64;
                self.frames_down += 1;
            }
        } else {
            self.control += bytes as u64;
        }
    }

    /// Accumulates data bytes onto the `(tier, span)` link, inserting it
    /// (sorted) on first use.
    pub fn add_link(&mut self, tier: Tier, span: u16, uplink_bytes: u64, downlink_bytes: u64) {
        match self.links.binary_search_by_key(&(tier, span), |l| (l.tier, l.span)) {
            Ok(i) => {
                self.links[i].uplink_bytes += uplink_bytes;
                self.links[i].downlink_bytes += downlink_bytes;
            }
            Err(i) => {
                self.links.insert(i, LinkStats { tier, span, uplink_bytes, downlink_bytes });
            }
        }
    }

    /// Looks up the `(tier, span)` link, if any traffic was recorded on it.
    pub fn link(&self, tier: Tier, span: u16) -> Option<&LinkStats> {
        self.links
            .binary_search_by_key(&(tier, span), |l| (l.tier, l.span))
            .ok()
            .map(|i| &self.links[i])
    }

    /// Sums another endpoint's counters into this one, link-wise for the
    /// per-tier breakdown.
    pub fn merge(&mut self, other: &WireStats) {
        self.data_up += other.data_up;
        self.data_down += other.data_down;
        self.control += other.control;
        self.frames_up += other.frames_up;
        self.frames_down += other.frames_down;
        self.rejected_conns += other.rejected_conns;
        for l in &other.links {
            self.add_link(l.tier, l.span, l.uplink_bytes, l.downlink_bytes);
        }
    }
}

/// A fully decoded incoming frame.
#[derive(Debug)]
pub enum Event {
    /// Worker `worker` sent training update `seq`.
    Update {
        /// Sending worker id.
        worker: u16,
        /// 1-based per-worker sequence number.
        seq: u32,
        /// Decoded update.
        msg: Box<UpMsg>,
    },
    /// Server replied to update `seq`.
    Reply {
        /// Addressed worker id.
        worker: u16,
        /// Sequence of the update this answers.
        seq: u32,
        /// Decoded reply.
        msg: DownMsg,
    },
    /// Worker asks for a full-model resynchronisation (reply was lost).
    Resync {
        /// Requesting worker id.
        worker: u16,
        /// Worker's current applied count, echoed for logging.
        seq: u32,
    },
    /// Handshake opener from a worker.
    Hello {
        /// Connecting worker id.
        worker: u16,
        /// Negotiation payload.
        hello: Hello,
    },
    /// Handshake answer from the server.
    HelloAck {
        /// Server's negotiation payload.
        hello: Hello,
    },
    /// Cluster handshake opener from a cluster-aware worker.
    ClusterHello {
        /// Connecting worker id.
        worker: u16,
        /// Span negotiation payload.
        hello: ClusterHello,
    },
    /// Cluster handshake answer from a span server.
    ClusterHelloAck {
        /// Span server's negotiation payload.
        hello: ClusterHello,
        /// Encoded partition map (`ClusterLayout::encode`).
        layout: Vec<u8>,
    },
    /// Liveness probe.
    Heartbeat {
        /// Probing worker id.
        worker: u16,
    },
    /// Liveness answer.
    HeartbeatAck,
    /// Graceful end-of-run from a worker.
    Shutdown {
        /// Departing worker id.
        worker: u16,
    },
    /// Server acknowledged the shutdown; the connection may close.
    ShutdownAck,
    /// Peer reported a fatal condition.
    Error {
        /// Peer's reason string.
        reason: String,
    },
}

/// Framed connection over any byte stream. Owns the per-endpoint
/// [`WireStats`]; every send and receive is counted here and nowhere else.
///
/// Sends go through a connection-local scratch buffer
/// ([`write_frame_buffered`]): header and payload land on the wire in one
/// `write_all`, and after the first few sends the buffer has grown to the
/// connection's largest frame, so the steady-state send path allocates
/// nothing. The bytes — and therefore every [`WireStats`] counter — are
/// identical to the unbuffered path.
pub struct WireConn<S> {
    stream: S,
    stats: WireStats,
    max_payload: usize,
    /// Reusable frame-encoding scratch; see [`write_frame_buffered`].
    wbuf: Vec<u8>,
}

impl<S: Read + Write> WireConn<S> {
    /// Wraps a stream with the default payload ceiling.
    pub fn new(stream: S) -> Self {
        WireConn { stream, stats: WireStats::default(), max_payload: MAX_PAYLOAD, wbuf: Vec::new() }
    }

    /// Wraps a stream with an explicit payload ceiling (tests use small
    /// caps to exercise the oversize rejection).
    pub fn with_max_payload(stream: S, max_payload: usize) -> Self {
        WireConn { stream, stats: WireStats::default(), max_payload, wbuf: Vec::new() }
    }

    /// Byte counters accumulated so far.
    pub fn stats(&self) -> WireStats {
        self.stats.clone()
    }

    /// The wrapped stream (for socket configuration: timeouts, nodelay).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Sends a worker→server update. The frame length is `msg.wire_bytes()`.
    pub fn send_update(&mut self, worker: u16, seq: u32, msg: &UpMsg) -> NetResult<()> {
        let ty = up_msg_type(&msg.payload);
        let payload = encode_up_payload(msg)?;
        let n = write_frame_buffered(&mut self.stream, &mut self.wbuf, ty, worker, seq, &payload)?;
        debug_assert_eq!(n, msg.wire_bytes());
        self.stats.record(ty, n);
        Ok(())
    }

    /// Sends a server→worker reply. The frame length is `msg.wire_bytes()`.
    pub fn send_reply(&mut self, worker: u16, seq: u32, msg: &DownMsg) -> NetResult<()> {
        let ty = down_msg_type(msg);
        let payload = encode_down_payload(msg)?;
        let n = write_frame_buffered(&mut self.stream, &mut self.wbuf, ty, worker, seq, &payload)?;
        debug_assert_eq!(n, msg.wire_bytes());
        self.stats.record(ty, n);
        Ok(())
    }

    /// Sends a resync request (control traffic — its dense-model reply is
    /// what shows up in the data counters).
    pub fn send_resync(&mut self, worker: u16, applied: u32) -> NetResult<()> {
        let n = write_frame_buffered(
            &mut self.stream,
            &mut self.wbuf,
            MsgType::Resync,
            worker,
            applied,
            &[],
        )?;
        self.stats.record(MsgType::Resync, n);
        Ok(())
    }

    /// Sends a control frame with a [`Hello`] payload.
    pub fn send_hello(&mut self, ty: MsgType, worker: u16, hello: &Hello) -> NetResult<()> {
        debug_assert!(matches!(ty, MsgType::Hello | MsgType::HelloAck));
        let payload = hello.encode();
        let n = write_frame_buffered(&mut self.stream, &mut self.wbuf, ty, worker, 0, &payload)?;
        self.stats.record(ty, n);
        Ok(())
    }

    /// Sends a control frame with a [`ClusterHello`] payload. `layout` is
    /// empty on the worker hello and the encoded partition map on the ack.
    pub fn send_cluster_hello(
        &mut self,
        ty: MsgType,
        worker: u16,
        hello: &ClusterHello,
        layout: &[u8],
    ) -> NetResult<()> {
        debug_assert!(matches!(ty, MsgType::ClusterHello | MsgType::ClusterHelloAck));
        let payload = hello.encode(layout);
        let n = write_frame_buffered(&mut self.stream, &mut self.wbuf, ty, worker, 0, &payload)?;
        self.stats.record(ty, n);
        Ok(())
    }

    /// Sends an empty-payload control frame (heartbeats, shutdown).
    pub fn send_control(&mut self, ty: MsgType, worker: u16) -> NetResult<()> {
        debug_assert!(
            !ty.is_data()
                && !matches!(
                    ty,
                    MsgType::Hello
                        | MsgType::HelloAck
                        | MsgType::ClusterHello
                        | MsgType::ClusterHelloAck
                )
        );
        let n = write_frame_buffered(&mut self.stream, &mut self.wbuf, ty, worker, 0, &[])?;
        self.stats.record(ty, n);
        Ok(())
    }

    /// Sends an error frame with a UTF-8 reason.
    pub fn send_error(&mut self, worker: u16, reason: &str) -> NetResult<()> {
        let n = write_frame_buffered(
            &mut self.stream,
            &mut self.wbuf,
            MsgType::Error,
            worker,
            0,
            reason.as_bytes(),
        )?;
        self.stats.record(MsgType::Error, n);
        Ok(())
    }

    /// Reads and fully decodes the next frame.
    pub fn read_event(&mut self) -> NetResult<Event> {
        let (header, payload) = read_frame(&mut self.stream, self.max_payload)?;
        self.stats.record(header.msg_type, HEADER_LEN + payload.len());
        decode_event(header, payload)
    }
}

/// Classifies a decoded frame into an [`Event`]. Shared with the evented
/// server's connection state machine (`conn.rs`), which decodes frames
/// incrementally instead of through [`WireConn::read_event`].
pub(crate) fn decode_event(header: FrameHeader, payload: Vec<u8>) -> NetResult<Event> {
    let FrameHeader { msg_type, worker, seq, .. } = header;
    Ok(match msg_type {
        MsgType::UpDense | MsgType::UpSparse | MsgType::UpTernary => {
            Event::Update { worker, seq, msg: Box::new(decode_up(msg_type, &payload)?) }
        }
        MsgType::DownDense | MsgType::DownSparse => {
            Event::Reply { worker, seq, msg: decode_down(msg_type, &payload)? }
        }
        MsgType::Resync => {
            expect_empty(&payload, "resync")?;
            Event::Resync { worker, seq }
        }
        MsgType::Hello => Event::Hello { worker, hello: Hello::decode(&payload)? },
        MsgType::HelloAck => Event::HelloAck { hello: Hello::decode(&payload)? },
        MsgType::ClusterHello => {
            let (hello, layout) = ClusterHello::decode(&payload)?;
            if !layout.is_empty() {
                return Err(NetError::Malformed("layout bytes on a worker cluster hello"));
            }
            Event::ClusterHello { worker, hello }
        }
        MsgType::ClusterHelloAck => {
            let (hello, layout) = ClusterHello::decode(&payload)?;
            Event::ClusterHelloAck { hello, layout }
        }
        MsgType::Heartbeat => {
            expect_empty(&payload, "heartbeat")?;
            Event::Heartbeat { worker }
        }
        MsgType::HeartbeatAck => {
            expect_empty(&payload, "heartbeat ack")?;
            Event::HeartbeatAck
        }
        MsgType::Shutdown => {
            expect_empty(&payload, "shutdown")?;
            Event::Shutdown { worker }
        }
        MsgType::ShutdownAck => {
            expect_empty(&payload, "shutdown ack")?;
            Event::ShutdownAck
        }
        MsgType::Error => Event::Error {
            reason: String::from_utf8(payload)
                .map_err(|_| NetError::Malformed("error frame not utf-8"))?,
        },
    })
}

fn expect_empty(payload: &[u8], what: &'static str) -> NetResult<()> {
    if payload.is_empty() {
        Ok(())
    } else {
        Err(NetError::Malformed(what))
    }
}

/// How a worker talks to the server, independent of the medium. The
/// contract is synchronous request/reply — exactly the shape of the DGS
/// training loop (send update, wait for the model reply, step again).
pub trait Transport {
    /// Sends one training update and blocks until the matching reply.
    fn exchange(&mut self, up: &UpMsg) -> NetResult<DownMsg>;

    /// Requests a full-model resynchronisation.
    fn resync(&mut self) -> NetResult<DownMsg>;

    /// Announces a graceful end-of-run and waits for the acknowledgement.
    fn shutdown(&mut self) -> NetResult<()>;

    /// Worker-side byte counters.
    fn stats(&self) -> WireStats;
}

// ---------------------------------------------------------------------------
// loopback

/// Shared in-memory byte pipe; the loopback stand-in for a socket buffer.
#[derive(Clone, Default)]
pub struct ByteQueue(Arc<Mutex<VecDeque<u8>>>);

impl ByteQueue {
    /// Bytes currently queued. A poisoned lock just means a peer thread
    /// panicked mid-push; plain bytes cannot be left half-written, so
    /// recover the queue instead of propagating the panic.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Read for ByteQueue {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut q = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if q.is_empty() {
            // An empty queue behaves like a socket read timeout: the
            // loopback driver always writes a full frame before reading,
            // so hitting this means a protocol bug, not a race.
            return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "loopback empty"));
        }
        let n = buf.len().min(q.len());
        for (slot, b) in buf.iter_mut().zip(q.drain(..n)) {
            *slot = b;
        }
        Ok(n)
    }
}

impl Write for ByteQueue {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend(buf.iter().copied());
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One endpoint of a loopback pair: reads from one queue, writes to the
/// other.
pub struct LoopbackStream {
    rx: ByteQueue,
    tx: ByteQueue,
}

impl Read for LoopbackStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for LoopbackStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.tx.flush()
    }
}

/// Builds a crossed pair of in-memory streams (a "socket" and its peer).
pub fn loopback_pair() -> (LoopbackStream, LoopbackStream) {
    let a = ByteQueue::default();
    let b = ByteQueue::default();
    (LoopbackStream { rx: a.clone(), tx: b.clone() }, LoopbackStream { rx: b, tx: a })
}

/// Server-side update handler: the seam between the transport layer and
/// the training logic. `dgs-net` itself has no opinion about what happens
/// to an update; `AsyncServerLogic` (via `runtime::LogicHandler`) plugs in
/// here.
pub trait UpdateHandler {
    /// Processes one in-order update from `worker` and produces the reply.
    fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg;

    /// Produces a full-model recovery reply for `worker` and resets the
    /// server's tracking state for it (v_k ← M, pending cleared).
    fn handle_resync(&mut self, worker: u16) -> DownMsg;

    /// Number of updates from `worker` folded into the model so far —
    /// drives duplicate suppression after a reconnect.
    fn applied(&self, worker: u16) -> u64;
}

/// Reason string sent to peers when the server's training state can no
/// longer be trusted (a handler thread panicked mid-apply).
pub const POISONED_REASON: &str = "server training state poisoned";

/// Outcome of delivering one update frame through the sequence check.
#[derive(Debug)]
pub enum Sequenced {
    /// `seq == applied + 1`: the update was applied; here is its reply.
    Applied(DownMsg),
    /// `seq <= applied`: a retransmit of an update already folded in (its
    /// reply was lost). Applying again would corrupt the model, so the
    /// handler answered with a resync reply instead.
    Duplicate(DownMsg),
    /// `seq > applied + 1`: a hard protocol error; the connection must be
    /// torn down. Carries the applied count for the error message.
    Gap {
        /// Updates actually folded in for this worker.
        applied: u64,
    },
}

/// Concurrent server-side handler: the seam the TCP server actually
/// drives. Unlike [`UpdateHandler`] it takes `&self`, so implementations
/// choose their own locking — a single `Mutex` (the blanket impl below,
/// which every existing `Arc<Mutex<H>>` call site goes through) or
/// internal striping (`ShardedMdtServer` via `runtime::ShardedLogicHandler`),
/// where connection threads for different workers proceed in parallel.
///
/// The sequence check lives *inside* [`Self::handle_sequenced`] so the
/// duplicate/gap decision is atomic with the apply, exactly as it was when
/// the whole exchange ran under one connection-shared `Mutex`. Errors are
/// reason strings for the peer (an `Error` frame), never panics.
pub trait SharedUpdateHandler: Send + Sync {
    /// Checks `seq` against the worker's applied count and, when in
    /// order, applies the update.
    fn handle_sequenced(&self, worker: u16, seq: u32, up: UpMsg) -> Result<Sequenced, &'static str>;

    /// Produces a full-model recovery reply for `worker` and resets the
    /// server's tracking state for it.
    fn handle_resync(&self, worker: u16) -> Result<DownMsg, &'static str>;

    /// Number of updates from `worker` folded into the model so far.
    fn applied(&self, worker: u16) -> Result<u64, &'static str>;
}

impl<H: UpdateHandler + Send> SharedUpdateHandler for Mutex<H> {
    fn handle_sequenced(&self, worker: u16, seq: u32, up: UpMsg) -> Result<Sequenced, &'static str> {
        // One lock for check + apply: a poisoned lock means another
        // connection's thread panicked mid-update and the training state
        // cannot be trusted. The lock is taken *inside* the containment,
        // so a panicking apply still poisons it (every later caller gets
        // the reason string) while this connection answers with an error
        // frame instead of unwinding its thread — the contract above.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut h = self.lock().map_err(|_| POISONED_REASON)?;
            let applied = h.applied(worker);
            Ok(if u64::from(seq) == applied + 1 {
                Sequenced::Applied(h.handle_update(worker, up))
            } else if u64::from(seq) <= applied {
                Sequenced::Duplicate(h.handle_resync(worker))
            } else {
                Sequenced::Gap { applied }
            })
        }))
        .unwrap_or(Err(POISONED_REASON))
    }

    fn handle_resync(&self, worker: u16) -> Result<DownMsg, &'static str> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.lock().map_err(|_| POISONED_REASON).map(|mut h| h.handle_resync(worker))
        }))
        .unwrap_or(Err(POISONED_REASON))
    }

    fn applied(&self, worker: u16) -> Result<u64, &'static str> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.lock().map_err(|_| POISONED_REASON).map(|h| h.applied(worker))
        }))
        .unwrap_or(Err(POISONED_REASON))
    }
}

/// In-process transport that still round-trips every byte through the
/// codec: update frames are written into one [`ByteQueue`], decoded on the
/// "server" side, handled, and the reply frames travel back through the
/// other queue. Sequence numbers are checked on both sides. The handler is
/// shared (`Rc<RefCell<_>>`) so one server logic can serve a per-worker
/// transport per training participant, exactly like the TCP server shares
/// its logic across connection threads.
pub struct Loopback<H: UpdateHandler> {
    worker: u16,
    seq: u32,
    worker_conn: WireConn<LoopbackStream>,
    server_conn: WireConn<LoopbackStream>,
    handler: Rc<RefCell<H>>,
}

impl<H: UpdateHandler> Loopback<H> {
    /// Builds a loopback transport for `worker` over the shared `handler`.
    pub fn new(worker: u16, handler: Rc<RefCell<H>>) -> Self {
        let (worker_side, server_side) = loopback_pair();
        Loopback {
            worker,
            seq: 0,
            worker_conn: WireConn::new(worker_side),
            server_conn: WireConn::new(server_side),
            handler,
        }
    }

    /// Server-side byte counters (the worker side is [`Transport::stats`]).
    pub fn server_stats(&self) -> WireStats {
        self.server_conn.stats()
    }

    /// Pumps one frame through the server side and pushes the reply back.
    /// Handler dispatch is contained like the TCP path's: a panicking
    /// apply (or a poisoned `RefCell` borrow) comes back as a protocol
    /// error, never an unwind through the transport.
    fn serve_one(&mut self) -> NetResult<()> {
        match self.server_conn.read_event()? {
            Event::Update { worker, seq, msg } => {
                if worker != self.worker {
                    return Err(NetError::Protocol(format!(
                        "loopback worker id mismatch: conn {} frame {worker}",
                        self.worker
                    )));
                }
                let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut handler = self.handler.borrow_mut();
                    let applied = handler.applied(worker);
                    if u64::from(seq) != applied + 1 {
                        return Err(NetError::Protocol(format!(
                            "out-of-order update: seq {seq}, applied {applied}"
                        )));
                    }
                    Ok(handler.handle_update(worker, *msg))
                }))
                .unwrap_or_else(|_| {
                    Err(NetError::Protocol("loopback handler panicked".into()))
                })?;
                self.server_conn.send_reply(worker, seq, &reply)
            }
            Event::Resync { worker, .. } => {
                let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.handler.borrow_mut().handle_resync(worker)
                }))
                .map_err(|_| NetError::Protocol("loopback handler panicked".into()))?;
                self.server_conn.send_reply(worker, self.seq, &reply)
            }
            Event::Shutdown { worker } => {
                self.server_conn.send_control(MsgType::ShutdownAck, worker)
            }
            other => Err(NetError::Protocol(format!("unexpected loopback frame: {other:?}"))),
        }
    }

    /// Reads the worker-side reply for sequence `seq`.
    fn take_reply(&mut self, seq: u32) -> NetResult<DownMsg> {
        match self.worker_conn.read_event()? {
            Event::Reply { worker, seq: got, msg } => {
                if worker != self.worker || got != seq {
                    return Err(NetError::Protocol(format!(
                        "loopback reply routing: got worker {worker} seq {got}, want {} {seq}",
                        self.worker
                    )));
                }
                Ok(msg)
            }
            other => Err(NetError::Protocol(format!("expected reply, got {other:?}"))),
        }
    }
}

impl<H: UpdateHandler> Transport for Loopback<H> {
    fn exchange(&mut self, up: &UpMsg) -> NetResult<DownMsg> {
        self.seq += 1;
        self.worker_conn.send_update(self.worker, self.seq, up)?;
        self.serve_one()?;
        self.take_reply(self.seq)
    }

    fn resync(&mut self) -> NetResult<DownMsg> {
        self.worker_conn.send_resync(self.worker, self.seq)?;
        self.serve_one()?;
        self.take_reply(self.seq)
    }

    fn shutdown(&mut self) -> NetResult<()> {
        self.worker_conn.send_control(MsgType::Shutdown, self.worker)?;
        self.serve_one()?;
        match self.worker_conn.read_event()? {
            Event::ShutdownAck => Ok(()),
            other => Err(NetError::Protocol(format!("expected shutdown ack, got {other:?}"))),
        }
    }

    fn stats(&self) -> WireStats {
        self.worker_conn.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{SparseUpdate, SparseVec, UpPayload};
    use std::sync::Arc as StdArc;

    /// Echo-style handler: replies with a dense "model" encoding the call
    /// count, tracks applied counts per worker.
    struct ToyHandler {
        applied: Vec<u64>,
        resyncs: usize,
    }

    impl ToyHandler {
        fn new(workers: usize) -> Self {
            ToyHandler { applied: vec![0; workers], resyncs: 0 }
        }
    }

    impl UpdateHandler for ToyHandler {
        fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg {
            self.applied[worker as usize] += 1;
            let tag = self.applied[worker as usize] as f32;
            DownMsg::SparseDiff(SparseUpdate {
                chunks: vec![SparseVec {
                    idx: vec![worker as u32],
                    val: vec![tag + up.train_loss as f32],
                }],
            })
        }

        fn handle_resync(&mut self, worker: u16) -> DownMsg {
            self.resyncs += 1;
            DownMsg::DenseModel(StdArc::new(vec![worker as f32; 4]))
        }

        fn applied(&self, worker: u16) -> u64 {
            self.applied[worker as usize]
        }
    }

    fn up(loss: f64) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![0, 2], val: vec![1.0, -1.0] }],
            }),
            train_loss: loss,
        }
    }

    #[test]
    fn byte_queue_pipes_bytes() {
        let (mut a, mut b) = loopback_pair();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        // And the other direction.
        b.write_all(b"yo").unwrap();
        let mut buf = [0u8; 2];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"yo");
        // Empty queue acts like a read timeout.
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn loopback_exchange_and_counters() {
        let handler = Rc::new(RefCell::new(ToyHandler::new(1)));
        let mut t = Loopback::new(0, handler);
        let msg = up(0.5);
        let expect_up = msg.wire_bytes() as u64;
        let reply = t.exchange(&msg).unwrap();
        let expect_down = reply.wire_bytes() as u64;
        match reply {
            DownMsg::SparseDiff(s) => assert_eq!(s.chunks[0].val, vec![1.5]),
            other => panic!("unexpected reply {other:?}"),
        }
        // Worker conn counted the sent update and received reply; the
        // server conn saw the identical bytes. Frame length == wire_bytes.
        let w = t.stats();
        let s = t.server_stats();
        assert_eq!(w.data_up, expect_up);
        assert_eq!(w.data_down, expect_down);
        assert_eq!(w, s);
        assert_eq!(w.frames_up, 1);
        assert_eq!(w.frames_down, 1);
        assert_eq!(w.control, 0);
    }

    #[test]
    fn loopback_sequences_and_shutdown() {
        let handler = Rc::new(RefCell::new(ToyHandler::new(2)));
        {
            let mut t = Loopback::new(1, Rc::clone(&handler));
            for i in 1..=3 {
                let reply = t.exchange(&up(i as f64)).unwrap();
                match reply {
                    DownMsg::SparseDiff(s) => {
                        assert_eq!(s.chunks[0].idx, vec![1]);
                        assert_eq!(s.chunks[0].val, vec![i as f32 + i as f32]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            t.shutdown().unwrap();
            let w = t.stats();
            assert_eq!(w.frames_up, 3);
            // Shutdown + ack are control bytes, not data.
            assert_eq!(w.control, 2 * HEADER_LEN as u64);
        }
        assert_eq!(handler.borrow().applied(1), 3);
        assert_eq!(handler.borrow().applied(0), 0);
    }

    #[test]
    fn loopback_resync_resets_nothing_but_replies_dense() {
        let handler = Rc::new(RefCell::new(ToyHandler::new(1)));
        let mut t = Loopback::new(0, Rc::clone(&handler));
        t.exchange(&up(1.0)).unwrap();
        match t.resync().unwrap() {
            DownMsg::DenseModel(m) => assert_eq!(m.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(handler.borrow().resyncs, 1);
    }

    #[test]
    fn loopback_handler_shared_across_workers() {
        // One handler, one transport per worker — the same sharing shape
        // the cross-process runtime uses.
        let handler = Rc::new(RefCell::new(ToyHandler::new(3)));
        let mut transports: Vec<_> =
            (0..3u16).map(|w| Loopback::new(w, Rc::clone(&handler))).collect();
        for round in 0..4 {
            for t in &mut transports {
                t.exchange(&up(round as f64)).unwrap();
            }
        }
        assert_eq!(handler.borrow().applied, vec![4, 4, 4]);
    }

    #[test]
    fn wire_stats_classification() {
        let mut s = WireStats::default();
        s.record(MsgType::UpTernary, 100);
        s.record(MsgType::DownDense, 200);
        s.record(MsgType::Heartbeat, HEADER_LEN);
        s.record(MsgType::Resync, HEADER_LEN);
        assert_eq!(s.data_up, 100);
        assert_eq!(s.data_down, 200);
        assert_eq!(s.control, 2 * HEADER_LEN as u64);
        assert_eq!((s.frames_up, s.frames_down), (1, 1));
        let mut t = WireStats::default();
        t.merge(&s);
        assert_eq!(t, s);
    }

    #[test]
    fn link_breakdown_accumulates_sorted_and_merges() {
        let mut s = WireStats::default();
        s.add_link(Tier::Edge, 0, 10, 20);
        s.add_link(Tier::Root, 2, 1, 2);
        s.add_link(Tier::Root, 0, 100, 200);
        s.add_link(Tier::Root, 2, 9, 8);
        let key: Vec<_> = s.links.iter().map(|l| (l.tier, l.span)).collect();
        assert_eq!(key, vec![(Tier::Root, 0), (Tier::Root, 2), (Tier::Edge, 0)]);
        assert_eq!(s.link(Tier::Root, 2).unwrap().uplink_bytes, 10);
        assert_eq!(s.link(Tier::Root, 2).unwrap().downlink_bytes, 10);
        assert!(s.link(Tier::Edge, 7).is_none());

        let mut t = WireStats::default();
        t.add_link(Tier::Root, 1, 5, 5);
        t.merge(&s);
        assert_eq!(t.links.len(), 4);
        assert_eq!(t.link(Tier::Root, 0).unwrap().uplink_bytes, 100);
        // Exact equality covers the link list too.
        let mut u = t.clone();
        assert_eq!(u, t);
        u.add_link(Tier::Edge, 0, 1, 0);
        assert_ne!(u, t);
    }

    #[test]
    fn decode_event_rejects_nonempty_control() {
        let header = FrameHeader {
            version: 1,
            msg_type: MsgType::Heartbeat,
            worker: 0,
            seq: 0,
            len: 1,
            crc: 0,
        };
        assert!(decode_event(header, vec![9]).is_err());
    }
}
