//! CRC-32 (IEEE 802.3 / zlib polynomial), table-driven, `std`-only.
//!
//! Every frame header carries a CRC32 of its payload so corruption in
//! transit is detected before a payload is decoded. The table is built at
//! compile time; the streaming form ([`crc32_update`]) lets callers fold
//! large payloads without concatenating buffers.

/// Reflected polynomial for CRC-32 (IEEE).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Folds `data` into a running CRC state. Start from [`CRC_INIT`] and
/// finish with [`crc32_finish`].
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Initial state for a streaming CRC32.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Final xor for a streaming CRC32.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// CRC32 of a complete buffer.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // Used by the golden frame fixtures in codec.rs.
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let oneshot = crc32(&data);
        let mut state = CRC_INIT;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(crc32_finish(state), oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"parameter server frame".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
