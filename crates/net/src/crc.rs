//! CRC-32 (IEEE 802.3 / zlib polynomial), table-driven, `std`-only.
//!
//! Every frame header carries a CRC32 of its payload so corruption in
//! transit is detected before a payload is decoded. The sharded server
//! verifies/computes CRCs *off-lock* on every frame, so the kernel here is
//! the 8-lane "slicing-by-8" form: eight 256-entry tables (built at
//! compile time) let the hot loop fold eight payload bytes per iteration
//! with eight independent table lookups instead of eight serial
//! byte-at-a-time steps. The classic byte-at-a-time loop is kept as
//! [`crc32_update_bytewise`] — the differential oracle the tests (and the
//! proptest suite in `tests/crc_differential.rs`) compare against, since
//! lane-table bugs corrupt *some* lengths/alignments while passing others.
//!
//! The streaming form ([`crc32_update`]) lets callers fold large payloads
//! without concatenating buffers; all kernels share the same state
//! convention, so they are interchangeable mid-stream.
//!
//! [`crc32_update`] is a dispatch seam: under [`Kernel::Simd`] (the
//! default on capable CPUs, overridable with `DGS_KERNEL=scalar`) buffers
//! of ≥ 64 bytes take the `PCLMULQDQ` folding kernel in [`crate::crc_simd`],
//! which is bitwise identical by construction — CRC-32 has one correct
//! answer. [`crc32_update_with`] pins an explicit backend for differential
//! tests and benches.

pub use dgs_tensor::Kernel;

/// Reflected polynomial for CRC-32 (IEEE). Shared with `crc_simd`, which
/// derives its folding constants from it at compile time.
pub(crate) const POLY: u32 = 0xEDB8_8320;

/// Lane tables for slicing-by-8. Lane 0 is the classic byte table
/// (`T0[b]` = CRC of the single byte `b`, shifted out); lane `k` extends
/// it by one zero byte: `Tk[b] = (Tk−1[b] >> 8) ^ T0[Tk−1[b] & 0xFF]`, so
/// `Tk[b]` is the CRC contribution of byte `b` followed by `k` zero
/// bytes. XORing the eight lane lookups advances the state by eight bytes
/// at once.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Folds `data` into a running CRC state on the runtime-selected backend
/// ([`Kernel::runtime`]). Start from [`CRC_INIT`] and finish with
/// [`crc32_finish`].
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    crc32_update_with(Kernel::runtime(), state, data)
}

/// Folds `data` into a running CRC state on an explicitly chosen backend.
/// Both backends produce identical states for identical inputs; this
/// entry point exists so differential tests and benches can pin one.
pub fn crc32_update_with(kernel: Kernel, state: u32, data: &[u8]) -> u32 {
    match kernel {
        Kernel::Scalar => crc32_update_sliced(state, data),
        Kernel::Simd => crate::crc_simd::crc32_update_clmul(state, data),
    }
}

/// The slicing-by-8 scalar kernel — eight lane-table lookups fold eight
/// payload bytes per iteration. The `Kernel::Scalar` backend, and the
/// tail/fallback path of the `PCLMULQDQ` backend.
pub fn crc32_update_sliced(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = data.chunks_exact(8);
    for d in &mut chunks {
        // First word absorbs the running state; the second is pure data.
        let a = u32::from_le_bytes([d[0], d[1], d[2], d[3]]) ^ crc;
        let b = u32::from_le_bytes([d[4], d[5], d[6], d[7]]);
        crc = TABLES[7][(a & 0xFF) as usize]
            ^ TABLES[6][((a >> 8) & 0xFF) as usize]
            ^ TABLES[5][((a >> 16) & 0xFF) as usize]
            ^ TABLES[4][(a >> 24) as usize]
            ^ TABLES[3][(b & 0xFF) as usize]
            ^ TABLES[2][((b >> 8) & 0xFF) as usize]
            ^ TABLES[1][((b >> 16) & 0xFF) as usize]
            ^ TABLES[0][(b >> 24) as usize];
    }
    crc32_update_bytewise(crc, chunks.remainder())
}

/// Reference byte-at-a-time kernel — the differential oracle for
/// [`crc32_update`]. Identical state convention; also used for the
/// sub-8-byte tail of the sliced loop.
pub fn crc32_update_bytewise(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Initial state for a streaming CRC32.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Final xor for a streaming CRC32.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// CRC32 of a complete buffer.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // Used by the golden frame fixtures in codec.rs.
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let oneshot = crc32(&data);
        // Odd chunk sizes force every lane/tail combination mid-stream.
        for chunk_size in [1, 3, 7, 8, 13, 64, 1021] {
            let mut state = CRC_INIT;
            for chunk in data.chunks(chunk_size) {
                state = crc32_update(state, chunk);
            }
            assert_eq!(crc32_finish(state), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn sliced_matches_bytewise_oracle() {
        // Deterministic xorshift fill — no `rand` dependency on the wire
        // path. Every length 0..=64 plus larger buffers at every start
        // offset 0..8 so each lane alignment is hit.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut data = vec![0u8; 4096];
        for b in data.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        for len in 0..=64usize {
            for start in 0..8usize {
                let slice = &data[start..start + len];
                assert_eq!(
                    crc32_finish(crc32_update_sliced(CRC_INIT, slice)),
                    crc32_finish(crc32_update_bytewise(CRC_INIT, slice)),
                    "len {len} start {start}"
                );
            }
        }
        assert_eq!(crc32_update_sliced(CRC_INIT, &data), crc32_update_bytewise(CRC_INIT, &data));
        // Mid-stream handoff between the two kernels must also agree.
        let mixed =
            crc32_update_bytewise(crc32_update_sliced(CRC_INIT, &data[..1000]), &data[1000..]);
        assert_eq!(crc32_finish(mixed), crc32(&data));
    }

    #[test]
    fn backends_agree_on_every_length() {
        let data: Vec<u8> = (0..=255u8).cycle().take(512).collect();
        for len in [0, 1, 8, 63, 64, 65, 200, 512] {
            assert_eq!(
                crc32_update_with(Kernel::Scalar, CRC_INIT, &data[..len]),
                crc32_update_with(Kernel::Simd, CRC_INIT, &data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"parameter server frame".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
