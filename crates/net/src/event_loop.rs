//! Readiness-driven TCP server: one poller, one thread, tens of
//! thousands of connections.
//!
//! [`serve_cluster_evented`] is the drop-in peer of
//! [`crate::tcp::serve_cluster`]: same [`ServerOpts`], same
//! [`SharedUpdateHandler`] seam, same returned [`WireStats`] — but the
//! per-connection cost is a `Conn` state machine (a decoder, a phase, a
//! bounded write queue) instead of an OS thread. The protocol itself
//! lives in `conn::protocol_step`, shared with the threaded backend, so
//! the two produce identical frames for identical inputs; the threaded
//! server remains the differential oracle
//! (`tests/evented_equivalence.rs`).
//!
//! Event-loop shape, per iteration:
//!
//! 1. `Poller::wait` (poll(2) by default, epoll behind `net-epoll`).
//! 2. Listener readable → accept until `WouldBlock`; connections beyond
//!    `max_conns` get an explicit error frame before close (counted in
//!    [`WireStats::rejected_conns`]) instead of a silent drop.
//! 3. Connection readable → drain socket → incremental decode → protocol
//!    step → enqueue replies (budget-checked) → opportunistic flush.
//! 4. Connection writable → drain the write queue with coalesced
//!    `writev`.
//! 5. Interest maintenance: write interest only while bytes are queued.
//!
//! The loop exits when every expected worker has sent a graceful
//! shutdown (or the deadline expires, mirroring the threaded server's
//! error), after a bounded blocking drain of any still-queued frames.

use crate::conn::Conn;
use crate::error::{NetError, NetResult};
use crate::poll::{Fd, Interest, PollEvent, Poller};
use crate::tcp::ServerOpts;
use crate::transport::{SharedUpdateHandler, WireConn, WireStats};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Event-loop-specific knobs, alongside the protocol-level [`ServerOpts`].
#[derive(Debug, Clone)]
pub struct EventedOpts {
    /// Connection budget. Accepts beyond it are answered with an error
    /// frame and closed; [`WireStats::rejected_conns`] counts them.
    pub max_conns: usize,
    /// Per-connection write-queue budget in bytes. A worker that stops
    /// draining its downlink is disconnected when its queue would exceed
    /// this (its reconnect/resync path recovers the stream).
    pub write_budget: usize,
}

impl Default for EventedOpts {
    fn default() -> Self {
        // 16k connections on one thread is the design point; 64 MiB of
        // queued downlink per connection is far beyond any healthy
        // worker's lag while still bounding a stalled one.
        EventedOpts { max_conns: 16_384, write_budget: 64 << 20 }
    }
}

#[cfg(unix)]
fn raw_fd_listener(l: &TcpListener) -> Fd {
    use std::os::unix::io::AsRawFd;
    l.as_raw_fd()
}

#[cfg(unix)]
fn raw_fd_stream(s: &TcpStream) -> Fd {
    use std::os::unix::io::AsRawFd;
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd_listener(_l: &TcpListener) -> Fd {
    -1
}

#[cfg(not(unix))]
fn raw_fd_stream(_s: &TcpStream) -> Fd {
    -1
}

/// One registered connection: the state machine plus what the poller
/// needs to manage it.
struct Entry {
    conn: Conn<TcpStream>,
    fd: Fd,
    /// Whether the current registration includes write interest.
    writable: bool,
}

/// The poller token reserved for the listener; connection slot `s` uses
/// token `s + 1`.
const LISTENER: usize = 0;

/// How long the final blocking drain may spend per write.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Deregisters and retires connection `slot`, folding its counters in.
fn teardown(
    poller: &mut Poller,
    entries: &mut [Option<Entry>],
    free: &mut Vec<usize>,
    live: &mut usize,
    stats: &mut WireStats,
    slot: usize,
) {
    if let Some(gone) = entries[slot].take() {
        poller.deregister(gone.fd, slot + 1);
        stats.merge(&gone.conn.stats());
        free.push(slot);
        *live -= 1;
    }
}

/// Accepts until `WouldBlock`. Connections beyond `max_conns` are told
/// why before the close — the accepted socket is still in blocking mode
/// (it does not inherit the listener's nonblocking flag), so the error
/// frame goes out with an ordinary bounded write.
fn accept_ready(
    listener: &TcpListener,
    poller: &mut Poller,
    entries: &mut Vec<Option<Entry>>,
    free: &mut Vec<usize>,
    live: &mut usize,
    stats: &mut WireStats,
    opts: &ServerOpts,
    ev_opts: &EventedOpts,
) -> NetResult<()> {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if *live >= ev_opts.max_conns {
                    stats.rejected_conns += 1;
                    let _ = stream.set_write_timeout(Some(DRAIN_TIMEOUT));
                    let mut reject = WireConn::new(stream);
                    let _ = reject.send_error(
                        0,
                        &format!(
                            "connection budget exhausted: server at {} connections",
                            ev_opts.max_conns
                        ),
                    );
                    stats.merge(&reject.stats());
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let slot = match free.pop() {
                    Some(slot) => slot,
                    None => {
                        entries.push(None);
                        entries.len() - 1
                    }
                };
                let fd = raw_fd_stream(&stream);
                if poller.register(fd, slot + 1, Interest::READ).is_err() {
                    free.push(slot);
                    continue;
                }
                entries[slot] = Some(Entry {
                    conn: Conn::new(stream, opts.max_payload, ev_opts.write_budget),
                    fd,
                    writable: false,
                });
                *live += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Hard accept failure aborts the server, exactly like the
            // threaded accept loop.
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// Runs the evented accept/serve loop until every expected worker has
/// sent a graceful shutdown. Single-threaded: every connection, the
/// listener, and all handler calls run on the calling thread. The
/// `handler` contract is identical to [`crate::tcp::serve_cluster`] —
/// pass the same `Arc` and the two backends are interchangeable (and
/// must stay bitwise-interchangeable; the equivalence suite replays one
/// against the other). Returns the aggregated server-side byte counters.
pub fn serve_cluster_evented<H: SharedUpdateHandler>(
    listener: TcpListener,
    handler: Arc<H>,
    opts: ServerOpts,
    ev_opts: EventedOpts,
) -> NetResult<WireStats> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.register(raw_fd_listener(&listener), LISTENER, Interest::READ)?;

    let mut entries: Vec<Option<Entry>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut finished = 0usize;
    let mut stats = WireStats::default();
    let mut events: Vec<PollEvent> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let started = Instant::now();

    let deadline_hit = loop {
        if finished >= opts.done_target {
            break false;
        }
        if let Some(limit) = opts.deadline {
            if started.elapsed() > limit {
                break true;
            }
        }
        poller.wait(&mut events, Some(opts.read_timeout))?;
        for i in 0..events.len() {
            let ev = events[i];
            if ev.token == LISTENER {
                accept_ready(
                    &listener,
                    &mut poller,
                    &mut entries,
                    &mut free,
                    &mut live,
                    &mut stats,
                    &opts,
                    &ev_opts,
                )?;
                continue;
            }
            let slot = ev.token - 1;
            let Some(entry) = entries.get_mut(slot).and_then(Option::as_mut) else { continue };
            if ev.readable {
                // dgs::allow(no-blocking-under-lock): the blocking chain is edge-only (run_round's upstream exchange); edge tiers are served by the thread backend per the edge module contract, never by this event loop
                let outcome = entry.conn.handle_readable(handler.as_ref(), &opts, &mut scratch);
                finished += outcome.finished;
            }
            if ev.writable {
                entry.conn.flush_ready();
            }
            if entry.conn.should_teardown() {
                teardown(&mut poller, &mut entries, &mut free, &mut live, &mut stats, slot);
                continue;
            }
            // Interest maintenance: write interest only while queued
            // bytes remain.
            let want = Interest { readable: true, writable: entry.conn.wants_write() };
            if want.writable != entry.writable {
                let fd = entry.fd;
                if poller.reregister(fd, ev.token, want).is_ok() {
                    entry.writable = want.writable;
                } else {
                    teardown(&mut poller, &mut entries, &mut free, &mut live, &mut stats, slot);
                }
            }
        }
    };

    // Bounded blocking drain of whatever is still queued (a shutdown ack
    // the socket buffer did not take), then fold in remaining counters.
    for entry in entries.iter_mut().filter_map(Option::as_mut) {
        let stream = entry.conn.stream_mut();
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(DRAIN_TIMEOUT));
        entry.conn.flush_remaining();
    }
    for entry in entries.into_iter().flatten() {
        stats.merge(&entry.conn.stats());
    }
    if deadline_hit {
        return Err(NetError::Protocol(format!(
            "deadline expired with {finished}/{} workers finished",
            opts.done_target
        )));
    }
    Ok(stats)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::codec::Hello;
    use crate::frame::MsgType;
    use crate::msg::{DownMsg, SparseUpdate, SparseVec, UpMsg, UpPayload};
    use crate::tcp::{TcpOpts, TcpWorkerTransport};
    use crate::transport::{Event, Transport, UpdateHandler};
    use std::sync::Mutex;
    use std::thread;

    struct ToyHandler {
        applied: Vec<u64>,
        resyncs: usize,
        /// Dense-reply length — big values turn replies into megabyte
        /// frames for the backpressure test.
        reply_len: usize,
    }

    impl ToyHandler {
        fn shared(workers: usize, reply_len: usize) -> Arc<Mutex<ToyHandler>> {
            Arc::new(Mutex::new(ToyHandler { applied: vec![0; workers], resyncs: 0, reply_len }))
        }
    }

    impl UpdateHandler for ToyHandler {
        fn handle_update(&mut self, worker: u16, up: UpMsg) -> DownMsg {
            self.applied[worker as usize] += 1;
            if self.reply_len > 0 {
                return DownMsg::DenseModel(Arc::new(vec![up.train_loss as f32; self.reply_len]));
            }
            let tag = self.applied[worker as usize] as f32 + up.train_loss as f32;
            DownMsg::SparseDiff(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![u32::from(worker)], val: vec![tag] }],
            })
        }

        fn handle_resync(&mut self, worker: u16) -> DownMsg {
            self.resyncs += 1;
            DownMsg::DenseModel(Arc::new(vec![f32::from(worker); 3]))
        }

        fn applied(&self, worker: u16) -> u64 {
            self.applied[worker as usize]
        }
    }

    const DIM: u64 = 3;
    const CRC: u32 = 0x5a5a_0001;

    fn server_opts(workers: usize) -> ServerOpts {
        let mut o = ServerOpts::new(workers, DIM, CRC);
        o.read_timeout = Duration::from_millis(50);
        o.deadline = Some(Duration::from_secs(30));
        o
    }

    fn spawn_evented(
        workers: usize,
        reply_len: usize,
        ev_opts: EventedOpts,
    ) -> (String, Arc<Mutex<ToyHandler>>, thread::JoinHandle<NetResult<WireStats>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handler = ToyHandler::shared(workers, reply_len);
        let h = Arc::clone(&handler);
        let opts = server_opts(workers);
        let join = thread::spawn(move || serve_cluster_evented(listener, h, opts, ev_opts));
        (addr, handler, join)
    }

    fn worker_opts(addr: &str, worker: u16) -> TcpOpts {
        let mut o = TcpOpts::new(addr, worker, DIM, CRC);
        o.read_timeout = Duration::from_millis(100);
        o.backoff_base = Duration::from_millis(20);
        o
    }

    fn up(loss: f64) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate {
                chunks: vec![SparseVec { idx: vec![1], val: vec![2.0] }],
            }),
            train_loss: loss,
        }
    }

    #[test]
    fn evented_serves_real_workers_end_to_end() {
        let (addr, handler, join) = spawn_evented(2, 0, EventedOpts::default());
        let mut joins = Vec::new();
        for w in 0..2u16 {
            let addr = addr.clone();
            joins.push(thread::spawn(move || {
                let mut t = TcpWorkerTransport::new(worker_opts(&addr, w));
                let mut up_bytes = 0u64;
                let mut down_bytes = 0u64;
                for i in 1..=5 {
                    let msg = up(f64::from(i));
                    up_bytes += msg.wire_bytes() as u64;
                    let reply = t.exchange(&msg).unwrap();
                    down_bytes += reply.wire_bytes() as u64;
                }
                t.shutdown().unwrap();
                (up_bytes, down_bytes)
            }));
        }
        let mut total_up = 0;
        let mut total_down = 0;
        for j in joins {
            let (u, d) = j.join().unwrap();
            total_up += u;
            total_down += d;
        }
        let server_stats = join.join().unwrap().unwrap();
        assert_eq!(server_stats.data_up, total_up, "server uplink == sum of worker uplinks");
        assert_eq!(server_stats.data_down, total_down);
        assert_eq!(server_stats.frames_up, 10);
        assert_eq!(server_stats.rejected_conns, 0);
        let h = handler.lock().unwrap();
        assert_eq!(h.applied, vec![5, 5]);
        assert_eq!(h.resyncs, 0);
    }

    #[test]
    fn over_budget_connection_gets_error_frame_and_counter() {
        let ev_opts = EventedOpts { max_conns: 1, ..EventedOpts::default() };
        let (addr, _handler, join) = spawn_evented(1, 0, ev_opts);
        // First connection fills the budget; handshake proves it is live
        // (accept processed) before the second connect races in.
        let mut first = {
            let stream = std::net::TcpStream::connect(&addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            WireConn::new(stream)
        };
        first
            .send_hello(MsgType::Hello, 0, &Hello { dim: DIM, applied: 0, theta0_crc: CRC })
            .unwrap();
        assert!(matches!(first.read_event().unwrap(), Event::HelloAck { .. }));
        // Second connection: explicit refusal, not a silent drop.
        let mut second = {
            let stream = std::net::TcpStream::connect(&addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            WireConn::new(stream)
        };
        match second.read_event().unwrap() {
            Event::Error { reason } => {
                assert!(reason.contains("connection budget exhausted"), "{reason}");
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        // The refused socket is closed server-side afterwards.
        assert!(matches!(second.read_event(), Err(NetError::Closed)));
        // First connection still works; finish the run.
        first.send_update(0, 1, &up(1.0)).unwrap();
        assert!(matches!(first.read_event().unwrap(), Event::Reply { .. }));
        first.send_control(MsgType::Shutdown, 0).unwrap();
        assert!(matches!(first.read_event().unwrap(), Event::ShutdownAck));
        let stats = join.join().unwrap().unwrap();
        assert_eq!(stats.rejected_conns, 1, "reject path must be counted");
        assert!(stats.control > 0, "the reject error frame is control bytes");
    }

    #[test]
    fn stalled_reader_is_disconnected_and_recovery_succeeds() {
        // 4 MiB dense replies against a 256 KiB write budget: the first
        // reply is accepted (empty queue) but cannot fully drain into the
        // socket buffers of a reader that never reads, so the second
        // reply trips backpressure and the server disconnects the
        // connection instead of buffering its downlink without bound.
        let ev_opts = EventedOpts { write_budget: 256 << 10, ..EventedOpts::default() };
        let (addr, handler, join) = spawn_evented(1, 1 << 20, ev_opts);
        {
            let stream = std::net::TcpStream::connect(&addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut stalled = WireConn::new(stream);
            stalled
                .send_hello(MsgType::Hello, 0, &Hello { dim: DIM, applied: 0, theta0_crc: CRC })
                .unwrap();
            assert!(matches!(stalled.read_event().unwrap(), Event::HelloAck { .. }));
            // Send updates but never read a reply. The server applies
            // them until the write budget trips; later sends may fail
            // once the server resets the connection — that's the point.
            for seq in 1..=8u32 {
                if stalled.send_update(0, seq, &up(f64::from(seq))).is_err() {
                    break;
                }
                thread::sleep(Duration::from_millis(100));
            }
            // Drop without ever draining the downlink.
        }
        // The server survived and applied at least the first update but
        // stopped long before all 8 — the budget cut it off.
        let applied_before = handler.lock().unwrap().applied[0];
        assert!(applied_before >= 1, "first update must have been applied");
        // Recovery: a well-behaved worker reconnects. The handshake
        // reports applied >= its seq, so the transport resyncs — the
        // documented reconnect/resync path after a backpressure kill.
        let mut t = TcpWorkerTransport::new(worker_opts(&addr, 0));
        match t.exchange(&up(9.0)).unwrap() {
            DownMsg::DenseModel(m) => assert_eq!(m.len(), 3, "resync reply expected"),
            other => panic!("expected dense resync recovery, got {other:?}"),
        }
        t.shutdown().unwrap();
        join.join().unwrap().unwrap();
        let h = handler.lock().unwrap();
        assert_eq!(h.resyncs, 1, "recovery goes through handle_resync");
        assert!(
            h.applied[0] < 8,
            "a stalled reader must be cut off, not served to completion ({} applied)",
            h.applied[0]
        );
    }
}
