//! Transport and codec errors.
//!
//! Every malformed frame maps to a variant here — the codec and framing
//! layers return errors and never panic or over-read, so a hostile or
//! corrupted peer cannot take the server down (tested in `frame.rs` and
//! `codec.rs`, plus the proptest corruption suite).

use std::fmt;
use std::io;

/// Result alias for dgs-net operations.
pub type NetResult<T> = Result<T, NetError>;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket/stream failure.
    Io(io::Error),
    /// Frame did not start with the protocol magic.
    BadMagic([u8; 4]),
    /// Peer speaks an incompatible protocol version.
    BadVersion(u8),
    /// Unknown message-type byte in the frame header.
    BadMsgType(u8),
    /// Payload checksum mismatch (corruption in transit).
    BadCrc {
        /// CRC32 declared in the frame header.
        expected: u32,
        /// CRC32 computed over the received payload.
        actual: u32,
    },
    /// Declared payload length exceeds the negotiated maximum — rejected
    /// before any allocation so a bogus length cannot balloon memory.
    Oversized {
        /// Length declared in the frame header.
        len: usize,
        /// Maximum this endpoint accepts.
        max: usize,
    },
    /// Payload body failed to decode (truncated or inconsistent counts).
    Malformed(&'static str),
    /// Encode-side refusal: a count or length does not fit its wire field.
    /// Truncating with `as` would alias another value; erroring keeps the
    /// `encode(msg).len() == msg.wire_bytes()` invariant honest.
    TooLarge {
        /// Which field overflowed (`"payload"`, `"sparse chunk count"`, …).
        what: &'static str,
        /// The value that did not fit.
        len: usize,
    },
    /// A peer stopped draining its downlink: queuing one more frame would
    /// push the connection's bounded write queue past its budget. The
    /// server disconnects instead of buffering without bound; the worker's
    /// reconnect/resync path recovers the stream.
    Backpressure {
        /// Bytes already queued for the connection.
        queued: usize,
        /// The connection's write-queue budget in bytes.
        budget: usize,
    },
    /// Peer closed the connection at a frame boundary.
    Closed,
    /// Handshake rejected (dim/θ0 mismatch, duplicate worker id, …).
    Handshake(String),
    /// Protocol state violation (unexpected message type, bad sequence).
    Protocol(String),
    /// The peer reported an error frame; contains its reason.
    Remote(String),
}

impl NetError {
    /// True for read timeouts — the caller should heartbeat and retry
    /// rather than tear the connection down.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }

    /// True for failures where reconnecting can help (I/O errors and
    /// connection closure — not protocol or handshake rejections).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::Closed) && !self.is_timeout()
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            NetError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::BadMsgType(t) => write!(f, "unknown message type {t:#04x}"),
            NetError::BadCrc { expected, actual } => {
                write!(f, "payload crc mismatch: header {expected:#010x}, computed {actual:#010x}")
            }
            NetError::Oversized { len, max } => {
                write!(f, "declared payload length {len} exceeds maximum {max}")
            }
            NetError::Malformed(what) => write!(f, "malformed payload: {what}"),
            NetError::TooLarge { what, len } => {
                write!(f, "{what} {len} does not fit its wire field")
            }
            NetError::Backpressure { queued, budget } => {
                write!(f, "write queue over budget: {queued} bytes queued, budget {budget}")
            }
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Handshake(why) => write!(f, "handshake rejected: {why}"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::Remote(why) => write!(f, "peer reported error: {why}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_detection() {
        let t = NetError::Io(io::Error::new(io::ErrorKind::WouldBlock, "t"));
        assert!(t.is_timeout());
        assert!(!t.is_recoverable());
        let t = NetError::Io(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(t.is_timeout());
        let hard = NetError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "r"));
        assert!(!hard.is_timeout());
        assert!(hard.is_recoverable());
        assert!(NetError::Closed.is_recoverable());
        assert!(!NetError::Handshake("v".into()).is_recoverable());
    }

    #[test]
    fn display_is_informative() {
        let s = NetError::BadCrc { expected: 1, actual: 2 }.to_string();
        assert!(s.contains("crc"));
        let s = NetError::Oversized { len: 10, max: 5 }.to_string();
        assert!(s.contains("10") && s.contains('5'));
        let s = NetError::TooLarge { what: "payload", len: 5_000_000_000 }.to_string();
        assert!(s.contains("payload") && s.contains("5000000000"));
        assert!(!NetError::TooLarge { what: "payload", len: 0 }.is_recoverable());
    }
}
