//! dgs-net: wire protocol and transports for cross-process DGS training.
//!
//! The simulator (`dgs-psim`) and the threaded trainer exchange protocol
//! structs directly and only *account* for bytes via `wire_bytes()`. This
//! crate gives those messages a real binary encoding and moves them over
//! real media:
//!
//! * [`frame`] — length-delimited framing: 20-byte header (magic,
//!   version, type, worker, seq, length, CRC-32) + payload. The header
//!   size is compile-time asserted equal to the simulated accounting's
//!   `HEADER_BYTES`, and every data frame's total length equals the
//!   message's `wire_bytes()` — the real network and the simulator charge
//!   identical byte counts by construction.
//! * [`codec`] — payload encodings for every uplink/downlink variant
//!   (dense, sparse COO, ternary sparse) plus the handshake payload.
//!   Hand-rolled on `std` only; decoding is bounds-checked and never
//!   panics on hostile input.
//! * [`transport`] — the [`transport::Transport`] trait with the
//!   [`transport::Loopback`] implementation (in-process, but every byte
//!   still round-trips through the codec), and [`transport::WireConn`],
//!   the shared framed-connection engine.
//! * [`tcp`] — blocking TCP across processes: handshake with dim/θ0
//!   validation, heartbeats, reconnect with backoff, duplicate
//!   suppression, graceful shutdown.
//! * [`poll`] / [`event_loop`] — the readiness-driven alternative to the
//!   thread-per-connection server: a std-only poller (`poll(2)` by
//!   default, epoll behind the `net-epoll` feature) driving per-connection
//!   state machines with incremental decoding ([`frame::FrameDecoder`])
//!   and bounded, `writev`-coalesced write queues. Protocol decisions are
//!   shared with the threaded server (`conn::protocol_step`), so the two
//!   backends are bitwise interchangeable.
//! * [`cluster`] — the span-sharded multi-process parameter-server
//!   client: [`cluster::ClusterTransport`] fans each uplink out per
//!   [`msg::ShardSpan`] over independent TCP links (per-span handshake
//!   carrying the partition map + θ0 CRC, per-span seq/reconnect), and
//!   [`cluster::assemble_replies`] reassembles the downlink in shard
//!   order — the in-process sharding seam of `dgs_core::shard` lifted
//!   onto the wire.
//! * [`edge`] — the two-level aggregation tier: [`edge::EdgeHandler`]
//!   merges a worker group's uplinks with the shared sparse-merge
//!   kernels and forwards one combined update to the root spans, so
//!   root ingress scales with the number of groups, not workers.
//! * [`runtime`] — glue binding the transports to the training stack
//!   (`AsyncServerLogic`, `ShardedServerLogic`, `TrainWorker`):
//!   `serve_training` / `serve_training_sharded` / `run_worker` /
//!   `train_loopback`.
//!
//! Testing note: the container's cargo cannot reach a registry, so the
//! runnable mirror of this crate's tests lives in `crates/net/harness/`
//! (plain `rustc --test`, see the verify skill). Keep `crate::msg` the
//! only place protocol types are imported from so the harness shim keeps
//! working.

#![warn(missing_docs)]
// The "error, never panic" wire-path promise, enforced twice: clippy here
// (non-test code only) and dgs-audit's no-panic-io rule with waivers.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod cluster;
pub mod codec;
pub(crate) mod conn;
pub mod crc;
pub(crate) mod crc_simd;
pub mod edge;
pub mod error;
pub mod event_loop;
pub mod frame;
pub mod msg;
pub mod poll;
pub mod runtime;
pub mod tcp;
pub mod transport;

pub use cluster::{assemble_replies, ClusterTransport};
pub use codec::Hello;
pub use edge::EdgeHandler;
pub use error::{NetError, NetResult};
pub use event_loop::{serve_cluster_evented, EventedOpts};
pub use frame::{FrameDecoder, FrameHeader, MsgType, HEADER_LEN, MAGIC, VERSION};
pub use transport::{
    Event, Loopback, Sequenced, SharedUpdateHandler, Transport, UpdateHandler, WireConn, WireStats,
};
