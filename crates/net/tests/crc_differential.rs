//! Differential coverage for the CRC32 kernels: on arbitrary byte
//! strings, chunkings, and alignments the slicing-by-8 kernel and the
//! `PCLMULQDQ` folding backend must agree exactly with the byte-at-a-time
//! oracle kept in `crc.rs`. Lane-table and folding-constant bugs are
//! insidious — they corrupt only certain lengths or 8-byte phases — which
//! is exactly the space proptest explores here.

use dgs_net::crc::{
    crc32, crc32_finish, crc32_update, crc32_update_bytewise, crc32_update_with, Kernel, CRC_INIT,
};
use proptest::prelude::*;

fn oracle(data: &[u8]) -> u32 {
    crc32_finish(crc32_update_bytewise(CRC_INIT, data))
}

proptest! {
    #[test]
    fn sliced_equals_bytewise(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(crc32(&data), oracle(&data));
    }

    /// Splitting the stream at an arbitrary point — so the sliced kernel
    /// restarts mid-buffer at every possible 8-byte phase — must not
    /// change the digest.
    #[test]
    fn streaming_split_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        split in any::<proptest::sample::Index>(),
    ) {
        let cut = split.index(data.len() + 1);
        let state = crc32_update(CRC_INIT, &data[..cut]);
        prop_assert_eq!(crc32_finish(crc32_update(state, &data[cut..])), oracle(&data));
    }

    /// The two kernels share one state convention: handing a running state
    /// from one to the other mid-stream is lossless in both directions.
    #[test]
    fn kernels_interchange_mid_stream(
        a in proptest::collection::vec(any::<u8>(), 0..512),
        b in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mixed_ab = crc32_update_bytewise(crc32_update(CRC_INIT, &a), &b);
        let mixed_ba = crc32_update(crc32_update_bytewise(CRC_INIT, &a), &b);
        let mut whole = a.clone();
        whole.extend_from_slice(&b);
        prop_assert_eq!(crc32_finish(mixed_ab), oracle(&whole));
        prop_assert_eq!(crc32_finish(mixed_ba), oracle(&whole));
    }

    /// The explicitly pinned backends agree with the oracle (and therefore
    /// with each other) on arbitrary buffers and split points — the
    /// PCLMULQDQ folding path restarts mid-stream at every phase.
    #[test]
    fn pinned_backends_equal_bytewise(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        split in any::<proptest::sample::Index>(),
    ) {
        let cut = split.index(data.len() + 1);
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            prop_assert_eq!(
                crc32_finish(crc32_update_with(kernel, CRC_INIT, &data)),
                oracle(&data)
            );
            let state = crc32_update_with(kernel, CRC_INIT, &data[..cut]);
            prop_assert_eq!(
                crc32_finish(crc32_update_with(kernel, state, &data[cut..])),
                oracle(&data)
            );
        }
    }
}
