//! Property-based codec coverage: every message survives the wire
//! bit-for-bit, malformed bytes error instead of panicking, and the body
//! layouts agree with `dgs-sparsify`'s own encoders byte-for-byte.

use dgs_core::protocol::{DownMsg, UpMsg, UpPayload};
use dgs_net::codec::{
    decode_down, decode_up, down_msg_type, encode_down_frame, encode_down_payload, encode_up_frame,
    encode_up_payload, up_msg_type,
};
use dgs_net::frame::read_frame;
use dgs_net::{HEADER_LEN, MAGIC};
use dgs_sparsify::{SparseUpdate, SparseVec, TernaryUpdate, TernaryVec};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;

const MAX_PAYLOAD: usize = 16 << 20;

// --- strategies -----------------------------------------------------------

fn arb_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => any::<f32>(),
        1 => Just(f32::NAN),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(-0.0f32),
    ]
}

fn arb_sparse_vec() -> impl Strategy<Value = SparseVec> {
    proptest::collection::vec((any::<u32>(), arb_f32()), 0..24).prop_map(|pairs| {
        let (idx, val) = pairs.into_iter().unzip();
        SparseVec { idx, val }
    })
}

fn arb_sparse_update() -> impl Strategy<Value = SparseUpdate> {
    proptest::collection::vec(arb_sparse_vec(), 0..4).prop_map(|chunks| SparseUpdate { chunks })
}

fn arb_ternary_vec() -> impl Strategy<Value = TernaryVec> {
    (arb_f32(), proptest::collection::vec(any::<u32>(), 0..24)).prop_map(|(scale, idx)| {
        let signs = vec![0b1010_1010u8; idx.len().div_ceil(8)];
        TernaryVec { scale, idx, signs }
    })
}

fn arb_ternary_update() -> impl Strategy<Value = TernaryUpdate> {
    proptest::collection::vec(arb_ternary_vec(), 0..4).prop_map(|chunks| TernaryUpdate { chunks })
}

fn arb_up() -> impl Strategy<Value = UpMsg> {
    let payload = prop_oneof![
        proptest::collection::vec(arb_f32(), 0..64).prop_map(UpPayload::Dense),
        arb_sparse_update().prop_map(UpPayload::Sparse),
        arb_ternary_update().prop_map(UpPayload::TernarySparse),
    ];
    (payload, any::<f64>()).prop_map(|(payload, train_loss)| UpMsg { payload, train_loss })
}

fn arb_down() -> impl Strategy<Value = DownMsg> {
    prop_oneof![
        proptest::collection::vec(arb_f32(), 0..64).prop_map(|v| DownMsg::DenseModel(Arc::new(v))),
        arb_sparse_update().prop_map(DownMsg::SparseDiff),
    ]
}

// --- bitwise equality (NaN-safe) ------------------------------------------

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_sparse_eq(a: &SparseUpdate, b: &SparseUpdate) {
    assert_eq!(a.chunks.len(), b.chunks.len());
    for (ca, cb) in a.chunks.iter().zip(&b.chunks) {
        assert_eq!(ca.idx, cb.idx);
        assert_eq!(bits(&ca.val), bits(&cb.val));
    }
}

fn assert_up_eq(a: &UpMsg, b: &UpMsg) {
    assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
    match (&a.payload, &b.payload) {
        (UpPayload::Dense(x), UpPayload::Dense(y)) => assert_eq!(bits(x), bits(y)),
        (UpPayload::Sparse(x), UpPayload::Sparse(y)) => assert_sparse_eq(x, y),
        (UpPayload::TernarySparse(x), UpPayload::TernarySparse(y)) => {
            assert_eq!(x.chunks.len(), y.chunks.len());
            for (ca, cb) in x.chunks.iter().zip(&y.chunks) {
                assert_eq!(ca.scale.to_bits(), cb.scale.to_bits());
                assert_eq!(ca.idx, cb.idx);
                assert_eq!(ca.signs, cb.signs);
            }
        }
        _ => panic!("payload variant changed across the wire"),
    }
}

// --- properties -----------------------------------------------------------

proptest! {
    #[test]
    fn up_roundtrips_bitwise(up in arb_up(), worker in any::<u16>(), seq in any::<u32>()) {
        let payload = encode_up_payload(&up).unwrap();
        let back = decode_up(up_msg_type(&up.payload), &payload).unwrap();
        assert_up_eq(&up, &back);

        // Full frame: exact wire_bytes, and readable back off a stream.
        let frame = encode_up_frame(worker, seq, &up).unwrap();
        prop_assert_eq!(frame.len(), up.wire_bytes());
        let (header, body) = read_frame(&mut Cursor::new(&frame), MAX_PAYLOAD).unwrap();
        prop_assert_eq!(header.worker, worker);
        prop_assert_eq!(header.seq, seq);
        assert_up_eq(&up, &decode_up(header.msg_type, &body).unwrap());
    }

    #[test]
    fn down_roundtrips_bitwise(down in arb_down(), worker in any::<u16>(), seq in any::<u32>()) {
        let payload = encode_down_payload(&down).unwrap();
        let back = decode_down(down_msg_type(&down), &payload).unwrap();
        match (&down, &back) {
            (DownMsg::DenseModel(x), DownMsg::DenseModel(y)) => {
                prop_assert_eq!(bits(x), bits(y))
            }
            (DownMsg::SparseDiff(x), DownMsg::SparseDiff(y)) => assert_sparse_eq(x, y),
            _ => prop_assert!(false, "variant changed across the wire"),
        }
        let frame = encode_down_frame(worker, seq, &down).unwrap();
        prop_assert_eq!(frame.len(), down.wire_bytes());
    }

    /// Body layouts are identical to dgs-sparsify's own `encode()` — the
    /// traffic accounting and the codec describe the same bytes.
    #[test]
    fn sparse_body_matches_sparsify_encoder(s in arb_sparse_update(), loss in any::<f64>()) {
        let up = UpMsg { payload: UpPayload::Sparse(s.clone()), train_loss: loss };
        let payload = encode_up_payload(&up).unwrap();
        prop_assert_eq!(&payload[8..], &SparseUpdate::encode(&s)[..]);
        let down = DownMsg::SparseDiff(s);
        prop_assert_eq!(&encode_down_payload(&down).unwrap()[..], &match &down {
            DownMsg::SparseDiff(s) => SparseUpdate::encode(s),
            _ => unreachable!(),
        }[..]);
    }

    #[test]
    fn ternary_body_matches_sparsify_encoder(t in arb_ternary_update(), loss in any::<f64>()) {
        let up = UpMsg { payload: UpPayload::TernarySparse(t.clone()), train_loss: loss };
        prop_assert_eq!(&encode_up_payload(&up).unwrap()[8..], &TernaryUpdate::encode(&t)[..]);
    }

    /// Any corruption of the length/CRC fields or the payload body of a
    /// valid frame must produce a decode error — never a panic, never a
    /// silently wrong message.
    #[test]
    fn corrupted_frames_error_not_panic(
        up in arb_up(),
        at in any::<proptest::sample::Index>(),
        flip in 1..=255u8,
    ) {
        let mut frame = encode_up_frame(3, 9, &up).unwrap();
        // Corrupt magic/version or anything CRC-protected. Worker id, seq,
        // and msg type are CRC-free header metadata: flipping them yields a
        // *different valid frame* by design, so they are out of scope here.
        let corruptible: Vec<usize> = (0..5).chain(12..frame.len()).collect();
        let pos = *at.get(&corruptible);
        frame[pos] ^= flip;
        let result = read_frame(&mut Cursor::new(&frame), MAX_PAYLOAD)
            .and_then(|(h, body)| decode_up(h.msg_type, &body));
        prop_assert!(result.is_err(), "corrupt byte {pos} accepted");
    }

    /// Every strict prefix of a valid frame errors cleanly.
    #[test]
    fn truncated_frames_error_not_panic(up in arb_up(), cut in any::<proptest::sample::Index>()) {
        let frame = encode_up_frame(1, 1, &up).unwrap();
        let len = cut.index(frame.len());
        prop_assert!(read_frame(&mut Cursor::new(&frame[..len]), MAX_PAYLOAD).is_err());
    }
}

// --- golden fixture --------------------------------------------------------

/// A hand-assembled frame: pinned bytes that any future codec change must
/// keep decoding (wire compatibility fixture).
#[test]
fn golden_frame_fixture_decodes() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC); // magic "DGS1"
    frame.push(1); // version
    frame.push(0x01); // UpDense
    frame.extend_from_slice(&7u16.to_le_bytes()); // worker
    frame.extend_from_slice(&42u32.to_le_bytes()); // seq
    let mut payload = Vec::new();
    payload.extend_from_slice(&1.5f64.to_le_bytes()); // train loss
    payload.extend_from_slice(&2.0f32.to_le_bytes());
    payload.extend_from_slice(&(-3.25f32).to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&dgs_net::crc::crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    assert_eq!(frame.len(), HEADER_LEN + 16);

    let (header, body) = read_frame(&mut Cursor::new(&frame), MAX_PAYLOAD).unwrap();
    assert_eq!(header.worker, 7);
    assert_eq!(header.seq, 42);
    let up = decode_up(header.msg_type, &body).unwrap();
    assert_eq!(up.train_loss, 1.5);
    match up.payload {
        UpPayload::Dense(v) => assert_eq!(v, vec![2.0, -3.25]),
        other => panic!("wrong payload variant: {other:?}"),
    }
}
