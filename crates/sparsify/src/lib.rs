#![warn(missing_docs)]

//! # dgs-sparsify
//!
//! Gradient sparsification primitives for the DGS reproduction:
//!
//! * [`partition`] — [`Partition`]: maps a flat parameter vector onto the
//!   per-layer segments the paper sparsifies independently ("iterate over
//!   every layer", Alg. 1/3).
//! * [`topk`] — exact Top-k threshold/index selection over a segment, plus
//!   the mask/gather/scatter helpers the worker algorithms are built from
//!   (`sparsify()` / `unsparsify()` in the paper's notation).
//! * [`radix_select`] — the bit-level O(n) selection engine (histogram
//!   radix select over `abs(f32).to_bits()` keys) behind the default
//!   [`SelectStrategy::Radix`]; bitwise-identical to the comparator path.
//! * [`sampled`] — DGC-style sampled/hierarchical threshold estimation
//!   (the only selection code with a `rand` dependency).
//! * [`merge`] — the server-side diff/merge kernels behind the O(nnz)
//!   downlink construction (dense reference scan, candidate-restricted
//!   scan, deterministic pair Top-k, dirty-set maintenance). Both server
//!   strategies bottom out here, which is what makes them bitwise equal.
//! * [`coo`] — the COO wire format (`encode()` / `decode()` in the paper):
//!   index+value pairs packed into [`bytes::Bytes`], with exact byte-size
//!   accounting used by the network simulator.
//! * [`quant`] — TernGrad-style ternary quantization of sparse payloads
//!   (the paper's future-work combination, §6).
//! * [`random_drop`] — unbiased random coordinate dropping (Wangni et al.),
//!   the other compression family the paper names for combination.
//! * [`stats`] — compression-ratio accounting.
//!
//! Everything operates on `&[f32]` segments so the same code path serves
//! worker-side gradient sparsification, server-side secondary compression,
//! and tests. The hot loops dispatch through the
//! [`dgs_tensor::Kernel`] backend seam: plain entry points
//! ([`send_topk_dense`], [`SparseUpdate::encode`], …) run on the
//! runtime-selected backend (`DGS_KERNEL` override honoured), and each has
//! a `*_with(kernel, …)` twin taking an explicit backend for differential
//! testing and benchmarking. Backends are bitwise identical by contract —
//! see the `kernel_equivalence` differential suite.

pub mod coo;
pub mod merge;
pub mod partition;
pub mod quant;
pub mod radix_select;
pub mod random_drop;
pub mod sampled;
pub mod stats;
pub mod topk;

pub use coo::{merge_sparse_updates, try_merge_sparse_updates, SparseUpdate, SparseVec};
pub use dgs_tensor::Kernel;
pub use merge::{
    diff_pairs_at, diff_pairs_dense, diff_pairs_dense_with, mag_idx_order, merge_sum_pairs,
    retain_dirty, scatter_pairs, scatter_track_dirty, send_all_at, send_all_dense,
    send_all_dense_with, send_topk_dense, sort_dedup, sort_dedup_bitmap, sort_dedup_pooled,
    topk_pairs, topk_pairs_with,
};
pub use partition::{Partition, Segment, ShardSpan};
pub use quant::{TernaryUpdate, TernaryVec};
pub use radix_select::{
    mag_key, radix_threshold, radix_topk_indices, radix_topk_pairs, SelectScratch, SelectStrategy,
};
pub use random_drop::{random_unbiased_sparsify, random_unbiased_update};
pub use sampled::{hierarchical_threshold, sampled_threshold};
pub use stats::CompressionStats;
pub use topk::{
    gather, gather_and_zero, scale_all_except, scale_all_restore, scatter_add, topk_indices,
    topk_indices_with, topk_threshold, topk_threshold_with, zero_at,
};

/// Computes the Top-k element count for a segment of `len` values at
/// sparsification ratio `ratio` (`ratio = 0.01` keeps the top 1%).
///
/// Always keeps at least one element of a non-empty segment so that every
/// layer makes progress, mirroring the paper's per-layer thresholding (a
/// layer whose R% rounds to zero would otherwise never be updated).
pub fn k_for_ratio(len: usize, ratio: f64) -> usize {
    if len == 0 {
        return 0;
    }
    let k = (len as f64 * ratio).ceil() as usize;
    k.clamp(1, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_for_ratio_bounds() {
        assert_eq!(k_for_ratio(0, 0.01), 0);
        assert_eq!(k_for_ratio(1, 0.01), 1);
        assert_eq!(k_for_ratio(100, 0.01), 1);
        assert_eq!(k_for_ratio(1000, 0.01), 10);
        assert_eq!(k_for_ratio(150, 0.01), 2); // ceil(1.5)
        assert_eq!(k_for_ratio(10, 1.0), 10);
        assert_eq!(k_for_ratio(10, 2.0), 10); // clamped to len
    }
}
