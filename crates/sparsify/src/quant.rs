//! Ternary quantization of sparse payloads — the paper's future-work
//! combination of DGS with TernGrad (Wen et al., 2017).
//!
//! A [`SparseVec`](crate::SparseVec) carries full-precision f32 values; a
//! [`TernaryVec`] replaces them with `sign × scale`, where `scale` is the
//! chunk's max magnitude and the sign of each kept coordinate is rounded
//! stochastically so the quantizer is *unbiased*:
//! `E[q(v)] = v` (a value keeps its sign with probability `|v|/scale`, and
//! is dropped — quantised to 0 — otherwise). Wire cost drops from 8 bytes
//! per coordinate (index + f32) to 4 bytes + 1 bit.

use crate::coo::SparseVec;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgs_tensor::Kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One layer's ternary-quantized sparse chunk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TernaryVec {
    /// Common magnitude of every transmitted value.
    pub scale: f32,
    /// Indices local to the segment, ascending.
    pub idx: Vec<u32>,
    /// Sign bits, one per index (bit i of `signs[i/8]`): 1 = positive.
    pub signs: Vec<u8>,
}

impl TernaryVec {
    /// Quantizes a sparse chunk. Stochastic rounding keeps coordinate `i`
    /// (with its sign, at magnitude `scale`) with probability
    /// `|v_i|/scale`; dropped coordinates vanish from the index list.
    ///
    /// Deterministic per `(values, seed)`. Runtime kernel.
    pub fn quantize(sv: &SparseVec, seed: u64) -> Self {
        TernaryVec::quantize_with(Kernel::runtime(), sv, seed)
    }

    /// [`TernaryVec::quantize`] on an explicit [`Kernel`]: the scale (max
    /// magnitude) reduction runs on the backend, bitwise identical to the
    /// scalar `fold(0.0, f32::max)`; the stochastic rounding loop is
    /// inherently sequential (one RNG draw per coordinate) and stays
    /// scalar, so the whole quantization is backend-invariant.
    pub fn quantize_with(kernel: Kernel, sv: &SparseVec, seed: u64) -> Self {
        let scale = kernel.max_abs(&sv.val);
        if scale == 0.0 || sv.nnz() == 0 {
            return TernaryVec::default();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = Vec::with_capacity(sv.nnz());
        let mut signs = Vec::with_capacity(sv.nnz() / 8 + 1);
        let mut bit = 0usize;
        for (&i, &v) in sv.idx.iter().zip(sv.val.iter()) {
            let keep_p = v.abs() / scale;
            if rng.gen::<f32>() < keep_p {
                if bit.is_multiple_of(8) {
                    signs.push(0);
                }
                if v > 0.0 {
                    *signs.last_mut().unwrap() |= 1 << (bit % 8);
                }
                idx.push(i);
                bit += 1;
            }
        }
        TernaryVec { scale, idx, signs }
    }

    /// Number of transmitted coordinates (after stochastic dropping).
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Reconstructs the quantized values as a [`SparseVec`]. Runtime
    /// kernel.
    pub fn dequantize(&self) -> SparseVec {
        self.dequantize_with(Kernel::runtime())
    }

    /// [`TernaryVec::dequantize`] on an explicit [`Kernel`]: the sign-bit
    /// expansion to `±scale` runs on the backend. Negation is a sign-bit
    /// flip on both backends, so the reconstruction is bitwise invariant
    /// even for `scale` values like `0.0` or infinities.
    pub fn dequantize_with(&self, kernel: Kernel) -> SparseVec {
        let mut val = Vec::new();
        kernel.sign_expand(self.scale, &self.signs, self.nnz(), &mut val);
        SparseVec { idx: self.idx.clone(), val }
    }

    /// Exact encoded size in bytes: scale + count + indices + sign bitmap.
    pub fn wire_bytes(&self) -> usize {
        4 + 4 + 4 * self.nnz() + self.nnz().div_ceil(8)
    }
}

/// A ternary-quantized update aligned with a [`Partition`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TernaryUpdate {
    /// One quantized chunk per partition segment.
    pub chunks: Vec<TernaryVec>,
}

impl TernaryUpdate {
    /// Quantizes every chunk of a sparse update (per-layer scales).
    pub fn quantize(update: &crate::SparseUpdate, seed: u64) -> Self {
        TernaryUpdate {
            chunks: update
                .chunks
                .iter()
                .enumerate()
                .map(|(i, sv)| TernaryVec::quantize(sv, seed.wrapping_add(i as u64)))
                .collect(),
        }
    }

    /// Reconstructs the full-precision-shaped sparse update.
    pub fn dequantize(&self) -> crate::SparseUpdate {
        crate::SparseUpdate { chunks: self.chunks.iter().map(TernaryVec::dequantize).collect() }
    }

    /// Total transmitted coordinates.
    pub fn nnz(&self) -> usize {
        self.chunks.iter().map(TernaryVec::nnz).sum()
    }

    /// Exact encoded size in bytes.
    pub fn wire_bytes(&self) -> usize {
        4 + self.chunks.iter().map(TernaryVec::wire_bytes).sum::<usize>()
    }

    /// Encodes to the binary wire format. Runtime kernel.
    pub fn encode(&self) -> Bytes {
        self.encode_with(Kernel::runtime())
    }

    /// [`TernaryUpdate::encode`] on an explicit [`Kernel`]: index arrays
    /// are appended as one bulk little-endian byte copy when the backend
    /// offers a reinterpret view, falling back to the per-element
    /// `put_u32_le` loop otherwise. Both paths emit identical bytes.
    pub fn encode_with(&self, kernel: Kernel) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_bytes());
        buf.put_u32_le(self.chunks.len() as u32);
        for chunk in &self.chunks {
            buf.put_f32_le(chunk.scale);
            buf.put_u32_le(chunk.nnz() as u32);
            if let Some(le) = kernel.u32s_le(&chunk.idx) {
                buf.put_slice(le);
            } else {
                for &i in &chunk.idx {
                    buf.put_u32_le(i);
                }
            }
            buf.put_slice(&chunk.signs);
        }
        buf.freeze()
    }

    /// Decodes from the binary wire format; `None` on malformed input.
    pub fn decode(mut bytes: Bytes) -> Option<Self> {
        if bytes.remaining() < 4 {
            return None;
        }
        let num_chunks = bytes.get_u32_le() as usize;
        let mut chunks = Vec::with_capacity(num_chunks);
        for _ in 0..num_chunks {
            if bytes.remaining() < 8 {
                return None;
            }
            let scale = bytes.get_f32_le();
            let nnz = bytes.get_u32_le() as usize;
            let sign_bytes = nnz.div_ceil(8);
            if bytes.remaining() < 4 * nnz + sign_bytes {
                return None;
            }
            let mut idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                idx.push(bytes.get_u32_le());
            }
            let mut signs = vec![0u8; sign_bytes];
            bytes.copy_to_slice(&mut signs);
            chunks.push(TernaryVec { scale, idx, signs });
        }
        Some(TernaryUpdate { chunks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Partition, SparseUpdate};

    fn sv(vals: &[f32]) -> SparseVec {
        SparseVec { idx: (0..vals.len() as u32).collect(), val: vals.to_vec() }
    }

    #[test]
    fn quantize_preserves_signs_of_max() {
        // The max-magnitude coordinate is always kept (p = 1).
        let t = TernaryVec::quantize(&sv(&[3.0, -5.0, 0.1]), 1);
        let dq = t.dequantize();
        let pos = dq.idx.iter().position(|&i| i == 1).expect("max kept");
        assert_eq!(dq.val[pos], -5.0);
        assert_eq!(t.scale, 5.0);
    }

    #[test]
    fn quantizer_is_unbiased_in_expectation() {
        // Average many independent quantizations of the same chunk; the
        // mean reconstruction must approach the input.
        let vals = [2.0f32, -1.0, 0.5, -0.25];
        let chunk = sv(&vals);
        let trials = 4000;
        let mut acc = vec![0.0f64; vals.len()];
        for seed in 0..trials {
            let dq = TernaryVec::quantize(&chunk, seed).dequantize();
            let dense = dq.to_dense(vals.len());
            for (a, &v) in acc.iter_mut().zip(dense.iter()) {
                *a += v as f64;
            }
        }
        for (i, (&v, &a)) in vals.iter().zip(acc.iter()).enumerate() {
            let mean = a / trials as f64;
            assert!(
                (mean - v as f64).abs() < 0.08 * (v.abs() as f64).max(0.5),
                "coord {i}: mean {mean} vs {v}"
            );
        }
    }

    #[test]
    fn empty_and_zero_chunks() {
        let t = TernaryVec::quantize(&SparseVec::default(), 7);
        assert_eq!(t.nnz(), 0);
        let t = TernaryVec::quantize(&sv(&[0.0, 0.0]), 7);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.dequantize().nnz(), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let part = Partition::from_layer_sizes([("a", 8), ("b", 8)]);
        let flat: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.5).collect();
        let up = SparseUpdate::from_topk(&flat, &part, 0.5);
        let q = TernaryUpdate::quantize(&up, 99);
        let encoded = q.encode();
        assert_eq!(encoded.len(), q.wire_bytes());
        let decoded = TernaryUpdate::decode(encoded).unwrap();
        assert_eq!(decoded, q);
        assert_eq!(decoded.dequantize().nnz(), q.nnz());
    }

    #[test]
    fn decode_rejects_truncation() {
        let part = Partition::single(8);
        let flat: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let q = TernaryUpdate::quantize(&SparseUpdate::from_topk(&flat, &part, 0.5), 3);
        let enc = q.encode();
        for cut in [0usize, 3, 9, enc.len() - 1] {
            assert!(TernaryUpdate::decode(enc.slice(0..cut)).is_none());
        }
    }

    #[test]
    fn wire_bytes_beat_full_precision() {
        let part = Partition::single(1000);
        let flat: Vec<f32> = (0..1000).map(|i| ((i * 37) % 100) as f32 - 50.0).collect();
        let up = SparseUpdate::from_topk(&flat, &part, 0.2);
        let q = TernaryUpdate::quantize(&up, 5);
        // Per kept coordinate: 8 bytes full-precision vs ~4.1 quantized;
        // stochastic dropping reduces nnz further.
        assert!(q.wire_bytes() < up.wire_bytes());
    }

    #[test]
    fn quantize_dequantize_encode_backend_invariant() {
        // scales covering the sign-expand edge cases: ordinary, zero,
        // infinity, denormal.
        let sets: &[&[f32]] = &[
            &[3.0, -5.0, 0.1, -0.25, 4.9],
            &[1.0e-40, -1.0e-41, 2.0e-40],
            &[f32::INFINITY, -1.0, 2.0],
            &[-0.0, 0.0, 1.0],
        ];
        for (s, vals) in sets.iter().enumerate() {
            let chunk = sv(vals);
            for seed in 0..20u64 {
                let a = TernaryVec::quantize_with(Kernel::Scalar, &chunk, seed);
                let b = TernaryVec::quantize_with(Kernel::Simd, &chunk, seed);
                assert_eq!(a.scale.to_bits(), b.scale.to_bits(), "set {s} seed {seed}");
                assert_eq!(a.idx, b.idx, "set {s} seed {seed}");
                assert_eq!(a.signs, b.signs, "set {s} seed {seed}");
                let da = a.dequantize_with(Kernel::Scalar);
                let db = b.dequantize_with(Kernel::Simd);
                assert_eq!(da.idx, db.idx);
                let bits =
                    |v: &SparseVec| v.val.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&da), bits(&db), "set {s} seed {seed}");
                let up = TernaryUpdate { chunks: vec![a] };
                assert_eq!(
                    up.encode_with(Kernel::Scalar),
                    up.encode_with(Kernel::Simd),
                    "set {s} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let chunk = sv(&[1.0, -2.0, 0.7, 0.3]);
        assert_eq!(TernaryVec::quantize(&chunk, 4), TernaryVec::quantize(&chunk, 4));
        // Different seeds usually differ (probabilistic, but with 0.7/2 and
        // 0.3/2 keep-probabilities two draws rarely coincide — fixed seeds
        // chosen to differ).
        assert_ne!(TernaryVec::quantize(&chunk, 1), TernaryVec::quantize(&chunk, 2));
    }
}
