//! Compression-ratio accounting.

use serde::{Deserialize, Serialize};

/// Byte counts for one compressed transfer (or an aggregate of many).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Bytes the dense representation would have occupied.
    pub dense_bytes: usize,
    /// Bytes actually produced by the encoder.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Creates stats from a dense/compressed byte pair.
    pub fn new(dense_bytes: usize, compressed_bytes: usize) -> Self {
        CompressionStats { dense_bytes, compressed_bytes }
    }

    /// Compression ratio `dense / compressed`; `inf` when compressed is 0,
    /// 1.0 for the degenerate empty transfer.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            if self.dense_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.dense_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Accumulates another transfer into this aggregate.
    pub fn accumulate(&mut self, other: &CompressionStats) {
        self.dense_bytes += other.dense_bytes;
        self.compressed_bytes += other.compressed_bytes;
    }
}

impl std::fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {} bytes ({:.1}x)", self.dense_bytes, self.compressed_bytes, self.ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_cases() {
        assert_eq!(CompressionStats::new(100, 25).ratio(), 4.0);
        assert_eq!(CompressionStats::new(0, 0).ratio(), 1.0);
        assert!(CompressionStats::new(10, 0).ratio().is_infinite());
    }

    #[test]
    fn accumulate_sums() {
        let mut a = CompressionStats::new(100, 10);
        a.accumulate(&CompressionStats::new(50, 40));
        assert_eq!(a.dense_bytes, 150);
        assert_eq!(a.compressed_bytes, 50);
        assert_eq!(a.ratio(), 3.0);
    }

    #[test]
    fn display_contains_ratio() {
        let s = CompressionStats::new(100, 25).to_string();
        assert!(s.contains("4.0x"), "{s}");
    }
}
