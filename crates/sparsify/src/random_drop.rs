//! Unbiased random coordinate dropping (Wangni et al., 2018) — the second
//! compression family the paper names for future combination with DGS.
//!
//! Instead of keeping the Top-k by magnitude (biased towards large values,
//! compensated by residuals/momentum), each coordinate `i` is kept with
//! probability `p_i ∝ |v_i|` (capped at 1) and rescaled by `1/p_i`, making
//! the sparsified vector an *unbiased* estimator of the input:
//! `E[sparsify(v)] = v`. The expected kept count is controlled by the
//! target ratio.

use crate::coo::SparseVec;
use crate::partition::Partition;
use crate::SparseUpdate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probability-proportional-to-magnitude sparsification of one segment.
///
/// Keeps coordinate `i` with probability `p_i = min(1, λ|v_i|)` where `λ`
/// is chosen so that `Σ p_i ≈ target_ratio · n`, and stores `v_i / p_i`
/// for the kept coordinates. Deterministic per `(seg, seed)`.
pub fn random_unbiased_sparsify(seg: &[f32], target_ratio: f64, seed: u64) -> SparseVec {
    let n = seg.len();
    if n == 0 {
        return SparseVec::default();
    }
    let budget = (target_ratio * n as f64).max(1.0);
    let abs_sum: f64 = seg.iter().map(|v| v.abs() as f64).sum();
    if abs_sum == 0.0 {
        return SparseVec::default();
    }
    // First-order λ; a couple of fixed-point refinements handle the
    // min(1, ·) cap for heavy-tailed segments.
    let mut lambda = budget / abs_sum;
    for _ in 0..4 {
        let expected: f64 = seg.iter().map(|v| (lambda * v.abs() as f64).min(1.0)).sum();
        if expected <= 0.0 {
            break;
        }
        lambda *= budget / expected;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx = Vec::new();
    let mut val = Vec::new();
    for (i, &v) in seg.iter().enumerate() {
        let p = (lambda * v.abs() as f64).min(1.0);
        if p > 0.0 && (rng.gen::<f64>() < p) {
            idx.push(i as u32);
            val.push((v as f64 / p) as f32);
        }
    }
    SparseVec { idx, val }
}

/// Per-layer unbiased random dropping over a flat vector.
pub fn random_unbiased_update(
    flat: &[f32],
    part: &Partition,
    target_ratio: f64,
    seed: u64,
) -> SparseUpdate {
    part.check_covers(flat);
    let chunks = (0..part.num_segments())
        .map(|i| {
            random_unbiased_sparsify(part.slice(flat, i), target_ratio, seed.wrapping_add(i as u64))
        })
        .collect();
    SparseUpdate { chunks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_zero_segments() {
        assert_eq!(random_unbiased_sparsify(&[], 0.1, 1).nnz(), 0);
        assert_eq!(random_unbiased_sparsify(&[0.0; 16], 0.1, 1).nnz(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let seg: Vec<f32> = (0..64).map(|i| ((i * 13) % 17) as f32 - 8.0).collect();
        let a = random_unbiased_sparsify(&seg, 0.2, 5);
        let b = random_unbiased_sparsify(&seg, 0.2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn expected_count_matches_budget() {
        let seg: Vec<f32> = (0..1000).map(|i| ((i * 37) % 100) as f32 * 0.1 + 0.1).collect();
        let target = 0.1;
        let trials = 200;
        let total: usize =
            (0..trials).map(|s| random_unbiased_sparsify(&seg, target, s).nnz()).sum();
        let mean = total as f64 / trials as f64;
        let budget = target * seg.len() as f64;
        assert!((mean - budget).abs() < 0.15 * budget, "mean kept {mean} vs budget {budget}");
    }

    #[test]
    fn estimator_is_unbiased() {
        let seg = [2.0f32, -1.0, 0.25, 4.0, -0.5, 0.1, 0.0, 3.0];
        let trials = 6000;
        let mut acc = vec![0.0f64; seg.len()];
        for s in 0..trials {
            let sv = random_unbiased_sparsify(&seg, 0.4, s);
            let dense = sv.to_dense(seg.len());
            for (a, &v) in acc.iter_mut().zip(dense.iter()) {
                *a += v as f64;
            }
        }
        for (i, (&v, &a)) in seg.iter().zip(acc.iter()).enumerate() {
            let mean = a / trials as f64;
            assert!(
                (mean - v as f64).abs() < 0.12 * (v.abs() as f64).max(0.5),
                "coord {i}: mean {mean} vs {v}"
            );
        }
    }

    #[test]
    fn certainly_kept_values_not_rescaled() {
        // A hugely dominant coordinate gets p ≈ 1 and must be transmitted
        // at (essentially) face value — within the λ refinement's slack.
        let seg = [1000.0f32, 0.001, 0.001, 0.001];
        let sv = random_unbiased_sparsify(&seg, 0.25, 9);
        let dense = sv.to_dense(4);
        assert!((dense[0] - 1000.0).abs() < 0.5, "dominant coordinate distorted: {}", dense[0]);
    }

    #[test]
    fn per_layer_update_covers_partition() {
        let part = Partition::from_layer_sizes([("a", 50), ("b", 50)]);
        let flat: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        let up = random_unbiased_update(&flat, &part, 0.2, 3);
        assert_eq!(up.chunks.len(), 2);
        // Indices stay local to each segment.
        for chunk in &up.chunks {
            assert!(chunk.idx.iter().all(|&i| i < 50));
        }
    }
}
