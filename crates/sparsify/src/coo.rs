//! COO wire encoding — the paper's `encode()` / `decode()` functions.
//!
//! A [`SparseVec`] is one layer's worth of (index, value) pairs with indices
//! local to the layer segment; a [`SparseUpdate`] groups one `SparseVec` per
//! partition segment. The binary layout is little-endian:
//!
//! ```text
//! SparseUpdate := [num_chunks: u32] Chunk*
//! Chunk        := [nnz: u32] [idx: u32]*nnz [val: f32]*nnz
//! ```
//!
//! `wire_bytes()` reports the exact encoded size; the network simulator
//! charges transfers by this number, so compression ratios in the
//! experiments are byte-accurate rather than element-count approximations.

use crate::partition::Partition;
use crate::topk::{gather, scatter_add, topk_indices};
use crate::{k_for_ratio, CompressionStats};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgs_tensor::Kernel;

/// Sparse content of one partition segment: parallel index/value arrays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    /// Indices local to the segment, ascending.
    pub idx: Vec<u32>,
    /// Values, parallel to `idx`.
    pub val: Vec<f32>,
}

impl SparseVec {
    /// Builds the Top-k sparse vector of a dense segment.
    pub fn from_topk(seg: &[f32], k: usize) -> Self {
        let idx = topk_indices(seg, k);
        let val = gather(seg, &idx);
        SparseVec { idx, val }
    }

    /// Builds a sparse vector from every nonzero entry of the segment.
    pub fn from_nonzero(seg: &[f32]) -> Self {
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (i, &v) in seg.iter().enumerate() {
            if v != 0.0 {
                idx.push(i as u32);
                val.push(v);
            }
        }
        SparseVec { idx, val }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Adds `scale × self` into a dense segment.
    pub fn apply_add(&self, seg: &mut [f32], scale: f32) {
        scatter_add(seg, &self.idx, &self.val, scale);
    }

    /// Densifies into a fresh vector of length `len`.
    pub fn to_dense(&self, len: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; len];
        self.apply_add(&mut out, 1.0);
        out
    }

    /// Exact encoded size in bytes (without the update-level header).
    pub fn wire_bytes(&self) -> usize {
        4 + 8 * self.nnz()
    }
}

/// A sparse update aligned with a [`Partition`]: `chunks[i]` covers
/// partition segment `i`.
///
/// ```
/// use dgs_sparsify::{Partition, SparseUpdate};
///
/// let part = Partition::from_layer_sizes([("w", 4), ("b", 2)]);
/// let grads = [0.1, -9.0, 0.2, 0.3, 5.0, 0.0];
/// // Keep the top value of each layer (ratio rounds up to k = 1).
/// let update = SparseUpdate::from_topk(&grads, &part, 0.01);
/// assert_eq!(update.nnz(), 2);
/// let wire = update.encode();
/// let back = SparseUpdate::decode(wire).unwrap();
/// assert_eq!(back.to_dense(&part), vec![0.0, -9.0, 0.0, 0.0, 5.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseUpdate {
    /// One sparse chunk per partition segment, in segment order.
    pub chunks: Vec<SparseVec>,
}

impl SparseUpdate {
    /// Sparsifies a flat vector per layer at the given Top-k ratio
    /// (the paper's per-layer `thr ← R% of |·|` loop).
    pub fn from_topk(flat: &[f32], part: &Partition, ratio: f64) -> Self {
        part.check_covers(flat);
        let chunks = (0..part.num_segments())
            .map(|i| {
                let seg = part.slice(flat, i);
                SparseVec::from_topk(seg, k_for_ratio(seg.len(), ratio))
            })
            .collect();
        SparseUpdate { chunks }
    }

    /// Collects every nonzero coordinate per layer (used for model
    /// differences that are already sparse without further thresholding).
    pub fn from_nonzero(flat: &[f32], part: &Partition) -> Self {
        part.check_covers(flat);
        let chunks = (0..part.num_segments())
            .map(|i| SparseVec::from_nonzero(part.slice(flat, i)))
            .collect();
        SparseUpdate { chunks }
    }

    /// Total stored entries across all chunks.
    pub fn nnz(&self) -> usize {
        self.chunks.iter().map(SparseVec::nnz).sum()
    }

    /// Adds `scale × self` into a flat dense vector.
    ///
    /// # Panics
    ///
    /// If the chunk count does not match the partition. Updates decoded
    /// off the wire should go through [`Self::try_apply_add`] so a
    /// mis-partitioned peer surfaces as an error, not a panic.
    pub fn apply_add(&self, flat: &mut [f32], part: &Partition, scale: f32) {
        self.try_apply_add(flat, part, scale).expect("update/partition mismatch");
    }

    /// Fallible [`Self::apply_add`]: returns `None` without touching
    /// `flat` when the chunk count does not match the partition.
    pub fn try_apply_add(&self, flat: &mut [f32], part: &Partition, scale: f32) -> Option<()> {
        if self.chunks.len() != part.num_segments() {
            return None;
        }
        for (i, chunk) in self.chunks.iter().enumerate() {
            scatter_add(part.slice_mut(flat, i), &chunk.idx, &chunk.val, scale);
        }
        Some(())
    }

    /// Densifies into a fresh flat vector covering the partition.
    pub fn to_dense(&self, part: &Partition) -> Vec<f32> {
        let mut out = vec![0.0f32; part.total_len()];
        self.apply_add(&mut out, part, 1.0);
        out
    }

    /// Exact encoded size in bytes.
    pub fn wire_bytes(&self) -> usize {
        4 + self.chunks.iter().map(SparseVec::wire_bytes).sum::<usize>()
    }

    /// Encodes to the binary wire format. Runtime kernel.
    pub fn encode(&self) -> Bytes {
        self.encode_with(Kernel::runtime())
    }

    /// [`SparseUpdate::encode`] on an explicit [`Kernel`]: index and value
    /// arrays are appended as single bulk little-endian byte copies when
    /// the backend offers a reinterpret view (x86-64 is little-endian, so
    /// the in-memory `u32`/`f32` arrays *are* the wire bytes), falling
    /// back to the per-element `put_u32_le`/`put_f32_le` loops otherwise.
    /// Both paths emit identical bytes — f32 values are copied bit-for-bit
    /// either way, so NaN payloads survive unchanged.
    pub fn encode_with(&self, kernel: Kernel) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_bytes());
        buf.put_u32_le(self.chunks.len() as u32);
        for chunk in &self.chunks {
            buf.put_u32_le(chunk.nnz() as u32);
            if let Some(le) = kernel.u32s_le(&chunk.idx) {
                buf.put_slice(le);
            } else {
                for &i in &chunk.idx {
                    buf.put_u32_le(i);
                }
            }
            if let Some(le) = kernel.f32s_le(&chunk.val) {
                buf.put_slice(le);
            } else {
                for &v in &chunk.val {
                    buf.put_f32_le(v);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes from the binary wire format. Returns `None` on truncated or
    /// malformed input.
    pub fn decode(mut bytes: Bytes) -> Option<Self> {
        if bytes.remaining() < 4 {
            return None;
        }
        let num_chunks = bytes.get_u32_le() as usize;
        let mut chunks = Vec::with_capacity(num_chunks);
        for _ in 0..num_chunks {
            if bytes.remaining() < 4 {
                return None;
            }
            let nnz = bytes.get_u32_le() as usize;
            if bytes.remaining() < 8 * nnz {
                return None;
            }
            let mut idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                idx.push(bytes.get_u32_le());
            }
            let mut val = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                val.push(bytes.get_f32_le());
            }
            chunks.push(SparseVec { idx, val });
        }
        Some(SparseUpdate { chunks })
    }

    /// Compression statistics versus sending the dense vector.
    pub fn stats(&self, dense_len: usize) -> CompressionStats {
        CompressionStats::new(4 * dense_len, self.wire_bytes())
    }
}

/// Sums several partition-aligned sparse updates into one — the edge
/// aggregator's combine step for a worker group's uplinks. All inputs
/// must have the same chunk count (same partition); values at a shared
/// index are summed **in input order** per [`crate::merge::merge_sum_pairs`],
/// so callers fix the ordering (worker-id order) to keep the result a
/// pure function of the inputs. A single input is returned as a bitwise
/// clone.
///
/// # Panics
/// Panics if `inputs` is empty or the chunk counts disagree — both are
/// construction bugs at the call site, not runtime conditions. Callers
/// merging **wire-derived** updates (where a misbehaving peer controls
/// the chunk counts) must use [`try_merge_sparse_updates`] instead.
pub fn merge_sparse_updates(inputs: &[&SparseUpdate]) -> SparseUpdate {
    try_merge_sparse_updates(inputs)
        .expect("merge of zero updates, or updates that do not share a partition")
}

/// Fallible form of [`merge_sparse_updates`]: `None` when `inputs` is
/// empty or the chunk counts disagree, instead of panicking. This is
/// the entry point for wire-derived inputs — a peer must not be able
/// to panic the aggregator by sending a payload cut to a different
/// partition.
pub fn try_merge_sparse_updates(inputs: &[&SparseUpdate]) -> Option<SparseUpdate> {
    let first = inputs.first()?;
    let num_chunks = first.chunks.len();
    if inputs.iter().any(|u| u.chunks.len() != num_chunks) {
        return None;
    }
    if let [only] = inputs {
        return Some((*only).clone());
    }
    let chunks = (0..num_chunks)
        .map(|c| {
            let pairs: Vec<(&[u32], &[f32])> = inputs
                .iter()
                .map(|u| (u.chunks[c].idx.as_slice(), u.chunks[c].val.as_slice()))
                .collect();
            let (idx, val) = crate::merge::merge_sum_pairs(&pairs);
            SparseVec { idx, val }
        })
        .collect();
    Some(SparseUpdate { chunks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part_2() -> Partition {
        Partition::from_layer_sizes([("a", 4), ("b", 6)])
    }

    #[test]
    fn sparse_vec_topk_and_dense() {
        let seg = [0.0, -3.0, 1.0, 2.0];
        let sv = SparseVec::from_topk(&seg, 2);
        assert_eq!(sv.idx, vec![1, 3]);
        assert_eq!(sv.val, vec![-3.0, 2.0]);
        assert_eq!(sv.to_dense(4), vec![0.0, -3.0, 0.0, 2.0]);
        assert_eq!(sv.wire_bytes(), 4 + 16);
    }

    #[test]
    fn from_nonzero_skips_zeros() {
        let sv = SparseVec::from_nonzero(&[0.0, 1.5, 0.0, -2.5, 0.0]);
        assert_eq!(sv.idx, vec![1, 3]);
        assert_eq!(sv.val, vec![1.5, -2.5]);
    }

    #[test]
    fn update_topk_per_layer() {
        let flat = vec![
            10.0, 0.1, 0.2, 0.3, // layer a: top1 = idx 0
            0.1, 0.2, -9.0, 0.3, 0.4, 0.5, // layer b: top1 = idx 2
        ];
        // ratio 0.01 -> k = 1 per layer (minimum-1 rule)
        let up = SparseUpdate::from_topk(&flat, &part_2(), 0.01);
        assert_eq!(up.chunks[0].idx, vec![0]);
        assert_eq!(up.chunks[1].idx, vec![2]);
        assert_eq!(up.nnz(), 2);
    }

    #[test]
    fn apply_add_respects_partition_offsets() {
        let flat = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0];
        let up = SparseUpdate::from_nonzero(&flat, &part_2());
        let mut out = vec![0.0; 10];
        up.apply_add(&mut out, &part_2(), -2.0);
        assert_eq!(out[0], -2.0);
        assert_eq!(out[9], -4.0);
        assert!(out[1..9].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let flat: Vec<f32> = (0..10).map(|i| (i as f32 - 5.0) * 1.25).collect();
        let up = SparseUpdate::from_topk(&flat, &part_2(), 0.5);
        let encoded = up.encode();
        assert_eq!(encoded.len(), up.wire_bytes());
        let decoded = SparseUpdate::decode(encoded).unwrap();
        assert_eq!(decoded, up);
    }

    #[test]
    fn decode_rejects_truncated() {
        let flat: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let up = SparseUpdate::from_topk(&flat, &part_2(), 0.5);
        let encoded = up.encode();
        for cut in [0, 3, 7, encoded.len() - 1] {
            assert!(
                SparseUpdate::decode(encoded.slice(0..cut)).is_none(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_empty_update() {
        let up = SparseUpdate { chunks: vec![] };
        let decoded = SparseUpdate::decode(up.encode()).unwrap();
        assert_eq!(decoded.chunks.len(), 0);
        assert_eq!(up.wire_bytes(), 4);
    }

    #[test]
    fn wire_bytes_formula() {
        let flat: Vec<f32> = (1..=10).map(|i| i as f32).collect();
        let up = SparseUpdate::from_topk(&flat, &part_2(), 0.5);
        // a: k=2, b: k=3 -> 4 + (4+16) + (4+24) = 52
        assert_eq!(up.wire_bytes(), 52);
        assert_eq!(up.encode().len(), 52);
    }

    #[test]
    fn merge_sparse_updates_sums_per_chunk() {
        let part = part_2();
        let a = SparseUpdate::from_nonzero(&[1.0, 0.0, 0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0], &part);
        let b = SparseUpdate::from_nonzero(&[0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 7.0, 0.0, 0.0, 0.0], &part);
        let merged = merge_sparse_updates(&[&a, &b]);
        assert_eq!(merged.chunks.len(), 2);
        assert_eq!(
            merged.to_dense(&part),
            vec![1.0, 0.0, 0.0, 7.0, 0.0, 3.0, 7.0, 0.0, 0.0, 0.0]
        );
        // Single input: bitwise clone.
        let one = merge_sparse_updates(&[&a]);
        assert_eq!(one, a);
    }

    #[test]
    fn try_merge_rejects_empty_and_mismatched_partitions() {
        let part = part_2();
        let a = SparseUpdate::from_nonzero(&[1.0, 0.0, 0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0], &part);
        let b = SparseUpdate::from_nonzero(&[0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 7.0, 0.0, 0.0, 0.0], &part);
        // The happy path matches the panicking form exactly.
        let merged = try_merge_sparse_updates(&[&a, &b]).unwrap();
        assert_eq!(merged, merge_sparse_updates(&[&a, &b]));
        // Wire-derived failure modes are reported, not panicked: a peer
        // cutting its update to a different partition, or none at all.
        let narrow = SparseUpdate { chunks: vec![a.chunks[0].clone()] };
        assert_eq!(try_merge_sparse_updates(&[&a, &narrow]), None);
        assert_eq!(try_merge_sparse_updates(&[]), None);
    }

    #[test]
    fn try_apply_add_rejects_mismatched_partition() {
        let part = part_2();
        let up = SparseUpdate::from_nonzero(&[1.0, 0.0, 0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0], &part);
        let mut flat = vec![0.0; part.total_len()];
        assert_eq!(up.try_apply_add(&mut flat, &part, 1.0), Some(()));
        assert_eq!(flat, up.to_dense(&part));
        // A chunk count cut to some other partition reports None and
        // leaves the destination untouched.
        let narrow = SparseUpdate { chunks: vec![up.chunks[0].clone()] };
        let before = flat.clone();
        assert_eq!(narrow.try_apply_add(&mut flat, &part, 1.0), None);
        assert_eq!(flat, before);
    }

    #[test]
    fn encode_backend_invariant_including_nan_payloads() {
        // Values chosen so the bulk little-endian reinterpret path must
        // reproduce the per-element path bit-for-bit: a quiet NaN with a
        // payload, -0.0, infinities, denormals.
        let weird = SparseVec {
            idx: vec![0, 3, 5, 9, 11],
            val: vec![
                f32::from_bits(0x7FC0_1234),
                -0.0,
                f32::NEG_INFINITY,
                1.0e-42,
                42.5,
            ],
        };
        let up = SparseUpdate { chunks: vec![weird, SparseVec::default()] };
        let a = up.encode_with(Kernel::Scalar);
        let b = up.encode_with(Kernel::Simd);
        assert_eq!(a, b, "backends must emit identical wire bytes");
        // Roundtrip preserves the NaN bit pattern.
        let back = SparseUpdate::decode(b).unwrap();
        assert_eq!(back.chunks[0].val[0].to_bits(), 0x7FC0_1234);
    }

    #[test]
    fn stats_ratio() {
        let flat: Vec<f32> = (1..=10).map(|i| i as f32).collect();
        let up = SparseUpdate::from_topk(&flat, &part_2(), 0.2);
        let st = up.stats(flat.len());
        assert_eq!(st.dense_bytes, 40);
        assert!(st.compressed_bytes < st.dense_bytes);
        assert!(st.ratio() > 1.0);
    }
}
