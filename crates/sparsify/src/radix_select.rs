//! Bit-level Top-k selection engine: exact, deterministic O(n) radix select.
//!
//! Every Top-R% selection in the workspace ranks coordinates under the
//! single total order [`crate::merge::mag_idx_order`]: magnitude descending
//! (NaN above +∞ via [`f32::total_cmp`]), ties broken toward lower indices.
//! The comparator engines in [`crate::topk`] / [`crate::merge`] realise that
//! order through `select_nth_unstable_by` over an index vector — an O(n)
//! *average* algorithm whose constant is dominated by comparator calls and
//! the dim-sized index permutation it drags through cache. At the paper's
//! operating point (dim = 1M, R = 1%) that selection is the per-step hot
//! spot on **both** sparsification ways: the worker uplink (Alg. 1/3) and
//! the server's secondary compression (Alg. 2), see `BENCH_server.json`.
//!
//! This module replaces the comparator with bit arithmetic:
//!
//! 1. **Key mapping.** `key(v) = v.to_bits() & 0x7FFF_FFFF` — the IEEE-754
//!    bit pattern of `|v|`. For sign-cleared f32 bit patterns, unsigned
//!    integer order coincides with `total_cmp` order: finite magnitudes
//!    ascend with their bits, `+∞` (`0x7F80_0000`) sits above every finite
//!    value, and every NaN payload (`> 0x7F80_0000`) sits above `+∞` —
//!    exactly the order [`crate::merge::mag_idx_order`] imposes on
//!    magnitudes. The map is total: ±0, denormals, and all NaN payloads
//!    rank deterministically.
//! 2. **Histogram select.** A 65,536-bucket histogram over the top *two*
//!    key bytes locates the bucket holding the k-th largest key. A single
//!    byte would be the textbook radix, but an f32's top key byte is just
//!    the sign-cleared exponent's high bits — gradient-shaped data piles
//!    ~25% of a segment into one bucket. Sixteen bits split every exponent
//!    across 256 mantissa sub-buckets, keeping the expected boundary
//!    bucket near n/65536. A second, fused scan emits every position whose
//!    top two bytes rank strictly above that bucket (already in ascending
//!    order) and gathers the boundary bucket's keys and positions into
//!    pooled scratch. Byte-wise refinement over the candidates alone then
//!    pins the exact k-th key (`thr_key`) and the count strictly above it
//!    — no comparator calls, no dim-sized index vector.
//! 3. **Tie-aware merge.** The selected boundary candidates — everything
//!    with `key > thr_key` plus the first `k − above` positions with
//!    `key == thr_key` — merge into the definite positions, both streams
//!    ascending. Walking candidates in ascending position order makes the
//!    tie-break "lower index wins" by construction — the same resolution
//!    the comparator engines produce — so indices, values, and thresholds
//!    are bitwise identical to the comparator path on every input,
//!    NaN/±∞/denormal/tie torture included (proved by
//!    `tests/select_equivalence.rs`).
//!
//! Cost: two streaming passes over the segment plus refinement over the
//! boundary bucket (expected n/65536). A one-ulp plateau — the whole
//! segment inside one two-byte prefix — is detected when the boundary
//! bucket exceeds n/8 and handled by a third, filtered histogram pass
//! that narrows the prefix to 24 bits before gathering; the engine stays
//! exact and still beats the comparator (≈1.3–1.5× measured, vs ≈3.7×
//! on gradient-shaped data — `BENCH_topk.json`). Segments below
//! `WIDE_HIST_MIN` (32 Ki) skip the wide histogram entirely for a 256-bucket
//! stack-resident byte cascade, so small layers never pay the 256 KiB
//! histogram reset. Scratch is the 65,536-entry histogram plus the
//! boundary bucket's keys and positions.
//!
//! The wide path's three hot loops — histogram fill, chunk-skipping fused
//! scan, and threshold-only gather — run through the
//! [`dgs_tensor::Kernel`] backend seam carried by [`SelectScratch`]
//! (runtime-detected by default, overridable per scratch or via
//! `DGS_KERNEL`). Both backends are bitwise identical on every input, so
//! the selection result never depends on the backend; the narrow
//! (< `WIDE_HIST_MIN`) cascade and the candidate refinement stay scalar —
//! they touch at most a few hundred elements. Standalone differential
//! harnesses can still compile this module directly together with the
//! tensor crate's `kernel.rs`/`simd.rs` (see
//! `.claude/skills/verify/SKILL.md`).

use dgs_tensor::Kernel;

/// Clears the f32 sign bit: `mag_key(v) == (|v|).to_bits()`.
const MAG_MASK: u32 = 0x7FFF_FFFF;

/// The magnitude key. Monotone with `|a|.total_cmp(&|b|)`: comparing keys
/// as `u32` is exactly comparing magnitudes under the workspace total
/// order, including NaN (all payloads) above `+∞` above every finite.
#[inline(always)]
pub fn mag_key(v: f32) -> u32 {
    v.to_bits() & MAG_MASK
}

/// Which Top-k selection engine a call site uses.
///
/// Both engines produce bitwise-identical indices, values, and thresholds
/// (same selection set, same tie resolution, same output order); they
/// differ only in cost. [`SelectStrategy::Comparator`] is retained as the
/// differential oracle the radix engine is proven against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectStrategy {
    /// `select_nth_unstable_by` under `mag_idx_order` — the reference.
    Comparator,
    /// Bit-level histogram select (this module) — the default.
    #[default]
    Radix,
}

/// Reusable scratch for the radix select: three `u32` buffers holding the
/// boundary bucket's candidate keys (`keys`) and positions (`pos`), plus a
/// dual-use buffer (`spare`) that serves first as the 65,536-entry top
/// histogram and then as the refinement ping-pong target. Grown once and
/// reusable across calls; pair it with `dgs_tensor::BufferPool<u32>` on
/// hot paths to keep the steady state allocation-free.
///
/// The scratch also carries the [`Kernel`] compute backend its selections
/// run on (the runtime-detected one unless overridden with
/// [`SelectScratch::with_kernel`]) — backends are bitwise identical, so
/// this only ever changes cost, never a result.
#[derive(Debug, Default)]
pub struct SelectScratch {
    keys: Vec<u32>,
    spare: Vec<u32>,
    pos: Vec<u32>,
    kernel: Kernel,
}

impl SelectScratch {
    /// A fresh scratch (no capacity until first use, runtime kernel).
    pub fn new() -> Self {
        SelectScratch::default()
    }

    /// Wraps three recycled buffers (e.g. from a `BufferPool<u32>`); they
    /// are cleared before use, capacity retained. Runtime kernel.
    pub fn from_buffers(mut keys: Vec<u32>, mut spare: Vec<u32>, mut pos: Vec<u32>) -> Self {
        keys.clear();
        spare.clear();
        pos.clear();
        SelectScratch { keys, spare, pos, kernel: Kernel::runtime() }
    }

    /// Returns the three buffers for release back to their pool.
    pub fn into_buffers(self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        (self.keys, self.spare, self.pos)
    }

    /// Overrides the compute backend (builder style).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The compute backend selections through this scratch run on.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

/// The resolved selection boundary: the exact k-th largest key and how many
/// keys rank strictly above it (`k − above` ties at `thr_key` are taken,
/// lowest indices first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cut {
    thr_key: u32,
    above: usize,
}

/// Segments below this length use a 256-bucket byte histogram on the
/// stack; at or above it, the 65,536-bucket two-byte histogram (whose
/// fixed setup cost — zeroing 512 KB of counts and walking 64 Ki buckets —
/// only pays for itself on large segments). Both paths are exact and
/// bitwise identical; the cutoff is pure cost tuning.
const WIDE_HIST_MIN: usize = 1 << 15;

/// 256-bucket histogram of the top key byte, for small segments.
fn hist_narrow(seg: &[f32]) -> [usize; 256] {
    let mut hist = [0usize; 256];
    for &v in seg {
        hist[(mag_key(v) >> 24) as usize] += 1;
    }
    hist
}

/// 256-bucket histogram of key bits `shift-8..shift`, restricted to keys
/// whose bits above `shift` equal `prefix`. Narrows a degenerate boundary
/// bucket (a plateau of magnitudes inside one two-byte prefix) with one
/// extra streaming pass instead of gathering the whole bucket.
fn hist_filtered(seg: &[f32], prefix: u32, shift: u32) -> [usize; 256] {
    let sub = shift - 8;
    let mut h0 = [0usize; 256];
    let mut h1 = [0usize; 256];
    let mut chunks = seg.chunks_exact(2);
    for c in &mut chunks {
        let k0 = mag_key(c[0]);
        let k1 = mag_key(c[1]);
        if k0 >> shift == prefix {
            h0[((k0 >> sub) & 0xFF) as usize] += 1;
        }
        if k1 >> shift == prefix {
            h1[((k1 >> sub) & 0xFF) as usize] += 1;
        }
    }
    for &v in chunks.remainder() {
        let key = mag_key(v);
        if key >> shift == prefix {
            h0[((key >> sub) & 0xFF) as usize] += 1;
        }
    }
    for b in 0..256 {
        h0[b] += h1[b];
    }
    h0
}

/// 256-bucket histogram of `(key >> shift) & 0xFF` over candidate keys,
/// with the same 4-way dependency break as [`hist_top`].
fn hist_byte(keys: &[u32], shift: u32) -> [usize; 256] {
    let mut h0 = [0usize; 256];
    let mut h1 = [0usize; 256];
    let mut h2 = [0usize; 256];
    let mut h3 = [0usize; 256];
    let mut chunks = keys.chunks_exact(4);
    for c in &mut chunks {
        h0[((c[0] >> shift) & 0xFF) as usize] += 1;
        h1[((c[1] >> shift) & 0xFF) as usize] += 1;
        h2[((c[2] >> shift) & 0xFF) as usize] += 1;
        h3[((c[3] >> shift) & 0xFF) as usize] += 1;
    }
    for &key in chunks.remainder() {
        h0[((key >> shift) & 0xFF) as usize] += 1;
    }
    for b in 0..256 {
        h0[b] += h1[b] + h2[b] + h3[b];
    }
    h0
}

/// Walks a byte histogram from the top bucket down until the cumulative
/// count reaches `need`; returns `(bucket, above)` where `above` is the
/// mass in strictly higher buckets. `need` must not exceed the mass.
fn walk_desc(hist: &[usize; 256], need: usize) -> (usize, usize) {
    debug_assert!(need >= 1);
    let mut above = 0usize;
    for b in (0..256).rev() {
        if above + hist[b] >= need {
            return (b, above);
        }
        above += hist[b];
    }
    unreachable!("need exceeds histogram mass");
}

/// [`walk_desc`] over the 65,536-bucket top histogram.
fn walk_desc_top(hist: &[u32], need: usize) -> (usize, usize) {
    debug_assert!(need >= 1);
    let mut above = 0usize;
    for b in (0..hist.len()).rev() {
        if above + hist[b] as usize >= need {
            return (b, above);
        }
        above += hist[b] as usize;
    }
    unreachable!("need exceeds histogram mass");
}

/// Refines the candidate key set (all sharing the key prefix above the
/// first entry of `shifts`) down to the exact `need`-th largest key.
/// Consumes `keys` (ping-pongs through `spare`); returns the threshold key
/// and how many *candidates* rank strictly above it.
fn refine(
    keys: &mut Vec<u32>,
    spare: &mut Vec<u32>,
    mut need: usize,
    mut prefix: u32,
    shifts: &[u32],
) -> Cut {
    debug_assert!(need >= 1 && need <= keys.len(), "refine bounds");
    let mut above = 0usize;
    for &shift in shifts {
        if keys.len() == need {
            // Every remaining candidate is selected: the threshold is their
            // minimum, and only its duplicates count as ties.
            let min = keys.iter().copied().min().unwrap_or(prefix);
            let ties = keys.iter().filter(|&&key| key == min).count();
            return Cut { thr_key: min, above: above + need - ties };
        }
        let h = hist_byte(keys, shift);
        let (bucket, above_level) = walk_desc(&h, need);
        above += above_level;
        need -= above_level;
        let byte = bucket as u32;
        prefix |= byte << shift;
        spare.clear();
        for &key in keys.iter() {
            if (key >> shift) & 0xFF == byte {
                spare.push(key);
            }
        }
        std::mem::swap(keys, spare);
    }
    // All key bytes pinned: the survivors are exact copies of thr_key.
    debug_assert!(keys.iter().all(|&key| key == prefix));
    debug_assert!(need >= 1 && need <= keys.len());
    Cut { thr_key: prefix, above }
}

/// Locates the k-th largest magnitude key of `seg` (`1 <= k <= seg.len()`)
/// via the histogram cascade. Used by the threshold-only path; the
/// index/pair emitters inline a fused variant that also captures candidate
/// positions.
fn find_cut(seg: &[f32], k: usize, scratch: &mut SelectScratch) -> Cut {
    debug_assert!(k >= 1 && k <= seg.len(), "find_cut bounds");
    let kernel = scratch.kernel;
    let SelectScratch { keys, spare, .. } = scratch;
    if seg.len() < WIDE_HIST_MIN {
        let hist = hist_narrow(seg);
        let (top, above_def) = walk_desc(&hist, k);
        keys.clear();
        keys.reserve(hist[top]);
        let top_byte = top as u32;
        for &v in seg {
            let key = mag_key(v);
            if key >> 24 == top_byte {
                keys.push(key);
            }
        }
        debug_assert_eq!(keys.len(), hist[top]);
        let cut = refine(keys, spare, k - above_def, top_byte << 24, &[16, 8, 0]);
        Cut { thr_key: cut.thr_key, above: above_def + cut.above }
    } else {
        let (prefix, shift, above_def, need, cand) = wide_window(seg, k, spare, kernel);
        keys.clear();
        keys.reserve(cand);
        let lo = prefix << shift;
        // Chunk-skip gather through the backend seam: one merged `any key
        // >= lo` test per chunk dives into the emit path only for the
        // rare chunks holding boundary-or-above keys.
        kernel.gather_keys(seg, prefix, shift, keys);
        debug_assert_eq!(keys.len(), cand);
        let cut = refine(keys, spare, need, lo, wide_refine_shifts(shift));
        Cut { thr_key: cut.thr_key, above: above_def + cut.above }
    }
}

/// Resolves the wide path's candidate window: the two-byte boundary bucket
/// from [`Kernel::hist16`], narrowed by one [`hist_filtered`] pass when the
/// bucket holds more than an eighth of the segment (a magnitude plateau —
/// the extra streaming pass is cheaper than gathering and refining the
/// whole bucket). Returns `(prefix, shift, above_def, need, cand)`: the
/// candidates are the `cand` keys with `key >> shift == prefix`,
/// `above_def` keys rank strictly above them, and the `need`-th largest
/// candidate is the overall k-th.
fn wide_window(
    seg: &[f32],
    k: usize,
    spare: &mut Vec<u32>,
    kernel: Kernel,
) -> (u32, u32, usize, usize, usize) {
    kernel.hist16(seg, spare);
    let (top, mut above_def) = walk_desc_top(spare, k);
    let mut need = k - above_def;
    let mut cand = spare[top] as usize;
    let mut prefix = top as u32;
    let mut shift = 16u32;
    if cand > seg.len() / 8 {
        let sub = hist_filtered(seg, prefix, shift);
        let (b, above_level) = walk_desc(&sub, need);
        above_def += above_level;
        need -= above_level;
        cand = sub[b];
        prefix = (prefix << 8) | b as u32;
        shift = 8;
    }
    (prefix, shift, above_def, need, cand)
}

/// The refinement byte shifts still open below a wide-path window.
fn wide_refine_shifts(shift: u32) -> &'static [u32] {
    if shift == 16 {
        &[8, 0]
    } else {
        &[0]
    }
}

/// Radix Top-k index selection — bitwise identical to
/// [`crate::topk::topk_indices`] (indices of the `k` largest-magnitude
/// values, ascending, ties toward lower indices), in O(n) with no
/// comparator calls and no dim-sized index vector.
pub fn radix_topk_indices(seg: &[f32], k: usize, scratch: &mut SelectScratch) -> Vec<u32> {
    let n = seg.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    if k == n {
        return (0..n as u32).collect();
    }
    let (definite, cut, ties) = fused_select(seg, k, scratch);
    // Merge the definite positions with the selected boundary candidates,
    // both ascending, into one ascending index list.
    let mut out = Vec::with_capacity(k);
    let mut d = 0usize;
    let mut ties = ties;
    for &p in scratch.pos.iter() {
        let key = mag_key(seg[p as usize]);
        let take = if key > cut.thr_key {
            true
        } else if key == cut.thr_key && ties > 0 {
            ties -= 1;
            true
        } else {
            false
        };
        if take {
            while d < definite.len() && definite[d] < p {
                out.push(definite[d]);
                d += 1;
            }
            out.push(p);
        }
    }
    out.extend_from_slice(&definite[d..]);
    debug_assert_eq!(out.len(), k);
    out
}

/// The shared fused pass behind the index/pair emitters: one histogram pass
/// over `seg`, then one scan that simultaneously emits the positions whose
/// top two bytes rank strictly above the boundary bucket (`definite`,
/// already ascending) and gathers the boundary bucket's keys + positions
/// into scratch. The exact threshold is then pinned by refining only the
/// candidates. Returns `(definite, cut, ties)` where `ties` is the number
/// of `== thr_key` candidates to take (lowest positions first); candidate
/// positions stay in `scratch.pos`.
fn fused_select(seg: &[f32], k: usize, scratch: &mut SelectScratch) -> (Vec<u32>, Cut, usize) {
    if seg.len() < WIDE_HIST_MIN {
        fused_select_narrow(seg, k, scratch)
    } else {
        fused_select_wide(seg, k, scratch)
    }
}

/// [`fused_select`] for small segments: 256-bucket byte histogram.
fn fused_select_narrow(
    seg: &[f32],
    k: usize,
    scratch: &mut SelectScratch,
) -> (Vec<u32>, Cut, usize) {
    let hist = hist_narrow(seg);
    let (top, above_def) = walk_desc(&hist, k);
    let need = k - above_def;
    let SelectScratch { keys, spare, pos, .. } = scratch;
    keys.clear();
    pos.clear();
    keys.reserve(hist[top]);
    pos.reserve(hist[top]);
    let mut definite = Vec::with_capacity(above_def);
    let top_byte = top as u32;
    for (i, &v) in seg.iter().enumerate() {
        let key = mag_key(v);
        let b = key >> 24;
        if b == top_byte {
            keys.push(key);
            pos.push(i as u32);
        } else if b > top_byte {
            definite.push(i as u32);
        }
    }
    debug_assert_eq!(definite.len(), above_def);
    let cut = refine(keys, spare, need, top_byte << 24, &[16, 8, 0]);
    (definite, cut, need - cut.above)
}

/// [`fused_select`] for large segments: 65,536-bucket two-byte histogram
/// plus a chunk-skipping fused scan — one merged `any key >= bucket lower
/// bound` test per chunk, diving into the emit path only for the rare
/// chunks holding boundary-or-above keys. Histogram and scan both run on
/// the scratch's [`Kernel`] backend.
fn fused_select_wide(seg: &[f32], k: usize, scratch: &mut SelectScratch) -> (Vec<u32>, Cut, usize) {
    let kernel = scratch.kernel;
    let SelectScratch { keys, spare, pos, .. } = scratch;
    let (prefix, shift, above_def, need, cand) = wide_window(seg, k, spare, kernel);
    keys.clear();
    pos.clear();
    keys.reserve(cand);
    pos.reserve(cand);
    let mut definite = Vec::with_capacity(above_def);
    let lo = prefix << shift;
    kernel.select_scan(seg, prefix, shift, keys, pos, &mut definite);
    debug_assert_eq!(definite.len(), above_def);
    debug_assert_eq!(keys.len(), cand);
    let cut = refine(keys, spare, need, lo, wide_refine_shifts(shift));
    (definite, cut, need - cut.above)
}

/// Radix k-th magnitude — bitwise identical to
/// [`crate::topk::topk_threshold`] (`seg` non-empty, `1 <= k <= seg.len()`).
pub fn radix_threshold(seg: &[f32], k: usize, scratch: &mut SelectScratch) -> f32 {
    assert!(!seg.is_empty() && k >= 1 && k <= seg.len(), "radix_threshold bounds");
    f32::from_bits(find_cut(seg, k, scratch).thr_key)
}

/// Radix Top-k over (index, value) pairs — bitwise identical to
/// [`crate::merge::topk_pairs`] *for ascending `idx`* (the shape every
/// diff-pair producer in the workspace emits): magnitude descending, ties
/// toward the lower index, output in ascending index order. With ascending
/// input, position order equals index order, so the ascending emit pass
/// resolves ties exactly as the comparator does.
pub fn radix_topk_pairs(
    idx: &[u32],
    val: &[f32],
    k: usize,
    scratch: &mut SelectScratch,
) -> (Vec<u32>, Vec<f32>) {
    debug_assert_eq!(idx.len(), val.len());
    debug_assert!(idx.windows(2).all(|w| w[0] < w[1]), "radix_topk_pairs needs ascending idx");
    let n = idx.len();
    let k = k.min(n);
    if k == 0 {
        return (Vec::new(), Vec::new());
    }
    if k == n {
        return (idx.to_vec(), val.to_vec());
    }
    let (definite, cut, mut ties) = fused_select(val, k, scratch);
    let mut out_idx = Vec::with_capacity(k);
    let mut out_val = Vec::with_capacity(k);
    let mut d = 0usize;
    for &p in scratch.pos.iter() {
        let v = val[p as usize];
        let key = mag_key(v);
        let take = if key > cut.thr_key {
            true
        } else if key == cut.thr_key && ties > 0 {
            ties -= 1;
            true
        } else {
            false
        };
        if take {
            while d < definite.len() && definite[d] < p {
                out_idx.push(idx[definite[d] as usize]);
                out_val.push(val[definite[d] as usize]);
                d += 1;
            }
            out_idx.push(idx[p as usize]);
            out_val.push(v);
        }
    }
    for &p in &definite[d..] {
        out_idx.push(idx[p as usize]);
        out_val.push(val[p as usize]);
    }
    debug_assert_eq!(out_idx.len(), k);
    (out_idx, out_val)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn key_order_matches_total_cmp_on_magnitudes() {
        let samples = [
            0.0f32,
            -0.0,
            1.0e-42, // denormal
            f32::MIN_POSITIVE,
            0.5,
            -0.5,
            1.0,
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7F80_0001), // smallest NaN payload
            f32::from_bits(0x7FFF_FFFF), // largest NaN payload
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    mag_key(a).cmp(&mag_key(b)),
                    a.abs().total_cmp(&b.abs()),
                    "key order diverges for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn radix_matches_comparator_basic() {
        let seg = [0.1f32, -5.0, 2.0, 0.0, -3.0, 4.0];
        let mut s = SelectScratch::new();
        for k in 0..=seg.len() {
            assert_eq!(
                radix_topk_indices(&seg, k, &mut s),
                crate::topk::topk_indices(&seg, k),
                "k = {k}"
            );
        }
        assert_eq!(radix_topk_indices(&seg, 3, &mut s), vec![1, 4, 5]);
    }

    #[test]
    fn radix_edge_cases() {
        let mut s = SelectScratch::new();
        assert!(radix_topk_indices(&[], 3, &mut s).is_empty());
        assert!(radix_topk_indices(&[1.0, 2.0], 0, &mut s).is_empty());
        assert_eq!(radix_topk_indices(&[1.0, 2.0], 5, &mut s), vec![0, 1]);
        assert_eq!(radix_topk_indices(&[7.0], 1, &mut s), vec![0]);
    }

    #[test]
    fn radix_ties_break_toward_lower_index() {
        let mut s = SelectScratch::new();
        let seg = [2.0f32, -2.0, 1.0, 2.0, -2.0];
        assert_eq!(radix_topk_indices(&seg, 2, &mut s), vec![0, 1]);
        assert_eq!(radix_topk_indices(&seg, 3, &mut s), vec![0, 1, 3]);
        let equal = [1.0f32; 10];
        assert_eq!(radix_topk_indices(&equal, 4, &mut s), vec![0, 1, 2, 3]);
    }

    #[test]
    fn radix_nan_inf_denormal_torture() {
        let mut s = SelectScratch::new();
        let seg = [
            1.0f32,
            f32::NAN,
            3.0,
            f32::INFINITY,
            -f32::NAN,
            2.0,
            f32::NEG_INFINITY,
            1.0e-42,
            -0.0,
            f32::from_bits(0x7F80_0001),
        ];
        for k in 0..=seg.len() {
            assert_eq!(
                radix_topk_indices(&seg, k, &mut s),
                crate::topk::topk_indices(&seg, k),
                "k = {k}"
            );
        }
        for k in 1..=seg.len() {
            assert_eq!(
                radix_threshold(&seg, k, &mut s).to_bits(),
                crate::topk::topk_threshold(&seg, k).to_bits(),
                "threshold k = {k}"
            );
        }
    }

    #[test]
    fn radix_threshold_matches_comparator_bitwise() {
        let mut s = SelectScratch::new();
        let seg: Vec<f32> =
            (0..500).map(|i| ((i * 37 % 100) as f32 - 50.0) * 1.25e-3_f32.powi(i % 5)).collect();
        for k in [1usize, 2, 5, 50, 499, 500] {
            assert_eq!(
                radix_threshold(&seg, k, &mut s).to_bits(),
                crate::topk::topk_threshold(&seg, k).to_bits(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn radix_pairs_match_comparator() {
        let mut s = SelectScratch::new();
        let idx: Vec<u32> = (0..40).map(|i| i * 3 + 1).collect();
        let val: Vec<f32> = (0..40)
            .map(|i| match i % 7 {
                0 => 0.5,
                1 => -0.5,
                2 => f32::NAN,
                3 => (i as f32) * 0.1,
                4 => -(i as f32),
                5 => f32::INFINITY,
                _ => 1.0e-40,
            })
            .collect();
        for k in [0usize, 1, 3, 11, 39, 40, 64] {
            let (ri, rv) = radix_topk_pairs(&idx, &val, k, &mut s);
            let (ci, cv) = crate::merge::topk_pairs(&idx, &val, k);
            assert_eq!(ri, ci, "k = {k}");
            assert_eq!(bits(&rv), bits(&cv), "k = {k}");
        }
    }

    #[test]
    fn scratch_buffers_roundtrip() {
        let mut keys = Vec::with_capacity(64);
        keys.push(9);
        let spare = Vec::with_capacity(32);
        let pos = Vec::with_capacity(16);
        let mut s = SelectScratch::from_buffers(keys, spare, pos);
        let seg: Vec<f32> = (0..100).map(|i| (i as f32 * 0.7).sin()).collect();
        let idx = radix_topk_indices(&seg, 10, &mut s);
        assert_eq!(idx, crate::topk::topk_indices(&seg, 10));
        let (a, b, c) = s.into_buffers();
        assert!(
            a.capacity() >= 64 || b.capacity() >= 32 || c.capacity() >= 16,
            "capacity survives"
        );
    }

    #[test]
    fn select_strategy_default_is_radix() {
        assert_eq!(SelectStrategy::default(), SelectStrategy::Radix);
    }

    /// The scalar and SIMD kernel backends must be interchangeable:
    /// identical indices and bitwise-identical thresholds on wide-path
    /// segments (≥ `WIDE_HIST_MIN`, so the backend loops actually run),
    /// torture values included. On CPUs without AVX2 the SIMD backend
    /// falls back to scalar, so this test is trivially green there.
    #[test]
    fn kernel_backends_bitwise_identical_selection() {
        let mut sc = SelectScratch::new().with_kernel(Kernel::Scalar);
        let mut si = SelectScratch::new().with_kernel(Kernel::Simd);
        assert_eq!(sc.kernel(), Kernel::Scalar);
        assert_eq!(si.kernel(), Kernel::Simd);
        let n = WIDE_HIST_MIN + 1234;
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        let seg: Vec<f32> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                match s % 13 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    5 => 1.0,                                   // plateau mass
                    6 => 1.0 + f32::EPSILON,                    // one ulp above
                    7 => f32::from_bits((s >> 40) as u32 & 0x7F_FFFF), // denormal
                    _ => f32::from_bits((s >> 32) as u32),
                }
            })
            .collect();
        for k in [1usize, 7, 500, n / 100, n / 8, n - 1] {
            assert_eq!(
                radix_topk_indices(&seg, k, &mut sc),
                radix_topk_indices(&seg, k, &mut si),
                "indices diverged at k = {k}"
            );
            assert_eq!(
                radix_threshold(&seg, k, &mut sc).to_bits(),
                radix_threshold(&seg, k, &mut si).to_bits(),
                "threshold diverged at k = {k}"
            );
        }
        // An all-equal plateau forces the filtered-histogram narrow path;
        // both backends must agree there too.
        let plateau = vec![2.5f32; WIDE_HIST_MIN * 2];
        for k in [1usize, WIDE_HIST_MIN, plateau.len() - 1] {
            assert_eq!(
                radix_topk_indices(&plateau, k, &mut sc),
                radix_topk_indices(&plateau, k, &mut si),
                "plateau indices diverged at k = {k}"
            );
        }
    }

    /// Dense tie plateaus spanning bucket boundaries: the histogram cascade
    /// must pin the exact key even when every level is saturated with ties.
    #[test]
    fn radix_tie_plateaus_across_buckets() {
        let mut s = SelectScratch::new();
        let mut seg = Vec::new();
        for i in 0..600 {
            seg.push(match i % 3 {
                0 => 1.0f32,
                1 => -1.0,
                _ => 1.0 + f32::EPSILON, // one ulp above: adjacent keys
            });
        }
        for k in [1usize, 199, 200, 201, 400, 599] {
            assert_eq!(
                radix_topk_indices(&seg, k, &mut s),
                crate::topk::topk_indices(&seg, k),
                "k = {k}"
            );
            assert_eq!(
                radix_threshold(&seg, k, &mut s).to_bits(),
                crate::topk::topk_threshold(&seg, k).to_bits(),
                "thr k = {k}"
            );
        }
    }
}
