//! Sparse diff/merge kernels for the server's O(nnz) downlink construction.
//!
//! The MDT server builds the downlink `G = M − v_k` per layer segment. The
//! original implementation densely scanned the whole segment per reply; the
//! update-log path instead visits only *candidate* coordinates (the union of
//! the worker's dirty set and everything touched since its last pull). Both
//! paths bottom out in the kernels here, so their outputs are bitwise
//! identical by construction:
//!
//! * [`diff_pairs_dense`] — the O(dim) reference scan;
//! * [`diff_pairs_at`]    — the O(candidates) restricted scan;
//! * [`topk_pairs`]       — secondary Top-k over (index, value) pairs;
//! * [`scatter_pairs`]    — advance `v_k` by exactly what is sent;
//! * [`retain_dirty`]     — recompute the dirty set after a send;
//! * [`send_all_at`] / [`send_all_dense`] — fused single-pass variants of
//!   diff + scatter + dirty tracking for the no-Top-k (send everything)
//!   case, touching each cache line once;
//! * [`scatter_track_dirty`] — fused scatter + dirty tracking after a
//!   Top-k send, rescanning only the coordinates actually sent;
//! * [`sort_dedup_bitmap`]  — O(n + domain/64) candidate dedup that
//!   exploits the index domain instead of comparison sorting
//!   ([`sort_dedup_pooled`] reuses the bitmap through a [`BufferPool`]
//!   so steady state pays no re-zeroing);
//!
//! Every selection uses the single total order [`mag_idx_order`] (magnitude
//! descending, index ascending), which is NaN-safe via [`f32::total_cmp`]
//! and makes Top-k deterministic under ties — a prerequisite for the two
//! diff paths to agree bitwise.
//!
//! The dense-scan kernels run through the [`dgs_tensor::Kernel`] backend
//! seam (`_with` variants take it explicitly; the plain names use the
//! runtime-detected backend). Backends are bitwise identical — the SIMD
//! backend only skips blocks it proves diff-free and vectorises the diff
//! materialisation and value gather — so every payload, residual, and
//! dirty set is independent of the backend (pinned by the tests below and
//! by `tests/kernel_equivalence.rs`). Standalone differential harnesses
//! compile this module together with the tensor crate's
//! `kernel.rs`/`simd.rs` (see `.claude/skills/verify/SKILL.md`).

use crate::radix_select::{radix_topk_indices, radix_topk_pairs, SelectScratch, SelectStrategy};
use dgs_tensor::{BufferPool, Kernel};
use std::cmp::Ordering;

/// Block width of the SIMD-gated dense scans: small enough that a dirty
/// block's scalar walk stays cache-hot, large enough that the `>= 8`-wide
/// vector test amortises (eight AVX2 iterations per block).
const DIFF_BLOCK: usize = 64;

/// The workspace-wide Top-k total order: larger magnitude first, ties (and
/// only ties) broken by smaller index. `total_cmp` makes this a total order
/// on all bit patterns: NaN magnitudes deterministically sort as the
/// largest values (|NaN| > +∞), so poisoned gradients cannot scramble the
/// selection between two otherwise-identical runs.
#[inline]
pub fn mag_idx_order(mag_a: f32, idx_a: u32, mag_b: f32, idx_b: u32) -> Ordering {
    mag_b.total_cmp(&mag_a).then_with(|| idx_a.cmp(&idx_b))
}

/// Sorts a candidate index list ascending and removes duplicates, in place.
pub fn sort_dedup(v: &mut Vec<u32>) {
    v.sort_unstable();
    v.dedup();
}

/// [`sort_dedup`] via a caller-provided bitmap over the index domain:
/// O(n + mask.len()) instead of O(n log n). Candidate lists are unions of
/// already-sorted runs (log entries and dirty sets), which comparison sorts
/// cannot exploit; marking bits and re-reading them in word order is ~10×
/// faster once `v` outgrows a few thousand entries. `mask` must be all-zero
/// on entry, span every value in `v` (`64 * mask.len()` bits), and is
/// returned all-zero so it can be reused without a reset pass.
pub fn sort_dedup_bitmap(v: &mut Vec<u32>, mask: &mut [u64]) {
    for &i in v.iter() {
        mask[(i >> 6) as usize] |= 1u64 << (i & 63);
    }
    v.clear();
    for (w, word) in mask.iter_mut().enumerate() {
        let mut bits = *word;
        while bits != 0 {
            let b = bits.trailing_zeros();
            v.push(((w as u32) << 6) | b);
            bits &= bits - 1;
        }
        *word = 0;
    }
}

/// [`sort_dedup_bitmap`] with the bitmap borrowed from a dedicated
/// [`BufferPool`] instead of a caller-managed mask. `domain` is the
/// exclusive upper bound on the values in `v`.
///
/// Pool invariant: every buffer parked in `pool` is all-zero over its
/// full length. [`sort_dedup_bitmap`] re-zeroes each word as it reads it
/// back, so returning the mask with `release_unchanged` preserves the
/// invariant — steady state does **zero** re-zeroing work. A
/// caller-managed mask costs a full `vec![0u64; domain/64]` zero-fill
/// (128 KiB at dim = 1M) every time its owner is (re)constructed, and
/// forces every early-return path to reason about mask state; here the
/// mask's all-zero state is a property of the pool, not of any caller's
/// control flow.
pub fn sort_dedup_pooled(v: &mut Vec<u32>, domain: usize, pool: &mut BufferPool<u64>) {
    let words = domain.div_ceil(64);
    let mut mask = pool.acquire();
    debug_assert!(mask.iter().all(|&w| w == 0), "pooled dedup masks must be all-zero");
    if mask.len() < words {
        // Zero-fills only the growth region; existing words are already
        // zero by the pool invariant.
        mask.resize(words, 0);
    }
    sort_dedup_bitmap(v, &mut mask[..words]);
    pool.release_unchanged(mask);
}

/// K-way merge of ascending-index (index, value) pair lists with value
/// summing: the edge aggregator's kernel for combining the sparse
/// uplinks of a worker group into one update. Each input must be
/// strictly ascending in index (every `SparseVec` producer in the
/// workspace emits that order). An index present in several inputs is
/// emitted once with its values summed **in input order** — f32
/// addition is not associative, so the caller fixes the input order
/// (worker-id order at the edge) to keep the merge a pure function of
/// its inputs. A single-input merge reproduces that input bitwise (no
/// `0.0 +` prologue that would flip `-0.0`).
pub fn merge_sum_pairs(inputs: &[(&[u32], &[f32])]) -> (Vec<u32>, Vec<f32>) {
    for (idx, val) in inputs {
        debug_assert_eq!(idx.len(), val.len());
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]), "inputs must be strictly ascending");
    }
    if let [(idx, val)] = inputs {
        return (idx.to_vec(), val.to_vec());
    }
    let mut cur = vec![0usize; inputs.len()];
    let cap = inputs.iter().map(|(idx, _)| idx.len()).max().unwrap_or(0);
    let mut out_idx = Vec::with_capacity(cap);
    let mut out_val = Vec::with_capacity(cap);
    loop {
        let mut next: Option<u32> = None;
        for (j, (idx, _)) in inputs.iter().enumerate() {
            if let Some(&i) = idx.get(cur[j]) {
                next = Some(next.map_or(i, |m| m.min(i)));
            }
        }
        let Some(i) = next else { break };
        let mut sum: Option<f32> = None;
        for (j, (idx, val)) in inputs.iter().enumerate() {
            if idx.get(cur[j]) == Some(&i) {
                let x = val[cur[j]];
                sum = Some(match sum {
                    None => x,
                    Some(s) => s + x,
                });
                cur[j] += 1;
            }
        }
        out_idx.push(i);
        // `next` came from some cursor, so at least one input matched
        // and `sum` is always `Some`; the fallback only keeps the two
        // output arrays parallel by construction.
        out_val.push(sum.unwrap_or(0.0));
    }
    (out_idx, out_val)
}

/// Selects the `k` largest-magnitude (index, value) pairs, returned in
/// ascending index order. Exact selection (average O(n)); ties follow
/// [`mag_idx_order`], so the result is a pure function of the input.
pub fn topk_pairs(idx: &[u32], val: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
    debug_assert_eq!(idx.len(), val.len());
    let n = idx.len();
    let k = k.min(n);
    if k == 0 {
        return (Vec::new(), Vec::new());
    }
    if k == n {
        return (idx.to_vec(), val.to_vec());
    }
    let mut pos: Vec<u32> = (0..n as u32).collect();
    pos.select_nth_unstable_by(k - 1, |&a, &b| {
        mag_idx_order(
            val[a as usize].abs(),
            idx[a as usize],
            val[b as usize].abs(),
            idx[b as usize],
        )
    });
    pos.truncate(k);
    pos.sort_unstable_by_key(|&p| idx[p as usize]);
    (pos.iter().map(|&p| idx[p as usize]).collect(), pos.iter().map(|&p| val[p as usize]).collect())
}

/// [`topk_pairs`] behind a [`SelectStrategy`]. Both engines return the same
/// bits for the ascending-index pair lists every diff producer in this
/// module emits ([`diff_pairs_dense`] / [`diff_pairs_at`] outputs); the
/// radix arm additionally requires that ascending order (debug-asserted)
/// because position order standing in for index order is what makes its
/// tie-break match [`mag_idx_order`]. `scratch` is only touched by the
/// radix arm.
pub fn topk_pairs_with(
    select: SelectStrategy,
    idx: &[u32],
    val: &[f32],
    k: usize,
    scratch: &mut SelectScratch,
) -> (Vec<u32>, Vec<f32>) {
    match select {
        SelectStrategy::Comparator => topk_pairs(idx, val, k),
        SelectStrategy::Radix => radix_topk_pairs(idx, val, k, scratch),
    }
}

/// Full-scan reference: every nonzero of `m − v` as (local index, value)
/// pairs in ascending index order. O(segment length). Runtime kernel.
pub fn diff_pairs_dense(m: &[f32], v: &[f32]) -> (Vec<u32>, Vec<f32>) {
    diff_pairs_dense_with(Kernel::runtime(), m, v)
}

/// [`diff_pairs_dense`] on an explicit [`Kernel`]. The scan walks
/// [`DIFF_BLOCK`]-sized blocks gated by [`Kernel::may_have_diff`]: a
/// skipped block is proven free of nonzero differences, so emission is
/// bitwise identical to the straight-line scalar loop on every backend.
pub fn diff_pairs_dense_with(kernel: Kernel, m: &[f32], v: &[f32]) -> (Vec<u32>, Vec<f32>) {
    debug_assert_eq!(m.len(), v.len());
    let mut idx = Vec::new();
    let mut val = Vec::new();
    let mut start = 0usize;
    while start < m.len() {
        let end = (start + DIFF_BLOCK).min(m.len());
        if kernel.may_have_diff(&m[start..end], &v[start..end]) {
            for i in start..end {
                let d = m[i] - v[i];
                if d != 0.0 {
                    idx.push(i as u32);
                    val.push(d);
                }
            }
        }
        start = end;
    }
    (idx, val)
}

/// Restricted scan: nonzeros of `m − v` at `candidates` only (segment-local
/// indices, ascending, deduplicated). Produces exactly what
/// [`diff_pairs_dense`] produces whenever `candidates` is a superset of the
/// support of `m − v` — each kept value is the same `m[i] - v[i]` f32
/// subtraction, in the same ascending index order. O(candidates).
pub fn diff_pairs_at(m: &[f32], v: &[f32], candidates: &[u32]) -> (Vec<u32>, Vec<f32>) {
    debug_assert_eq!(m.len(), v.len());
    let mut idx = Vec::with_capacity(candidates.len());
    let mut val = Vec::with_capacity(candidates.len());
    for &i in candidates {
        let d = m[i as usize] - v[i as usize];
        if d != 0.0 {
            idx.push(i);
            val.push(d);
        }
    }
    (idx, val)
}

/// Adds each pair into the dense segment: `seg[idx[j]] += val[j]` — the
/// `v_k ← v_k + G` bookkeeping, elementwise identical to the scatter-adds
/// the receiving worker performs.
pub fn scatter_pairs(seg: &mut [f32], idx: &[u32], val: &[f32]) {
    debug_assert_eq!(idx.len(), val.len());
    for (&i, &x) in idx.iter().zip(val.iter()) {
        seg[i as usize] += x;
    }
}

/// Appends to `out` the subset of `candidates` where `m[i] − v[i]` is still
/// nonzero — the worker's dirty set after a send. Sent coordinates usually
/// land exactly (`v + (m − v)` reproduces `m` bitwise for most inputs) but
/// f32 rounding can leave a one-ulp remainder; rescanning keeps the dirty
/// set a true superset of the difference's support, never an approximation.
pub fn retain_dirty(m: &[f32], v: &[f32], candidates: &[u32], out: &mut Vec<u32>) {
    for &i in candidates {
        if m[i as usize] - v[i as usize] != 0.0 {
            out.push(i);
        }
    }
}

/// Fused send-everything at `candidates`: per coordinate, compute
/// `d = m[i] − v[i]`, emit the pair if nonzero, advance `v[i] += d`, and
/// keep the coordinate dirty if a rounding remainder survives. Exactly
/// equivalent to [`diff_pairs_at`] → [`scatter_pairs`] → [`retain_dirty`],
/// but each `m`/`v` cache line is touched once instead of three times.
pub fn send_all_at(
    m: &[f32],
    v: &mut [f32],
    candidates: &[u32],
    dirty: &mut Vec<u32>,
) -> (Vec<u32>, Vec<f32>) {
    debug_assert_eq!(m.len(), v.len());
    let mut idx = Vec::with_capacity(candidates.len());
    let mut val = Vec::with_capacity(candidates.len());
    for &i in candidates {
        let mi = m[i as usize];
        let vi = &mut v[i as usize];
        let d = mi - *vi;
        if d != 0.0 {
            idx.push(i);
            val.push(d);
            *vi += d;
            if mi - *vi != 0.0 {
                dirty.push(i);
            }
        }
    }
    (idx, val)
}

/// Fused send-everything over the whole segment — the dense-scan analogue
/// of [`send_all_at`], equivalent to [`diff_pairs_dense`] →
/// [`scatter_pairs`] → [`retain_dirty`] over all indices. Runtime kernel.
pub fn send_all_dense(m: &[f32], v: &mut [f32], dirty: &mut Vec<u32>) -> (Vec<u32>, Vec<f32>) {
    send_all_dense_with(Kernel::runtime(), m, v, dirty)
}

/// [`send_all_dense`] on an explicit [`Kernel`]. Blocks proven diff-free
/// by [`Kernel::may_have_diff`] are skipped whole — they would emit
/// nothing and mutate nothing — so payload, `v` advancement, and dirty
/// set are bitwise identical across backends.
pub fn send_all_dense_with(
    kernel: Kernel,
    m: &[f32],
    v: &mut [f32],
    dirty: &mut Vec<u32>,
) -> (Vec<u32>, Vec<f32>) {
    debug_assert_eq!(m.len(), v.len());
    let mut idx = Vec::new();
    let mut val = Vec::new();
    let mut start = 0usize;
    while start < m.len() {
        let end = (start + DIFF_BLOCK).min(m.len());
        if kernel.may_have_diff(&m[start..end], &v[start..end]) {
            for i in start..end {
                let mi = m[i];
                let vi = &mut v[i];
                let d = mi - *vi;
                if d != 0.0 {
                    idx.push(i as u32);
                    val.push(d);
                    *vi += d;
                    if mi - *vi != 0.0 {
                        dirty.push(i as u32);
                    }
                }
            }
        }
        start = end;
    }
    (idx, val)
}

/// Dense-diff Top-k send over a whole segment: materialises `d = m − v`
/// once, sends everything if the diff is at or under the `k` budget,
/// otherwise selects the Top-k directly on the dense buffer (cheaper than
/// building (index, value) pair vectors first when the diff is dense —
/// the steady state under secondary compression). Zeros can never be
/// selected because the k-th ranked element is nonzero whenever the
/// selection runs, so the outcome is identical to [`topk_pairs`] over the
/// nonzero pairs: same [`mag_idx_order`] ranking, same ascending output.
///
/// Also returns the total nonzero count of the diff (the density signal
/// callers use for tracking hysteresis), which the scan computes anyway.
///
/// `select` picks the selection engine for the over-budget case; both
/// engines rank the dense diff under the identical total order, so the
/// payload is bitwise independent of the choice (`scratch` is only touched
/// by the radix arm).
pub fn send_topk_dense(
    m: &[f32],
    v: &mut [f32],
    k: usize,
    track_dirty: bool,
    dirty: &mut Vec<u32>,
    select: SelectStrategy,
    scratch: &mut SelectScratch,
) -> (Vec<u32>, Vec<f32>, usize) {
    debug_assert_eq!(m.len(), v.len());
    // Diff materialisation + nonzero count on the scratch's backend
    // (bitwise identical across backends: vector subtract matches scalar
    // subtract bit for bit, and the NEQ_UQ count matches `d != 0.0`).
    let kernel = scratch.kernel();
    let mut diff = Vec::new();
    let nnz_all = kernel.diff_into(m, v, &mut diff);
    if nnz_all <= k {
        // At or under budget: everything goes (Alg. 2 lines 5-7).
        let mut idx = Vec::with_capacity(nnz_all);
        let mut val = Vec::with_capacity(nnz_all);
        for (i, &d) in diff.iter().enumerate() {
            if d != 0.0 {
                idx.push(i as u32);
                val.push(d);
                v[i] += d;
                if track_dirty && m[i] - v[i] != 0.0 {
                    dirty.push(i as u32);
                }
            }
        }
        return (idx, val, nnz_all);
    }
    if k == 0 {
        // Nothing fits the budget: every nonzero coordinate stays dirty.
        if track_dirty {
            for (i, &d) in diff.iter().enumerate() {
                if d != 0.0 {
                    dirty.push(i as u32);
                }
            }
        }
        return (Vec::new(), Vec::new(), nnz_all);
    }
    let pos: Vec<u32> = match select {
        SelectStrategy::Comparator => {
            let mut pos: Vec<u32> = (0..diff.len() as u32).collect();
            pos.select_nth_unstable_by(k - 1, |&a, &b| {
                mag_idx_order(diff[a as usize].abs(), a, diff[b as usize].abs(), b)
            });
            pos.truncate(k);
            pos.sort_unstable();
            pos
        }
        SelectStrategy::Radix => radix_topk_indices(&diff, k, scratch),
    };
    let mut val = Vec::with_capacity(pos.len());
    kernel.gather_into(&diff, &pos, &mut val);
    scatter_pairs(v, &pos, &val);
    if track_dirty {
        let mut p = 0usize;
        for (i, &d) in diff.iter().enumerate() {
            if d != 0.0 {
                let i = i as u32;
                if p < pos.len() && pos[p] == i {
                    p += 1;
                    if m[i as usize] - v[i as usize] != 0.0 {
                        dirty.push(i);
                    }
                } else {
                    dirty.push(i);
                }
            }
        }
    }
    (pos, val, nnz_all)
}

/// Scatters a Top-k selection into `v` and appends the post-send dirty set,
/// rescanning only the `sent` coordinates. Preconditions: `all_idx` is
/// ascending with nonzero `m − v` at every entry (a [`diff_pairs_at`] /
/// [`diff_pairs_dense`] output), and `sent_idx` is an ascending subset of
/// it. An unsent pair keeps its nonzero difference untouched, so it is
/// dirty without re-reading memory; a sent pair is dirty only if rounding
/// left `v + (m − v) ≠ m`. Equivalent to [`scatter_pairs`] →
/// [`retain_dirty`] over any candidate superset of `all_idx`.
pub fn scatter_track_dirty(
    m: &[f32],
    v: &mut [f32],
    sent_idx: &[u32],
    sent_val: &[f32],
    all_idx: &[u32],
    dirty: &mut Vec<u32>,
) {
    scatter_pairs(v, sent_idx, sent_val);
    let mut p = 0usize;
    for &i in all_idx {
        if p < sent_idx.len() && sent_idx[p] == i {
            p += 1;
            if m[i as usize] - v[i as usize] != 0.0 {
                dirty.push(i);
            }
        } else {
            dirty.push(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_total_and_tiebreaks_by_index() {
        assert_eq!(mag_idx_order(2.0, 5, 1.0, 0), Ordering::Less); // bigger mag first
        assert_eq!(mag_idx_order(1.0, 0, 2.0, 5), Ordering::Greater);
        assert_eq!(mag_idx_order(1.0, 2, 1.0, 7), Ordering::Less); // tie: lower idx first
        assert_eq!(mag_idx_order(1.0, 7, 1.0, 2), Ordering::Greater);
        assert_eq!(mag_idx_order(1.0, 3, 1.0, 3), Ordering::Equal);
        // NaN sorts as the largest magnitude, deterministically.
        assert_eq!(mag_idx_order(f32::NAN, 1, f32::INFINITY, 0), Ordering::Less);
    }

    #[test]
    fn sort_dedup_basic() {
        let mut v = vec![5, 1, 3, 1, 5, 0];
        sort_dedup(&mut v);
        assert_eq!(v, vec![0, 1, 3, 5]);
    }

    #[test]
    fn merge_sum_pairs_sums_in_input_order() {
        let a = (vec![1u32, 4, 7], vec![1.0f32, 2.0, 3.0]);
        let b = (vec![0u32, 4, 9], vec![10.0f32, 20.0, 30.0]);
        let c = (vec![4u32], vec![100.0f32]);
        let (idx, val) = merge_sum_pairs(&[
            (&a.0, &a.1),
            (&b.0, &b.1),
            (&c.0, &c.1),
        ]);
        assert_eq!(idx, vec![0, 1, 4, 7, 9]);
        // Index 4: (2.0 + 20.0) + 100.0 in input order.
        assert_eq!(val, vec![10.0, 1.0, 122.0, 3.0, 30.0]);
        // Empty inputs contribute nothing.
        let empty: (Vec<u32>, Vec<f32>) = (Vec::new(), Vec::new());
        let (idx2, val2) =
            merge_sum_pairs(&[(&empty.0, &empty.1), (&a.0, &a.1), (&empty.0, &empty.1)]);
        assert_eq!(idx2, a.0);
        assert_eq!(val2, a.1);
        assert!(merge_sum_pairs(&[]).0.is_empty());
    }

    #[test]
    fn merge_sum_pairs_single_input_is_bitwise_identity() {
        // -0.0 must survive: a `0.0 + x` prologue would turn it into +0.0.
        let idx = vec![2u32, 5];
        let val = vec![-0.0f32, 1.5];
        let (mi, mv) = merge_sum_pairs(&[(&idx, &val)]);
        assert_eq!(mi, idx);
        assert_eq!(
            mv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            val.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn topk_pairs_selects_and_sorts() {
        let idx = [2u32, 4, 7, 9];
        let val = [1.0f32, -5.0, 0.5, 3.0];
        let (i, v) = topk_pairs(&idx, &val, 2);
        assert_eq!(i, vec![4, 9]);
        assert_eq!(v, vec![-5.0, 3.0]);
        // k >= n returns everything unchanged.
        let (i, v) = topk_pairs(&idx, &val, 10);
        assert_eq!(i, idx.to_vec());
        assert_eq!(v, val.to_vec());
        let (i, v) = topk_pairs(&idx, &val, 0);
        assert!(i.is_empty() && v.is_empty());
    }

    #[test]
    fn topk_pairs_deterministic_on_ties() {
        let idx = [0u32, 1, 2, 3];
        let val = [2.0f32, -2.0, 2.0, 2.0];
        let (i, _) = topk_pairs(&idx, &val, 2);
        assert_eq!(i, vec![0, 1], "ties must break toward lower indices");
    }

    #[test]
    fn topk_pairs_nan_and_inf() {
        let idx = [0u32, 1, 2, 3];
        let val = [1.0f32, f32::NAN, f32::INFINITY, -2.0];
        let (i, _) = topk_pairs(&idx, &val, 2);
        assert_eq!(i, vec![1, 2], "NaN then inf dominate the selection");
    }

    #[test]
    fn diff_pairs_dense_and_at_agree_on_superset() {
        let m = [1.0f32, 0.0, 3.0, 0.0, -2.0];
        let v = [1.0f32, 0.0, 1.0, 0.0, 0.0];
        let (di, dv) = diff_pairs_dense(&m, &v);
        assert_eq!(di, vec![2, 4]);
        assert_eq!(dv, vec![2.0, -2.0]);
        // Any superset of the support yields the identical pairs.
        let (ci, cv) = diff_pairs_at(&m, &v, &[0, 2, 3, 4]);
        assert_eq!(ci, di);
        assert_eq!(cv, dv);
    }

    #[test]
    fn scatter_then_retain_clears_clean_coords() {
        let m = [4.0f32, 0.0, -1.5];
        let mut v = [0.0f32; 3];
        let (idx, val) = diff_pairs_dense(&m, &v);
        scatter_pairs(&mut v, &idx, &val);
        let mut dirty = Vec::new();
        retain_dirty(&m, &v, &[0, 1, 2], &mut dirty);
        assert!(dirty.is_empty(), "fully-sent diff leaves nothing dirty: {dirty:?}");
    }

    #[test]
    fn retain_dirty_keeps_held_back_coords() {
        let m = [4.0f32, 2.0, -1.5];
        let mut v = [0.0f32; 3];
        let (ai, av) = diff_pairs_dense(&m, &v);
        let (si, sv) = topk_pairs(&ai, &av, 1); // send only |4.0|
        scatter_pairs(&mut v, &si, &sv);
        let mut dirty = Vec::new();
        retain_dirty(&m, &v, &ai, &mut dirty);
        assert_eq!(dirty, vec![1, 2]);
    }

    #[test]
    fn sort_dedup_bitmap_matches_sort_dedup() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut mask = vec![0u64; 4]; // domain of 256 indices
        for _ in 0..50 {
            let n = (next() % 60) as usize;
            let mut a: Vec<u32> = (0..n).map(|_| (next() % 256) as u32).collect();
            let mut b = a.clone();
            sort_dedup(&mut a);
            sort_dedup_bitmap(&mut b, &mut mask);
            assert_eq!(a, b);
            assert!(mask.iter().all(|&w| w == 0), "mask must come back zeroed");
        }
    }

    #[test]
    fn sort_dedup_pooled_matches_and_keeps_masks_zero() {
        let mut pool: BufferPool<u64> = BufferPool::new(2);
        let mut v = vec![300u32, 5, 5, 299, 0];
        sort_dedup_pooled(&mut v, 301, &mut pool);
        assert_eq!(v, vec![0, 5, 299, 300]);
        assert_eq!(pool.idle(), 1, "mask went back to the pool");
        // The parked mask is all-zero at full length — the pool invariant
        // that makes reuse free.
        let mask = pool.acquire();
        assert!(mask.len() >= 301usize.div_ceil(64));
        assert!(mask.iter().all(|&w| w == 0), "pooled mask must stay zero");
        pool.release_unchanged(mask);
        // Reuse with a smaller domain (mask longer than needed), then
        // grow it again: both stay correct with zero re-zeroing.
        let mut v2 = vec![7u32, 7, 1];
        sort_dedup_pooled(&mut v2, 64, &mut pool);
        assert_eq!(v2, vec![1, 7]);
        let mut v3 = vec![1023u32, 0, 512, 512];
        sort_dedup_pooled(&mut v3, 1024, &mut pool);
        assert_eq!(v3, vec![0, 512, 1023]);
        // The empty-candidate shape (what server early-return paths feed
        // after a degenerate-merge bailout): mask untouched, still zero.
        let mut v4: Vec<u32> = Vec::new();
        sort_dedup_pooled(&mut v4, 1024, &mut pool);
        assert!(v4.is_empty());
        let mask = pool.acquire();
        assert!(mask.iter().all(|&w| w == 0), "mask stays zero after empty dedup");
        // Randomised agreement with the comparison-sort reference.
        pool.release_unchanged(mask);
        let mut state = 0xC0FF_EE00_D15E_A5E5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = (next() % 80) as usize;
            let mut a: Vec<u32> = (0..n).map(|_| (next() % 512) as u32).collect();
            let mut b = a.clone();
            sort_dedup(&mut a);
            sort_dedup_pooled(&mut b, 512, &mut pool);
            assert_eq!(a, b);
        }
    }

    /// The `_with` dense kernels must be backend-invariant: identical
    /// pairs, `v` bits, and dirty sets under `Scalar` and `Simd` (on
    /// non-AVX2 CPUs `Simd` falls back to scalar and this is trivially
    /// green). Lengths straddle the block width and the vector width.
    #[test]
    fn dense_kernels_backend_invariant() {
        let mut sc = SelectScratch::new().with_kernel(Kernel::Scalar);
        let mut si = SelectScratch::new().with_kernel(Kernel::Simd);
        for n in [0usize, 1, 7, 63, 64, 65, 300, 1024] {
            for seed in 1..8u64 {
                let (m, v0) = random_state(seed * 50021 + n as u64, n);
                let (ai, av) = diff_pairs_dense_with(Kernel::Scalar, &m, &v0);
                let (bi, bv) = diff_pairs_dense_with(Kernel::Simd, &m, &v0);
                assert_eq!(ai, bi, "diff idx diverged (n {n} seed {seed})");
                assert_eq!(
                    av.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    bv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "diff val diverged (n {n} seed {seed})"
                );
                let mut va = v0.clone();
                let mut da = Vec::new();
                let (ai, av) = send_all_dense_with(Kernel::Scalar, &m, &mut va, &mut da);
                let mut vb = v0.clone();
                let mut db = Vec::new();
                let (bi, bv) = send_all_dense_with(Kernel::Simd, &m, &mut vb, &mut db);
                assert_eq!(ai, bi, "send-all idx diverged (n {n} seed {seed})");
                assert_eq!(
                    av.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    bv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(da, db, "dirty diverged (n {n} seed {seed})");
                assert_eq!(
                    va.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    vb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
                for k in [0usize, 3, n / 2, n + 7] {
                    let mut vx = v0.clone();
                    let mut dx = Vec::new();
                    let (xi, xv, xn) = send_topk_dense(
                        &m,
                        &mut vx,
                        k,
                        true,
                        &mut dx,
                        SelectStrategy::Radix,
                        &mut sc,
                    );
                    let mut vy = v0.clone();
                    let mut dy = Vec::new();
                    let (yi, yv, yn) = send_topk_dense(
                        &m,
                        &mut vy,
                        k,
                        true,
                        &mut dy,
                        SelectStrategy::Radix,
                        &mut si,
                    );
                    assert_eq!(xi, yi, "topk idx diverged (n {n} seed {seed} k {k})");
                    assert_eq!(xn, yn);
                    assert_eq!(
                        xv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        yv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                    assert_eq!(dx, dy);
                    assert_eq!(
                        vx.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        vy.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    /// Pseudorandom m/v pairs with values that sometimes cancel exactly and
    /// sometimes leave rounding residue: the fused kernels must reproduce
    /// the unfused diff → scatter → retain pipeline bit for bit.
    fn random_state(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let m: Vec<f32> = (0..n)
            .map(|_| match next() % 4 {
                0 => 0.0,
                1 => (next() % 17) as f32 * 0.125 - 1.0,
                2 => ((next() % 1000) as f32) * 1e-3 + 1e7, // forces rounding
                _ => -((next() % 9) as f32),
            })
            .collect();
        let v: Vec<f32> = m
            .iter()
            .map(|&x| match next() % 3 {
                0 => x, // already clean
                1 => 0.0,
                _ => x + ((next() % 7) as f32) * 0.25 - 0.75,
            })
            .collect();
        (m, v)
    }

    #[test]
    fn fused_send_all_matches_unfused_pipeline() {
        for seed in 1..40u64 {
            let (m, v0) = random_state(seed * 7919, 64);
            // Unfused reference over all indices.
            let mut v_ref = v0.clone();
            let (ri, rv) = diff_pairs_dense(&m, &v_ref);
            scatter_pairs(&mut v_ref, &ri, &rv);
            let all: Vec<u32> = (0..64).collect();
            let mut dirty_ref = Vec::new();
            retain_dirty(&m, &v_ref, &all, &mut dirty_ref);
            // Fused dense.
            let mut v_dense = v0.clone();
            let mut dirty_dense = Vec::new();
            let (di, dv) = send_all_dense(&m, &mut v_dense, &mut dirty_dense);
            assert_eq!(di, ri);
            assert_eq!(
                dv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                rv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(dirty_dense, dirty_ref);
            assert_eq!(
                v_dense.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                v_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            // Fused restricted, on a superset of the support.
            let mut v_at = v0.clone();
            let mut dirty_at = Vec::new();
            let (ai, av) = send_all_at(&m, &mut v_at, &all, &mut dirty_at);
            assert_eq!(ai, ri);
            assert_eq!(
                av.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                rv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(dirty_at, dirty_ref);
        }
    }

    #[test]
    fn scatter_track_dirty_matches_scatter_then_retain() {
        for seed in 1..40u64 {
            let (m, v0) = random_state(seed * 104729, 64);
            let (ai, av) = diff_pairs_dense(&m, &v0);
            let k = (seed as usize) % (ai.len() + 1);
            let (si, sv) = topk_pairs(&ai, &av, k);
            // Unfused reference: scatter, then rescan every candidate.
            let mut v_ref = v0.clone();
            scatter_pairs(&mut v_ref, &si, &sv);
            let all: Vec<u32> = (0..64).collect();
            let mut dirty_ref = Vec::new();
            retain_dirty(&m, &v_ref, &all, &mut dirty_ref);
            // Fused: rescan only what was sent.
            let mut v_fused = v0.clone();
            let mut dirty_fused = Vec::new();
            scatter_track_dirty(&m, &mut v_fused, &si, &sv, &ai, &mut dirty_fused);
            assert_eq!(dirty_fused, dirty_ref, "seed {seed} k {k}");
            assert_eq!(
                v_fused.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                v_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn send_topk_dense_matches_pair_pipeline() {
        let mut scratch = SelectScratch::new();
        for select in [SelectStrategy::Comparator, SelectStrategy::Radix] {
            for seed in 1..40u64 {
                for k in [0usize, 1, 3, 8, 64, 100] {
                    let (m, v0) = random_state(seed * 31337, 64);
                    // Pair-based reference: diff → topk (or send-all) →
                    // scatter with fused dirty tracking.
                    let mut v_ref = v0.clone();
                    let (ai, av) = diff_pairs_dense(&m, &v_ref);
                    let nnz_ref = ai.len();
                    let mut dirty_ref = Vec::new();
                    let (ri, rv) = if ai.len() > k {
                        let (si, sv) = topk_pairs(&ai, &av, k);
                        scatter_track_dirty(&m, &mut v_ref, &si, &sv, &ai, &mut dirty_ref);
                        (si, sv)
                    } else {
                        scatter_track_dirty(&m, &mut v_ref, &ai, &av, &ai, &mut dirty_ref);
                        (ai, av)
                    };
                    // Dense-diff kernel under test.
                    let mut v_dense = v0.clone();
                    let mut dirty_dense = Vec::new();
                    let (di, dv, dn) = send_topk_dense(
                        &m,
                        &mut v_dense,
                        k,
                        true,
                        &mut dirty_dense,
                        select,
                        &mut scratch,
                    );
                    assert_eq!(di, ri, "{select:?} seed {seed} k {k}");
                    assert_eq!(dn, nnz_ref, "{select:?} seed {seed} k {k}");
                    assert_eq!(
                        dv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        rv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                    assert_eq!(dirty_dense, dirty_ref, "{select:?} seed {seed} k {k}");
                    assert_eq!(
                        v_dense.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        v_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                    // Untracked variant leaves dirty alone, matches payload.
                    let mut v_u = v0.clone();
                    let mut dirty_u = Vec::new();
                    let (ui, uv, un) =
                        send_topk_dense(&m, &mut v_u, k, false, &mut dirty_u, select, &mut scratch);
                    assert_eq!(ui, ri);
                    assert_eq!(un, nnz_ref);
                    assert_eq!(
                        uv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        rv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                    assert!(dirty_u.is_empty());
                }
            }
        }
    }

    #[test]
    fn topk_pairs_with_agrees_across_strategies() {
        let mut scratch = SelectScratch::new();
        let idx: Vec<u32> = (0..48).map(|i| i * 5 + 2).collect();
        let val: Vec<f32> = (0..48)
            .map(|i| match i % 6 {
                0 => 1.5,
                1 => -1.5,
                2 => f32::NAN,
                3 => 1.0e-41,
                4 => f32::NEG_INFINITY,
                _ => (i as f32 - 24.0) * 0.3,
            })
            .collect();
        for k in [0usize, 1, 5, 24, 47, 48, 99] {
            let (ci, cv) = topk_pairs_with(SelectStrategy::Comparator, &idx, &val, k, &mut scratch);
            let (ri, rv) = topk_pairs_with(SelectStrategy::Radix, &idx, &val, k, &mut scratch);
            assert_eq!(ci, ri, "k = {k}");
            assert_eq!(
                cv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                rv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "k = {k}"
            );
        }
    }
}
