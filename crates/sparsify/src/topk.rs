//! Top-k selection and mask manipulation over flat segments.
//!
//! These are the building blocks of the paper's `sparsify()` /
//! `unsparsify()` operations: select the k largest-magnitude coordinates of
//! a segment, gather them for transmission, and manipulate the remainder
//! (zero it for residual schemes, rescale it for SAMomentum).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns the indices of the `k` largest-magnitude values of `seg`,
/// in ascending index order.
///
/// Exact selection via `select_nth_unstable_by` (average O(n)) under the
/// total order of [`crate::merge::mag_idx_order`]: magnitude descending,
/// ties broken toward lower indices. The selection is therefore a pure
/// function of the input — NaN/inf values cannot scramble it (NaN
/// magnitudes deterministically rank above +∞), and equal magnitudes
/// always resolve the same way.
pub fn topk_indices(seg: &[f32], k: usize) -> Vec<u32> {
    let n = seg.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    if k == n {
        return (0..n as u32).collect();
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    // Partition so the first k indices hold the k largest magnitudes.
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        crate::merge::mag_idx_order(seg[a as usize].abs(), a, seg[b as usize].abs(), b)
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Returns the magnitude of the k-th largest |value| — the paper's `thr`.
///
/// `seg` must be non-empty and `1 <= k <= seg.len()`.
pub fn topk_threshold(seg: &[f32], k: usize) -> f32 {
    assert!(!seg.is_empty() && k >= 1 && k <= seg.len(), "topk_threshold bounds");
    let mut mags: Vec<f32> = seg.iter().map(|v| v.abs()).collect();
    let idx = k - 1;
    mags.select_nth_unstable_by(idx, |a, b| b.total_cmp(a));
    mags[idx]
}

/// Estimates the Top-k threshold from a random sample of the segment, the
/// strategy DGC uses to avoid a full selection on very large tensors.
///
/// Samples `sample` coordinates (with replacement) and returns the value at
/// the same *quantile* within the sample. For `sample >= seg.len()` this
/// falls back to the exact threshold.
pub fn sampled_threshold(seg: &[f32], k: usize, sample: usize, seed: u64) -> f32 {
    let n = seg.len();
    assert!(n > 0 && k >= 1 && k <= n, "sampled_threshold bounds");
    if sample >= n {
        return topk_threshold(seg, k);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mags: Vec<f32> = (0..sample).map(|_| seg[rng.gen_range(0..n)].abs()).collect();
    // Quantile position equivalent to k-of-n within the sample.
    let pos = ((k as f64 / n as f64) * sample as f64).ceil() as usize;
    let pos = pos.clamp(1, sample);
    mags.select_nth_unstable_by(pos - 1, |a, b| b.total_cmp(a));
    mags[pos - 1]
}

/// Hierarchical threshold selection — the refinement loop the DGC paper
/// uses on very large tensors: estimate a threshold from a sample, count
/// how many coordinates it actually keeps, and adjust until the kept count
/// is within `tolerance` (relative) of the requested `k` or the iteration
/// budget runs out. Far cheaper than exact selection when `seg` is large,
/// far more accurate than a single sampled estimate.
pub fn hierarchical_threshold(
    seg: &[f32],
    k: usize,
    sample: usize,
    tolerance: f64,
    seed: u64,
) -> f32 {
    let n = seg.len();
    assert!(n > 0 && k >= 1 && k <= n, "hierarchical_threshold bounds");
    if sample >= n {
        return topk_threshold(seg, k);
    }
    let mut thr = sampled_threshold(seg, k, sample, seed);
    let lo_target = ((1.0 - tolerance) * k as f64).floor() as usize;
    let hi_target = ((1.0 + tolerance) * k as f64).ceil() as usize;
    for _ in 0..8 {
        let kept = seg.iter().filter(|v| v.abs() >= thr).count();
        if kept >= lo_target.max(1) && kept <= hi_target {
            break;
        }
        // Multiplicative update: too many kept → raise the bar, too few →
        // lower it, proportionally to the miss.
        let ratio = (kept.max(1) as f64 / k as f64).powf(0.5);
        thr *= ratio as f32;
        if thr == 0.0 {
            break;
        }
    }
    thr
}

/// Gathers `seg[idx]` for each index (the values to transmit).
pub fn gather(seg: &[f32], idx: &[u32]) -> Vec<f32> {
    idx.iter().map(|&i| seg[i as usize]).collect()
}

/// Zeroes `seg[idx]` for each index (drop transmitted values from the
/// residual, Alg. 1 line 11).
pub fn zero_at(seg: &mut [f32], idx: &[u32]) {
    for &i in idx {
        seg[i as usize] = 0.0;
    }
}

/// Scales every coordinate *except* the given (sorted) indices by `factor`
/// — SAMomentum's `u += (1/m − 1)·u ⊙ ¬Mask` (Alg. 3 line 11).
///
/// `idx` must be sorted ascending (as produced by [`topk_indices`]).
pub fn scale_all_except(seg: &mut [f32], idx_sorted: &[u32], factor: f32) {
    let mut next = idx_sorted.iter().copied().peekable();
    for (i, v) in seg.iter_mut().enumerate() {
        if next.peek() == Some(&(i as u32)) {
            next.next();
        } else {
            *v *= factor;
        }
    }
}

/// Adds `val[j]` into `out[idx[j]]`, optionally scaled — the receive-side
/// `SGD(θ, decode(G))` application.
pub fn scatter_add(out: &mut [f32], idx: &[u32], val: &[f32], scale: f32) {
    debug_assert_eq!(idx.len(), val.len());
    for (&i, &v) in idx.iter().zip(val.iter()) {
        out[i as usize] += scale * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_picks_largest_magnitudes() {
        let seg = [0.1, -5.0, 2.0, 0.0, -3.0, 4.0];
        let idx = topk_indices(&seg, 3);
        assert_eq!(idx, vec![1, 4, 5]); // |-5|, |-3|, |4|
    }

    #[test]
    fn topk_edge_cases() {
        assert!(topk_indices(&[], 3).is_empty());
        assert!(topk_indices(&[1.0, 2.0], 0).is_empty());
        assert_eq!(topk_indices(&[1.0, 2.0], 5), vec![0, 1]);
        assert_eq!(topk_indices(&[7.0], 1), vec![0]);
    }

    #[test]
    fn topk_all_equal_values() {
        let seg = [1.0f32; 10];
        let idx = topk_indices(&seg, 4);
        // Deterministic tie-break: equal magnitudes resolve to the lowest
        // indices, not to whatever the partition happened to leave in place.
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn topk_nan_and_inf_are_deterministic() {
        // NaN ranks above +inf, which ranks above every finite magnitude;
        // repeated runs (and both selection paths) must agree exactly.
        let seg = [1.0f32, f32::NAN, 3.0, f32::INFINITY, -f32::NAN, 2.0];
        let idx = topk_indices(&seg, 3);
        assert_eq!(idx, vec![1, 3, 4]); // NaN(1), NaN(4), inf(3) — sorted
        for _ in 0..8 {
            assert_eq!(topk_indices(&seg, 3), idx);
        }
        // Thresholds stay well-defined too (no Ordering::Equal collapse).
        assert!(topk_threshold(&seg, 3).is_infinite());
        assert!(topk_threshold(&seg, 2).is_nan());
        let neg = [f32::NEG_INFINITY, 0.5, -2.0];
        assert_eq!(topk_indices(&neg, 2), vec![0, 2]);
    }

    #[test]
    fn topk_ties_break_toward_lower_index() {
        let seg = [2.0f32, -2.0, 1.0, 2.0, -2.0];
        assert_eq!(topk_indices(&seg, 2), vec![0, 1]);
        assert_eq!(topk_indices(&seg, 3), vec![0, 1, 3]);
    }

    #[test]
    fn threshold_is_kth_magnitude() {
        let seg = [0.5, -4.0, 3.0, 1.0, -2.0];
        assert_eq!(topk_threshold(&seg, 1), 4.0);
        assert_eq!(topk_threshold(&seg, 2), 3.0);
        assert_eq!(topk_threshold(&seg, 5), 0.5);
    }

    #[test]
    fn threshold_consistent_with_indices() {
        let seg: Vec<f32> = (0..100).map(|i| ((i * 37 % 100) as f32) - 50.0).collect();
        let k = 10;
        let thr = topk_threshold(&seg, k);
        let idx = topk_indices(&seg, k);
        // All selected magnitudes >= thr; all unselected <= thr.
        for (i, &v) in seg.iter().enumerate() {
            if idx.contains(&(i as u32)) {
                assert!(v.abs() >= thr);
            } else {
                assert!(v.abs() <= thr);
            }
        }
    }

    #[test]
    fn sampled_threshold_close_to_exact() {
        let seg: Vec<f32> = (0..10_000)
            .map(|i| {
                let x = (i as f32 * 0.7919).sin() * 3.0;
                x * x * x // heavy-ish tail
            })
            .collect();
        let k = 100;
        let exact = topk_threshold(&seg, k);
        let est = sampled_threshold(&seg, k, 2000, 42);
        // Sampled estimate within a factor-2 band is plenty for DGC-style use.
        assert!(est > exact * 0.5 && est < exact * 2.0, "est {est} exact {exact}");
    }

    #[test]
    fn sampled_threshold_exact_fallback() {
        let seg = [1.0, -2.0, 3.0];
        assert_eq!(sampled_threshold(&seg, 2, 100, 1), topk_threshold(&seg, 2));
    }

    #[test]
    fn hierarchical_threshold_converges_near_k() {
        let seg: Vec<f32> = (0..50_000)
            .map(|i| {
                let x = (i as f64 * 0.7391).sin() * 2.0;
                (x * x * x) as f32
            })
            .collect();
        let k = 500;
        let thr = hierarchical_threshold(&seg, k, 1000, 0.1, 7);
        let kept = seg.iter().filter(|v| v.abs() >= thr).count();
        assert!(
            kept as f64 >= 0.8 * k as f64 && kept as f64 <= 1.3 * k as f64,
            "kept {kept} for k {k}"
        );
        // Tighter than the raw sampled estimate on the same budget.
        let raw = sampled_threshold(&seg, k, 1000, 7);
        let raw_kept = seg.iter().filter(|v| v.abs() >= raw).count();
        let miss = |c: usize| ((c as f64 - k as f64) / k as f64).abs();
        assert!(
            miss(kept) <= miss(raw_kept) + 1e-9,
            "refined {kept} should be no worse than raw {raw_kept}"
        );
    }

    #[test]
    fn hierarchical_threshold_exact_fallback() {
        let seg = [3.0f32, -1.0, 2.0, 0.5];
        assert_eq!(hierarchical_threshold(&seg, 2, 100, 0.1, 1), topk_threshold(&seg, 2));
    }

    #[test]
    fn gather_zero_scatter_roundtrip() {
        let mut seg = vec![1.0, -2.0, 3.0, -4.0, 5.0];
        let idx = topk_indices(&seg, 2);
        assert_eq!(idx, vec![3, 4]);
        let vals = gather(&seg, &idx);
        assert_eq!(vals, vec![-4.0, 5.0]);
        zero_at(&mut seg, &idx);
        assert_eq!(seg, vec![1.0, -2.0, 3.0, 0.0, 0.0]);
        scatter_add(&mut seg, &idx, &vals, 1.0);
        assert_eq!(seg, vec![1.0, -2.0, 3.0, -4.0, 5.0]);
    }

    #[test]
    fn scatter_add_scaled() {
        let mut out = vec![0.0; 4];
        scatter_add(&mut out, &[1, 3], &[2.0, -1.0], -0.5);
        assert_eq!(out, vec![0.0, -1.0, 0.0, 0.5]);
    }

    #[test]
    fn scale_all_except_sorted() {
        let mut seg = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        scale_all_except(&mut seg, &[1, 3], 10.0);
        assert_eq!(seg, vec![10.0, 2.0, 30.0, 4.0, 50.0]);
    }

    #[test]
    fn scale_all_except_empty_mask_scales_everything() {
        let mut seg = vec![1.0, 2.0];
        scale_all_except(&mut seg, &[], 2.0);
        assert_eq!(seg, vec![2.0, 4.0]);
    }

    #[test]
    fn scale_all_except_full_mask_is_noop() {
        let mut seg = vec![1.0, 2.0];
        scale_all_except(&mut seg, &[0, 1], 100.0);
        assert_eq!(seg, vec![1.0, 2.0]);
    }
}
