//! Top-k selection and mask manipulation over flat segments.
//!
//! These are the building blocks of the paper's `sparsify()` /
//! `unsparsify()` operations: select the k largest-magnitude coordinates of
//! a segment, gather them for transmission, and manipulate the remainder
//! (zero it for residual schemes, rescale it for SAMomentum).
//!
//! Two selection engines produce bitwise-identical results (see
//! [`crate::radix_select`]): the comparator engine here is the reference
//! oracle; the radix engine is the fast default. Call sites pick via
//! [`SelectStrategy`] through [`topk_indices_with`] / [`topk_threshold_with`].
//! Sampled/approximate thresholding (DGC-style) lives in [`crate::sampled`].
//!
//! This module is std-only by design so standalone offline harnesses can
//! compile it directly (see `.claude/skills/verify/SKILL.md`).

use crate::radix_select::{radix_threshold, radix_topk_indices, SelectScratch, SelectStrategy};

/// Returns the indices of the `k` largest-magnitude values of `seg`,
/// in ascending index order.
///
/// Exact selection via `select_nth_unstable_by` (average O(n)) under the
/// total order of [`crate::merge::mag_idx_order`]: magnitude descending,
/// ties broken toward lower indices. The selection is therefore a pure
/// function of the input — NaN/inf values cannot scramble it (NaN
/// magnitudes deterministically rank above +∞), and equal magnitudes
/// always resolve the same way.
pub fn topk_indices(seg: &[f32], k: usize) -> Vec<u32> {
    let n = seg.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    if k == n {
        return (0..n as u32).collect();
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    // Partition so the first k indices hold the k largest magnitudes.
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        crate::merge::mag_idx_order(seg[a as usize].abs(), a, seg[b as usize].abs(), b)
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Returns the magnitude of the k-th largest |value| — the paper's `thr`.
///
/// `seg` must be non-empty and `1 <= k <= seg.len()`.
pub fn topk_threshold(seg: &[f32], k: usize) -> f32 {
    assert!(!seg.is_empty() && k >= 1 && k <= seg.len(), "topk_threshold bounds");
    let mut mags: Vec<f32> = seg.iter().map(|v| v.abs()).collect();
    let idx = k - 1;
    mags.select_nth_unstable_by(idx, |a, b| b.total_cmp(a));
    mags[idx]
}

/// [`topk_indices`] behind a [`SelectStrategy`]: both engines return the
/// same bits; `Radix` skips the dim-sized index vector and all comparator
/// calls. `scratch` is only touched by the radix arm.
pub fn topk_indices_with(
    select: SelectStrategy,
    seg: &[f32],
    k: usize,
    scratch: &mut SelectScratch,
) -> Vec<u32> {
    match select {
        SelectStrategy::Comparator => topk_indices(seg, k),
        SelectStrategy::Radix => radix_topk_indices(seg, k, scratch),
    }
}

/// [`topk_threshold`] behind a [`SelectStrategy`] — bitwise-identical
/// engines (NaN payloads included: `|v|` preserves them).
pub fn topk_threshold_with(
    select: SelectStrategy,
    seg: &[f32],
    k: usize,
    scratch: &mut SelectScratch,
) -> f32 {
    match select {
        SelectStrategy::Comparator => topk_threshold(seg, k),
        SelectStrategy::Radix => radix_threshold(seg, k, scratch),
    }
}

/// Gathers `seg[idx]` for each index (the values to transmit).
pub fn gather(seg: &[f32], idx: &[u32]) -> Vec<f32> {
    idx.iter().map(|&i| seg[i as usize]).collect()
}

/// Zeroes `seg[idx]` for each index (drop transmitted values from the
/// residual, Alg. 1 line 11).
pub fn zero_at(seg: &mut [f32], idx: &[u32]) {
    for &i in idx {
        seg[i as usize] = 0.0;
    }
}

/// Fused [`gather`] + [`zero_at`]: reads each selected coordinate once,
/// returning its value and zeroing it in place. Halves the indexed
/// traversals on the residual/velocity uplink paths versus calling the two
/// primitives back to back.
pub fn gather_and_zero(seg: &mut [f32], idx: &[u32]) -> Vec<f32> {
    idx.iter()
        .map(|&i| {
            let slot = &mut seg[i as usize];
            let v = *slot;
            *slot = 0.0;
            v
        })
        .collect()
}

/// Scales every coordinate *except* the given (sorted) indices by `factor`
/// — SAMomentum's `u += (1/m − 1)·u ⊙ ¬Mask` (Alg. 3 line 11).
///
/// `idx` must be sorted ascending (as produced by [`topk_indices`]).
///
/// Implemented as scale-everything then restore the saved originals at the
/// masked indices: the unmasked coordinates see exactly one multiply (same
/// bits as the old branchy loop) and the masked ones get their original bit
/// patterns written back — bitwise-safe, no multiply-then-divide, and the
/// bulk pass is a branch-free streaming loop instead of a per-element
/// peekable compare.
pub fn scale_all_except(seg: &mut [f32], idx_sorted: &[u32], factor: f32) {
    let saved = gather(seg, idx_sorted);
    scale_all_restore(seg, idx_sorted, &saved, factor);
}

/// The restore-form of [`scale_all_except`] for call sites that already
/// gathered `saved = seg[idx]` (e.g. SAMomentum gathers the transmitted
/// values anyway): scales the whole segment by `factor`, then writes the
/// saved original bits back at `idx`. Equivalent to
/// `scale_all_except(seg, idx, factor)` when `saved == gather(seg, idx)`.
pub fn scale_all_restore(seg: &mut [f32], idx: &[u32], saved: &[f32], factor: f32) {
    debug_assert_eq!(idx.len(), saved.len());
    for v in seg.iter_mut() {
        *v *= factor;
    }
    for (&i, &v) in idx.iter().zip(saved.iter()) {
        seg[i as usize] = v;
    }
}

/// Adds `val[j]` into `out[idx[j]]`, optionally scaled — the receive-side
/// `SGD(θ, decode(G))` application.
pub fn scatter_add(out: &mut [f32], idx: &[u32], val: &[f32], scale: f32) {
    debug_assert_eq!(idx.len(), val.len());
    for (&i, &v) in idx.iter().zip(val.iter()) {
        out[i as usize] += scale * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_picks_largest_magnitudes() {
        let seg = [0.1, -5.0, 2.0, 0.0, -3.0, 4.0];
        let idx = topk_indices(&seg, 3);
        assert_eq!(idx, vec![1, 4, 5]); // |-5|, |-3|, |4|
    }

    #[test]
    fn topk_edge_cases() {
        assert!(topk_indices(&[], 3).is_empty());
        assert!(topk_indices(&[1.0, 2.0], 0).is_empty());
        assert_eq!(topk_indices(&[1.0, 2.0], 5), vec![0, 1]);
        assert_eq!(topk_indices(&[7.0], 1), vec![0]);
    }

    #[test]
    fn topk_all_equal_values() {
        let seg = [1.0f32; 10];
        let idx = topk_indices(&seg, 4);
        // Deterministic tie-break: equal magnitudes resolve to the lowest
        // indices, not to whatever the partition happened to leave in place.
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn topk_nan_and_inf_are_deterministic() {
        // NaN ranks above +inf, which ranks above every finite magnitude;
        // repeated runs (and both selection paths) must agree exactly.
        let seg = [1.0f32, f32::NAN, 3.0, f32::INFINITY, -f32::NAN, 2.0];
        let idx = topk_indices(&seg, 3);
        assert_eq!(idx, vec![1, 3, 4]); // NaN(1), NaN(4), inf(3) — sorted
        for _ in 0..8 {
            assert_eq!(topk_indices(&seg, 3), idx);
        }
        // Thresholds stay well-defined too (no Ordering::Equal collapse).
        assert!(topk_threshold(&seg, 3).is_infinite());
        assert!(topk_threshold(&seg, 2).is_nan());
        let neg = [f32::NEG_INFINITY, 0.5, -2.0];
        assert_eq!(topk_indices(&neg, 2), vec![0, 2]);
    }

    #[test]
    fn topk_ties_break_toward_lower_index() {
        let seg = [2.0f32, -2.0, 1.0, 2.0, -2.0];
        assert_eq!(topk_indices(&seg, 2), vec![0, 1]);
        assert_eq!(topk_indices(&seg, 3), vec![0, 1, 3]);
    }

    #[test]
    fn threshold_is_kth_magnitude() {
        let seg = [0.5, -4.0, 3.0, 1.0, -2.0];
        assert_eq!(topk_threshold(&seg, 1), 4.0);
        assert_eq!(topk_threshold(&seg, 2), 3.0);
        assert_eq!(topk_threshold(&seg, 5), 0.5);
    }

    #[test]
    fn threshold_consistent_with_indices() {
        let seg: Vec<f32> = (0..100).map(|i| ((i * 37 % 100) as f32) - 50.0).collect();
        let k = 10;
        let thr = topk_threshold(&seg, k);
        let idx = topk_indices(&seg, k);
        // All selected magnitudes >= thr; all unselected <= thr.
        for (i, &v) in seg.iter().enumerate() {
            if idx.contains(&(i as u32)) {
                assert!(v.abs() >= thr);
            } else {
                assert!(v.abs() <= thr);
            }
        }
    }

    #[test]
    fn dispatchers_agree_across_strategies() {
        let seg: Vec<f32> = (0..300).map(|i| ((i * 53 % 97) as f32 - 48.0) * 0.37).collect();
        let mut s = SelectScratch::new();
        for k in [0usize, 1, 7, 150, 299, 300] {
            assert_eq!(
                topk_indices_with(SelectStrategy::Radix, &seg, k, &mut s),
                topk_indices_with(SelectStrategy::Comparator, &seg, k, &mut s),
                "indices k = {k}"
            );
            if k >= 1 {
                assert_eq!(
                    topk_threshold_with(SelectStrategy::Radix, &seg, k, &mut s).to_bits(),
                    topk_threshold_with(SelectStrategy::Comparator, &seg, k, &mut s).to_bits(),
                    "threshold k = {k}"
                );
            }
        }
    }

    #[test]
    fn gather_zero_scatter_roundtrip() {
        let mut seg = vec![1.0, -2.0, 3.0, -4.0, 5.0];
        let idx = topk_indices(&seg, 2);
        assert_eq!(idx, vec![3, 4]);
        let vals = gather(&seg, &idx);
        assert_eq!(vals, vec![-4.0, 5.0]);
        zero_at(&mut seg, &idx);
        assert_eq!(seg, vec![1.0, -2.0, 3.0, 0.0, 0.0]);
        scatter_add(&mut seg, &idx, &vals, 1.0);
        assert_eq!(seg, vec![1.0, -2.0, 3.0, -4.0, 5.0]);
    }

    #[test]
    fn gather_and_zero_matches_gather_then_zero() {
        let base = vec![1.0f32, -2.0, f32::NAN, -4.0, 5.0, 0.0];
        let idx = [1u32, 2, 4];
        let mut fused = base.clone();
        let fused_vals = gather_and_zero(&mut fused, &idx);
        let mut split = base.clone();
        let split_vals = gather(&split, &idx);
        zero_at(&mut split, &idx);
        assert_eq!(
            fused_vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            split_vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            split.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(gather_and_zero(&mut fused, &[]).is_empty());
    }

    #[test]
    fn scatter_add_scaled() {
        let mut out = vec![0.0; 4];
        scatter_add(&mut out, &[1, 3], &[2.0, -1.0], -0.5);
        assert_eq!(out, vec![0.0, -1.0, 0.0, 0.5]);
    }

    #[test]
    fn scale_all_except_sorted() {
        let mut seg = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        scale_all_except(&mut seg, &[1, 3], 10.0);
        assert_eq!(seg, vec![10.0, 2.0, 30.0, 4.0, 50.0]);
    }

    #[test]
    fn scale_all_except_empty_mask_scales_everything() {
        let mut seg = vec![1.0, 2.0];
        scale_all_except(&mut seg, &[], 2.0);
        assert_eq!(seg, vec![2.0, 4.0]);
    }

    #[test]
    fn scale_all_except_full_mask_is_noop() {
        let mut seg = vec![1.0, 2.0];
        scale_all_except(&mut seg, &[0, 1], 100.0);
        assert_eq!(seg, vec![1.0, 2.0]);
    }

    #[test]
    fn scale_all_except_preserves_masked_bits_exactly() {
        // NaN payloads and infinities at masked indices must come back with
        // their exact bit patterns — restore is a copy, not an arithmetic
        // round trip.
        let nan = f32::from_bits(0x7FC0_1234);
        let mut seg = vec![1.0f32, nan, f32::INFINITY, 3.0, -0.0];
        let orig = seg.clone();
        scale_all_except(&mut seg, &[1, 2, 4], 0.5);
        assert_eq!(seg[1].to_bits(), orig[1].to_bits());
        assert_eq!(seg[2].to_bits(), orig[2].to_bits());
        assert_eq!(seg[4].to_bits(), orig[4].to_bits());
        assert_eq!(seg[0], 0.5);
        assert_eq!(seg[3], 1.5);
    }

    #[test]
    fn scale_all_restore_equals_scale_all_except() {
        let base: Vec<f32> = (0..64).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.3).collect();
        let idx = topk_indices(&base, 9);
        let mut a = base.clone();
        scale_all_except(&mut a, &idx, 0.25);
        let mut b = base.clone();
        let saved = gather(&b, &idx);
        scale_all_restore(&mut b, &idx, &saved, 0.25);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
