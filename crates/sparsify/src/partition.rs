//! Layer partitions over flat parameter vectors.
//!
//! Every model in the reproduction exposes its parameters as one flat
//! `Vec<f32>`; a [`Partition`] records where each layer's parameters live in
//! that vector. The paper's algorithms sparsify *per layer* ("for j = 0..J"),
//! so the partition is threaded through every sparsification call.

use serde::{Deserialize, Serialize};

/// One named contiguous segment of the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Human-readable layer/parameter name (e.g. `"conv1.weight"`).
    pub name: String,
    /// Start offset in the flat vector.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
}

impl Segment {
    /// The half-open range `[offset, offset + len)` this segment covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// An ordered, gap-free partition of `[0, total_len)` into layer segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    segments: Vec<Segment>,
    total_len: usize,
}

impl Partition {
    /// Builds a partition from `(name, len)` pairs laid out consecutively.
    pub fn from_layer_sizes<S: Into<String>>(sizes: impl IntoIterator<Item = (S, usize)>) -> Self {
        let mut segments = Vec::new();
        let mut offset = 0usize;
        for (name, len) in sizes {
            segments.push(Segment { name: name.into(), offset, len });
            offset += len;
        }
        Partition { segments, total_len: offset }
    }

    /// A single-segment partition covering the whole vector; used when
    /// per-layer structure is irrelevant (e.g. microbenchmarks).
    pub fn single(len: usize) -> Self {
        Partition::from_layer_sizes([("all", len)])
    }

    /// The layer segments, in flat-vector order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments (layers).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total flat-vector length covered.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Borrows the sub-slice of `flat` belonging to segment `i`.
    pub fn slice<'a>(&self, flat: &'a [f32], i: usize) -> &'a [f32] {
        &flat[self.segments[i].range()]
    }

    /// Mutably borrows the sub-slice of `flat` belonging to segment `i`.
    pub fn slice_mut<'a>(&self, flat: &'a mut [f32], i: usize) -> &'a mut [f32] {
        &mut flat[self.segments[i].range()]
    }

    /// Verifies the partition covers `flat` exactly. Panics otherwise; used
    /// as a debug assertion at trainer boundaries.
    pub fn check_covers(&self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.total_len,
            "partition covers {} elements but vector has {}",
            self.total_len,
            flat.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_consecutive() {
        let p = Partition::from_layer_sizes([("a", 3), ("b", 5), ("c", 2)]);
        assert_eq!(p.num_segments(), 3);
        assert_eq!(p.total_len(), 10);
        assert_eq!(p.segments()[0].range(), 0..3);
        assert_eq!(p.segments()[1].range(), 3..8);
        assert_eq!(p.segments()[2].range(), 8..10);
        assert_eq!(p.segments()[1].name, "b");
    }

    #[test]
    fn slicing() {
        let p = Partition::from_layer_sizes([("a", 2), ("b", 3)]);
        let mut v = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.slice(&v, 0), &[0.0, 1.0]);
        assert_eq!(p.slice(&v, 1), &[2.0, 3.0, 4.0]);
        p.slice_mut(&mut v, 1)[0] = 9.0;
        assert_eq!(v[2], 9.0);
    }

    #[test]
    fn single_partition() {
        let p = Partition::single(7);
        assert_eq!(p.num_segments(), 1);
        assert_eq!(p.total_len(), 7);
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn check_covers_rejects_mismatch() {
        Partition::single(3).check_covers(&[0.0; 4]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_layer_sizes(Vec::<(&str, usize)>::new());
        assert_eq!(p.total_len(), 0);
        assert_eq!(p.num_segments(), 0);
        p.check_covers(&[]);
    }
}
