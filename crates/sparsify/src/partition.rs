//! Layer partitions over flat parameter vectors.
//!
//! Every model in the reproduction exposes its parameters as one flat
//! `Vec<f32>`; a [`Partition`] records where each layer's parameters live in
//! that vector. The paper's algorithms sparsify *per layer* ("for j = 0..J"),
//! so the partition is threaded through every sparsification call.

use serde::{Deserialize, Serialize};

/// One named contiguous segment of the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Human-readable layer/parameter name (e.g. `"conv1.weight"`).
    pub name: String,
    /// Start offset in the flat vector.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
}

impl Segment {
    /// The half-open range `[offset, offset + len)` this segment covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// An ordered, gap-free partition of `[0, total_len)` into layer segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    segments: Vec<Segment>,
    total_len: usize,
}

impl Partition {
    /// Builds a partition from `(name, len)` pairs laid out consecutively.
    pub fn from_layer_sizes<S: Into<String>>(sizes: impl IntoIterator<Item = (S, usize)>) -> Self {
        let mut segments = Vec::new();
        let mut offset = 0usize;
        for (name, len) in sizes {
            segments.push(Segment { name: name.into(), offset, len });
            offset += len;
        }
        Partition { segments, total_len: offset }
    }

    /// A single-segment partition covering the whole vector; used when
    /// per-layer structure is irrelevant (e.g. microbenchmarks).
    pub fn single(len: usize) -> Self {
        Partition::from_layer_sizes([("all", len)])
    }

    /// The layer segments, in flat-vector order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments (layers).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total flat-vector length covered.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Borrows the sub-slice of `flat` belonging to segment `i`.
    pub fn slice<'a>(&self, flat: &'a [f32], i: usize) -> &'a [f32] {
        &flat[self.segments[i].range()]
    }

    /// Mutably borrows the sub-slice of `flat` belonging to segment `i`.
    pub fn slice_mut<'a>(&self, flat: &'a mut [f32], i: usize) -> &'a mut [f32] {
        &mut flat[self.segments[i].range()]
    }

    /// Verifies the partition covers `flat` exactly. Panics otherwise; used
    /// as a debug assertion at trainer boundaries.
    pub fn check_covers(&self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.total_len,
            "partition covers {} elements but vector has {}",
            self.total_len,
            flat.len()
        );
    }

    /// Groups whole segments into at most `max_shards` contiguous spans of
    /// roughly equal coordinate count — the shard layout of the lock-striped
    /// server. Shards never split a segment (uplink chunks and per-layer
    /// secondary compression stay intact per shard), so the shard count is
    /// capped by the segment count. Deterministic greedy fill: a span closes
    /// once it reaches `ceil(remaining / shards_left)` coordinates, and the
    /// last span sweeps any tail segments. Every segment lands in exactly
    /// one span, in order.
    pub fn shard_spans(&self, max_shards: usize) -> Vec<ShardSpan> {
        if self.segments.is_empty() {
            return Vec::new();
        }
        let shards = max_shards.clamp(1, self.segments.len());
        let mut spans = Vec::with_capacity(shards);
        let mut si = 0usize;
        let mut remaining = self.total_len;
        for shard in 0..shards {
            let shards_left = shards - shard;
            let target = remaining.div_ceil(shards_left);
            let start = si;
            let offset = self.segments[si].offset;
            let mut len = self.segments[si].len;
            si += 1;
            while len < target && self.segments.len() - si > shards_left - 1 {
                len += self.segments[si].len;
                si += 1;
            }
            if shard == shards - 1 {
                // Zero-length tail segments still belong to a shard: the
                // spans must cover every segment so per-segment uplink
                // chunks line up with exactly one shard.
                while si < self.segments.len() {
                    len += self.segments[si].len;
                    si += 1;
                }
            }
            spans.push(ShardSpan { seg_start: start, seg_end: si, offset, len });
            remaining -= len;
        }
        spans
    }

    /// Builds the standalone partition one shard sees: the span's segments
    /// with offsets rebased to start at 0, covering `span.len` coordinates.
    pub fn subpartition(&self, span: &ShardSpan) -> Partition {
        let segments = self.segments[span.seg_start..span.seg_end]
            .iter()
            .map(|seg| Segment {
                name: seg.name.clone(),
                offset: seg.offset - span.offset,
                len: seg.len,
            })
            .collect();
        Partition { segments, total_len: span.len }
    }
}

/// A contiguous run of whole segments owned by one server shard (see
/// [`Partition::shard_spans`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpan {
    /// First segment index (inclusive).
    pub seg_start: usize,
    /// One past the last segment index.
    pub seg_end: usize,
    /// Start offset in the flat parameter vector.
    pub offset: usize,
    /// Number of flat-vector coordinates covered.
    pub len: usize,
}

impl ShardSpan {
    /// The half-open flat-vector range `[offset, offset + len)`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }

    /// The half-open segment-index range `[seg_start, seg_end)`.
    pub fn seg_range(&self) -> std::ops::Range<usize> {
        self.seg_start..self.seg_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_consecutive() {
        let p = Partition::from_layer_sizes([("a", 3), ("b", 5), ("c", 2)]);
        assert_eq!(p.num_segments(), 3);
        assert_eq!(p.total_len(), 10);
        assert_eq!(p.segments()[0].range(), 0..3);
        assert_eq!(p.segments()[1].range(), 3..8);
        assert_eq!(p.segments()[2].range(), 8..10);
        assert_eq!(p.segments()[1].name, "b");
    }

    #[test]
    fn slicing() {
        let p = Partition::from_layer_sizes([("a", 2), ("b", 3)]);
        let mut v = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.slice(&v, 0), &[0.0, 1.0]);
        assert_eq!(p.slice(&v, 1), &[2.0, 3.0, 4.0]);
        p.slice_mut(&mut v, 1)[0] = 9.0;
        assert_eq!(v[2], 9.0);
    }

    #[test]
    fn single_partition() {
        let p = Partition::single(7);
        assert_eq!(p.num_segments(), 1);
        assert_eq!(p.total_len(), 7);
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn check_covers_rejects_mismatch() {
        Partition::single(3).check_covers(&[0.0; 4]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_layer_sizes(Vec::<(&str, usize)>::new());
        assert_eq!(p.total_len(), 0);
        assert_eq!(p.num_segments(), 0);
        p.check_covers(&[]);
        assert!(p.shard_spans(4).is_empty());
    }

    /// Spans must tile the segments exactly: in order, gap-free, and
    /// summing to the full coordinate count.
    fn assert_spans_cover(p: &Partition, spans: &[ShardSpan]) {
        assert_eq!(spans[0].seg_start, 0);
        assert_eq!(spans.last().unwrap().seg_end, p.num_segments());
        for w in spans.windows(2) {
            assert_eq!(w[0].seg_end, w[1].seg_start);
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }
        assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), p.total_len());
    }

    #[test]
    fn shard_spans_balance_whole_segments() {
        let p = Partition::from_layer_sizes([("a", 40), ("b", 25), ("c", 31), ("d", 4)]);
        let spans = p.shard_spans(2);
        assert_eq!(spans.len(), 2);
        assert_spans_cover(&p, &spans);
        // Greedy fill: target ceil(100/2)=50 → "a"+"b" (65 ≥ 50 after b),
        // actually a alone is 40 < 50 so b joins; rest to shard 1.
        assert_eq!(spans[0], ShardSpan { seg_start: 0, seg_end: 2, offset: 0, len: 65 });
        assert_eq!(spans[1], ShardSpan { seg_start: 2, seg_end: 4, offset: 65, len: 35 });
    }

    #[test]
    fn shard_count_clamps_to_segment_count() {
        let p = Partition::from_layer_sizes([("a", 3), ("b", 5)]);
        let spans = p.shard_spans(8);
        assert_eq!(spans.len(), 2, "shards never split a segment");
        assert_spans_cover(&p, &spans);
        let one = p.shard_spans(1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], ShardSpan { seg_start: 0, seg_end: 2, offset: 0, len: 8 });
    }

    #[test]
    fn zero_length_tail_segments_are_swept_into_the_last_span() {
        // Uplink chunk arrays have one chunk per segment, so even empty
        // tail segments must belong to a shard.
        let p = Partition::from_layer_sizes([("a", 6), ("b", 6), ("tail0", 0), ("tail1", 0)]);
        for shards in 1..=4 {
            let spans = p.shard_spans(shards);
            assert_spans_cover(&p, &spans);
            assert_eq!(spans.last().unwrap().seg_end, 4, "{shards} shards");
        }
    }

    #[test]
    fn subpartition_rebases_offsets() {
        let p = Partition::from_layer_sizes([("a", 3), ("b", 5), ("c", 2), ("d", 7)]);
        let spans = p.shard_spans(2);
        let sub = p.subpartition(&spans[1]);
        assert_eq!(sub.total_len(), spans[1].len);
        assert_eq!(sub.segments()[0].offset, 0);
        let names: Vec<&str> = sub.segments().iter().map(|s| s.name.as_str()).collect();
        // Segment identity is preserved, layout restarts at zero.
        assert_eq!(
            sub.segments().iter().map(|s| s.len).sum::<usize>(),
            spans[1].len,
            "{names:?}"
        );
        for w in sub.segments().windows(2) {
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }
        // Slicing the global flat vector by the span, then the sub-slice
        // by the rebased segment, lands on the same coordinates.
        let flat: Vec<f32> = (0..p.total_len()).map(|i| i as f32).collect();
        let shard_flat = &flat[spans[1].range()];
        for (si, seg) in sub.segments().iter().enumerate() {
            assert_eq!(sub.slice(shard_flat, si), p.slice(&flat, spans[1].seg_start + si), "{}", seg.name);
        }
    }
}
