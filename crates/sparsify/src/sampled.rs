//! Sampled and hierarchical threshold estimation (DGC-style).
//!
//! Deep Gradient Compression (Lin et al., PAPERS.md) avoids a full Top-k
//! selection on very large tensors by estimating the threshold from a
//! random sample, optionally refined against the actual kept count. These
//! estimators live apart from [`crate::topk`] so the exact kernels stay
//! std-only (standalone offline harnesses compile them directly); this
//! module is the only selection code with a `rand` dependency.

use crate::radix_select::{radix_threshold, SelectScratch};
use crate::topk::topk_threshold;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Estimates the Top-k threshold from a random sample of the segment, the
/// strategy DGC uses to avoid a full selection on very large tensors.
///
/// Samples `sample` coordinates (with replacement) and returns the value at
/// the same *quantile* within the sample. For `sample >= seg.len()` this
/// falls back to the exact threshold.
pub fn sampled_threshold(seg: &[f32], k: usize, sample: usize, seed: u64) -> f32 {
    let n = seg.len();
    assert!(n > 0 && k >= 1 && k <= n, "sampled_threshold bounds");
    if sample >= n {
        return topk_threshold(seg, k);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mags: Vec<f32> = (0..sample).map(|_| seg[rng.gen_range(0..n)].abs()).collect();
    // Quantile position equivalent to k-of-n within the sample.
    let pos = ((k as f64 / n as f64) * sample as f64).ceil() as usize;
    let pos = pos.clamp(1, sample);
    mags.select_nth_unstable_by(pos - 1, |a, b| b.total_cmp(a));
    mags[pos - 1]
}

/// Hierarchical threshold selection — historically the DGC refinement loop:
/// estimate a threshold from a sample, count how many coordinates it
/// actually keeps with a full O(n) scan, adjust, repeat up to 8 times.
///
/// The radix histogram cascade ([`crate::radix_select`]) made that loop
/// obsolete: the "kept count at thr" question the loop asked with repeated
/// O(n) scans is answered *exactly* by one O(n) histogram pass plus O(256)
/// bucket walks per byte level, and the fixed point the refinement chased —
/// a threshold whose kept count hits `k` — is precisely the exact k-th
/// magnitude that cascade pins down. So this now returns the exact
/// threshold (bitwise equal to [`topk_threshold`]) at roughly the cost of a
/// *single* iteration of the old loop, instead of an approximation after up
/// to eight.
///
/// `tolerance` and `seed` are retained for API compatibility; the exact
/// result trivially satisfies any tolerance band. `sample >= seg.len()`
/// falls back to [`topk_threshold`] exactly as before (same bits either
/// way).
pub fn hierarchical_threshold(
    seg: &[f32],
    k: usize,
    sample: usize,
    tolerance: f64,
    seed: u64,
) -> f32 {
    let n = seg.len();
    assert!(n > 0 && k >= 1 && k <= n, "hierarchical_threshold bounds");
    let _ = (tolerance, seed);
    if sample >= n {
        return topk_threshold(seg, k);
    }
    radix_threshold(seg, k, &mut SelectScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_threshold_close_to_exact() {
        let seg: Vec<f32> = (0..10_000)
            .map(|i| {
                let x = (i as f32 * 0.7919).sin() * 3.0;
                x * x * x // heavy-ish tail
            })
            .collect();
        let k = 100;
        let exact = topk_threshold(&seg, k);
        let est = sampled_threshold(&seg, k, 2000, 42);
        // Sampled estimate within a factor-2 band is plenty for DGC-style use.
        assert!(est > exact * 0.5 && est < exact * 2.0, "est {est} exact {exact}");
    }

    #[test]
    fn sampled_threshold_exact_fallback() {
        let seg = [1.0, -2.0, 3.0];
        assert_eq!(sampled_threshold(&seg, 2, 100, 1), topk_threshold(&seg, 2));
    }

    #[test]
    fn hierarchical_threshold_converges_near_k() {
        let seg: Vec<f32> = (0..50_000)
            .map(|i| {
                let x = (i as f64 * 0.7391).sin() * 2.0;
                (x * x * x) as f32
            })
            .collect();
        let k = 500;
        let thr = hierarchical_threshold(&seg, k, 1000, 0.1, 7);
        let kept = seg.iter().filter(|v| v.abs() >= thr).count();
        assert!(
            kept as f64 >= 0.8 * k as f64 && kept as f64 <= 1.3 * k as f64,
            "kept {kept} for k {k}"
        );
        // Tighter than the raw sampled estimate on the same budget.
        let raw = sampled_threshold(&seg, k, 1000, 7);
        let raw_kept = seg.iter().filter(|v| v.abs() >= raw).count();
        let miss = |c: usize| ((c as f64 - k as f64) / k as f64).abs();
        assert!(
            miss(kept) <= miss(raw_kept) + 1e-9,
            "refined {kept} should be no worse than raw {raw_kept}"
        );
    }

    #[test]
    fn hierarchical_threshold_is_exact_below_sample_cutoff() {
        // The radix cascade returns the exact k-th magnitude even on the
        // "large tensor" path the old loop approximated.
        let seg: Vec<f32> = (0..4096).map(|i| ((i as f64 * 0.918273).sin() * 3.7) as f32).collect();
        for k in [1usize, 41, 409, 4096] {
            assert_eq!(
                hierarchical_threshold(&seg, k, 64, 0.1, 3).to_bits(),
                topk_threshold(&seg, k).to_bits(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn hierarchical_threshold_exact_fallback() {
        let seg = [3.0f32, -1.0, 2.0, 0.5];
        assert_eq!(hierarchical_threshold(&seg, 2, 100, 0.1, 1), topk_threshold(&seg, 2));
    }
}
