//! Differential proof that the radix selection engine is bitwise-identical
//! to the comparator reference on *every* f32 bit pattern.
//!
//! The comparator path (`topk_indices` / `topk_threshold` / `topk_pairs`)
//! is the specification: `select_nth_unstable_by` + sort under
//! `mag_idx_order` (magnitude descending via `total_cmp`, index ascending
//! on ties). The radix path must reproduce its output *exactly* — same
//! indices, same threshold bits — including on NaNs (any payload), ±Inf,
//! denormals, ±0, and arbitrarily long tie plateaus. Proptest drives raw
//! `u32` bit patterns through `f32::from_bits` so nothing in the float
//! space is out of scope.

use dgs_sparsify::merge::{topk_pairs, topk_pairs_with};
use dgs_sparsify::{
    radix_threshold, radix_topk_indices, radix_topk_pairs, topk_indices, topk_indices_with,
    topk_threshold, topk_threshold_with, SelectScratch, SelectStrategy,
};
use proptest::prelude::*;

/// Arbitrary f32s by raw bit pattern: hits NaN payloads, ±Inf, denormals,
/// ±0 with the same probability as any other pattern.
fn bitwise_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// A palette of the adversarial values the engine's key mapping must order
/// correctly, sampled with replacement so ties are common.
fn special_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        Just(0.0f32),
        Just(-0.0f32),
        Just(1.0f32),
        Just(-1.0f32),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(f32::NAN),
        Just(-f32::NAN),
        Just(f32::from_bits(0x7FC0_1234)), // NaN with payload
        Just(f32::from_bits(0xFFC0_5678)), // negative NaN with payload
        Just(f32::MIN_POSITIVE),
        Just(f32::MIN_POSITIVE / 2.0), // denormal
        Just(f32::from_bits(1)),       // smallest denormal
        Just(1.0e-42f32),              // denormal
        Just(f32::MAX),
        Just(f32::EPSILON),
    ]
}

/// The k values worth probing for a segment of length `n`: the edges plus
/// one interior point.
fn probe_ks(n: usize) -> Vec<usize> {
    let mut ks = vec![0, 1, n / 2, n.saturating_sub(1), n];
    ks.dedup();
    ks
}

fn assert_equivalent(seg: &[f32], k: usize) {
    let mut scratch = SelectScratch::new();
    let reference = topk_indices(seg, k);
    let radix = radix_topk_indices(seg, k, &mut scratch);
    assert_eq!(radix, reference, "indices diverged: seg={seg:?} k={k}");
    if k >= 1 && k <= seg.len() {
        let thr_ref = topk_threshold(seg, k);
        let thr_radix = radix_threshold(seg, k, &mut scratch);
        assert_eq!(
            thr_radix.to_bits(),
            thr_ref.to_bits(),
            "threshold bits diverged: seg={seg:?} k={k}"
        );
    }
}

proptest! {
    /// Radix == comparator on arbitrary bit patterns, all edge ks.
    #[test]
    fn radix_matches_comparator_on_raw_bits(
        seg in proptest::collection::vec(bitwise_f32(), 1..160),
        k_extra in 0usize..160,
    ) {
        for k in probe_ks(seg.len()) {
            assert_equivalent(&seg, k);
        }
        assert_equivalent(&seg, k_extra.min(seg.len()));
    }

    /// Radix == comparator on tie-heavy adversarial palettes.
    #[test]
    fn radix_matches_comparator_on_specials(
        seg in proptest::collection::vec(special_f32(), 1..96),
        k_extra in 0usize..96,
    ) {
        for k in probe_ks(seg.len()) {
            assert_equivalent(&seg, k);
        }
        assert_equivalent(&seg, k_extra.min(seg.len()));
    }

    /// The strategy dispatchers agree with each other bitwise, so swapping
    /// `SelectStrategy` can never change a training run.
    #[test]
    fn dispatchers_agree(
        seg in proptest::collection::vec(bitwise_f32(), 1..80),
        k in 0usize..80,
    ) {
        let k = k.min(seg.len());
        let mut scratch = SelectScratch::new();
        let a = topk_indices_with(SelectStrategy::Comparator, &seg, k, &mut scratch);
        let b = topk_indices_with(SelectStrategy::Radix, &seg, k, &mut scratch);
        prop_assert_eq!(a, b);
        if k >= 1 {
            let ta = topk_threshold_with(SelectStrategy::Comparator, &seg, k, &mut scratch);
            let tb = topk_threshold_with(SelectStrategy::Radix, &seg, k, &mut scratch);
            prop_assert_eq!(ta.to_bits(), tb.to_bits());
        }
    }

    /// Pair-form selection (the server's secondary compression) agrees
    /// bitwise, with strictly ascending global indices as on the real path.
    #[test]
    fn pairs_match_on_raw_bits(
        gaps in proptest::collection::vec(1u32..5, 1..120),
        val_bits in proptest::collection::vec(any::<u32>(), 1..120),
        k in 0usize..140,
    ) {
        let n = gaps.len().min(val_bits.len());
        let mut idx = Vec::with_capacity(n);
        let mut acc = 0u32;
        for &g in &gaps[..n] {
            acc += g;
            idx.push(acc);
        }
        let val: Vec<f32> = val_bits[..n].iter().map(|&b| f32::from_bits(b)).collect();
        let mut scratch = SelectScratch::new();
        let (ri, rv) = topk_pairs(&idx, &val, k);
        let (xi, xv) = radix_topk_pairs(&idx, &val, k, &mut scratch);
        prop_assert_eq!(&xi, &ri);
        prop_assert_eq!(xv.len(), rv.len());
        for (a, b) in xv.iter().zip(rv.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let (di, dv) = topk_pairs_with(SelectStrategy::Radix, &idx, &val, k, &mut scratch);
        prop_assert_eq!(di, ri);
        for (a, b) in dv.iter().zip(rv.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned torture vectors (run even if proptest shrinks away from them)
// ---------------------------------------------------------------------------

#[test]
fn all_equal_plateau_every_k() {
    for &v in &[1.0f32, -1.0, 0.0, -0.0, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE / 4.0] {
        let seg = vec![v; 37];
        for k in 0..=37 {
            assert_equivalent(&seg, k);
        }
    }
}

#[test]
fn nan_inf_denormal_mixture_every_k() {
    let seg = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -f32::NAN,
        f32::from_bits(0x7FFF_FFFF), // max-payload NaN
        f32::from_bits(0x7F80_0001), // min-payload NaN
        f32::MAX,
        -f32::MAX,
        1.0,
        -1.0,
        f32::MIN_POSITIVE,
        f32::MIN_POSITIVE / 2.0,
        f32::from_bits(1),
        0.0,
        -0.0,
        1.0e-42,
    ];
    for k in 0..=seg.len() {
        assert_equivalent(&seg, k);
    }
}

#[test]
fn tie_plateau_straddling_the_cut() {
    // 30 copies of the same magnitude with alternating signs; the cut lands
    // inside the plateau, so the tie-break (lower index wins) is the whole
    // answer.
    let seg: Vec<f32> = (0..30).map(|i| if i % 2 == 0 { 0.5 } else { -0.5 }).collect();
    for k in [1, 7, 15, 29] {
        assert_equivalent(&seg, k);
    }
}

#[test]
fn magnitude_buckets_with_equal_top_bytes() {
    // Values whose keys share the top radix byte, forcing the refinement
    // passes at shifts 16/8/0 to do the work.
    let seg: Vec<f32> = (0..256).map(|i| f32::from_bits(0x3F80_0000 | i)).collect();
    for k in [1, 64, 128, 255, 256] {
        assert_equivalent(&seg, k);
    }
}

#[test]
fn large_segments_cross_histogram_cutoff() {
    // The engine switches from the 256-bucket byte histogram to the
    // 65,536-bucket two-byte histogram at 1 << 15 elements; straddle the
    // cutoff with three shapes per size: spread raw bits (plain wide path),
    // a one-ulp plateau whose boundary bucket is the whole segment (the
    // filtered narrowing pass), and an all-equal segment (maximal ties).
    let mut state = 0x5EED_1234u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for n in [32_767usize, 32_768, 50_000] {
        let spread: Vec<f32> = (0..n).map(|_| f32::from_bits(next() as u32)).collect();
        for k in [1, n / 100, n / 7, n - 1] {
            assert_equivalent(&spread, k);
        }
        let plateau: Vec<f32> =
            (0..n).map(|_| f32::from_bits(0x3F80_0000 | (next() as u32 & 0x1FFF))).collect();
        for k in [1, n / 100, n / 2, n - 1] {
            assert_equivalent(&plateau, k);
        }
        let equal = vec![0.25f32; n];
        for k in [1, n / 3, n - 1] {
            assert_equivalent(&equal, k);
        }
    }
}
