//! Property-based tests for the sparsification primitives.

use dgs_sparsify::{
    gather, k_for_ratio, sampled_threshold, scale_all_except, scatter_add, topk_indices,
    topk_threshold, zero_at, Partition, SparseUpdate, SparseVec,
};
use proptest::prelude::*;

fn vec_f32(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    /// sparsify (gather + zero) followed by unsparsify (scatter back) is
    /// the identity on any segment.
    #[test]
    fn sparsify_unsparsify_identity(seg in vec_f32(1..128), k in 1usize..64) {
        let original = seg.clone();
        let mut seg = seg;
        let idx = topk_indices(&seg, k);
        let vals = gather(&seg, &idx);
        zero_at(&mut seg, &idx);
        scatter_add(&mut seg, &idx, &vals, 1.0);
        for (a, b) in seg.iter().zip(original.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// The Top-k threshold is the k-th order statistic of |values|:
    /// exactly ≥ k values have magnitude ≥ thr.
    #[test]
    fn threshold_is_order_statistic(seg in vec_f32(1..200), k_raw in 1usize..200) {
        let k = k_raw.min(seg.len());
        let thr = topk_threshold(&seg, k);
        let at_least = seg.iter().filter(|v| v.abs() >= thr).count();
        let strictly = seg.iter().filter(|v| v.abs() > thr).count();
        prop_assert!(at_least >= k, "at_least {} < k {}", at_least, k);
        prop_assert!(strictly < k, "strictly {} >= k {}", strictly, k);
    }

    /// The sampled threshold is always bracketed by the segment's extreme
    /// magnitudes and falls back to exact when the sample covers everything.
    #[test]
    fn sampled_threshold_bracketed(seg in vec_f32(2..128), k_raw in 1usize..128, seed in 0u64..1000) {
        let k = k_raw.min(seg.len());
        let est = sampled_threshold(&seg, k, seg.len() / 2 + 1, seed);
        let lo = seg.iter().fold(f32::INFINITY, |m, v| m.min(v.abs()));
        let hi = seg.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assert!(est >= lo && est <= hi, "{} not in [{}, {}]", est, lo, hi);
        let exact = sampled_threshold(&seg, k, seg.len(), seed);
        prop_assert_eq!(exact, topk_threshold(&seg, k));
    }

    /// scale_all_except touches exactly the complement of the index set.
    #[test]
    fn scale_all_except_complement(seg in vec_f32(1..64), k in 0usize..64) {
        let original = seg.clone();
        let mut seg = seg;
        let idx = topk_indices(&seg, k);
        scale_all_except(&mut seg, &idx, 3.0);
        for (i, (&a, &b)) in seg.iter().zip(original.iter()).enumerate() {
            if idx.contains(&(i as u32)) {
                prop_assert_eq!(a, b);
            } else {
                prop_assert_eq!(a, 3.0 * b);
            }
        }
    }

    /// Encoding is stable: encode(decode(encode(x))) == encode(x).
    #[test]
    fn encode_is_canonical(flat in vec_f32(30..90)) {
        let len = flat.len();
        let part = Partition::from_layer_sizes([
            ("a", len / 3),
            ("b", len / 3),
            ("c", len - 2 * (len / 3)),
        ]);
        let up = SparseUpdate::from_topk(&flat, &part, 0.2);
        let once = up.encode();
        let twice = SparseUpdate::decode(once.clone()).unwrap().encode();
        prop_assert_eq!(once, twice);
    }

    /// to_dense ∘ from_nonzero is the identity for any vector.
    #[test]
    fn nonzero_roundtrip(flat in vec_f32(10..100)) {
        let part = Partition::single(flat.len());
        let up = SparseUpdate::from_nonzero(&flat, &part);
        let dense = up.to_dense(&part);
        for (a, b) in dense.iter().zip(flat.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Applying an update twice with scales s and −s cancels exactly.
    #[test]
    fn apply_add_antisymmetric(flat in vec_f32(10..60), scale in 0.1f32..5.0) {
        let part = Partition::single(flat.len());
        let up = SparseUpdate::from_topk(&flat, &part, 0.3);
        let mut out = flat.clone();
        up.apply_add(&mut out, &part, scale);
        up.apply_add(&mut out, &part, -scale);
        for (a, b) in out.iter().zip(flat.iter()) {
            // x + s·v − s·v is exact in IEEE-754 when both adds round the
            // same way; allow one ulp of slack for the general case.
            prop_assert!((a - b).abs() <= a.abs().max(1.0) * 1e-6);
        }
    }

    /// nnz of a Top-k update equals Σ_layers min(k_layer, layer_len).
    #[test]
    fn nnz_matches_budget(flat in vec_f32(30..90), ratio in 0.01f64..1.0) {
        let len = flat.len();
        let part = Partition::from_layer_sizes([("a", len / 2), ("b", len - len / 2)]);
        let up = SparseUpdate::from_topk(&flat, &part, ratio);
        let expect: usize = part
            .segments()
            .iter()
            .map(|s| k_for_ratio(s.len, ratio))
            .sum();
        prop_assert_eq!(up.nnz(), expect);
    }

    /// Wire size formula holds for arbitrary sparse vectors.
    #[test]
    fn wire_size_formula(idx_count in 0usize..50) {
        let sv = SparseVec {
            idx: (0..idx_count as u32).collect(),
            val: vec![1.0; idx_count],
        };
        prop_assert_eq!(sv.wire_bytes(), 4 + 8 * idx_count);
    }
}
