//! Differential proof that the SIMD kernel backend is bitwise-identical
//! to its scalar twin on *every* f32 bit pattern.
//!
//! The scalar backend ([`Kernel::Scalar`]) is the specification: plain
//! straight-line Rust with no intrinsics. The SIMD backend
//! ([`Kernel::Simd`]) must reproduce its output *exactly* — same indices,
//! same value bits, same wire bytes — including on NaNs (any payload),
//! ±Inf, denormals, ±0, and arbitrarily long tie plateaus. Proptest
//! drives raw `u32` bit patterns through `f32::from_bits` so nothing in
//! the float space is out of scope; pinned vectors below cover the
//! torture corpus even if proptest shrinks away from it.
//!
//! On machines without AVX2 both backends run the scalar code and the
//! suite degenerates to a tautology — CI prints a notice in that case but
//! still runs it (the dispatch seam itself is then what is under test).

use dgs_sparsify::merge::{
    diff_pairs_dense_with, send_all_dense_with, send_topk_dense, sort_dedup, sort_dedup_pooled,
};
use dgs_sparsify::{
    radix_threshold, radix_topk_indices, Kernel, SelectScratch, SelectStrategy, SparseUpdate,
    SparseVec, TernaryUpdate, TernaryVec,
};
use dgs_tensor::BufferPool;
use proptest::prelude::*;

/// Arbitrary f32s by raw bit pattern: hits NaN payloads, ±Inf, denormals,
/// ±0 with the same probability as any other pattern.
fn bitwise_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// Adversarial palette sampled with replacement so ties are common.
fn special_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        Just(0.0f32),
        Just(-0.0f32),
        Just(1.0f32),
        Just(-1.0f32),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(f32::NAN),
        Just(-f32::NAN),
        Just(f32::from_bits(0x7FC0_1234)), // NaN with payload
        Just(f32::from_bits(0xFFC0_5678)), // negative NaN with payload
        Just(f32::MIN_POSITIVE),
        Just(f32::MIN_POSITIVE / 2.0), // denormal
        Just(f32::from_bits(1)),       // smallest denormal
        Just(f32::MAX),
    ]
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Asserts every dense merge kernel agrees across backends on (m, v).
fn assert_merge_equivalent(m: &[f32], v: &[f32], k: usize) {
    let (ia, va) = diff_pairs_dense_with(Kernel::Scalar, m, v);
    let (ib, vb) = diff_pairs_dense_with(Kernel::Simd, m, v);
    assert_eq!(ia, ib, "diff_pairs idx diverged");
    assert_eq!(bits(&va), bits(&vb), "diff_pairs val bits diverged");

    let run_send_all = |kernel: Kernel| {
        let mut vv = v.to_vec();
        let mut dirty = Vec::new();
        let (i, val) = send_all_dense_with(kernel, m, &mut vv, &mut dirty);
        (i, bits(&val), bits(&vv), dirty)
    };
    assert_eq!(run_send_all(Kernel::Scalar), run_send_all(Kernel::Simd), "send_all diverged");

    let run_topk = |kernel: Kernel, select: SelectStrategy| {
        let mut vv = v.to_vec();
        let mut dirty = Vec::new();
        let mut scratch = SelectScratch::new().with_kernel(kernel);
        let (i, val, nnz) =
            send_topk_dense(m, &mut vv, k, true, &mut dirty, select, &mut scratch);
        (i, bits(&val), nnz, bits(&vv), dirty)
    };
    for select in [SelectStrategy::Comparator, SelectStrategy::Radix] {
        assert_eq!(
            run_topk(Kernel::Scalar, select),
            run_topk(Kernel::Simd, select),
            "send_topk diverged under {select:?}"
        );
    }
}

/// Asserts radix selection agrees when only the scratch's kernel differs.
fn assert_select_equivalent(seg: &[f32], k: usize) {
    let mut sa = SelectScratch::new().with_kernel(Kernel::Scalar);
    let mut sb = SelectScratch::new().with_kernel(Kernel::Simd);
    let a = radix_topk_indices(seg, k, &mut sa);
    let b = radix_topk_indices(seg, k, &mut sb);
    assert_eq!(a, b, "selection indices diverged at k={k}");
    if (1..=seg.len()).contains(&k) {
        let ta = radix_threshold(seg, k, &mut sa);
        let tb = radix_threshold(seg, k, &mut sb);
        assert_eq!(ta.to_bits(), tb.to_bits(), "threshold bits diverged at k={k}");
    }
}

proptest! {
    /// Dense merge kernels agree on arbitrary bit patterns.
    #[test]
    fn merge_kernels_agree_on_raw_bits(
        m in proptest::collection::vec(bitwise_f32(), 1..200),
        v_bits in proptest::collection::vec(any::<u32>(), 1..200),
        k in 0usize..64,
    ) {
        let n = m.len().min(v_bits.len());
        let v: Vec<f32> = v_bits[..n].iter().map(|&b| f32::from_bits(b)).collect();
        assert_merge_equivalent(&m[..n], &v, k);
    }

    /// Dense merge kernels agree on tie-heavy adversarial palettes, where
    /// most diffs are exactly zero (the chunk-skip fast path) or NaN.
    #[test]
    fn merge_kernels_agree_on_specials(
        m in proptest::collection::vec(special_f32(), 1..140),
        flips in proptest::collection::vec(any::<bool>(), 1..140),
        k in 0usize..32,
    ) {
        let n = m.len().min(flips.len());
        // v is mostly equal to m (zero diff) with occasional flips.
        let v: Vec<f32> = m[..n]
            .iter()
            .zip(&flips[..n])
            .map(|(&x, &f)| if f { -x } else { x })
            .collect();
        assert_merge_equivalent(&m[..n], &v, k);
    }

    /// Radix selection (hist fill + chunk scan on the backend) agrees.
    #[test]
    fn selection_agrees_on_raw_bits(
        seg in proptest::collection::vec(bitwise_f32(), 1..160),
        k_extra in 0usize..160,
    ) {
        for k in [0, 1, seg.len() / 2, seg.len()] {
            assert_select_equivalent(&seg, k);
        }
        assert_select_equivalent(&seg, k_extra.min(seg.len()));
    }

    /// Ternary quantization, dequantization, and both wire encoders emit
    /// identical bits across backends.
    #[test]
    fn quant_and_encode_agree(
        val in proptest::collection::vec(bitwise_f32(), 0..120),
        seed in any::<u64>(),
    ) {
        // Quantization is only defined on finite values (keep-probability
        // |v|/scale); filter to the domain without losing denormals/±0.
        let val: Vec<f32> = val.into_iter().filter(|v| v.is_finite()).collect();
        let idx: Vec<u32> = (0..val.len() as u32).map(|i| i * 3).collect();
        let sv = SparseVec { idx, val };
        let a = TernaryVec::quantize_with(Kernel::Scalar, &sv, seed);
        let b = TernaryVec::quantize_with(Kernel::Simd, &sv, seed);
        prop_assert_eq!(a.scale.to_bits(), b.scale.to_bits());
        prop_assert_eq!(&a.idx, &b.idx);
        prop_assert_eq!(&a.signs, &b.signs);
        let da = a.dequantize_with(Kernel::Scalar);
        let db = b.dequantize_with(Kernel::Simd);
        prop_assert_eq!(bits(&da.val), bits(&db.val));
        let tu = TernaryUpdate { chunks: vec![a] };
        prop_assert_eq!(tu.encode_with(Kernel::Scalar), tu.encode_with(Kernel::Simd));
        let su = SparseUpdate { chunks: vec![sv] };
        prop_assert_eq!(su.encode_with(Kernel::Scalar), su.encode_with(Kernel::Simd));
    }

    /// The pooled dedup wrapper matches plain sort_dedup and returns its
    /// bitmap to the pool all-zero, whatever the candidate multiset.
    #[test]
    fn sort_dedup_pooled_matches_plain(
        cand in proptest::collection::vec(0u32..500, 0..300),
    ) {
        let mut pool: BufferPool<u64> = BufferPool::new(2);
        let mut a = cand.clone();
        let mut b = cand;
        sort_dedup(&mut a);
        sort_dedup_pooled(&mut b, 500, &mut pool);
        prop_assert_eq!(a, b);
        // The invariant release_unchanged depends on: mask back to zero.
        let mask = pool.acquire();
        prop_assert!(mask.iter().all(|&w| w == 0));
    }
}

// ---------------------------------------------------------------------------
// Pinned torture vectors (run even if proptest shrinks away from them)
// ---------------------------------------------------------------------------

/// The torture corpus named by the kernel contract: NaN payloads, ±Inf,
/// denormals, one-ulp plateaus, all-equal segments.
fn torture_segments() -> Vec<Vec<f32>> {
    let mut segs: Vec<Vec<f32>> = vec![
        vec![],
        vec![f32::NAN; 33],
        vec![0.25; 77],
        vec![-0.0; 64],
        vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -f32::NAN,
            f32::from_bits(0x7FFF_FFFF), // max-payload NaN
            f32::from_bits(0x7F80_0001), // min-payload NaN
            f32::MAX,
            -f32::MAX,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 2.0,
            f32::from_bits(1),
            0.0,
            -0.0,
            1.0e-42,
        ],
        // One-ulp plateau straddling vector-lane boundaries.
        (0..131).map(|i| f32::from_bits(0x3F80_0000 + (i & 1))).collect(),
    ];
    // Deterministic xorshift mixture long enough to cross the wide-path
    // histogram cutoff (1 << 15) used by the selection engine.
    let mut state = 0x00C0_FFEEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    segs.push((0..40_000).map(|_| f32::from_bits(next() as u32)).collect());
    segs
}

#[test]
fn pinned_torture_corpus_merge_and_select() {
    for seg in torture_segments() {
        let n = seg.len();
        // v = rotated copy so diffs mix zero and nonzero coordinates.
        let mut v = seg.clone();
        if n > 1 {
            v.rotate_right(n / 3 + 1);
        }
        for k in [0, 1, n / 7 + 1, n] {
            assert_merge_equivalent(&seg, &v, k);
        }
        for k in [0, 1, n / 100 + 1, n / 2, n] {
            assert_select_equivalent(&seg, k.min(n));
        }
    }
}

#[test]
fn pinned_torture_corpus_quant_roundtrip() {
    for seg in torture_segments() {
        let val: Vec<f32> = seg.into_iter().filter(|v| v.is_finite()).collect();
        let idx: Vec<u32> = (0..val.len() as u32).collect();
        let sv = SparseVec { idx, val };
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let a = TernaryVec::quantize_with(Kernel::Scalar, &sv, seed);
            let b = TernaryVec::quantize_with(Kernel::Simd, &sv, seed);
            assert_eq!(a.scale.to_bits(), b.scale.to_bits());
            assert_eq!(a.idx, b.idx);
            assert_eq!(a.signs, b.signs);
            assert_eq!(
                bits(&a.dequantize_with(Kernel::Scalar).val),
                bits(&b.dequantize_with(Kernel::Simd).val)
            );
        }
    }
}

#[test]
fn runtime_dispatch_names_a_backend() {
    // Whatever DGS_KERNEL / the CPU say, the runtime choice is one of the
    // two backends and is stable across calls.
    let k = Kernel::runtime();
    assert!(matches!(k, Kernel::Scalar | Kernel::Simd));
    assert_eq!(k, Kernel::runtime());
}
