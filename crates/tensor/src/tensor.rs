//! The dense row-major `f32` tensor type.

use crate::rng::{fill_normal, fill_uniform, seeded};
use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is intentionally simple: no views, no broadcasting beyond what
/// the NN layers need, and data always owned. This keeps gradient exchange
/// (the object of study in the DGS paper) a matter of flat `&[f32]` slices.
///
/// ```
/// use dgs_tensor::Tensor;
///
/// let mut t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// t.scale(2.0);
/// assert_eq!(t.at(&[1, 0]), 6.0);
/// assert_eq!(t.sum(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// Returns an error when the buffer length does not match the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeMismatch {
                context: "Tensor::from_vec".into(),
                lhs: shape.dims().to_vec(),
                rhs: vec![data.len()],
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with `N(0, std^2)` entries from a seed.
    pub fn randn(shape: impl Into<Shape>, std: f32, seed: u64) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut rng = seeded(seed);
        fill_normal(&mut rng, &mut t.data, 0.0, std);
        t
    }

    /// Creates a tensor with `U(lo, hi)` entries from a seed.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut rng = seeded(seed);
        fill_uniform(&mut rng, &mut t.data, lo, hi);
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable flat view of the data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the data under a new shape with the same element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                context: "Tensor::reshape".into(),
                lhs: shape.dims().to_vec(),
                rhs: self.shape.dims().to_vec(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// `self += other`, elementwise. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self -= other`, elementwise. Panics on shape mismatch.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// `self *= s`, elementwise scaling.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// `self += alpha * other` (BLAS `axpy`). Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        axpy_slice(self.data_mut(), alpha, other.data());
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.data.iter_mut() {
            *a = f(*a);
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements. Returns 0 for empty tensors.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute value. Returns 0 for empty tensors.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Euclidean norm (f64 accumulator).
    pub fn l2_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }

    /// Index of the maximum element in each row of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (rows, cols) = self.shape.as_matrix();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            out.push(best);
        }
        out
    }
}

/// `y += alpha * x` over raw slices; the workhorse of every optimizer here.
pub fn axpy_slice(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy_slice length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * y` over a raw slice.
pub fn scale_slice(y: &mut [f32], alpha: f32) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Euclidean norm of a raw slice (f64 accumulator).
pub fn l2_norm_slice(x: &[f32]) -> f64 {
    x.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_slice_approx_eq;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full([4], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
        let v = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(v.at(&[1, 0]), 3.0);
        assert!(Tensor::from_vec([2, 2], vec![1.0]).is_err());
    }

    #[test]
    fn randn_deterministic() {
        let a = Tensor::randn([32], 1.0, 11);
        let b = Tensor::randn([32], 1.0, 11);
        assert_eq!(a, b);
        let c = Tensor::randn([32], 1.0, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![0.5, 0.5, 0.5]).unwrap();
        a.add_assign(&b);
        assert_slice_approx_eq(a.data(), &[1.5, 2.5, 3.5], 1e-6);
        a.sub_assign(&b);
        assert_slice_approx_eq(a.data(), &[1.0, 2.0, 3.0], 1e-6);
        a.scale(2.0);
        assert_slice_approx_eq(a.data(), &[2.0, 4.0, 6.0], 1e-6);
        a.axpy(-1.0, &b);
        assert_slice_approx_eq(a.data(), &[1.5, 3.5, 5.5], 1e-6);
        a.map_inplace(|x| x * x);
        assert_slice_approx_eq(a.data(), &[2.25, 12.25, 30.25], 1e-6);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        assert!((t.sum() + 2.0).abs() < 1e-9);
        assert!((t.mean() + 0.5).abs() < 1e-9);
        assert_eq!(t.abs_max(), 4.0);
        assert!((t.l2_norm() - (30.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.9, 5.0, -1.0, 2.0]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.clone().reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([7]).is_err());
    }

    #[test]
    fn slice_helpers() {
        let mut y = vec![1.0f32, 2.0, 3.0];
        axpy_slice(&mut y, 2.0, &[1.0, 1.0, 1.0]);
        assert_slice_approx_eq(&y, &[3.0, 4.0, 5.0], 1e-6);
        scale_slice(&mut y, 0.5);
        assert_slice_approx_eq(&y, &[1.5, 2.0, 2.5], 1e-6);
        assert!((l2_norm_slice(&[3.0, 4.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn at_mut_writes() {
        let mut t = Tensor::zeros([2, 2]);
        *t.at_mut(&[0, 1]) = 7.0;
        assert_eq!(t.at(&[0, 1]), 7.0);
        assert_eq!(t.data()[1], 7.0);
    }
}
