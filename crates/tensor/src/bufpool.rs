//! A tiny free-list buffer pool for scratch `Vec<T>`s on hot paths.
//!
//! Server reply construction needs short-lived scratch buffers (candidate
//! index lists, staging areas) every round; allocating them fresh puts the
//! allocator on the per-update critical path. [`BufferPool`] keeps a small
//! stack of cleared, capacity-retaining buffers: `acquire` pops one (or
//! returns a fresh empty `Vec`), `release` clears and returns it. After
//! warm-up the pool serves every round allocation-free, with buffers grown
//! once to their steady-state high-water mark.
//!
//! Not thread-safe by design — each owner embeds its own pool (the
//! `MdtServer` is already behind the trainer's single server loop), which
//! keeps `acquire`/`release` at two pointer moves with no locking.

/// A free-list of reusable `Vec<T>` buffers.
#[derive(Debug)]
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    max_buffers: usize,
}

impl<T> BufferPool<T> {
    /// Creates a pool retaining at most `max_buffers` idle buffers;
    /// releases beyond that simply drop the buffer.
    pub fn new(max_buffers: usize) -> Self {
        BufferPool { free: Vec::new(), max_buffers }
    }

    /// Pops a cleared buffer, or returns a fresh empty `Vec` if the pool
    /// is empty. The buffer keeps whatever capacity it had when released.
    pub fn acquire(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Best-fit acquire: the pooled buffer with the *smallest* capacity
    /// that still holds `cap` elements, or `None` if nothing fits. Plain
    /// LIFO `acquire` can hand a large buffer to a small request and then
    /// miss on the next large one, so size-mixed pools (the compute
    /// scratch) would never reach a miss-free steady state; best-fit keeps
    /// each steady-state buffer paired with its request class. O(idle)
    /// scan, and idle is bounded by `max_buffers`.
    pub fn acquire_fit(&mut self, cap: usize) -> Option<Vec<T>> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.free.iter().enumerate() {
            let c = b.capacity();
            if c >= cap && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((i, c));
            }
        }
        best.map(|(i, _)| self.free.swap_remove(i))
    }

    /// Clears `buf` and returns it to the pool (dropped if the pool is
    /// already holding `max_buffers` idle buffers).
    pub fn release(&mut self, mut buf: Vec<T>) {
        if self.free.len() < self.max_buffers {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Returns `buf` to the pool **without clearing it** (dropped if the
    /// pool already holds `max_buffers` idle buffers).
    ///
    /// For pools dedicated to buffers whose users restore a reusable
    /// state in place — e.g. the dedup bitmaps of
    /// `dgs-sparsify::merge::sort_dedup_pooled`, which are all-zero again
    /// after every use. Keeping length *and* contents lets the next
    /// `acquire` skip the O(len) re-zero that `release` + `resize` would
    /// pay (128 KiB per call for a dim=1M bitmap). Only use this on
    /// pools whose buffers all share such an invariant: `acquire` hands
    /// the buffer back exactly as released.
    pub fn release_unchanged(&mut self, buf: Vec<T>) {
        if self.free.len() < self.max_buffers {
            self.free.push(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Bytes of heap capacity currently parked in the pool (for memory
    /// accounting).
    pub fn retained_bytes(&self) -> usize {
        self.free.iter().map(|b| b.capacity() * std::mem::size_of::<T>()).sum()
    }
}

impl<T> Default for BufferPool<T> {
    /// A pool retaining up to 8 idle buffers.
    fn default() -> Self {
        BufferPool::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip_keeps_capacity() {
        let mut pool: BufferPool<u32> = BufferPool::new(4);
        let mut b = pool.acquire();
        assert!(b.is_empty());
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        let cap = b.capacity();
        pool.release(b);
        assert_eq!(pool.idle(), 1);
        let b2 = pool.acquire();
        assert!(b2.is_empty(), "released buffers come back cleared");
        assert_eq!(b2.capacity(), cap, "capacity survives the roundtrip");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn release_unchanged_preserves_len_and_contents() {
        let mut pool: BufferPool<u64> = BufferPool::new(4);
        pool.release_unchanged(vec![0u64; 16]);
        assert_eq!(pool.idle(), 1);
        let b = pool.acquire();
        assert_eq!(b.len(), 16, "length survives release_unchanged");
        assert!(b.iter().all(|&w| w == 0), "contents survive release_unchanged");
        // The cap still applies.
        let mut pool: BufferPool<u64> = BufferPool::new(1);
        pool.release_unchanged(vec![1; 4]);
        pool.release_unchanged(vec![2; 4]);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_bounds_idle_buffers() {
        let mut pool: BufferPool<f32> = BufferPool::new(2);
        for _ in 0..5 {
            pool.release(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.retained_bytes(), 2 * 16 * std::mem::size_of::<f32>());
    }
}
