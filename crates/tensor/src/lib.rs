#![warn(missing_docs)]

//! # dgs-tensor
//!
//! A small, dependency-light dense `f32` tensor library that serves as the
//! compute substrate for the DGS (Dual-Way Gradient Sparsification)
//! reproduction. It stands in for the GPU tensor backend the original paper
//! used (PyTorch + CUDA): the DGS algorithms only consume flat gradient
//! vectors, so any substrate that produces real stochastic gradients from
//! real optimisation problems exercises the same code paths.
//!
//! The crate provides:
//!
//! * [`Shape`] / [`Tensor`] — contiguous row-major storage with elementwise
//!   kernels, BLAS-1 style `axpy`/`scale`, and reductions.
//! * [`matmul`](matmul::matmul) and transposed variants — thin wrappers
//!   over the compute tier, used by linear layers and im2col convolution.
//! * [`gemm`] — the compute tier itself: cache-blocked, register-tiled,
//!   rayon-parallel GEMM behind the [`Kernel`] seam, bitwise identical
//!   across backends.
//! * [`conv`] — im2col + GEMM based 2-D convolution forward/backward.
//! * [`pool`] — max pooling and global average pooling forward/backward.
//! * [`ops`] — activation and softmax kernels.
//! * [`scratch`] — [`ComputeScratch`]: per-network kernel choice plus
//!   buffer pools that make the training loop allocation-free.
//! * [`rng`] — deterministic seeded RNG helpers including Gaussian sampling
//!   (hand-rolled Box–Muller; `rand_distr` is not in the offline set).
//! * [`bufpool`] — a free-list [`BufferPool`] for allocation-free scratch
//!   buffers on hot paths (used by the server's reply construction).
//! * [`kernel`] / [`simd`] — the runtime-selected [`Kernel`] backend seam:
//!   portable scalar kernels (the differential oracle) and their bitwise
//!   identical AVX2 twins, chosen by CPU detection or `DGS_KERNEL`.
//!
//! All kernels are deterministic for a fixed input (parallel loops never
//! change the per-element summation order), which the test-suite relies on.

pub mod bufpool;
pub mod conv;
pub mod gemm;
pub mod kernel;
pub mod matmul;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use bufpool::BufferPool;
pub use kernel::Kernel;
pub use scratch::ComputeScratch;
pub use shape::Shape;
pub use tensor::Tensor;

/// Errors produced by tensor operations.
///
/// Shape mismatches are programmer errors in this codebase and most internal
/// call-sites use the panicking variants; the fallible API exists for the
/// public surface where inputs may come from configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Human-readable context for the failed operation.
        context: String,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// A dimension parameter was invalid (zero where nonzero required, etc.).
    InvalidDimension(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { context, lhs, rhs } => {
                write!(f, "shape mismatch in {context}: {lhs:?} vs {rhs:?}")
            }
            TensorError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Relative-tolerance float comparison used throughout the test suites.
///
/// Returns `true` when `a` and `b` are within `tol` of each other, scaled by
/// the larger magnitude (with an absolute floor of `tol` near zero).
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

/// Asserts two slices are elementwise approximately equal.
///
/// Panics with the first offending index on failure. Intended for tests.
pub fn assert_slice_approx_eq(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(approx_eq(x, y, tol), "slices differ at index {i}: {x} vs {y} (tol {tol})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-5));
        assert!(!approx_eq(1.0, 1.1, 1e-5));
        assert!(approx_eq(0.0, 1e-7, 1e-5));
        assert!(approx_eq(1e6, 1e6 * (1.0 + 1e-6), 1e-5));
    }

    #[test]
    fn error_display() {
        let e = TensorError::ShapeMismatch {
            context: "matmul".into(),
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert!(e.to_string().contains("matmul"));
        let e = TensorError::InvalidDimension("zero".into());
        assert!(e.to_string().contains("zero"));
    }
}
