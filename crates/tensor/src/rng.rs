//! Deterministic random-number helpers.
//!
//! Everything in the reproduction is seeded: datasets, parameter
//! initialisation, minibatch shuffling, and the discrete-event simulator all
//! derive their randomness from explicit `u64` seeds so that every experiment
//! is replayable bit-for-bit. The offline crate set does not include
//! `rand_distr`, so Gaussian sampling is a hand-rolled Box–Muller transform.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a seeded RNG. Thin wrapper so call-sites don't import rand traits.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to give each worker / dataset / layer an independent stream while
/// remaining a pure function of the experiment seed. The mixing is
/// SplitMix64-style so that adjacent stream ids produce uncorrelated seeds.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples one standard-normal value via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by drawing u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    (mag * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fills `out` with `N(mean, std^2)` samples.
pub fn fill_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], mean: f32, std: f32) {
    for v in out.iter_mut() {
        *v = mean + std * sample_standard_normal(rng);
    }
}

/// Fills `out` with `U(lo, hi)` samples.
pub fn fill_uniform<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], lo: f32, hi: f32) {
    for v in out.iter_mut() {
        *v = rng.gen_range(lo..hi);
    }
}

/// Fisher–Yates shuffle of an index permutation, seeded.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = seeded(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_seed_varies_with_stream() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Stable across calls.
        assert_eq!(derive_seed(7, 0), s0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(123);
        let n = 200_000;
        let mut buf = vec![0.0f32; n];
        fill_normal(&mut rng, &mut buf, 1.5, 2.0);
        let mean: f64 = buf.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = buf.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_is_finite() {
        let mut rng = seeded(9);
        for _ in 0..10_000 {
            let x = sample_standard_normal(&mut rng);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = seeded(5);
        let mut buf = vec![0.0f32; 10_000];
        fill_uniform(&mut rng, &mut buf, -0.25, 0.75);
        assert!(buf.iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let a = shuffled_indices(100, 3);
        let b = shuffled_indices(100, 3);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let c = shuffled_indices(100, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn shuffle_small_sizes() {
        assert_eq!(shuffled_indices(0, 1), Vec::<usize>::new());
        assert_eq!(shuffled_indices(1, 1), vec![0]);
    }
}
