//! Tensor shapes: dimension lists plus row-major index arithmetic.

use serde::{Deserialize, Serialize};

/// The shape of a dense row-major tensor.
///
/// A `Shape` is an ordered list of dimension extents. Rank-0 (scalar) shapes
/// are represented by an empty dimension list and have `numel() == 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape { dims: dims.into() }
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// All dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements (product of dims; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides: `strides[i]` is the linear-index step when
    /// dimension `i` increments by one.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index. Panics (debug) on
    /// out-of-range coordinates and on rank mismatch.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for (i, (&ix, &d)) in index.iter().zip(self.dims.iter()).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of range for dim {i} (extent {d})");
            off += ix * stride;
            stride *= d;
            let _ = i;
        }
        off
    }

    /// Interprets the shape as a 2-D matrix `(rows, cols)`.
    ///
    /// Panics unless the rank is exactly 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 shape, got {self}");
        (self.dims[0], self.dims[1])
    }

    /// Interprets the shape as an NCHW image batch `(n, c, h, w)`.
    ///
    /// Panics unless the rank is exactly 4.
    pub fn as_nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 (NCHW) shape, got {self}");
        (self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::from([5]);
        assert_eq!(s.strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::from([2, 3, 4]);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let expect = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), expect);
                }
            }
        }
    }

    #[test]
    fn matrix_and_nchw_views() {
        assert_eq!(Shape::from([3, 7]).as_matrix(), (3, 7));
        assert_eq!(Shape::from([8, 3, 32, 32]).as_nchw(), (8, 3, 32, 32));
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn as_matrix_wrong_rank_panics() {
        Shape::from([1, 2, 3]).as_matrix();
    }

    #[test]
    fn display() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn zero_extent_dims() {
        let s = Shape::from([2, 0, 3]);
        assert_eq!(s.numel(), 0);
    }
}
