//! Per-network compute scratch: a [`Kernel`] choice plus [`BufferPool`]s
//! for the per-batch buffers the nn layers need (im2col columns,
//! activation outputs, pooling argmax maps, norm statistics).
//!
//! `crates/nn` threads one [`ComputeScratch`] through every layer's
//! forward/backward, so after a warm-up step the training loop runs
//! allocation-free: outputs are carved from pooled `Vec`s and consumed
//! inputs are recycled back with [`ComputeScratch::put_tensor`]. The
//! [`ComputeScratch::misses`] counter makes that property testable — it
//! increments exactly when an acquire had to grow a buffer, so a
//! steady-state training step asserts `misses()` stops moving.
//!
//! Carrying the [`Kernel`] here (instead of calling [`Kernel::runtime`] at
//! every site) also makes the backend an explicit, swappable property of a
//! network: the differential suites train sibling models under `Scalar`
//! and `Simd` in one process, which the `OnceLock`-cached runtime choice
//! could not express.

use crate::bufpool::BufferPool;
use crate::kernel::Kernel;
use crate::tensor::Tensor;

/// How many idle buffers each pool retains. Conv backward holds several
/// buffers per in-flight image (columns, per-image dx/dw) across a batch,
/// so this is sized well above [`BufferPool`]'s default of 8.
const POOL_RETAIN: usize = 64;

/// Kernel choice + buffer pools for allocation-free layer compute.
#[derive(Debug)]
pub struct ComputeScratch {
    kernel: Kernel,
    f32s: BufferPool<f32>,
    u32s: BufferPool<u32>,
    misses: u64,
}

impl Default for ComputeScratch {
    /// Scratch bound to the process-wide [`Kernel::runtime`] backend.
    fn default() -> Self {
        ComputeScratch::new(Kernel::runtime())
    }
}

impl ComputeScratch {
    /// Scratch bound to an explicit backend.
    pub fn new(kernel: Kernel) -> Self {
        ComputeScratch {
            kernel,
            f32s: BufferPool::new(POOL_RETAIN),
            u32s: BufferPool::new(POOL_RETAIN),
            misses: 0,
        }
    }

    /// The backend every consumer of this scratch must dispatch through.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Rebind to a different backend (pools are kept — backend choice
    /// never changes buffer shapes).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// An empty `f32` buffer with at least `cap` capacity. Served best-fit
    /// from the pool (smallest pooled buffer that holds `cap`), so mixed
    /// request sizes each keep their own steady-state buffer; counts a
    /// miss only when nothing pooled was big enough and one had to grow.
    pub fn take(&mut self, cap: usize) -> Vec<f32> {
        if let Some(v) = self.f32s.acquire_fit(cap) {
            return v;
        }
        let mut v = self.f32s.acquire();
        if cap > 0 {
            self.misses += 1;
            v.reserve(cap);
        }
        v
    }

    /// A zero-filled `f32` buffer of exactly `len` elements.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.take(len);
        v.resize(len, 0.0);
        v
    }

    /// Returns an `f32` buffer to the pool.
    pub fn put(&mut self, buf: Vec<f32>) {
        self.f32s.release(buf);
    }

    /// Recycles a consumed tensor's storage.
    pub fn put_tensor(&mut self, t: Tensor) {
        self.f32s.release(t.into_vec());
    }

    /// An empty `u32` buffer with at least `cap` capacity (argmax maps).
    /// Best-fit, same policy as [`ComputeScratch::take`].
    pub fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        if let Some(v) = self.u32s.acquire_fit(cap) {
            return v;
        }
        let mut v = self.u32s.acquire();
        if cap > 0 {
            self.misses += 1;
            v.reserve(cap);
        }
        v
    }

    /// Returns a `u32` buffer to the pool.
    pub fn put_u32(&mut self, buf: Vec<u32>) {
        self.u32s.release(buf);
    }

    /// Total acquires that had to grow a buffer. Stops increasing once
    /// the pools reach their steady-state high-water marks — the
    /// "training loop is allocation-free" assertion.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Bytes of heap capacity parked across both pools.
    pub fn retained_bytes(&self) -> usize {
        self.f32s.retained_bytes() + self.u32s.retained_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_is_miss_free_once_warm() {
        let mut s = ComputeScratch::new(Kernel::Scalar);
        assert_eq!(s.kernel(), Kernel::Scalar);
        let b = s.take(100);
        assert!(b.capacity() >= 100);
        assert_eq!(s.misses(), 1, "cold acquire grows");
        s.put(b);
        let b = s.take(100);
        assert_eq!(s.misses(), 1, "warm acquire reuses");
        assert!(b.is_empty());
        s.put(b);
        // A bigger request grows again.
        let b = s.take(200);
        assert_eq!(s.misses(), 2);
        s.put(b);
        let b = s.take(150);
        assert_eq!(s.misses(), 2, "smaller request served by the grown buffer");
        s.put(b);
    }

    #[test]
    fn take_zeroed_is_zero_even_after_dirty_reuse() {
        let mut s = ComputeScratch::default();
        let mut b = s.take(8);
        b.extend_from_slice(&[f32::NAN; 8]);
        s.put(b);
        let z = s.take_zeroed(8);
        assert_eq!(z.len(), 8);
        assert!(z.iter().all(|v| v.to_bits() == 0));
        s.put(z);
    }

    #[test]
    fn tensor_storage_recycles() {
        let mut s = ComputeScratch::default();
        let t = Tensor::zeros(crate::Shape::new(vec![4, 4]));
        s.put_tensor(t);
        let b = s.take(16);
        assert_eq!(s.misses(), 0, "tensor storage served the acquire");
        s.put(b);
        let u = s.take_u32(32);
        assert_eq!(s.misses(), 1);
        s.put_u32(u);
        assert!(s.retained_bytes() >= 16 * 4 + 32 * 4);
    }

    #[test]
    fn set_kernel_rebinds() {
        let mut s = ComputeScratch::default();
        s.set_kernel(Kernel::Simd);
        assert_eq!(s.kernel(), Kernel::Simd);
    }
}
