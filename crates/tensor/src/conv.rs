//! 2-D convolution via im2col / col2im.
//!
//! Layout is NCHW. The forward pass lowers each image to a
//! `(C·KH·KW) × (OH·OW)` column matrix and multiplies by the
//! `(OC) × (C·KH·KW)` weight matrix; the backward pass reverses both steps.
//! This is the standard CPU strategy and keeps all the heavy lifting inside
//! the rayon-parallel matmul kernels.

use crate::matmul::{matmul_a_bt_slices, matmul_at_b_slices, matmul_slices};
use crate::{Shape, Tensor};
use rayon::prelude::*;

/// Convolution geometry (square kernels, symmetric stride/padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height/width.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an `h×w` input. Panics if the geometry
    /// produces a non-positive output extent.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding)
            .checked_sub(self.kernel)
            .expect("kernel larger than padded input")
            / self.stride
            + 1;
        let ow = (w + 2 * self.padding)
            .checked_sub(self.kernel)
            .expect("kernel larger than padded input")
            / self.stride
            + 1;
        (oh, ow)
    }

    /// Number of weight parameters (`OC·C·KH·KW`).
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Multiply-accumulate count for one forward pass over a batch of `n`
    /// `h×w` images; used by the DES compute-time model.
    pub fn flops(&self, n: usize, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        2 * (n * self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel) as u64
    }
}

/// Lowers one `C×H×W` image into a `(C·K·K) × (OH·OW)` column matrix.
fn im2col_single(img: &[f32], cols: &mut [f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec) {
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let row_len = oh * ow;
    let pad = spec.padding as isize;
    for ch in 0..c {
        let img_ch = &img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k * k + ky * k + kx) * row_len;
                for oy in 0..oh {
                    let iy = oy as isize * spec.stride as isize + ky as isize - pad;
                    let out_base = row + oy * ow;
                    if iy < 0 || iy >= h as isize {
                        cols[out_base..out_base + ow].fill(0.0);
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = ox as isize * spec.stride as isize + kx as isize - pad;
                        cols[out_base + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            img_ch[iy * w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters a `(C·K·K) × (OH·OW)` column-gradient matrix back onto an image
/// gradient (the adjoint of [`im2col_single`]).
fn col2im_single(cols: &[f32], img: &mut [f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec) {
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let row_len = oh * ow;
    let pad = spec.padding as isize;
    for ch in 0..c {
        let img_ch = &mut img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k * k + ky * k + kx) * row_len;
                for oy in 0..oh {
                    let iy = oy as isize * spec.stride as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = ox as isize * spec.stride as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img_ch[iy * w + ix as usize] += cols[row + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Convolution forward.
///
/// * `x`: `N×C×H×W` input.
/// * `weight`: flat `OC×(C·K·K)` kernel bank.
/// * `bias`: `OC` biases (may be empty for no bias).
///
/// Returns the `N×OC×OH×OW` output.
pub fn conv2d_forward(x: &Tensor, weight: &[f32], bias: &[f32], spec: &Conv2dSpec) -> Tensor {
    let (n, c, h, w) = x.shape().as_nchw();
    assert_eq!(c, spec.in_channels, "conv2d input channels");
    assert_eq!(weight.len(), spec.weight_len(), "conv2d weight length");
    let (oh, ow) = spec.out_hw(h, w);
    let col_rows = c * spec.kernel * spec.kernel;
    let col_len = oh * ow;
    let mut y = Tensor::zeros(Shape::from([n, spec.out_channels, oh, ow]));
    let in_img = c * h * w;
    let out_img = spec.out_channels * oh * ow;
    let x_data = x.data();
    y.data_mut().par_chunks_mut(out_img).enumerate().for_each(|(i, y_img)| {
        let mut cols = vec![0.0f32; col_rows * col_len];
        im2col_single(&x_data[i * in_img..(i + 1) * in_img], &mut cols, c, h, w, spec);
        matmul_slices(weight, &cols, y_img, spec.out_channels, col_rows, col_len);
        if !bias.is_empty() {
            for oc in 0..spec.out_channels {
                let b = bias[oc];
                for v in &mut y_img[oc * col_len..(oc + 1) * col_len] {
                    *v += b;
                }
            }
        }
    });
    y
}

/// Gradients produced by [`conv2d_backward`].
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `N×C×H×W`.
    pub dx: Tensor,
    /// Gradient w.r.t. the flat weight bank.
    pub dweight: Vec<f32>,
    /// Gradient w.r.t. the biases (empty if no bias was used).
    pub dbias: Vec<f32>,
}

/// Convolution backward: given `dy` (`N×OC×OH×OW`), the forward input and
/// weights, produces input/weight/bias gradients.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &[f32],
    dy: &Tensor,
    spec: &Conv2dSpec,
    with_bias: bool,
) -> Conv2dGrads {
    let (n, c, h, w) = x.shape().as_nchw();
    let (n2, oc, oh, ow) = dy.shape().as_nchw();
    assert_eq!(n, n2, "conv2d_backward batch");
    assert_eq!(oc, spec.out_channels, "conv2d_backward channels");
    let col_rows = c * spec.kernel * spec.kernel;
    let col_len = oh * ow;
    let in_img = c * h * w;
    let out_img = oc * col_len;
    let x_data = x.data();
    let dy_data = dy.data();

    let mut dx = Tensor::zeros(x.shape().clone());

    // Per-image partial weight grads are reduced sequentially afterwards so
    // the summation order (and thus the result) is deterministic.
    let per_image: Vec<(Vec<f32>, Vec<f32>)> = {
        let dx_chunks: Vec<&mut [f32]> = dx.data_mut().chunks_mut(in_img).collect();
        dx_chunks
            .into_par_iter()
            .enumerate()
            .map(|(i, dx_img)| {
                let mut cols = vec![0.0f32; col_rows * col_len];
                im2col_single(&x_data[i * in_img..(i + 1) * in_img], &mut cols, c, h, w, spec);
                let dy_img = &dy_data[i * out_img..(i + 1) * out_img];
                // dW += dY (oc x col_len) · colsᵀ (col_len x col_rows)
                let mut dw = vec![0.0f32; oc * col_rows];
                matmul_a_bt_slices(dy_img, &cols, &mut dw, oc, col_len, col_rows);
                // dcols = Wᵀ (col_rows x oc) · dY (oc x col_len)
                let mut dcols = vec![0.0f32; col_rows * col_len];
                matmul_at_b_slices(weight, dy_img, &mut dcols, col_rows, oc, col_len);
                dx_img.fill(0.0);
                col2im_single(&dcols, dx_img, c, h, w, spec);
                let db = if with_bias {
                    (0..oc).map(|o| dy_img[o * col_len..(o + 1) * col_len].iter().sum()).collect()
                } else {
                    Vec::new()
                };
                (dw, db)
            })
            .collect()
    };

    let mut dweight = vec![0.0f32; spec.weight_len()];
    let mut dbias = vec![0.0f32; if with_bias { oc } else { 0 }];
    for (dw, db) in &per_image {
        for (a, &b) in dweight.iter_mut().zip(dw.iter()) {
            *a += b;
        }
        for (a, &b) in dbias.iter_mut().zip(db.iter()) {
            *a += b;
        }
    }

    Conv2dGrads { dx, dweight, dbias }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_slice_approx_eq;

    fn spec(cin: usize, cout: usize, k: usize, s: usize, p: usize) -> Conv2dSpec {
        Conv2dSpec { in_channels: cin, out_channels: cout, kernel: k, stride: s, padding: p }
    }

    /// Direct (quadruple-loop) convolution for cross-checking.
    fn naive_conv(x: &Tensor, w: &[f32], b: &[f32], sp: &Conv2dSpec) -> Tensor {
        let (n, c, h, ww) = x.shape().as_nchw();
        let (oh, ow) = sp.out_hw(h, ww);
        let mut y = Tensor::zeros([n, sp.out_channels, oh, ow]);
        for i in 0..n {
            for oc in 0..sp.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = if b.is_empty() { 0.0 } else { b[oc] };
                        for ch in 0..c {
                            for ky in 0..sp.kernel {
                                for kx in 0..sp.kernel {
                                    let iy = (oy * sp.stride + ky) as isize - sp.padding as isize;
                                    let ix = (ox * sp.stride + kx) as isize - sp.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= ww as isize {
                                        continue;
                                    }
                                    let xv = x.at(&[i, ch, iy as usize, ix as usize]);
                                    let wv = w[oc * c * sp.kernel * sp.kernel
                                        + ch * sp.kernel * sp.kernel
                                        + ky * sp.kernel
                                        + kx];
                                    acc += xv * wv;
                                }
                            }
                        }
                        *y.at_mut(&[i, oc, oy, ox]) = acc;
                    }
                }
            }
        }
        y
    }

    #[test]
    fn out_hw_geometry() {
        assert_eq!(spec(3, 8, 3, 1, 1).out_hw(32, 32), (32, 32));
        assert_eq!(spec(3, 8, 3, 2, 1).out_hw(32, 32), (16, 16));
        assert_eq!(spec(3, 8, 1, 1, 0).out_hw(7, 5), (7, 5));
    }

    #[test]
    fn forward_matches_naive() {
        for &(cin, cout, k, s, p, h, w) in &[
            (1, 1, 1, 1, 0, 4, 4),
            (2, 3, 3, 1, 1, 6, 5),
            (3, 4, 3, 2, 1, 8, 8),
            (2, 2, 5, 1, 2, 7, 7),
        ] {
            let sp = spec(cin, cout, k, s, p);
            let x = Tensor::randn([2, cin, h, w], 1.0, 42);
            let wt = Tensor::randn([sp.weight_len()], 0.5, 43).into_vec();
            let b = Tensor::randn([cout], 0.1, 44).into_vec();
            let y = conv2d_forward(&x, &wt, &b, &sp);
            let y_ref = naive_conv(&x, &wt, &b, &sp);
            assert_slice_approx_eq(y.data(), y_ref.data(), 1e-4);
        }
    }

    #[test]
    fn forward_no_bias() {
        let sp = spec(1, 2, 3, 1, 1);
        let x = Tensor::randn([1, 1, 5, 5], 1.0, 7);
        let wt = Tensor::randn([sp.weight_len()], 0.5, 8).into_vec();
        let y = conv2d_forward(&x, &wt, &[], &sp);
        let y_ref = naive_conv(&x, &wt, &[], &sp);
        assert_slice_approx_eq(y.data(), y_ref.data(), 1e-4);
    }

    /// Numerical gradient check of the full backward pass.
    #[test]
    fn backward_matches_numerical_gradient() {
        let sp = spec(2, 3, 3, 1, 1);
        let x = Tensor::randn([2, 2, 5, 5], 1.0, 100);
        let wt = Tensor::randn([sp.weight_len()], 0.5, 101).into_vec();
        let b = Tensor::randn([3], 0.1, 102).into_vec();
        // Loss = sum(conv(x)) so dy = ones.
        let y = conv2d_forward(&x, &wt, &b, &sp);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let grads = conv2d_backward(&x, &wt, &dy, &sp, true);

        let eps = 1e-2f32;
        let loss =
            |x: &Tensor, wt: &[f32], b: &[f32]| -> f64 { conv2d_forward(x, wt, b, &sp).sum() };
        // Check a sample of weight coordinates.
        for &wi in &[0usize, 5, 17, sp.weight_len() - 1] {
            let mut wp = wt.clone();
            wp[wi] += eps;
            let mut wm = wt.clone();
            wm[wi] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps as f64);
            assert!(
                (num - grads.dweight[wi] as f64).abs() < 2e-2 * num.abs().max(1.0),
                "dweight[{wi}]: numerical {num} vs analytic {}",
                grads.dweight[wi]
            );
        }
        // Check a sample of input coordinates.
        for &xi in &[0usize, 13, 49, x.numel() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let num = (loss(&xp, &wt, &b) - loss(&xm, &wt, &b)) / (2.0 * eps as f64);
            assert!(
                (num - grads.dx.data()[xi] as f64).abs() < 2e-2 * num.abs().max(1.0),
                "dx[{xi}]: numerical {num} vs analytic {}",
                grads.dx.data()[xi]
            );
        }
        // Bias gradient of sum-loss is the number of output pixels per channel.
        let (oh, ow) = sp.out_hw(5, 5);
        for &g in &grads.dbias {
            assert!((g - (2 * oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_strided() {
        let sp = spec(1, 2, 3, 2, 1);
        let x = Tensor::randn([1, 1, 8, 8], 1.0, 200);
        let wt = Tensor::randn([sp.weight_len()], 0.5, 201).into_vec();
        let y = conv2d_forward(&x, &wt, &[], &sp);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let grads = conv2d_backward(&x, &wt, &dy, &sp, false);
        assert!(grads.dbias.is_empty());
        let eps = 1e-2f32;
        for &xi in &[0usize, 31, 63] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let num = (conv2d_forward(&xp, &wt, &[], &sp).sum()
                - conv2d_forward(&xm, &wt, &[], &sp).sum())
                / (2.0 * eps as f64);
            assert!(
                (num - grads.dx.data()[xi] as f64).abs() < 2e-2 * num.abs().max(1.0),
                "dx[{xi}]"
            );
        }
    }

    #[test]
    fn flops_positive_and_scales_with_batch() {
        let sp = spec(3, 8, 3, 1, 1);
        let f1 = sp.flops(1, 16, 16);
        let f4 = sp.flops(4, 16, 16);
        assert!(f1 > 0);
        assert_eq!(f4, 4 * f1);
    }
}
