//! 2-D convolution via im2col + GEMM, behind the [`Kernel`] seam.
//!
//! Layout is NCHW. The forward pass lowers each image to a
//! `(C·KH·KW) × (OH·OW)` column matrix and multiplies by the
//! `(OC) × (C·KH·KW)` weight matrix; the backward pass reverses both steps.
//! This is the standard CPU strategy and keeps all the heavy lifting inside
//! the compute tier's blocked GEMM (`crate::gemm`).
//!
//! The `_with` entry points are the hot path: they thread a
//! [`ComputeScratch`] so column/gradient buffers come from pools (no
//! per-batch allocation once warm) and the GEMMs run on the scratch's
//! explicit [`Kernel`]. The original signatures remain as convenience
//! wrappers over a throwaway scratch at [`Kernel::runtime`].
//!
//! [`im2col_single`] is append-only: its write order (`ch, ky, kx, oy,
//! ox`) is exactly the ascending flat order of the column matrix, so the
//! lowering pushes into a cleared pooled `Vec` — no O(rows·cols)
//! zero-init and no per-element bounds check on the hot stride-1 interior
//! (whole valid runs are `extend_from_slice`d; padding is emitted as
//! explicit zero runs).
//!
//! [`conv2d_forward_direct`] keeps the original quadruple-loop
//! convolution as a *differential oracle*. It is approximate, not
//! bitwise, against the GEMM path: the direct loop skips padding taps and
//! seeds the accumulator with the bias, so its per-output chain is a
//! different (shorter) sum. The bitwise contract holds *across backends
//! of the GEMM path*, which all share one chain.

use crate::{ComputeScratch, Tensor};
use rayon::prelude::*;

/// Convolution geometry (square kernels, symmetric stride/padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height/width.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an `h×w` input. Panics if the geometry
    /// produces a non-positive output extent.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding)
            .checked_sub(self.kernel)
            .expect("kernel larger than padded input")
            / self.stride
            + 1;
        let ow = (w + 2 * self.padding)
            .checked_sub(self.kernel)
            .expect("kernel larger than padded input")
            / self.stride
            + 1;
        (oh, ow)
    }

    /// Number of weight parameters (`OC·C·KH·KW`).
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Multiply-accumulate count for one forward pass over a batch of `n`
    /// `h×w` images; used by the DES compute-time model.
    pub fn flops(&self, n: usize, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        2 * (n * self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel) as u64
    }
}

/// Lowers one `C×H×W` image into a `(C·K·K) × (OH·OW)` column matrix,
/// appended to `cols` (cleared first). Append-only by construction: the
/// loop nest visits output offsets in strictly ascending flat order.
fn im2col_single(img: &[f32], cols: &mut Vec<f32>, c: usize, h: usize, w: usize, spec: &Conv2dSpec) {
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let s = spec.stride;
    let pad = spec.padding;
    cols.clear();
    cols.reserve(c * k * k * oh * ow);
    for ch in 0..c {
        let img_ch = &img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                // Valid output-column range for this kernel tap:
                // 0 <= ox*s + kx - pad < w.
                let ox_lo = if kx < pad { (pad - kx).div_ceil(s) } else { 0 };
                let ox_hi = if w + pad > kx { ((w + pad - kx - 1) / s + 1).min(ow) } else { 0 };
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize || ox_lo >= ox_hi {
                        // Fully padded row: one zero run, no per-pixel work.
                        cols.resize(cols.len() + ow, 0.0);
                        continue;
                    }
                    let row = &img_ch[iy as usize * w..(iy as usize + 1) * w];
                    cols.resize(cols.len() + ox_lo, 0.0);
                    let ix0 = ox_lo * s + kx - pad;
                    if s == 1 {
                        // Stride-1 interior: the taps are one contiguous
                        // run — a straight memcpy.
                        cols.extend_from_slice(&row[ix0..ix0 + (ox_hi - ox_lo)]);
                    } else {
                        cols.extend(row[ix0..].iter().step_by(s).take(ox_hi - ox_lo));
                    }
                    cols.resize(cols.len() + (ow - ox_hi), 0.0);
                }
            }
        }
    }
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
}

/// Scatters a `(C·K·K) × (OH·OW)` column-gradient matrix back onto an image
/// gradient (the adjoint of [`im2col_single`]).
fn col2im_single(cols: &[f32], img: &mut [f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec) {
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let row_len = oh * ow;
    let pad = spec.padding as isize;
    for ch in 0..c {
        let img_ch = &mut img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k * k + ky * k + kx) * row_len;
                for oy in 0..oh {
                    let iy = oy as isize * spec.stride as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = ox as isize * spec.stride as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img_ch[iy * w + ix as usize] += cols[row + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Convolution forward (throwaway scratch at the runtime backend; layers
/// use [`conv2d_forward_with`]).
///
/// * `x`: `N×C×H×W` input.
/// * `weight`: flat `OC×(C·K·K)` kernel bank.
/// * `bias`: `OC` biases (may be empty for no bias).
///
/// Returns the `N×OC×OH×OW` output.
pub fn conv2d_forward(x: &Tensor, weight: &[f32], bias: &[f32], spec: &Conv2dSpec) -> Tensor {
    conv2d_forward_with(&mut ComputeScratch::default(), x, weight, bias, spec)
}

/// [`conv2d_forward`] through the compute tier: per-image column buffers
/// and the output come from `scratch`'s pools, the per-image GEMMs run on
/// `scratch.kernel()`, and the batch fans out over rayon (images are
/// disjoint, so the split cannot reorder any accumulation).
pub fn conv2d_forward_with(
    scratch: &mut ComputeScratch,
    x: &Tensor,
    weight: &[f32],
    bias: &[f32],
    spec: &Conv2dSpec,
) -> Tensor {
    let (n, c, h, w) = x.shape().as_nchw();
    assert_eq!(c, spec.in_channels, "conv2d input channels");
    assert_eq!(weight.len(), spec.weight_len(), "conv2d weight length");
    let (oh, ow) = spec.out_hw(h, w);
    let col_rows = c * spec.kernel * spec.kernel;
    let col_len = oh * ow;
    let in_img = c * h * w;
    let out_img = spec.out_channels * col_len;
    let kernel = scratch.kernel();
    let mut y = scratch.take_zeroed(n * out_img);
    let mut col_bufs: Vec<Vec<f32>> = (0..n).map(|_| scratch.take(col_rows * col_len)).collect();
    let x_data = x.data();
    {
        let tasks: Vec<(usize, &mut [f32], &mut Vec<f32>)> = y
            .chunks_mut(out_img)
            .zip(col_bufs.iter_mut())
            .enumerate()
            .map(|(i, (y_img, cols))| (i, y_img, cols))
            .collect();
        tasks.into_par_iter().for_each(|(i, y_img, cols)| {
            im2col_single(&x_data[i * in_img..(i + 1) * in_img], cols, c, h, w, spec);
            kernel.gemm(weight, cols, y_img, spec.out_channels, col_rows, col_len);
            if !bias.is_empty() {
                for oc in 0..spec.out_channels {
                    let b = bias[oc];
                    for v in &mut y_img[oc * col_len..(oc + 1) * col_len] {
                        *v += b;
                    }
                }
            }
        });
    }
    for buf in col_bufs {
        scratch.put(buf);
    }
    Tensor::from_vec([n, spec.out_channels, oh, ow], y).expect("conv2d output size")
}

/// Direct (septuple-loop) convolution — the seed implementation, kept as
/// the differential oracle for the im2col + GEMM path. Approximate, not
/// bitwise: it skips padding taps and seeds each accumulator with the
/// bias, so its summation chain differs (see the module docs).
pub fn conv2d_forward_direct(x: &Tensor, w: &[f32], b: &[f32], sp: &Conv2dSpec) -> Tensor {
    let (n, c, h, ww) = x.shape().as_nchw();
    assert_eq!(c, sp.in_channels, "conv2d input channels");
    assert_eq!(w.len(), sp.weight_len(), "conv2d weight length");
    let (oh, ow) = sp.out_hw(h, ww);
    let mut y = Tensor::zeros([n, sp.out_channels, oh, ow]);
    for i in 0..n {
        for oc in 0..sp.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if b.is_empty() { 0.0 } else { b[oc] };
                    for ch in 0..c {
                        for ky in 0..sp.kernel {
                            for kx in 0..sp.kernel {
                                let iy = (oy * sp.stride + ky) as isize - sp.padding as isize;
                                let ix = (ox * sp.stride + kx) as isize - sp.padding as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= ww as isize {
                                    continue;
                                }
                                let xv = x.at(&[i, ch, iy as usize, ix as usize]);
                                let wv = w[oc * c * sp.kernel * sp.kernel
                                    + ch * sp.kernel * sp.kernel
                                    + ky * sp.kernel
                                    + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    *y.at_mut(&[i, oc, oy, ox]) = acc;
                }
            }
        }
    }
    y
}

/// Gradients produced by [`conv2d_backward`].
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `N×C×H×W`.
    pub dx: Tensor,
    /// Gradient w.r.t. the flat weight bank.
    pub dweight: Vec<f32>,
    /// Gradient w.r.t. the biases (empty if no bias was used).
    pub dbias: Vec<f32>,
}

/// Convolution backward: given `dy` (`N×OC×OH×OW`), the forward input and
/// weights, produces input/weight/bias gradients.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &[f32],
    dy: &Tensor,
    spec: &Conv2dSpec,
    with_bias: bool,
) -> Conv2dGrads {
    conv2d_backward_with(&mut ComputeScratch::default(), x, weight, dy, spec, with_bias)
}

/// [`conv2d_backward`] through the compute tier (pooled buffers, explicit
/// kernel, rayon over images). Per-image partial weight grads are reduced
/// sequentially afterwards so the summation order (and thus the result)
/// is deterministic regardless of the rayon schedule.
pub fn conv2d_backward_with(
    scratch: &mut ComputeScratch,
    x: &Tensor,
    weight: &[f32],
    dy: &Tensor,
    spec: &Conv2dSpec,
    with_bias: bool,
) -> Conv2dGrads {
    let (n, c, h, w) = x.shape().as_nchw();
    let (n2, oc, oh, ow) = dy.shape().as_nchw();
    assert_eq!(n, n2, "conv2d_backward batch");
    assert_eq!(oc, spec.out_channels, "conv2d_backward channels");
    let col_rows = c * spec.kernel * spec.kernel;
    let col_len = oh * ow;
    let in_img = c * h * w;
    let out_img = oc * col_len;
    let kernel = scratch.kernel();
    let x_data = x.data();
    let dy_data = dy.data();

    let mut dxd = scratch.take_zeroed(x.numel());
    // Per-image working set, all pooled: columns, dcols, partial dW, dbias.
    let mut bufs: Vec<(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)> = (0..n)
        .map(|_| {
            (
                scratch.take(col_rows * col_len),
                scratch.take_zeroed(col_rows * col_len),
                scratch.take_zeroed(oc * col_rows),
                scratch.take(if with_bias { oc } else { 0 }),
            )
        })
        .collect();
    {
        let tasks: Vec<(usize, &mut [f32], &mut (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>))> = dxd
            .chunks_mut(in_img)
            .zip(bufs.iter_mut())
            .enumerate()
            .map(|(i, (dx_img, b))| (i, dx_img, b))
            .collect();
        tasks.into_par_iter().for_each(|(i, dx_img, (cols, dcols, dw, db))| {
            im2col_single(&x_data[i * in_img..(i + 1) * in_img], cols, c, h, w, spec);
            let dy_img = &dy_data[i * out_img..(i + 1) * out_img];
            // dW += dY (oc x col_len) · colsᵀ (col_len x col_rows)
            kernel.gemm_a_bt(dy_img, cols, dw, oc, col_len, col_rows);
            // dcols = Wᵀ (col_rows x oc) · dY (oc x col_len)
            kernel.gemm_at_b(weight, dy_img, dcols, col_rows, oc, col_len);
            col2im_single(dcols, dx_img, c, h, w, spec);
            if with_bias {
                db.clear();
                db.extend(
                    (0..oc).map(|o| dy_img[o * col_len..(o + 1) * col_len].iter().sum::<f32>()),
                );
            }
        });
    }

    let mut dweight = scratch.take_zeroed(spec.weight_len());
    let mut dbias = scratch.take_zeroed(if with_bias { oc } else { 0 });
    for (cols, dcols, dw, db) in bufs {
        for (a, &b) in dweight.iter_mut().zip(dw.iter()) {
            *a += b;
        }
        for (a, &b) in dbias.iter_mut().zip(db.iter()) {
            *a += b;
        }
        scratch.put(cols);
        scratch.put(dcols);
        scratch.put(dw);
        scratch.put(db);
    }

    let dx = Tensor::from_vec(x.shape().clone(), dxd).expect("conv2d dx size");
    Conv2dGrads { dx, dweight, dbias }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_slice_approx_eq, Kernel};

    fn spec(cin: usize, cout: usize, k: usize, s: usize, p: usize) -> Conv2dSpec {
        Conv2dSpec { in_channels: cin, out_channels: cout, kernel: k, stride: s, padding: p }
    }

    #[test]
    fn out_hw_geometry() {
        assert_eq!(spec(3, 8, 3, 1, 1).out_hw(32, 32), (32, 32));
        assert_eq!(spec(3, 8, 3, 2, 1).out_hw(32, 32), (16, 16));
        assert_eq!(spec(3, 8, 1, 1, 0).out_hw(7, 5), (7, 5));
    }

    #[test]
    fn forward_matches_direct_oracle() {
        for &(cin, cout, k, s, p, h, w) in &[
            (1, 1, 1, 1, 0, 4, 4),
            (2, 3, 3, 1, 1, 6, 5),
            (3, 4, 3, 2, 1, 8, 8),
            (2, 2, 5, 1, 2, 7, 7),
            (1, 2, 3, 2, 2, 5, 9), // padding wider than the kernel reach
        ] {
            let sp = spec(cin, cout, k, s, p);
            let x = Tensor::randn([2, cin, h, w], 1.0, 42);
            let wt = Tensor::randn([sp.weight_len()], 0.5, 43).into_vec();
            let b = Tensor::randn([cout], 0.1, 44).into_vec();
            let y = conv2d_forward(&x, &wt, &b, &sp);
            let y_ref = conv2d_forward_direct(&x, &wt, &b, &sp);
            assert_slice_approx_eq(y.data(), y_ref.data(), 1e-4);
        }
    }

    #[test]
    fn forward_no_bias() {
        let sp = spec(1, 2, 3, 1, 1);
        let x = Tensor::randn([1, 1, 5, 5], 1.0, 7);
        let wt = Tensor::randn([sp.weight_len()], 0.5, 8).into_vec();
        let y = conv2d_forward(&x, &wt, &[], &sp);
        let y_ref = conv2d_forward_direct(&x, &wt, &[], &sp);
        assert_slice_approx_eq(y.data(), y_ref.data(), 1e-4);
    }

    #[test]
    fn forward_backends_bitwise_identical() {
        // The GEMM path's cross-backend contract, at the conv level.
        for &(cin, cout, k, s, p, h, w) in
            &[(2, 3, 3, 1, 1, 6, 5), (3, 4, 3, 2, 1, 8, 8), (2, 5, 1, 1, 0, 7, 7)]
        {
            let sp = spec(cin, cout, k, s, p);
            let x = Tensor::randn([2, cin, h, w], 1.0, 52);
            let wt = Tensor::randn([sp.weight_len()], 0.5, 53).into_vec();
            let b = Tensor::randn([cout], 0.1, 54).into_vec();
            let mut ss = ComputeScratch::new(Kernel::Scalar);
            let mut sv = ComputeScratch::new(Kernel::Simd);
            let ys = conv2d_forward_with(&mut ss, &x, &wt, &b, &sp);
            let yv = conv2d_forward_with(&mut sv, &x, &wt, &b, &sp);
            for (a, bb) in ys.data().iter().zip(yv.data().iter()) {
                assert_eq!(a.to_bits(), bb.to_bits(), "conv forward diverged");
            }
            let dy = Tensor::randn(ys.shape().clone(), 1.0, 55);
            let gs = conv2d_backward_with(&mut ss, &x, &wt, &dy, &sp, true);
            let gv = conv2d_backward_with(&mut sv, &x, &wt, &dy, &sp, true);
            for (a, bb) in gs.dx.data().iter().zip(gv.dx.data().iter()) {
                assert_eq!(a.to_bits(), bb.to_bits(), "conv dx diverged");
            }
            for (a, bb) in gs.dweight.iter().zip(gv.dweight.iter()) {
                assert_eq!(a.to_bits(), bb.to_bits(), "conv dweight diverged");
            }
            for (a, bb) in gs.dbias.iter().zip(gv.dbias.iter()) {
                assert_eq!(a.to_bits(), bb.to_bits(), "conv dbias diverged");
            }
        }
    }

    #[test]
    fn warm_scratch_runs_allocation_free() {
        let sp = spec(2, 4, 3, 1, 1);
        let x = Tensor::randn([3, 2, 8, 8], 1.0, 71);
        let wt = Tensor::randn([sp.weight_len()], 0.5, 72).into_vec();
        let b = Tensor::randn([4], 0.1, 73).into_vec();
        let mut s = ComputeScratch::default();
        for _ in 0..2 {
            let y = conv2d_forward_with(&mut s, &x, &wt, &b, &sp);
            let dy = Tensor::full(y.shape().clone(), 1.0);
            let g = conv2d_backward_with(&mut s, &x, &wt, &dy, &sp, true);
            s.put_tensor(y);
            s.put_tensor(g.dx);
            s.put(g.dweight);
            s.put(g.dbias);
        }
        let warm = s.misses();
        let y = conv2d_forward_with(&mut s, &x, &wt, &b, &sp);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let g = conv2d_backward_with(&mut s, &x, &wt, &dy, &sp, true);
        s.put_tensor(y);
        s.put_tensor(g.dx);
        s.put(g.dweight);
        s.put(g.dbias);
        assert_eq!(s.misses(), warm, "warm conv step must not grow buffers");
    }

    /// Numerical gradient check of the full backward pass.
    #[test]
    fn backward_matches_numerical_gradient() {
        let sp = spec(2, 3, 3, 1, 1);
        let x = Tensor::randn([2, 2, 5, 5], 1.0, 100);
        let wt = Tensor::randn([sp.weight_len()], 0.5, 101).into_vec();
        let b = Tensor::randn([3], 0.1, 102).into_vec();
        // Loss = sum(conv(x)) so dy = ones.
        let y = conv2d_forward(&x, &wt, &b, &sp);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let grads = conv2d_backward(&x, &wt, &dy, &sp, true);

        let eps = 1e-2f32;
        let loss =
            |x: &Tensor, wt: &[f32], b: &[f32]| -> f64 { conv2d_forward(x, wt, b, &sp).sum() };
        // Check a sample of weight coordinates.
        for &wi in &[0usize, 5, 17, sp.weight_len() - 1] {
            let mut wp = wt.clone();
            wp[wi] += eps;
            let mut wm = wt.clone();
            wm[wi] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps as f64);
            assert!(
                (num - grads.dweight[wi] as f64).abs() < 2e-2 * num.abs().max(1.0),
                "dweight[{wi}]: numerical {num} vs analytic {}",
                grads.dweight[wi]
            );
        }
        // Check a sample of input coordinates.
        for &xi in &[0usize, 13, 49, x.numel() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let num = (loss(&xp, &wt, &b) - loss(&xm, &wt, &b)) / (2.0 * eps as f64);
            assert!(
                (num - grads.dx.data()[xi] as f64).abs() < 2e-2 * num.abs().max(1.0),
                "dx[{xi}]: numerical {num} vs analytic {}",
                grads.dx.data()[xi]
            );
        }
        // Bias gradient of sum-loss is the number of output pixels per channel.
        let (oh, ow) = sp.out_hw(5, 5);
        for &g in &grads.dbias {
            assert!((g - (2 * oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_strided() {
        let sp = spec(1, 2, 3, 2, 1);
        let x = Tensor::randn([1, 1, 8, 8], 1.0, 200);
        let wt = Tensor::randn([sp.weight_len()], 0.5, 201).into_vec();
        let y = conv2d_forward(&x, &wt, &[], &sp);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let grads = conv2d_backward(&x, &wt, &dy, &sp, false);
        assert!(grads.dbias.is_empty());
        let eps = 1e-2f32;
        for &xi in &[0usize, 31, 63] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let num = (conv2d_forward(&xp, &wt, &[], &sp).sum()
                - conv2d_forward(&xm, &wt, &[], &sp).sum())
                / (2.0 * eps as f64);
            assert!(
                (num - grads.dx.data()[xi] as f64).abs() < 2e-2 * num.abs().max(1.0),
                "dx[{xi}]"
            );
        }
    }

    #[test]
    fn flops_positive_and_scales_with_batch() {
        let sp = spec(3, 8, 3, 1, 1);
        let f1 = sp.flops(1, 16, 16);
        let f4 = sp.flops(4, 16, 16);
        assert!(f1 > 0);
        assert_eq!(f4, 4 * f1);
    }
}
