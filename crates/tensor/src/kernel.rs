//! Runtime-selected compute backend for the workspace's hot scalar loops.
//!
//! [`Kernel`] is the dispatch seam between the portable scalar kernels
//! (always compiled — they are the differential oracle) and the
//! explicit-SIMD backend in [`crate::simd`] (x86-64 AVX2 intrinsics,
//! selected at runtime via CPU feature detection). It mirrors the
//! `SelectStrategy` pattern in `dgs-sparsify`: both backends are required
//! to be **bitwise identical** on every input — NaN payloads, ±Inf,
//! denormals, signed zeros, one-ulp tie plateaus included — so backend
//! choice can never change a payload, only its cost. The differential
//! suites in `crates/sparsify/tests/kernel_equivalence.rs` and the unit
//! tests below pin that contract.
//!
//! Selection order (cached process-wide on first use):
//!
//! 1. `DGS_KERNEL=scalar` forces the scalar backend.
//! 2. `DGS_KERNEL=simd` forces SIMD; if the CPU lacks AVX2 this falls
//!    back to scalar with a one-time notice on stderr (the alternative —
//!    `SIGILL` — is not a useful way to report a missing feature).
//! 3. Otherwise: SIMD iff the CPU reports AVX2, else scalar.
//!
//! Even a hand-constructed `Kernel::Simd` is safe on a non-AVX2 CPU: the
//! wrappers in [`crate::simd`] re-check the feature and delegate to the
//! scalar twin, so `Simd` means "use vector kernels where possible", not
//! "the CPU has AVX2".

use std::sync::OnceLock;

/// Bucket count of the 16-bit magnitude-key histogram filled by
/// [`Kernel::hist16`] (the top two bytes of a [`mag_key`]).
pub const HIST16_BUCKETS: usize = 1 << 16;

/// Sign-stripping mask: `f32::to_bits` minus the sign bit.
pub(crate) const MAG_MASK: u32 = 0x7FFF_FFFF;

/// Magnitude key of a float: its IEEE-754 bits with the sign cleared.
///
/// For non-negative bit patterns, `u32` order equals `f32::total_cmp`
/// order, so comparing keys compares magnitudes with NaN sorting above
/// +Inf. This is the same key `dgs-sparsify`'s radix engine uses; it is
/// duplicated there as the crates share no helper module.
#[inline(always)]
pub(crate) fn mag_key(v: f32) -> u32 {
    v.to_bits() & MAG_MASK
}

/// Compute backend for the hot kernels. See the module docs for the
/// selection rules and the bitwise-identity contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar loops — the differential oracle. Always available.
    Scalar,
    /// Explicit AVX2 kernels from [`crate::simd`]; each wrapper falls
    /// back to the scalar twin when the CPU lacks AVX2.
    Simd,
}

impl Default for Kernel {
    /// The runtime-detected backend ([`Kernel::runtime`]).
    fn default() -> Self {
        Kernel::runtime()
    }
}

static RUNTIME: OnceLock<Kernel> = OnceLock::new();

impl Kernel {
    /// The process-wide backend: `DGS_KERNEL` override if set, else CPU
    /// feature detection. Cached after the first call.
    pub fn runtime() -> Kernel {
        *RUNTIME.get_or_init(|| {
            let auto = if Kernel::simd_available() {
                Kernel::Simd
            } else {
                Kernel::Scalar
            };
            match std::env::var("DGS_KERNEL").as_deref() {
                Ok("scalar") => Kernel::Scalar,
                Ok("simd") => {
                    if Kernel::simd_available() {
                        Kernel::Simd
                    } else {
                        eprintln!(
                            "dgs: DGS_KERNEL=simd requested but the CPU lacks AVX2; \
                             using the scalar backend"
                        );
                        Kernel::Scalar
                    }
                }
                Ok(other) => {
                    eprintln!(
                        "dgs: unknown DGS_KERNEL value {other:?} \
                         (expected \"scalar\" or \"simd\"); auto-detecting"
                    );
                    auto
                }
                Err(_) => auto,
            }
        })
    }

    /// Whether the CPU supports the SIMD backend (AVX2 on x86-64).
    pub fn simd_available() -> bool {
        crate::simd::avx2_available()
    }

    /// Stable lowercase name, e.g. for bench provenance records.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
        }
    }

    /// Fill `counts` with the 65,536-bucket histogram of the top two
    /// bytes of each element's [`mag_key`]. `counts` is cleared and
    /// resized to [`HIST16_BUCKETS`]; backends may use it as scratch for
    /// partial histograms but must leave exactly the merged counts.
    #[inline]
    pub fn hist16(self, seg: &[f32], counts: &mut Vec<u32>) {
        match self {
            Kernel::Scalar => scalar::hist16(seg, counts),
            Kernel::Simd => crate::simd::hist16(seg, counts),
        }
    }

    /// Chunk-skipping selection scan: for each element whose key's
    /// `>> shift` equals `prefix`, append the key to `keys` and its
    /// position to `pos`; for each element strictly above the prefix
    /// window, append the position to `definite`. Positions are relative
    /// to `seg` and emitted in ascending order — chunks whose elements
    /// are all below `prefix << shift` are skipped without emitting, so
    /// the output is independent of the backend's chunk width.
    #[inline]
    pub fn select_scan(
        self,
        seg: &[f32],
        prefix: u32,
        shift: u32,
        keys: &mut Vec<u32>,
        pos: &mut Vec<u32>,
        definite: &mut Vec<u32>,
    ) {
        match self {
            Kernel::Scalar => scalar::select_scan(seg, prefix, shift, keys, pos, definite),
            Kernel::Simd => crate::simd::select_scan(seg, prefix, shift, keys, pos, definite),
        }
    }

    /// Gather variant of [`Kernel::select_scan`]: append only the keys
    /// (no positions) whose `>> shift` equals `prefix`, in segment order.
    #[inline]
    pub fn gather_keys(self, seg: &[f32], prefix: u32, shift: u32, keys: &mut Vec<u32>) {
        match self {
            Kernel::Scalar => scalar::gather_keys(seg, prefix, shift, keys),
            Kernel::Simd => crate::simd::gather_keys(seg, prefix, shift, keys),
        }
    }

    /// Materialize `m[i] - v[i]` into `out` (cleared first) and return
    /// the count of nonzero differences (`d != 0.0`, so NaN counts and
    /// `-0.0` does not — matching the scalar send paths).
    #[inline]
    pub fn diff_into(self, m: &[f32], v: &[f32], out: &mut Vec<f32>) -> usize {
        match self {
            Kernel::Scalar => scalar::diff_into(m, v, out),
            Kernel::Simd => crate::simd::diff_into(m, v, out),
        }
    }

    /// Conservative block test for dense diff walks: `false` guarantees
    /// no index `i` has `m[i] - v[i] != 0.0`; `true` promises nothing.
    /// The scalar backend always answers `true` without scanning (the
    /// caller's per-element loop is the scan); the SIMD backend answers
    /// exactly, letting callers skip clean blocks.
    #[inline]
    pub fn may_have_diff(self, m: &[f32], v: &[f32]) -> bool {
        match self {
            Kernel::Scalar => true,
            Kernel::Simd => crate::simd::may_have_diff(m, v),
        }
    }

    /// Append `seg[idx[j]]` for each `j` in order. Panics on an
    /// out-of-bounds index exactly like the scalar indexing loop.
    #[inline]
    pub fn gather_into(self, seg: &[f32], idx: &[u32], out: &mut Vec<f32>) {
        match self {
            Kernel::Scalar => scalar::gather_into(seg, idx, out),
            Kernel::Simd => crate::simd::gather_into(seg, idx, out),
        }
    }

    /// `vals.iter().fold(0.0, |m, v| m.max(v.abs()))`: the largest
    /// absolute value, ignoring NaNs (`f32::max` semantics), `0.0` for
    /// an empty or all-NaN slice. This is the ternary quantizer's scale.
    #[inline]
    pub fn max_abs(self, vals: &[f32]) -> f32 {
        match self {
            Kernel::Scalar => scalar::max_abs(vals),
            Kernel::Simd => crate::simd::max_abs(vals),
        }
    }

    /// Expand `n` sign bits (LSB-first within each byte, bit set means
    /// positive) into `±scale` values appended to `out`. Negation is a
    /// sign-bit flip, bitwise identical across backends even for
    /// infinite `scale`.
    #[inline]
    pub fn sign_expand(self, scale: f32, signs: &[u8], n: usize, out: &mut Vec<f32>) {
        match self {
            Kernel::Scalar => scalar::sign_expand(scale, signs, n, out),
            Kernel::Simd => crate::simd::sign_expand(scale, signs, n, out),
        }
    }

    /// The little-endian wire bytes of `xs` as a borrowed slice, if this
    /// backend bulk-copies encodes. `Scalar` always answers `None` so the
    /// caller's per-element `put_u32_le` loop stays the oracle; `Simd`
    /// answers `Some` on little-endian targets (the bytes are identical
    /// by definition of the wire format).
    #[inline]
    pub fn u32s_le(self, xs: &[u32]) -> Option<&[u8]> {
        match self {
            Kernel::Scalar => None,
            Kernel::Simd => crate::simd::u32s_as_le_bytes(xs),
        }
    }

    /// [`Kernel::u32s_le`] for `f32` payloads (`put_f32_le` loops).
    #[inline]
    pub fn f32s_le(self, xs: &[f32]) -> Option<&[u8]> {
        match self {
            Kernel::Scalar => None,
            Kernel::Simd => crate::simd::f32s_as_le_bytes(xs),
        }
    }

    // --- compute tier (see crate::gemm and DESIGN.md "Compute tier") ---

    /// `C = A·B`: `a` is `m×k` row-major, `b` is `k×n` row-major, `c` is
    /// overwritten. Every backend runs each output element's k-chain in
    /// ascending order with non-fused mul+add, so outputs are bitwise
    /// identical across backends and rayon splits.
    #[inline]
    pub fn gemm(self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        crate::gemm::gemm(self, crate::gemm::Layout::Nn, a, b, c, m, k, n);
    }

    /// `C = Aᵀ·B` with `a` stored `k×m` row-major (so no transpose copy is
    /// needed for weight-gradient products). Same bitwise contract as
    /// [`Kernel::gemm`].
    #[inline]
    pub fn gemm_at_b(self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        crate::gemm::gemm(self, crate::gemm::Layout::Tn, a, b, c, m, k, n);
    }

    /// `C = A·Bᵀ` with `b` stored `n×k` row-major (linear-layer forward
    /// against row-major weights). Same bitwise contract as
    /// [`Kernel::gemm`].
    #[inline]
    pub fn gemm_a_bt(self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        crate::gemm::gemm(self, crate::gemm::Layout::Nt, a, b, c, m, k, n);
    }

    /// In-place ReLU: `x = if x > 0.0 { x } else { 0.0 }` per element.
    /// NaN and `-0.0` both map to `+0.0` in every backend (exactly the
    /// `vmaxps(x, 0)` lane rule, which the scalar twin mirrors).
    #[inline]
    pub fn relu_inplace(self, xs: &mut [f32]) {
        match self {
            Kernel::Scalar => scalar::relu_inplace(xs),
            Kernel::Simd => crate::simd::relu_inplace(xs),
        }
    }

    /// ReLU backward gate: zero `d[i]` where `x[i] <= 0.0`, keep it
    /// otherwise. A NaN `x[i]` fails `<=` and therefore *passes* the
    /// gradient through — both backends preserve that scalar quirk.
    #[inline]
    pub fn relu_grad_mask(self, x: &[f32], d: &mut [f32]) {
        match self {
            Kernel::Scalar => scalar::relu_grad_mask(x, d),
            Kernel::Simd => crate::simd::relu_grad_mask(x, d),
        }
    }

    /// 2×2 stride-2 max-pool of one `h×w` plane (`h`, `w` even): appends
    /// `h/2 * w/2` maxima to `y` and their *absolute* input indices
    /// (`base + flat index in the plane`) to `argmax`. Ties and NaN follow
    /// the scalar scan: strict `>` against a running best that starts at
    /// `-inf` with index 0, window cells visited in `(ky, kx)` order —
    /// first max wins, an all-NaN window yields index 0.
    #[inline]
    pub fn maxpool2_plane(self, x: &[f32], h: usize, w: usize, base: u32, y: &mut Vec<f32>, argmax: &mut Vec<u32>) {
        match self {
            Kernel::Scalar => scalar::maxpool2_plane(x, h, w, base, y, argmax),
            Kernel::Simd => crate::simd::maxpool2_plane(x, h, w, base, y, argmax),
        }
    }

    /// 2×2 stride-2 average-pool of one `h×w` plane (`h`, `w` even):
    /// appends `h/2 * w/2` means to `y`, each computed as the exact chain
    /// `((((0.0 + x00) + x01) + x10) + x11) * 0.25` so backends agree
    /// bitwise (including the `0.0 + -0.0 = +0.0` leading-term quirk).
    #[inline]
    pub fn avgpool2_plane(self, x: &[f32], h: usize, w: usize, y: &mut Vec<f32>) {
        match self {
            Kernel::Scalar => scalar::avgpool2_plane(x, h, w, y),
            Kernel::Simd => crate::simd::avgpool2_plane(x, h, w, y),
        }
    }
}

/// Portable scalar twins. These are the semantics the SIMD backend must
/// reproduce bit for bit; `crate::simd` also calls them for tails and as
/// the non-AVX2 fallback.
pub(crate) mod scalar {
    use super::{mag_key, HIST16_BUCKETS};

    pub(crate) fn hist16(seg: &[f32], counts: &mut Vec<u32>) {
        counts.clear();
        counts.resize(2 * HIST16_BUCKETS, 0);
        let (h0, h1) = counts.split_at_mut(HIST16_BUCKETS);
        let mut chunks = seg.chunks_exact(2);
        for pair in &mut chunks {
            h0[(mag_key(pair[0]) >> 16) as usize] += 1;
            h1[(mag_key(pair[1]) >> 16) as usize] += 1;
        }
        for &v in chunks.remainder() {
            h0[(mag_key(v) >> 16) as usize] += 1;
        }
        for (a, &b) in h0.iter_mut().zip(h1.iter()) {
            *a += b;
        }
        counts.truncate(HIST16_BUCKETS);
    }

    pub(crate) fn select_scan(
        seg: &[f32],
        prefix: u32,
        shift: u32,
        keys: &mut Vec<u32>,
        pos: &mut Vec<u32>,
        definite: &mut Vec<u32>,
    ) {
        let lo = prefix << shift;
        let mut base = 0u32;
        let mut chunks = seg.chunks_exact(4);
        for c in &mut chunks {
            let ks = [mag_key(c[0]), mag_key(c[1]), mag_key(c[2]), mag_key(c[3])];
            // Branchless "any lane could emit": both emit conditions
            // below imply key >= lo, so an all-below chunk is skipped.
            if (ks[0] >= lo) | (ks[1] >= lo) | (ks[2] >= lo) | (ks[3] >= lo) {
                for (j, &key) in ks.iter().enumerate() {
                    let b = key >> shift;
                    if b == prefix {
                        keys.push(key);
                        pos.push(base + j as u32);
                    } else if b > prefix {
                        definite.push(base + j as u32);
                    }
                }
            }
            base += 4;
        }
        for &v in chunks.remainder() {
            let key = mag_key(v);
            let b = key >> shift;
            if b == prefix {
                keys.push(key);
                pos.push(base);
            } else if b > prefix {
                definite.push(base);
            }
            base += 1;
        }
    }

    pub(crate) fn gather_keys(seg: &[f32], prefix: u32, shift: u32, keys: &mut Vec<u32>) {
        let lo = prefix << shift;
        let mut chunks = seg.chunks_exact(4);
        for c in &mut chunks {
            let ks = [mag_key(c[0]), mag_key(c[1]), mag_key(c[2]), mag_key(c[3])];
            if (ks[0] >= lo) | (ks[1] >= lo) | (ks[2] >= lo) | (ks[3] >= lo) {
                for &key in &ks {
                    if key >> shift == prefix {
                        keys.push(key);
                    }
                }
            }
        }
        for &v in chunks.remainder() {
            let key = mag_key(v);
            if key >> shift == prefix {
                keys.push(key);
            }
        }
    }

    pub(crate) fn diff_into(m: &[f32], v: &[f32], out: &mut Vec<f32>) -> usize {
        assert_eq!(m.len(), v.len());
        out.clear();
        out.reserve(m.len());
        let mut nnz = 0usize;
        for (&mi, &vi) in m.iter().zip(v.iter()) {
            let d = mi - vi;
            nnz += (d != 0.0) as usize;
            out.push(d);
        }
        nnz
    }

    pub(crate) fn gather_into(seg: &[f32], idx: &[u32], out: &mut Vec<f32>) {
        out.reserve(idx.len());
        out.extend(idx.iter().map(|&i| seg[i as usize]));
    }

    pub(crate) fn max_abs(vals: &[f32]) -> f32 {
        vals.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    pub(crate) fn sign_expand(scale: f32, signs: &[u8], n: usize, out: &mut Vec<f32>) {
        assert!(signs.len() * 8 >= n);
        out.reserve(n);
        for bit in 0..n {
            let positive = signs[bit / 8] & (1 << (bit % 8)) != 0;
            out.push(if positive { scale } else { -scale });
        }
    }

    // --- compute-tier twins (GEMM's scalar oracle lives in crate::gemm) ---

    pub(crate) fn relu_inplace(xs: &mut [f32]) {
        for v in xs.iter_mut() {
            // NOT `v.max(0.0)`: Rust leaves max's signed-zero choice
            // unspecified, while this explicit compare pins the vmaxps
            // lane rule (NaN and -0.0 both become +0.0).
            *v = if *v > 0.0 { *v } else { 0.0 };
        }
    }

    pub(crate) fn relu_grad_mask(x: &[f32], d: &mut [f32]) {
        assert_eq!(x.len(), d.len());
        for (&xi, di) in x.iter().zip(d.iter_mut()) {
            if xi <= 0.0 {
                *di = 0.0;
            }
        }
    }

    pub(crate) fn maxpool2_plane(x: &[f32], h: usize, w: usize, base: u32, y: &mut Vec<f32>, argmax: &mut Vec<u32>) {
        assert!(h % 2 == 0 && w % 2 == 0 && x.len() == h * w);
        let (oh, ow) = (h / 2, w / 2);
        y.reserve(oh * ow);
        argmax.reserve(oh * ow);
        for oy in 0..oh {
            maxpool2_row(x, w, base, oy, 0, ow, y, argmax);
        }
    }

    /// One output row of the 2×2 max-pool, columns `[ox0, ox1)` — shared
    /// by the scalar plane twin and the SIMD backend's row tails.
    pub(crate) fn maxpool2_row(
        x: &[f32],
        w: usize,
        base: u32,
        oy: usize,
        ox0: usize,
        ox1: usize,
        y: &mut Vec<f32>,
        argmax: &mut Vec<u32>,
    ) {
        for ox in ox0..ox1 {
            let mut best = f32::NEG_INFINITY;
            let mut best_idx = 0u32;
            for ky in 0..2 {
                for kx in 0..2 {
                    let idx = (oy * 2 + ky) * w + ox * 2 + kx;
                    if x[idx] > best {
                        best = x[idx];
                        best_idx = base + idx as u32;
                    }
                }
            }
            y.push(best);
            argmax.push(best_idx);
        }
    }

    pub(crate) fn avgpool2_plane(x: &[f32], h: usize, w: usize, y: &mut Vec<f32>) {
        assert!(h % 2 == 0 && w % 2 == 0 && x.len() == h * w);
        let (oh, ow) = (h / 2, w / 2);
        y.reserve(oh * ow);
        for oy in 0..oh {
            avgpool2_row(x, w, oy, 0, ow, y);
        }
    }

    /// One output row of the 2×2 average-pool, columns `[ox0, ox1)`.
    pub(crate) fn avgpool2_row(x: &[f32], w: usize, oy: usize, ox0: usize, ox1: usize, y: &mut Vec<f32>) {
        for ox in ox0..ox1 {
            let mut acc = 0.0f32;
            for ky in 0..2 {
                for kx in 0..2 {
                    acc += x[(oy * 2 + ky) * w + ox * 2 + kx];
                }
            }
            y.push(acc * 0.25);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Torture inputs: every special-value class the bitwise-identity
    /// contract names, plus gradient-shaped noise.
    pub(crate) fn torture_cases() -> Vec<Vec<f32>> {
        let mut cases: Vec<Vec<f32>> = vec![
            vec![],
            vec![0.0],
            vec![1.0; 7],
            vec![-0.0; 33],
            vec![f32::NAN, -f32::NAN, f32::INFINITY, f32::NEG_INFINITY],
            vec![f32::MIN_POSITIVE / 2.0; 17], // denormals
            vec![1.0, 1.0 + f32::EPSILON, 1.0, 1.0 + f32::EPSILON], // one-ulp plateau
        ];
        // All-equal large plateau (exercises boundary-bucket handling).
        cases.push(vec![3.25; 100]);
        // Deterministic xorshift mix of every class at several lengths
        // straddling the 4- and 8-wide chunk boundaries.
        for &n in &[1usize, 3, 4, 5, 8, 9, 15, 16, 17, 63, 64, 65, 255, 1024, 4097] {
            let mut s = 0x9E37_79B9_7F4A_7C15u64 ^ (n as u64);
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let x = match s % 11 {
                    0 => f32::NAN,
                    1 => f32::from_bits(0x7FC0_1234), // NaN payload
                    2 => f32::INFINITY,
                    3 => f32::NEG_INFINITY,
                    4 => 0.0,
                    5 => -0.0,
                    6 => f32::from_bits((s >> 40) as u32 & 0x007F_FFFF), // denormal
                    7 => 1.0,
                    8 => -1.0,
                    _ => f32::from_bits((s >> 32) as u32),
                };
                v.push(x);
            }
            cases.push(v);
        }
        cases
    }

    fn shifts_and_prefixes(seg: &[f32]) -> Vec<(u32, u32)> {
        let mut out = vec![(16u32, 0u32), (16, 0x7FFF), (8, 0), (8, 0x7FFF00 >> 8)];
        if let Some(&v) = seg.first() {
            out.push((16, mag_key(v) >> 16));
            out.push((8, mag_key(v) >> 8));
        }
        if let Some(&v) = seg.last() {
            out.push((16, mag_key(v) >> 16));
        }
        out
    }

    #[test]
    fn runtime_is_cached_and_named() {
        let k = Kernel::runtime();
        assert_eq!(k, Kernel::runtime());
        assert!(k.name() == "scalar" || k.name() == "simd");
        assert_eq!(Kernel::Scalar.name(), "scalar");
        assert_eq!(Kernel::Simd.name(), "simd");
    }

    #[test]
    fn hist16_backends_identical() {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for seg in torture_cases() {
            Kernel::Scalar.hist16(&seg, &mut a);
            Kernel::Simd.hist16(&seg, &mut b);
            assert_eq!(a, b, "hist16 diverged on len {}", seg.len());
            assert_eq!(a.len(), HIST16_BUCKETS);
            assert_eq!(a.iter().map(|&c| c as usize).sum::<usize>(), seg.len());
        }
    }

    #[test]
    fn select_scan_backends_identical() {
        for seg in torture_cases() {
            for (shift, prefix) in shifts_and_prefixes(&seg) {
                let (mut k1, mut p1, mut d1) = (Vec::new(), Vec::new(), Vec::new());
                let (mut k2, mut p2, mut d2) = (Vec::new(), Vec::new(), Vec::new());
                Kernel::Scalar.select_scan(&seg, prefix, shift, &mut k1, &mut p1, &mut d1);
                Kernel::Simd.select_scan(&seg, prefix, shift, &mut k2, &mut p2, &mut d2);
                assert_eq!(k1, k2, "keys diverged (len {}, shift {shift})", seg.len());
                assert_eq!(p1, p2, "pos diverged (len {}, shift {shift})", seg.len());
                assert_eq!(d1, d2, "definite diverged (len {}, shift {shift})", seg.len());
            }
        }
    }

    #[test]
    fn gather_keys_backends_identical() {
        for seg in torture_cases() {
            for (shift, prefix) in shifts_and_prefixes(&seg) {
                let (mut k1, mut k2) = (Vec::new(), Vec::new());
                Kernel::Scalar.gather_keys(&seg, prefix, shift, &mut k1);
                Kernel::Simd.gather_keys(&seg, prefix, shift, &mut k2);
                assert_eq!(k1, k2, "gather diverged (len {}, shift {shift})", seg.len());
            }
        }
    }

    #[test]
    fn diff_into_backends_identical() {
        for m in torture_cases() {
            // Pair each case with a shifted copy of itself and with zeros.
            let mut v = m.clone();
            if !v.is_empty() {
                let r = (v.len() / 3 + 1) % v.len();
                v.rotate_right(r);
            }
            for vv in [v, vec![0.0; m.len()], m.clone()] {
                let (mut o1, mut o2) = (Vec::new(), Vec::new());
                let n1 = Kernel::Scalar.diff_into(&m, &vv, &mut o1);
                let n2 = Kernel::Simd.diff_into(&m, &vv, &mut o2);
                assert_eq!(n1, n2, "nnz diverged on len {}", m.len());
                assert_eq!(o1.len(), o2.len());
                for (a, b) in o1.iter().zip(o2.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "diff bits diverged");
                }
                // may_have_diff: false must imply nnz == 0.
                if !Kernel::Simd.may_have_diff(&m, &vv) {
                    assert_eq!(n1, 0);
                }
                assert!(Kernel::Scalar.may_have_diff(&m, &vv));
            }
        }
    }

    #[test]
    fn gather_into_backends_identical() {
        for seg in torture_cases() {
            if seg.is_empty() {
                continue;
            }
            let mut s = 0xDEAD_BEEFu64 ^ seg.len() as u64;
            let idx: Vec<u32> = (0..seg.len() * 2)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s % seg.len() as u64) as u32
                })
                .collect();
            let (mut o1, mut o2) = (Vec::new(), Vec::new());
            Kernel::Scalar.gather_into(&seg, &idx, &mut o1);
            Kernel::Simd.gather_into(&seg, &idx, &mut o2);
            assert_eq!(o1.len(), o2.len());
            for (a, b) in o1.iter().zip(o2.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "gather bits diverged");
            }
        }
    }

    #[test]
    fn gather_into_oob_panics_like_scalar() {
        let seg = [1.0f32, 2.0];
        let idx = [0u32, 5];
        for k in [Kernel::Scalar, Kernel::Simd] {
            let r = std::panic::catch_unwind(|| {
                let mut out = Vec::new();
                k.gather_into(&seg, &idx, &mut out);
            });
            assert!(r.is_err(), "{:?} did not panic on OOB gather", k);
        }
    }

    #[test]
    fn max_abs_backends_identical() {
        for seg in torture_cases() {
            let a = Kernel::Scalar.max_abs(&seg);
            let b = Kernel::Simd.max_abs(&seg);
            assert_eq!(a.to_bits(), b.to_bits(), "max_abs diverged on len {}", seg.len());
        }
        // NaN-only input: f32::max ignores NaN, result stays 0.0.
        let nans = vec![f32::NAN; 9];
        assert_eq!(Kernel::Simd.max_abs(&nans).to_bits(), 0.0f32.to_bits());
        // Infinity dominates.
        let inf = vec![1.0, f32::NEG_INFINITY, 2.0];
        assert_eq!(Kernel::Simd.max_abs(&inf), f32::INFINITY);
    }

    #[test]
    fn sign_expand_backends_identical() {
        let scales = [1.5f32, 0.0, f32::INFINITY, f32::MIN_POSITIVE / 4.0];
        for &scale in &scales {
            for n in [0usize, 1, 7, 8, 9, 16, 31, 64, 129] {
                let signs: Vec<u8> = (0..n.div_ceil(8)).map(|i| (i as u8) ^ 0xA5).collect();
                let (mut o1, mut o2) = (Vec::new(), Vec::new());
                Kernel::Scalar.sign_expand(scale, &signs, n, &mut o1);
                Kernel::Simd.sign_expand(scale, &signs, n, &mut o2);
                assert_eq!(o1.len(), n);
                assert_eq!(o1.len(), o2.len());
                for (a, b) in o1.iter().zip(o2.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "sign_expand bits diverged");
                }
            }
        }
    }

    #[test]
    fn relu_backends_identical() {
        for seg in torture_cases() {
            let mut a = seg.clone();
            let mut b = seg.clone();
            Kernel::Scalar.relu_inplace(&mut a);
            Kernel::Simd.relu_inplace(&mut b);
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "relu diverged at {i} (len {})", seg.len());
            }
            // Contract spot checks: NaN and -0.0 collapse to +0.0.
            if seg.is_empty() {
                continue;
            }
            for v in &a {
                assert!(v.to_bits() == 0 || *v > 0.0, "relu output {v} not in contract");
            }
        }
    }

    #[test]
    fn relu_grad_mask_backends_identical() {
        for seg in torture_cases() {
            // Gradient stream: reuse the torture mix shifted by one.
            let mut grad = seg.clone();
            grad.rotate_left(seg.len().min(1));
            let mut g1 = grad.clone();
            let mut g2 = grad.clone();
            Kernel::Scalar.relu_grad_mask(&seg, &mut g1);
            Kernel::Simd.relu_grad_mask(&seg, &mut g2);
            for (i, (x, y)) in g1.iter().zip(g2.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "relu grad diverged at {i} (len {})", seg.len());
            }
            // NaN x passes gradient through (NaN <= 0.0 is false).
            for (i, &xi) in seg.iter().enumerate() {
                if xi.is_nan() {
                    assert_eq!(g1[i].to_bits(), grad[i].to_bits());
                }
            }
        }
    }

    /// Even-sided torture planes for the pooling kernels, spanning widths
    /// around the 8-output-lane SIMD boundary (w/2 in {1..=8, 9, 17, 20}).
    fn torture_planes() -> Vec<(usize, usize, Vec<f32>)> {
        let mut planes = Vec::new();
        for &(h, w) in &[
            (2usize, 2usize),
            (2, 4),
            (4, 6),
            (2, 16),
            (4, 18),
            (6, 32),
            (2, 34),
            (4, 40),
            (8, 8),
        ] {
            let mut s = 0xC0FF_EE00_D15E_A5E5u64 ^ ((h * 131 + w) as u64);
            let mut v = Vec::with_capacity(h * w);
            for _ in 0..h * w {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let x = match s % 9 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    5 => 1.0,
                    6 => 1.0 + f32::EPSILON, // one-ulp plateau ties
                    _ => f32::from_bits((s >> 32) as u32),
                };
                v.push(x);
            }
            planes.push((h, w, v));
        }
        // All-NaN plane: argmax must stay at the init index 0.
        planes.push((2, 18, vec![f32::NAN; 36]));
        // Flat plateau: every window ties, first cell must win.
        planes.push((4, 20, vec![3.25; 80]));
        planes
    }

    #[test]
    fn maxpool2_backends_identical() {
        for (h, w, x) in torture_planes() {
            let base = 1000u32;
            let (mut y1, mut a1) = (Vec::new(), Vec::new());
            let (mut y2, mut a2) = (Vec::new(), Vec::new());
            Kernel::Scalar.maxpool2_plane(&x, h, w, base, &mut y1, &mut a1);
            Kernel::Simd.maxpool2_plane(&x, h, w, base, &mut y2, &mut a2);
            assert_eq!(y1.len(), h / 2 * (w / 2));
            assert_eq!(a1, a2, "argmax diverged on {h}x{w}");
            for (i, (p, q)) in y1.iter().zip(y2.iter()).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "maxpool diverged at {i} on {h}x{w}");
            }
        }
        // All-NaN window pins argmax to absolute index 0, not base.
        let (mut y, mut a) = (Vec::new(), Vec::new());
        Kernel::Simd.maxpool2_plane(&[f32::NAN; 4], 2, 2, 77, &mut y, &mut a);
        assert_eq!(a, vec![0]);
        assert_eq!(y[0], f32::NEG_INFINITY);
    }

    #[test]
    fn avgpool2_backends_identical() {
        for (h, w, x) in torture_planes() {
            let mut y1 = Vec::new();
            let mut y2 = Vec::new();
            Kernel::Scalar.avgpool2_plane(&x, h, w, &mut y1);
            Kernel::Simd.avgpool2_plane(&x, h, w, &mut y2);
            assert_eq!(y1.len(), h / 2 * (w / 2));
            for (i, (p, q)) in y1.iter().zip(y2.iter()).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "avgpool diverged at {i} on {h}x{w}");
            }
        }
    }

    #[test]
    fn le_bytes_roundtrip_when_offered() {
        let xs = [0u32, 1, 0xDEAD_BEEF, u32::MAX];
        if let Some(b) = Kernel::Simd.u32s_le(&xs) {
            assert_eq!(b.len(), 16);
            for (i, &x) in xs.iter().enumerate() {
                assert_eq!(&b[4 * i..4 * i + 4], &x.to_le_bytes());
            }
        }
        assert!(Kernel::Scalar.u32s_le(&xs).is_none());
        let fs = [1.5f32, -0.0, f32::NAN];
        if let Some(b) = Kernel::Simd.f32s_le(&fs) {
            for (i, &x) in fs.iter().enumerate() {
                assert_eq!(&b[4 * i..4 * i + 4], &x.to_le_bytes());
            }
        }
        assert!(Kernel::Scalar.f32s_le(&fs).is_none());
    }
}
