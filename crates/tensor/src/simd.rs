//! Explicit AVX2 implementations of the [`crate::kernel::Kernel`] ops.
//!
//! Every function here is a drop-in twin of a scalar kernel in
//! `crate::kernel::scalar` and must produce **bitwise identical** output
//! on every input (see the kernel module docs for the contract). The
//! wrappers re-check AVX2 at runtime and delegate to the scalar twin when
//! the CPU lacks it, so a hand-constructed `Kernel::Simd` can never hit
//! an illegal instruction.
//!
//! Unsafe policy (dgs-audit `unsafe-budget` rule): this module lives in
//! the tensor crate's unsafe allowlist; every `unsafe` token — including
//! the calls into `#[target_feature]` functions — carries a `// SAFETY:`
//! comment within the three preceding lines. The vector bodies only use
//! `unsafe` for unaligned loads/stores and the gather read; all lane
//! arithmetic uses the intrinsics' safe-in-target-feature form.
//!
//! Equivalence notes relied on throughout (each pinned by tests):
//! - `vsubps` has the same rounding and NaN propagation as scalar `-`.
//! - Comparing sign-stripped keys as unsigned integers orders magnitudes
//!   exactly like `f32::total_cmp` (NaN above +Inf above finite).
//! - Negation (`-x` / sign-bit XOR) is bitwise total, even for NaN/Inf.
//! - `_CMP_NEQ_UQ` matches scalar `d != 0.0` (true for NaN, false for
//!   `-0.0` vs `0.0`).

#[cfg(target_arch = "x86_64")]
use crate::kernel::scalar;

/// Whether the CPU supports the AVX2 backend (always `false` off x86-64).
pub(crate) fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The little-endian wire bytes of a `u32` slice, borrowed in place.
/// `None` on big-endian targets, where a bulk copy would not match the
/// per-element `put_u32_le` encoding.
pub fn u32s_as_le_bytes(xs: &[u32]) -> Option<&[u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: `u32` has no padding and `size_of_val` is the exact
        // byte length of the allocation behind `xs`; reinterpreting it
        // as bytes borrows the same memory at the same lifetime.
        Some(unsafe {
            std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), std::mem::size_of_val(xs))
        })
    } else {
        None
    }
}

/// [`u32s_as_le_bytes`] for `f32` payloads (`put_f32_le` encodes the
/// IEEE bits little-endian, which is exactly the in-memory layout here).
pub fn f32s_as_le_bytes(xs: &[f32]) -> Option<&[u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: `f32` has no padding and `size_of_val` is the exact
        // byte length of the allocation behind `xs`; reinterpreting it
        // as bytes borrows the same memory at the same lifetime.
        Some(unsafe {
            std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), std::mem::size_of_val(xs))
        })
    } else {
        None
    }
}

pub(crate) fn hist16(seg: &[f32], counts: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::hist16(seg, counts) };
        return;
    }
    crate::kernel::scalar::hist16(seg, counts);
}

pub(crate) fn select_scan(
    seg: &[f32],
    prefix: u32,
    shift: u32,
    keys: &mut Vec<u32>,
    pos: &mut Vec<u32>,
    definite: &mut Vec<u32>,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::select_scan(seg, prefix, shift, keys, pos, definite) };
        return;
    }
    crate::kernel::scalar::select_scan(seg, prefix, shift, keys, pos, definite);
}

pub(crate) fn gather_keys(seg: &[f32], prefix: u32, shift: u32, keys: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::gather_keys(seg, prefix, shift, keys) };
        return;
    }
    crate::kernel::scalar::gather_keys(seg, prefix, shift, keys);
}

pub(crate) fn diff_into(m: &[f32], v: &[f32], out: &mut Vec<f32>) -> usize {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        return unsafe { avx2::diff_into(m, v, out) };
    }
    crate::kernel::scalar::diff_into(m, v, out)
}

pub(crate) fn may_have_diff(m: &[f32], v: &[f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        return unsafe { avx2::may_have_diff(m, v) };
    }
    // Without a vector unit the conservative answer costs nothing extra.
    let _ = (m, v);
    true
}

pub(crate) fn gather_into(seg: &[f32], idx: &[u32], out: &mut Vec<f32>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::gather_into(seg, idx, out) };
        return;
    }
    crate::kernel::scalar::gather_into(seg, idx, out);
}

pub(crate) fn max_abs(vals: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        return unsafe { avx2::max_abs(vals) };
    }
    crate::kernel::scalar::max_abs(vals)
}

pub(crate) fn sign_expand(scale: f32, signs: &[u8], n: usize, out: &mut Vec<f32>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::sign_expand(scale, signs, n, out) };
        return;
    }
    crate::kernel::scalar::sign_expand(scale, signs, n, out);
}

pub(crate) fn relu_inplace(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::relu_inplace(xs) };
        return;
    }
    crate::kernel::scalar::relu_inplace(xs);
}

pub(crate) fn relu_grad_mask(x: &[f32], d: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::relu_grad_mask(x, d) };
        return;
    }
    crate::kernel::scalar::relu_grad_mask(x, d);
}

pub(crate) fn maxpool2_plane(x: &[f32], h: usize, w: usize, base: u32, y: &mut Vec<f32>, argmax: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::maxpool2_plane(x, h, w, base, y, argmax) };
        return;
    }
    crate::kernel::scalar::maxpool2_plane(x, h, w, base, y, argmax);
}

pub(crate) fn avgpool2_plane(x: &[f32], h: usize, w: usize, y: &mut Vec<f32>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified; the target-feature
        // function is otherwise safe Rust.
        unsafe { avx2::avgpool2_plane(x, h, w, y) };
        return;
    }
    crate::kernel::scalar::avgpool2_plane(x, h, w, y);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::scalar;
    use crate::kernel::{mag_key, HIST16_BUCKETS, MAG_MASK};
    use core::arch::x86_64::*;

    /// IEEE bits of +Inf; any sign-stripped key above this is a NaN.
    const INF_BITS: i32 = 0x7F80_0000;

    #[target_feature(enable = "avx2")]
    pub(super) fn hist16(seg: &[f32], counts: &mut Vec<u32>) {
        counts.clear();
        counts.resize(4 * HIST16_BUCKETS, 0);
        // Four partial histograms so same-bucket increments (the common
        // case on gradient-shaped data, which clusters into a few
        // exponent buckets) land on four independent store-forward
        // chains instead of one.
        let (h0, rest) = counts.split_at_mut(HIST16_BUCKETS);
        let (h1, rest) = rest.split_at_mut(HIST16_BUCKETS);
        let (h2, h3) = rest.split_at_mut(HIST16_BUCKETS);
        let mask = _mm256_set1_epi32(MAG_MASK as i32);
        let mut buck = [0u32; 16];
        let mut chunks = seg.chunks_exact(16);
        for c in &mut chunks {
            // SAFETY: `c` is exactly sixteen f32s; two unaligned loads.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(c.as_ptr().cast()),
                    _mm256_loadu_si256(c.as_ptr().add(8).cast()),
                )
            };
            let ka = _mm256_srli_epi32::<16>(_mm256_and_si256(va, mask));
            let kb = _mm256_srli_epi32::<16>(_mm256_and_si256(vb, mask));
            // Homogeneous-chunk fast path: gradient segments cluster so
            // hard (exponent plateaus, decaying tails, the one-ulp-band
            // torture case) that whole chunks often share one bucket —
            // fold those into a single `+= 16` instead of sixteen
            // serial read-modify-writes. The check costs ~4 vector ops,
            // a ~20% toll when it never hits; clustered fills run 4-6x
            // faster (see BENCH_kernels.json).
            let first = _mm256_broadcastd_epi32(_mm256_castsi256_si128(ka));
            let eq =
                _mm256_and_si256(_mm256_cmpeq_epi32(ka, first), _mm256_cmpeq_epi32(kb, first));
            if _mm256_movemask_epi8(eq) == -1 {
                h0[_mm_cvtsi128_si32(_mm256_castsi256_si128(ka)) as u32 as usize] += 16;
                continue;
            }
            // SAFETY: `buck` is exactly sixteen u32s; two unaligned stores.
            unsafe {
                _mm256_storeu_si256(buck.as_mut_ptr().cast(), ka);
                _mm256_storeu_si256(buck.as_mut_ptr().add(8).cast(), kb);
            }
            h0[buck[0] as usize] += 1;
            h1[buck[1] as usize] += 1;
            h2[buck[2] as usize] += 1;
            h3[buck[3] as usize] += 1;
            h0[buck[4] as usize] += 1;
            h1[buck[5] as usize] += 1;
            h2[buck[6] as usize] += 1;
            h3[buck[7] as usize] += 1;
            h0[buck[8] as usize] += 1;
            h1[buck[9] as usize] += 1;
            h2[buck[10] as usize] += 1;
            h3[buck[11] as usize] += 1;
            h0[buck[12] as usize] += 1;
            h1[buck[13] as usize] += 1;
            h2[buck[14] as usize] += 1;
            h3[buck[15] as usize] += 1;
        }
        for &x in chunks.remainder() {
            h0[(mag_key(x) >> 16) as usize] += 1;
        }
        for (((a, &b), &c), &d) in h0.iter_mut().zip(h1.iter()).zip(h2.iter()).zip(h3.iter()) {
            *a += b + c + d;
        }
        counts.truncate(HIST16_BUCKETS);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn select_scan(
        seg: &[f32],
        prefix: u32,
        shift: u32,
        keys: &mut Vec<u32>,
        pos: &mut Vec<u32>,
        definite: &mut Vec<u32>,
    ) {
        let lo = prefix << shift;
        let mask = _mm256_set1_epi32(MAG_MASK as i32);
        let sgn = _mm256_set1_epi32(i32::MIN);
        // Bias both sides by the sign bit so a signed compare orders the
        // keys as unsigned.
        let lo_x = _mm256_xor_si256(_mm256_set1_epi32(lo as i32), sgn);
        let mut base = 0usize;
        // 32-element skip windows: in the radix cascade the prefix matches
        // ~1% of elements, so nearly every window is all-below — pay one
        // AND-combined movemask branch per 32 elements instead of four.
        // A lane of the AND is all-ones only when that lane is below `lo`
        // in all four chunks, so a full mask still means "all 32 below".
        let mut windows = seg.chunks_exact(32);
        for w in &mut windows {
            // SAFETY: `w` is exactly 32 f32s; four unaligned loads.
            let (v0, v1, v2, v3) = unsafe {
                (
                    _mm256_loadu_si256(w.as_ptr().cast()),
                    _mm256_loadu_si256(w.as_ptr().add(8).cast()),
                    _mm256_loadu_si256(w.as_ptr().add(16).cast()),
                    _mm256_loadu_si256(w.as_ptr().add(24).cast()),
                )
            };
            let lt0 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v0, mask), sgn));
            let lt1 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v1, mask), sgn));
            let lt2 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v2, mask), sgn));
            let lt3 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v3, mask), sgn));
            let all =
                _mm256_and_si256(_mm256_and_si256(lt0, lt1), _mm256_and_si256(lt2, lt3));
            if _mm256_movemask_epi8(all) != -1 {
                // Some lane somewhere is >= lo: refine chunk by chunk in
                // order so the emit sequence matches the scalar twin.
                for (ci, lt) in [lt0, lt1, lt2, lt3].into_iter().enumerate() {
                    if _mm256_movemask_epi8(lt) != -1 {
                        let off = base + 8 * ci;
                        for (j, &x) in w[8 * ci..8 * ci + 8].iter().enumerate() {
                            let key = mag_key(x);
                            let b = key >> shift;
                            if b == prefix {
                                keys.push(key);
                                pos.push((off + j) as u32);
                            } else if b > prefix {
                                definite.push((off + j) as u32);
                            }
                        }
                    }
                }
            }
            base += 32;
        }
        for &x in windows.remainder() {
            let key = mag_key(x);
            let b = key >> shift;
            if b == prefix {
                keys.push(key);
                pos.push(base as u32);
            } else if b > prefix {
                definite.push(base as u32);
            }
            base += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn gather_keys(seg: &[f32], prefix: u32, shift: u32, keys: &mut Vec<u32>) {
        let lo = prefix << shift;
        let mask = _mm256_set1_epi32(MAG_MASK as i32);
        let sgn = _mm256_set1_epi32(i32::MIN);
        let lo_x = _mm256_xor_si256(_mm256_set1_epi32(lo as i32), sgn);
        // Same 32-element skip windows as `select_scan` (see above): one
        // combined movemask branch per window, per-chunk refinement in
        // order on a hit so the emit sequence matches the scalar twin.
        let mut windows = seg.chunks_exact(32);
        for w in &mut windows {
            // SAFETY: `w` is exactly 32 f32s; four unaligned loads.
            let (v0, v1, v2, v3) = unsafe {
                (
                    _mm256_loadu_si256(w.as_ptr().cast()),
                    _mm256_loadu_si256(w.as_ptr().add(8).cast()),
                    _mm256_loadu_si256(w.as_ptr().add(16).cast()),
                    _mm256_loadu_si256(w.as_ptr().add(24).cast()),
                )
            };
            let lt0 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v0, mask), sgn));
            let lt1 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v1, mask), sgn));
            let lt2 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v2, mask), sgn));
            let lt3 = _mm256_cmpgt_epi32(lo_x, _mm256_xor_si256(_mm256_and_si256(v3, mask), sgn));
            let all =
                _mm256_and_si256(_mm256_and_si256(lt0, lt1), _mm256_and_si256(lt2, lt3));
            if _mm256_movemask_epi8(all) != -1 {
                for (ci, lt) in [lt0, lt1, lt2, lt3].into_iter().enumerate() {
                    if _mm256_movemask_epi8(lt) != -1 {
                        for &x in &w[8 * ci..8 * ci + 8] {
                            let key = mag_key(x);
                            if key >> shift == prefix {
                                keys.push(key);
                            }
                        }
                    }
                }
            }
        }
        for &x in windows.remainder() {
            let key = mag_key(x);
            if key >> shift == prefix {
                keys.push(key);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn diff_into(m: &[f32], v: &[f32], out: &mut Vec<f32>) -> usize {
        assert_eq!(m.len(), v.len());
        let n = m.len();
        out.clear();
        out.reserve(n);
        let dst = out.spare_capacity_mut().as_mut_ptr().cast::<f32>();
        let zero = _mm256_setzero_ps();
        let mut nnz = 0usize;
        let full = n / 8 * 8;
        let mut i = 0usize;
        while i < full {
            // SAFETY: `i + 8 <= n` elements remain in both slices;
            // unaligned loads.
            let d = unsafe {
                _mm256_sub_ps(
                    _mm256_loadu_ps(m.as_ptr().add(i)),
                    _mm256_loadu_ps(v.as_ptr().add(i)),
                )
            };
            // SAFETY: `reserve(n)` above guarantees `dst..dst+n` is
            // allocated spare capacity; unaligned store of 8 lanes.
            unsafe { _mm256_storeu_ps(dst.add(i), d) };
            // vsubps matches scalar subtraction bit for bit; NEQ_UQ
            // matches `d != 0.0` (true for NaN, false for -0.0).
            let ne = _mm256_cmp_ps::<_CMP_NEQ_UQ>(d, zero);
            nnz += _mm256_movemask_ps(ne).count_ones() as usize;
            i += 8;
        }
        while i < n {
            let d = m[i] - v[i];
            nnz += (d != 0.0) as usize;
            // SAFETY: `i < n` and `dst..dst+n` is allocated spare
            // capacity reserved above (f32 has no drop glue, so plain
            // assignment into uninitialized memory is a raw store).
            unsafe { *dst.add(i) = d };
            i += 1;
        }
        // SAFETY: all `n` elements were initialized above and the vec
        // was cleared first, so the new length is fully initialized.
        unsafe { out.set_len(n) };
        nnz
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn may_have_diff(m: &[f32], v: &[f32]) -> bool {
        let n = m.len().min(v.len());
        let zero = _mm256_setzero_ps();
        let full = n / 8 * 8;
        let mut i = 0usize;
        while i < full {
            // SAFETY: `i + 8 <= n` elements remain in both slices;
            // unaligned loads.
            let d = unsafe {
                _mm256_sub_ps(
                    _mm256_loadu_ps(m.as_ptr().add(i)),
                    _mm256_loadu_ps(v.as_ptr().add(i)),
                )
            };
            if _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_NEQ_UQ>(d, zero)) != 0 {
                return true;
            }
            i += 8;
        }
        while i < n {
            if m[i] - v[i] != 0.0 {
                return true;
            }
            i += 1;
        }
        false
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn gather_into(seg: &[f32], idx: &[u32], out: &mut Vec<f32>) {
        // vpgatherdd interprets indices as signed i32: delegate any
        // geometry it cannot express (or any out-of-bounds index) to the
        // scalar twin so the panic site and message stay identical.
        if idx.len() < 8 || seg.len() > i32::MAX as usize {
            scalar::gather_into(seg, idx, out);
            return;
        }
        let mut maxv = _mm256_setzero_si256();
        let mut chunks = idx.chunks_exact(8);
        for c in &mut chunks {
            // SAFETY: `c` is exactly eight u32s; unaligned load.
            let iv = unsafe { _mm256_loadu_si256(c.as_ptr().cast()) };
            maxv = _mm256_max_epu32(maxv, iv);
        }
        let h = _mm_max_epu32(
            _mm256_castsi256_si128(maxv),
            _mm256_extracti128_si256::<1>(maxv),
        );
        let h = _mm_max_epu32(h, _mm_shuffle_epi32::<0b01_00_11_10>(h));
        let h = _mm_max_epu32(h, _mm_shuffle_epi32::<0b00_00_00_01>(h));
        let mut max_idx = _mm_cvtsi128_si32(h) as u32;
        for &i in chunks.remainder() {
            max_idx = max_idx.max(i);
        }
        if max_idx as usize >= seg.len() {
            // Will panic with the standard slice-index message, exactly
            // like the scalar backend.
            scalar::gather_into(seg, idx, out);
            return;
        }
        let old_len = out.len();
        out.reserve(idx.len());
        let dst = out.spare_capacity_mut().as_mut_ptr().cast::<f32>();
        let full = idx.len() / 8 * 8;
        // Software-prefetch the index stream this far ahead: top-k gathers
        // touch scattered cache lines, and on a cold source the
        // out-of-order window alone cannot keep enough misses in flight.
        // Warm sources are unaffected (hits are dropped by the L1).
        const PREFETCH_DIST: usize = 32;
        let mut i = 0usize;
        while i < full {
            if i + PREFETCH_DIST + 8 <= idx.len() {
                for j in 0..8 {
                    // Every index was bounds-proven `< seg.len()`, so the
                    // prefetch address is inside `seg` (and prefetch
                    // cannot fault regardless).
                    // SAFETY: `i + PREFETCH_DIST + j < idx.len()` by the
                    // guard above, so `get_unchecked` stays in bounds.
                    unsafe {
                        _mm_prefetch::<_MM_HINT_T0>(
                            seg.as_ptr().add(*idx.get_unchecked(i + PREFETCH_DIST + j) as usize)
                                .cast(),
                        );
                    }
                }
            }
            // SAFETY: eight u32 indices remain at `idx[i..]`; unaligned
            // load.
            let iv = unsafe { _mm256_loadu_si256(idx.as_ptr().add(i).cast()) };
            // SAFETY: every index was proven `< seg.len() <= i32::MAX`
            // above, so each lane reads in-bounds from `seg`.
            let g = unsafe { _mm256_i32gather_ps::<4>(seg.as_ptr(), iv) };
            // SAFETY: `reserve(idx.len())` guarantees the spare capacity
            // behind `dst`; unaligned store of 8 lanes.
            unsafe { _mm256_storeu_ps(dst.add(i), g) };
            i += 8;
        }
        while i < idx.len() {
            // SAFETY: `i < idx.len()` and the spare capacity was
            // reserved above; the index was bounds-proven.
            unsafe { *dst.add(i) = seg[idx[i] as usize] };
            i += 1;
        }
        // SAFETY: `idx.len()` new elements were initialized above,
        // directly after the `old_len` existing ones.
        unsafe { out.set_len(old_len + idx.len()) };
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn max_abs(vals: &[f32]) -> f32 {
        let mask = _mm256_set1_epi32(MAG_MASK as i32);
        let inf = _mm256_set1_epi32(INF_BITS);
        let mut acc = _mm256_setzero_si256();
        let mut chunks = vals.chunks_exact(8);
        for c in &mut chunks {
            // SAFETY: `c` is exactly eight f32s; unaligned load.
            let v = unsafe { _mm256_loadu_si256(c.as_ptr().cast()) };
            let k = _mm256_and_si256(v, mask);
            // Keys and INF_BITS are both non-negative, so the signed
            // compare is exact: above +Inf means NaN — zero those lanes,
            // matching f32::max's NaN-ignoring fold.
            let nan = _mm256_cmpgt_epi32(k, inf);
            acc = _mm256_max_epu32(acc, _mm256_andnot_si256(nan, k));
        }
        let h = _mm_max_epu32(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256::<1>(acc),
        );
        let h = _mm_max_epu32(h, _mm_shuffle_epi32::<0b01_00_11_10>(h));
        let h = _mm_max_epu32(h, _mm_shuffle_epi32::<0b00_00_00_01>(h));
        let mut best = _mm_cvtsi128_si32(h) as u32;
        for &x in chunks.remainder() {
            let k = mag_key(x);
            if k <= INF_BITS as u32 {
                best = best.max(k);
            }
        }
        // The u32 maximum of sign-stripped non-NaN keys is the bit
        // pattern of the float maximum of the absolute values (IEEE
        // order is monotone in the bits for non-negative floats).
        f32::from_bits(best)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn sign_expand(scale: f32, signs: &[u8], n: usize, out: &mut Vec<f32>) {
        assert!(signs.len() * 8 >= n);
        let old_len = out.len();
        out.reserve(n);
        let dst = out.spare_capacity_mut().as_mut_ptr().cast::<f32>();
        let pos_v = _mm256_set1_ps(scale);
        // -scale is a sign-bit flip — bitwise total, even for Inf/0.
        let neg_v = _mm256_xor_ps(pos_v, _mm256_castsi256_ps(_mm256_set1_epi32(i32::MIN)));
        let bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
        let full_bytes = n / 8;
        for (byte_i, &b) in signs.iter().take(full_bytes).enumerate() {
            let bv = _mm256_set1_epi32(b as i32);
            // Lane j = all-ones iff bit j of the byte is set (positive).
            let on = _mm256_cmpeq_epi32(_mm256_and_si256(bv, bits), bits);
            let vals = _mm256_blendv_ps(neg_v, pos_v, _mm256_castsi256_ps(on));
            // SAFETY: `byte_i < n / 8`, so these eight slots lie inside
            // the `n` spare elements reserved above; unaligned store.
            unsafe { _mm256_storeu_ps(dst.add(byte_i * 8), vals) };
        }
        for bit in full_bytes * 8..n {
            let positive = signs[bit / 8] & (1 << (bit % 8)) != 0;
            // SAFETY: `bit < n` indexes the spare capacity reserved
            // above.
            unsafe { *dst.add(bit) = if positive { scale } else { -scale } };
        }
        // SAFETY: `n` new elements were initialized above, directly
        // after the `old_len` existing ones.
        unsafe { out.set_len(old_len + n) };
    }

    // ----- compute tier (relu / pooling; GEMM lives in crate::gemm) -----

    #[target_feature(enable = "avx2")]
    pub(super) fn relu_inplace(xs: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let mut chunks = xs.chunks_exact_mut(8);
        for c in &mut chunks {
            // SAFETY: `c` is exactly eight f32s; unaligned load/store.
            unsafe {
                let v = _mm256_loadu_ps(c.as_ptr());
                // vmaxps(x, 0): returns the SECOND operand when x is NaN
                // and on the -0.0/+0.0 tie — exactly the scalar twin's
                // `if x > 0.0 { x } else { 0.0 }`.
                _mm256_storeu_ps(c.as_mut_ptr(), _mm256_max_ps(v, zero));
            }
        }
        scalar::relu_inplace(chunks.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn relu_grad_mask(x: &[f32], d: &mut [f32]) {
        assert_eq!(x.len(), d.len());
        let zero = _mm256_setzero_ps();
        let full = x.len() / 8 * 8;
        let mut i = 0usize;
        while i < full {
            // SAFETY: `i + 8 <= len` of both slices; unaligned loads and
            // store.
            unsafe {
                let xv = _mm256_loadu_ps(x.as_ptr().add(i));
                let dv = _mm256_loadu_ps(d.as_ptr().add(i));
                // NLE_UQ = !(x <= 0): true for x > 0 AND for NaN x, so a
                // NaN activation passes its gradient through exactly like
                // the scalar `if xi <= 0.0 { 0 }` gate (NaN <= 0 is
                // false). GT_OQ would wrongly zero the NaN lanes.
                let keep = _mm256_cmp_ps::<_CMP_NLE_UQ>(xv, zero);
                _mm256_storeu_ps(d.as_mut_ptr().add(i), _mm256_and_ps(dv, keep));
            }
            i += 8;
        }
        scalar::relu_grad_mask(&x[full..], &mut d[full..]);
    }

    /// Deinterleave 16 consecutive floats at `p` into (even, odd) lanes:
    /// even = elements 0,2,..,14 and odd = 1,3,..,15, each in source order.
    ///
    /// # Safety
    ///
    /// Caller must guarantee at least 16 readable f32s at `p`.
    // SAFETY: callers verify AVX2 before taking this path and guarantee
    // 16 readable f32s at `p`; those are the only obligations.
    #[target_feature(enable = "avx2")]
    unsafe fn deinterleave16(p: *const f32) -> (__m256, __m256) {
        // SAFETY: caller guarantees 16 readable floats; unaligned loads.
        let (l0, l1) = unsafe { (_mm256_loadu_ps(p), _mm256_loadu_ps(p.add(8))) };
        // shuffle picks (0,2) of each source per 128-bit half; the 64-bit
        // permute (0,2,1,3) then stitches the halves into source order.
        let ev = _mm256_shuffle_ps::<0b10_00_10_00>(l0, l1);
        let od = _mm256_shuffle_ps::<0b11_01_11_01>(l0, l1);
        let ev = _mm256_castsi256_ps(_mm256_permute4x64_epi64::<0b11_01_10_00>(_mm256_castps_si256(ev)));
        let od = _mm256_castsi256_ps(_mm256_permute4x64_epi64::<0b11_01_10_00>(_mm256_castps_si256(od)));
        (ev, od)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn maxpool2_plane(x: &[f32], h: usize, w: usize, base: u32, y: &mut Vec<f32>, argmax: &mut Vec<u32>) {
        assert!(h % 2 == 0 && w % 2 == 0 && x.len() == h * w);
        let (oh, ow) = (h / 2, w / 2);
        y.reserve(oh * ow);
        argmax.reserve(oh * ow);
        // Lane l covers output column ox0 + l, whose window starts at
        // input column 2*(ox0 + l): index offsets step by 2 per lane.
        let lane2 = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
        let full = ow / 8 * 8;
        for oy in 0..oh {
            let (iy0, iy1) = (oy * 2, oy * 2 + 1);
            let mut ox0 = 0usize;
            while ox0 < full {
                // SAFETY: rows iy0/iy1 are in-plane and the window spans
                // input columns 2*ox0 .. 2*ox0+16 <= w, so 16 floats are
                // readable at each row offset.
                let ((v00, v01), (v10, v11)) = unsafe {
                    (
                        deinterleave16(x.as_ptr().add(iy0 * w + 2 * ox0)),
                        deinterleave16(x.as_ptr().add(iy1 * w + 2 * ox0)),
                    )
                };
                // Running best per lane, visiting the four window cells in
                // the scalar scan order (ky, kx) with strict-greater
                // updates: first max wins, NaN candidates never win
                // (GT_OQ is false on NaN), all-NaN lanes keep index 0.
                let mut best = _mm256_set1_ps(f32::NEG_INFINITY);
                let mut bidx = _mm256_setzero_si256();
                for (v, iy, kx) in [(v00, iy0, 0u32), (v01, iy0, 1), (v10, iy1, 0), (v11, iy1, 1)] {
                    let start = base + (iy * w) as u32 + 2 * ox0 as u32 + kx;
                    let idxv = _mm256_add_epi32(_mm256_set1_epi32(start as i32), lane2);
                    let win = _mm256_cmp_ps::<_CMP_GT_OQ>(v, best);
                    best = _mm256_blendv_ps(best, v, win);
                    bidx = _mm256_blendv_epi8(bidx, idxv, _mm256_castps_si256(win));
                }
                let mut vals = [0.0f32; 8];
                let mut idxs = [0u32; 8];
                // SAFETY: `vals`/`idxs` are exactly eight elements;
                // unaligned stores.
                unsafe {
                    _mm256_storeu_ps(vals.as_mut_ptr(), best);
                    _mm256_storeu_si256(idxs.as_mut_ptr().cast(), bidx);
                }
                y.extend_from_slice(&vals);
                argmax.extend_from_slice(&idxs);
                ox0 += 8;
            }
            scalar::maxpool2_row(x, w, base, oy, full, ow, y, argmax);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn avgpool2_plane(x: &[f32], h: usize, w: usize, y: &mut Vec<f32>) {
        assert!(h % 2 == 0 && w % 2 == 0 && x.len() == h * w);
        let (oh, ow) = (h / 2, w / 2);
        y.reserve(oh * ow);
        let quarter = _mm256_set1_ps(0.25);
        let full = ow / 8 * 8;
        for oy in 0..oh {
            let (iy0, iy1) = (oy * 2, oy * 2 + 1);
            let mut ox0 = 0usize;
            while ox0 < full {
                // SAFETY: same bounds argument as maxpool2_plane — the
                // window spans 16 in-plane floats per row.
                let ((v00, v01), (v10, v11)) = unsafe {
                    (
                        deinterleave16(x.as_ptr().add(iy0 * w + 2 * ox0)),
                        deinterleave16(x.as_ptr().add(iy1 * w + 2 * ox0)),
                    )
                };
                // The exact scalar chain ((((0 + x00) + x01) + x10) + x11)
                // * 0.25, lane-wise — the leading zero matters for -0.0.
                let mut acc = _mm256_add_ps(_mm256_setzero_ps(), v00);
                acc = _mm256_add_ps(acc, v01);
                acc = _mm256_add_ps(acc, v10);
                acc = _mm256_add_ps(acc, v11);
                let r = _mm256_mul_ps(acc, quarter);
                let mut vals = [0.0f32; 8];
                // SAFETY: `vals` is exactly eight floats; unaligned store.
                unsafe { _mm256_storeu_ps(vals.as_mut_ptr(), r) };
                y.extend_from_slice(&vals);
                ox0 += 8;
            }
            scalar::avgpool2_row(x, w, oy, full, ow, y);
        }
    }
}
