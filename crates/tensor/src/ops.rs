//! Activation and softmax kernels with their backward passes.
//!
//! The ReLU pair dispatches through the [`Kernel`](crate::Kernel) compute
//! tier (see `crate::gemm`'s module docs for the bitwise contract); the
//! softmax kernels stay pure scalar — their row max/exp/sum chains are not
//! reassociation-safe, so a SIMD twin could not be bitwise identical.

use crate::{Kernel, Tensor};

/// ReLU forward: `y[i] = if x[i] > 0.0 { x[i] } else { 0.0 }`.
///
/// NaN and `-0.0` inputs both map to `+0.0` (the `vmaxps(x, 0)` lane
/// rule, which the scalar backend mirrors exactly).
pub fn relu(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    Kernel::runtime().relu_inplace(y.data_mut());
    y
}

/// ReLU backward: `dx = dy ⊙ [x > 0]`.
///
/// Uses the *forward input* for the gate so that exact zeros pass no
/// gradient, matching the conventional subgradient choice.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape(), "relu_backward shape mismatch");
    let mut dx = dy.clone();
    Kernel::runtime().relu_grad_mask(x.data(), dx.data_mut());
    dx
}

/// Row-wise softmax of a rank-2 tensor, numerically stabilised by the
/// row max.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = x.shape().as_matrix();
    let mut y = x.clone();
    for r in 0..rows {
        let row = &mut y.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    y
}

/// Row-wise log-softmax (stabilised); used by the cross-entropy loss.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = x.shape().as_matrix();
    let mut y = x.clone();
    for r in 0..rows {
        let row = &mut y.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let log_sum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_slice_approx_eq;

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        let y = relu(&x);
        assert_slice_approx_eq(y.data(), &[0.0, 0.0, 0.5, 2.0], 1e-6);
        let dy = Tensor::full([4], 1.0);
        let dx = relu_backward(&x, &dy);
        assert_slice_approx_eq(dx.data(), &[0.0, 0.0, 1.0, 1.0], 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap();
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(y.data()[2] > y.data()[1]);
        assert!(y.data()[1] > y.data()[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Tensor::from_vec([1, 3], vec![1000.0, 1001.0, 1002.0]).unwrap();
        let y = softmax_rows(&x);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let s: f32 = y.data().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Tensor::from_vec([2, 4], vec![0.1, -0.2, 0.7, 1.3, 2.0, 2.0, 2.0, 2.0]).unwrap();
        let p = softmax_rows(&x);
        let lp = log_softmax_rows(&x);
        for (a, b) in p.data().iter().zip(lp.data().iter()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
        // Uniform row: log(1/4)
        assert!((lp.data()[4] - (0.25f32).ln()).abs() < 1e-5);
    }
}
