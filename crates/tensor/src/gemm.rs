//! Cache-blocked, register-tiled GEMM behind the [`Kernel`] seam.
//!
//! This is the compute-tier core: one 6×16 microkernel shared by the three
//! layout variants backprop needs (`A·B`, `Aᵀ·B` with `A` stored `k×m`,
//! `A·Bᵀ` with `B` stored `n×k`), which differ only in how their packing
//! routines gather panels.
//!
//! # Blocking scheme
//!
//! * `B` is packed once per call into `⌈n/NR⌉` panels of `NR = 16` columns,
//!   laid out k-major (`panel[p·NR + jj]`), so the microkernel streams two
//!   contiguous 8-lane vectors per k-step.
//! * `C` rows are processed in blocks of `MR = 6`; the block's `A` rows are
//!   packed k-major (`panel[p·MR + ii]`) so each k-step issues `MR`
//!   broadcasts from one cache line.
//! * The microkernel holds the full `MR×NR` tile in 12 ymm accumulators
//!   (plus two `B` vectors and one broadcast — 15 of 16 registers).
//! * rayon parallelism splits `C` into disjoint row-block chunks; nothing
//!   else is shared mutably, so the split cannot reorder any accumulation.
//!
//! There is deliberately **no blocking over k**: the bitwise-identity
//! contract (see below) requires each output element's additions to happen
//! in ascending-`p` order as one uninterrupted chain, and at this
//! workspace's layer shapes (`k ≤ a few thousand`) a full `k×NR` panel fits
//! comfortably in L2, so k-blocking would cost contract complexity for no
//! locality win.
//!
//! # Accumulation-order contract (bitwise identity)
//!
//! Every backend computes, for each output element, exactly
//! `((0.0 + a·b) + a·b) + …` with `p` ascending and each term a plain
//! (non-fused) multiply then add. SIMD vectorizes across *independent
//! output lanes* only, never within one element's chain, so the scalar
//! loops, the AVX2 microkernel, and any rayon split are bitwise identical
//! on every non-NaN output — ±Inf, denormals and signed zeros included —
//! and produce NaN at exactly the same positions.
//!
//! NaN *payload* bits are the one deliberate exclusion: LLVM treats
//! `fadd`/`fmul` as commutative and leaves the payload of a NaN result
//! unspecified, while x86 `addss`/`addps` propagates the *first* source's
//! payload when both operands are NaN. Which payload survives
//! `acc + term` when an earlier NaN accumulator meets a fresh indefinite
//! NaN (e.g. `-inf × -0.0` → `0xFFC00000`) therefore depends on operand
//! order the compiler is free to flip — it differs even between two
//! scalar compilations of the same source chain. The differential suites
//! compare NaN outputs payload-insensitively; data-movement kernels
//! (ReLU, pooling, im2col, packing) still preserve payloads exactly.
//!
//! **FMA is deliberately excluded.** `vfmadd` skips the intermediate
//! rounding of the multiply, so an FMA kernel cannot be bit-identical to
//! any scalar mul+add twin; a `f32::mul_add` scalar oracle would in turn
//! hit libm's software `fmaf` on the default x86-64 target — slow and with
//! its own NaN-payload hazards. Plain `vmulps`+`vaddps` keeps the oracle a
//! readable safe loop and costs roughly a third of peak throughput, which
//! the register tiling more than buys back against the streaming scalar
//! baseline. Zero-padded edge panels are bitwise-safe because padded lanes
//! are discarded at copy-out and padding never extends the k chain.
//!
//! Packing panels come from a thread-local [`BufferPool`] (released with
//! [`BufferPool::release_unchanged`]: every element that will be read is
//! overwritten first, so the pool skips the O(k·n) re-zero), keeping
//! steady-state GEMM calls allocation-free on every rayon worker.

use crate::bufpool::BufferPool;
use crate::kernel::Kernel;
use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel tile rows (`C` rows per register tile).
pub const MR: usize = 6;
/// Microkernel tile columns (`C` columns per register tile; two ymm lanes).
pub const NR: usize = 16;

/// Minimum number of output elements before the kernels bother with rayon.
/// Below this the spawn overhead dominates for the small layers in tests.
const PAR_THRESHOLD: usize = 16 * 1024;

/// `C` rows per rayon task on the packed path — a few microkernel tiles,
/// so task count stays well above core count at layer shapes.
const ROWS_PER_TASK: usize = 4 * MR;

/// Operand layout of a GEMM call. The microkernel is layout-agnostic; only
/// the pack routines differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `C = A·B`: `a` is `m×k` row-major, `b` is `k×n` row-major.
    Nn,
    /// `C = Aᵀ·B`: `a` is stored `k×m` (so `Aᵀ` is `m×k`), `b` is `k×n`.
    Tn,
    /// `C = A·Bᵀ`: `a` is `m×k`, `b` is stored `n×k` (so `Bᵀ` is `k×n`).
    Nt,
}

thread_local! {
    /// Per-thread pool for packed panels. `release_unchanged` keeps length
    /// and contents: panels are fully overwritten before every read, so
    /// re-zeroing on release would be pure waste.
    static PANELS: RefCell<BufferPool<f32>> = RefCell::new(BufferPool::new(4));
}

fn panel_take(min_len: usize) -> Vec<f32> {
    let mut v = PANELS.with(|p| p.borrow_mut().acquire());
    if v.len() < min_len {
        v.resize(min_len, 0.0);
    }
    v
}

fn panel_put(v: Vec<f32>) {
    PANELS.with(|p| p.borrow_mut().release_unchanged(v));
}

/// Dispatch entry: `C = op(A)·op(B)` per `layout`, overwriting `c`.
///
/// Size contract (checked): `c.len() == m*n`, and `a`/`b` hold the layout's
/// operand exactly (`m×k`/`k×m` and `k×n`/`n×k`).
pub fn gemm(kernel: Kernel, layout: Layout, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let (a_len, b_len) = match layout {
        Layout::Nn => (m * k, k * n),
        Layout::Tn => (k * m, k * n),
        Layout::Nt => (m * k, n * k),
    };
    assert_eq!(a.len(), a_len, "gemm {layout:?}: lhs size");
    assert_eq!(b.len(), b_len, "gemm {layout:?}: rhs size");
    assert_eq!(c.len(), m * n, "gemm {layout:?}: out size");
    if m == 0 || n == 0 {
        return;
    }
    match kernel {
        Kernel::Scalar => scalar_gemm(layout, a, b, c, m, k, n),
        Kernel::Simd => simd_gemm(layout, a, b, c, m, k, n),
    }
}

// ---------------------------------------------------------------------------
// Scalar oracle
// ---------------------------------------------------------------------------

/// Portable scalar GEMM — the differential oracle the SIMD path must match
/// bit for bit. `ikj` order for the row-major variants (streaming `b`
/// rows), a sequential dot product for `Nt`; each output element's k chain
/// is ascending and unbroken, which is the whole contract.
fn scalar_gemm(layout: Layout, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let body = |(i, c_row): (usize, &mut [f32])| match layout {
        Layout::Nn => {
            c_row.fill(0.0);
            let a_row = &a[i * k..(i + 1) * k];
            // No zero-skip: `0.0 * b` must still enter the chain (it is not
            // a no-op for Inf/NaN `b` or a `-0.0` accumulator), or the
            // backends desync exactly on the torture inputs.
            for (p, &a_v) in a_row.iter().enumerate() {
                let b_row = &b[p * n..(p + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_v += a_v * b_v;
                }
            }
        }
        Layout::Tn => {
            c_row.fill(0.0);
            for p in 0..k {
                let a_v = a[p * m + i];
                let b_row = &b[p * n..(p + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_v += a_v * b_v;
                }
            }
        }
        Layout::Nt => {
            let a_row = &a[i * k..(i + 1) * k];
            for (j, c_v) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *c_v = acc;
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

// ---------------------------------------------------------------------------
// Packed AVX2 path
// ---------------------------------------------------------------------------

/// SIMD GEMM: packed panels + the 6×16 microkernel where AVX2 is present,
/// scalar oracle otherwise (same fallback rule as every [`crate::simd`]
/// wrapper, so a hand-built `Kernel::Simd` is safe on any CPU).
fn simd_gemm(layout: Layout, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_available() {
        return packed_gemm_avx2(layout, a, b, c, m, k, n);
    }
    scalar_gemm(layout, a, b, c, m, k, n);
}

/// Packs the `NR`-column panel starting at column `j0` into
/// `pb[..k*NR]`, zero-filling lanes past `n` so edge panels still feed a
/// full-width microkernel. Writes every element it covers.
fn pack_b(layout: Layout, b: &[f32], pb: &mut [f32], k: usize, n: usize, j0: usize) {
    let cols = NR.min(n - j0);
    match layout {
        // `b` is k×n: each k-step's slice is contiguous.
        Layout::Nn | Layout::Tn => {
            for (p, dst) in pb.chunks_exact_mut(NR).take(k).enumerate() {
                dst[..cols].copy_from_slice(&b[p * n + j0..p * n + j0 + cols]);
                dst[cols..].fill(0.0);
            }
        }
        // `b` is stored n×k: jj-outer keeps the reads contiguous (one
        // stored row per lane) at the cost of NR-strided writes.
        Layout::Nt => {
            for jj in 0..cols {
                let b_row = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                for (p, &v) in b_row.iter().enumerate() {
                    pb[p * NR + jj] = v;
                }
            }
            if cols < NR {
                for p in 0..k {
                    pb[p * NR + cols..p * NR + NR].fill(0.0);
                }
            }
        }
    }
}

/// Packs the `MR`-row block starting at row `i0` into `pa[..k*MR]`,
/// zero-filling rows past `m`. Writes every element it covers.
fn pack_a(layout: Layout, a: &[f32], pa: &mut [f32], m: usize, k: usize, i0: usize) {
    let rows = MR.min(m - i0);
    match layout {
        // `a` is m×k row-major: transpose the block into k-major order.
        Layout::Nn | Layout::Nt => {
            for ii in 0..rows {
                let a_row = &a[(i0 + ii) * k..(i0 + ii + 1) * k];
                for (p, &v) in a_row.iter().enumerate() {
                    pa[p * MR + ii] = v;
                }
            }
        }
        // `a` is stored k×m: already k-major, each k-step contiguous.
        Layout::Tn => {
            for (p, dst) in pa.chunks_exact_mut(MR).take(k).enumerate() {
                dst[..rows].copy_from_slice(&a[p * m + i0..p * m + i0 + rows]);
            }
        }
    }
    if rows < MR {
        for p in 0..k {
            pa[p * MR + rows..p * MR + MR].fill(0.0);
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn packed_gemm_avx2(layout: Layout, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let np = n.div_ceil(NR);
    let mut pb = panel_take(np * k * NR);
    for jp in 0..np {
        pack_b(layout, b, &mut pb[jp * k * NR..(jp + 1) * k * NR], k, n, jp * NR);
    }
    let pb_ref: &[f32] = &pb;

    let body = |(blk, c_rows): (usize, &mut [f32])| {
        let i_base = blk * ROWS_PER_TASK;
        let rows_in_block = c_rows.len() / n;
        let mut pa = panel_take(k * MR);
        let mut tile = [0.0f32; MR * NR];
        let mut t0 = 0;
        while t0 < rows_in_block {
            let rows = MR.min(rows_in_block - t0);
            pack_a(layout, a, &mut pa, m, k, i_base + t0);
            for jp in 0..np {
                let panel = &pb_ref[jp * k * NR..(jp + 1) * k * NR];
                // SAFETY: AVX2 presence was checked by the caller
                // (`simd_gemm`); `pa`/`panel` hold at least `k` full
                // k-steps and `tile` is exactly MR×NR.
                unsafe { avx2::microkernel_6x16(&pa, panel, k, &mut tile) };
                let j0 = jp * NR;
                let cols = NR.min(n - j0);
                for ii in 0..rows {
                    let dst = &mut c_rows[(t0 + ii) * n + j0..(t0 + ii) * n + j0 + cols];
                    dst.copy_from_slice(&tile[ii * NR..ii * NR + cols]);
                }
            }
            t0 += rows;
        }
        panel_put(pa);
    };

    if m * n >= PAR_THRESHOLD && m > ROWS_PER_TASK {
        c.par_chunks_mut(ROWS_PER_TASK * n).enumerate().for_each(body);
    } else {
        c.chunks_mut(ROWS_PER_TASK * n).enumerate().for_each(body);
    }
    panel_put(pb);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The register-tiled tile kernel. Lives in the tensor crate's audited
    //! unsafe budget; every `unsafe` carries a `// SAFETY:` note.

    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// Computes one `MR×NR` tile of `C` into `tile` from k-major packed
    /// panels: `pa[p*MR + ii]`, `pb[p*NR + jj]`.
    ///
    /// Per element this is exactly the scalar chain
    /// `(((0.0 + a·b) + a·b) + …)` with `p` ascending: `vmulps` + `vaddps`
    /// have scalar rounding/NaN semantics lane-wise, and no FMA contraction
    /// can occur because intrinsics lower to their named instructions.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `pa.len() >= k*MR`,
    /// `pb.len() >= k*NR`.
    // SAFETY: callers verify AVX2 before taking this path and pass
    // panels of at least k*MR / k*NR floats — the only obligations.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn microkernel_6x16(pa: &[f32], pb: &[f32], k: usize, tile: &mut [f32; MR * NR]) {
        debug_assert!(pa.len() >= k * MR && pb.len() >= k * NR);
        let mut acc = [_mm256_setzero_ps(); 2 * MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..k {
            // SAFETY: `bp` walks `pb` in NR-float steps for `k` steps,
            // within the length the caller guaranteed; loads are unaligned.
            let b0 = unsafe { _mm256_loadu_ps(bp) };
            // SAFETY: as above, second half of the same NR-float step.
            let b1 = unsafe { _mm256_loadu_ps(bp.add(8)) };
            for ii in 0..MR {
                // SAFETY: `ap` walks `pa` in MR-float steps for `k` steps,
                // within the length the caller guaranteed.
                let av = unsafe { _mm256_set1_ps(*ap.add(ii)) };
                // Non-fused multiply then add: bitwise-identical to the
                // scalar twin's `c += a * b` (FMA would skip a rounding).
                acc[2 * ii] = _mm256_add_ps(acc[2 * ii], _mm256_mul_ps(av, b0));
                acc[2 * ii + 1] = _mm256_add_ps(acc[2 * ii + 1], _mm256_mul_ps(av, b1));
            }
            // SAFETY: in-bounds pointer arithmetic per the length contract.
            ap = unsafe { ap.add(MR) };
            // SAFETY: in-bounds pointer arithmetic per the length contract.
            bp = unsafe { bp.add(NR) };
        }
        for ii in 0..MR {
            // SAFETY: `tile` is exactly MR*NR floats; each row stores two
            // unaligned 8-lane vectors at offsets ii*NR and ii*NR+8.
            unsafe {
                _mm256_storeu_ps(tile.as_mut_ptr().add(ii * NR), acc[2 * ii]);
                _mm256_storeu_ps(tile.as_mut_ptr().add(ii * NR + 8), acc[2 * ii + 1]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic mixed-class value: every special class the contract
    /// names (NaN payloads, ±Inf, ±0, denormals) plus ordinary values.
    fn torture_value(s: &mut u64) -> f32 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        match *s % 13 {
            0 => f32::NAN,
            1 => f32::from_bits(0x7FC0_5A5A), // NaN payload
            2 => f32::INFINITY,
            3 => f32::NEG_INFINITY,
            4 => 0.0,
            5 => -0.0,
            6 => f32::from_bits((*s >> 40) as u32 & 0x007F_FFFF), // denormal
            7 => 1.0,
            8 => -1.0,
            9 => 1.0 + f32::EPSILON,
            _ => f32::from_bits((*s >> 32) as u32),
        }
    }

    fn torture_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut s = 0x9E37_79B9_7F4A_7C15u64 ^ seed;
        (0..n).map(|_| torture_value(&mut s)).collect()
    }

    /// Bitwise equality, except both-NaN pairs compare equal regardless of
    /// payload: NaN payloads through `fadd`/`fmul` are LLVM-unspecified
    /// (see the module docs), so only NaN *positions* are contractual.
    fn assert_bits_eq(a: &[f32], b: &[f32], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            if x.is_nan() && y.is_nan() {
                continue;
            }
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: bits diverged at {i}: {x} vs {y}");
        }
    }

    /// Shapes straddling every edge: unit dims, non-multiples of MR/NR,
    /// exact multiples, and one past PAR_THRESHOLD to hit the rayon split.
    fn shapes() -> Vec<(usize, usize, usize)> {
        vec![
            (1, 1, 1),
            (3, 5, 7),
            (6, 4, 16),
            (7, 9, 17),
            (5, 16, 15),
            (13, 33, 31),
            (12, 8, 32),
            (25, 17, 40),
            (160, 40, 160),
        ]
    }

    #[test]
    fn backends_bitwise_identical_all_layouts() {
        for layout in [Layout::Nn, Layout::Tn, Layout::Nt] {
            for (m, k, n) in shapes() {
                let (a_len, b_len) = match layout {
                    Layout::Nn => (m * k, k * n),
                    Layout::Tn => (k * m, k * n),
                    Layout::Nt => (m * k, n * k),
                };
                let a = torture_vec(a_len, (m * 31 + k) as u64);
                let b = torture_vec(b_len, (n * 17 + k) as u64);
                let mut cs = vec![f32::NAN; m * n];
                let mut cv = vec![0.0f32; m * n];
                gemm(Kernel::Scalar, layout, &a, &b, &mut cs, m, k, n);
                gemm(Kernel::Simd, layout, &a, &b, &mut cv, m, k, n);
                assert_bits_eq(&cs, &cv, &format!("{layout:?} {m}x{k}x{n}"));
            }
        }
    }

    #[test]
    fn matches_naive_on_finite_inputs() {
        // Against the textbook ijk loop (same chain, so exactly equal).
        let (m, k, n) = (7, 11, 13);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7 + 3) % 23) as f32 - 11.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 + 1) % 19) as f32 - 9.0).collect();
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                naive[i * n + j] = acc;
            }
        }
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut c = vec![0.0f32; m * n];
            gemm(kernel, Layout::Nn, &a, &b, &mut c, m, k, n);
            assert_bits_eq(&c, &naive, kernel.name());
        }
    }

    #[test]
    fn k_zero_writes_zeros() {
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut c = vec![f32::NAN; 6];
            gemm(kernel, Layout::Nn, &[], &[], &mut c, 2, 0, 3);
            assert!(c.iter().all(|v| v.to_bits() == 0), "{:?}", c);
        }
    }

    #[test]
    fn empty_output_is_a_no_op() {
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut c: Vec<f32> = vec![];
            gemm(kernel, Layout::Nn, &[], &[1.0, 2.0], &mut c, 0, 1, 2);
            gemm(kernel, Layout::Nn, &[1.0, 2.0], &[], &mut c, 2, 1, 0);
        }
    }

    #[test]
    fn panel_pool_reuses_buffers() {
        // Warm up, then confirm the thread-local pool serves repeat calls.
        let a = vec![1.0f32; 32 * 32];
        let b = vec![2.0f32; 32 * 32];
        let mut c = vec![0.0f32; 32 * 32];
        gemm(Kernel::Simd, Layout::Nn, &a, &b, &mut c, 32, 32, 32);
        let idle_after_warmup = PANELS.with(|p| p.borrow().idle());
        gemm(Kernel::Simd, Layout::Nn, &a, &b, &mut c, 32, 32, 32);
        let idle_after_reuse = PANELS.with(|p| p.borrow().idle());
        assert_eq!(idle_after_warmup, idle_after_reuse, "pool should cycle, not grow");
    }
}
