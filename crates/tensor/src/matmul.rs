//! Matrix-multiply entry points, routed through the compute tier.
//!
//! Three signatures cover every backprop need without materialising
//! transposes:
//!
//! * [`matmul`]      — `C = A (M×K) · B (K×N)`
//! * [`matmul_at_b`] — `C = Aᵀ (M×K stored K×M) · B`, used for weight grads
//! * [`matmul_a_bt`] — `C = A · Bᵀ (N×K stored)`, used for input grads
//!
//! Since the compute-tier PR these are thin wrappers over
//! [`crate::gemm::gemm`] at the process-wide [`Kernel::runtime`] backend:
//! the blocked/packed AVX2 microkernel, the scalar oracle, and the rayon
//! row-block split all live there, and all of them are bitwise identical
//! (the k-accumulation order of every output element is fixed). Callers
//! that carry an explicit backend (the nn layers, via `ComputeScratch`)
//! use [`Kernel::gemm`] and friends directly.

use crate::gemm::{self, Layout};
use crate::Kernel;
use crate::Tensor;

/// `C = A·B` where `a` is `m×k` and `b` is `k×n`, all row-major flat slices.
pub fn matmul_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm(Kernel::runtime(), Layout::Nn, a, b, c, m, k, n);
}

/// `C = Aᵀ·B` where `a` is stored `k×m` (so `Aᵀ` is `m×k`) and `b` is `k×n`.
///
/// This computes, for every output `(i, j)`: `Σ_p a[p, i] * b[p, j]`.
pub fn matmul_at_b_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm(Kernel::runtime(), Layout::Tn, a, b, c, m, k, n);
}

/// `C = A·Bᵀ` where `a` is `m×k` and `b` is stored `n×k` (so `Bᵀ` is `k×n`).
///
/// This computes, for every output `(i, j)`: `Σ_p a[i, p] * b[j, p]` — a dot
/// product of two contiguous rows.
pub fn matmul_a_bt_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm(Kernel::runtime(), Layout::Nt, a, b, c, m, k, n);
}

/// `C = A·B` over [`Tensor`]s. Panics on rank/shape mismatch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_matrix();
    let (k2, n) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    matmul_slices(a.data(), b.data(), c.data_mut(), m, k, n);
    c
}

/// `C = Aᵀ·B` over [`Tensor`]s (`a` stored `k×m`).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape().as_matrix();
    let (k2, n) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul_at_b inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    matmul_at_b_slices(a.data(), b.data(), c.data_mut(), m, k, n);
    c
}

/// `C = A·Bᵀ` over [`Tensor`]s (`b` stored `n×k`).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_matrix();
    let (n, k2) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul_a_bt inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    matmul_a_bt_slices(a.data(), b.data(), c.data_mut(), m, k, n);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_slice_approx_eq;
    use crate::rng::seeded;
    use rand::Rng;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = seeded(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut c = vec![0.0; 4];
        matmul_slices(&a, &b, &mut c, 2, 3, 2);
        assert_slice_approx_eq(&c, &[58.0, 64.0, 139.0, 154.0], 1e-6);
    }

    #[test]
    fn matmul_matches_naive_random() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 9, 23), (64, 32, 48)] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            matmul_slices(&a, &b, &mut c, m, k, n);
            assert_slice_approx_eq(&c, &naive(&a, &b, m, k, n), 1e-4);
        }
    }

    #[test]
    fn matmul_large_uses_parallel_path() {
        // 160*160 = 25_600 > the compute tier's PAR_THRESHOLD, exercising
        // the rayon branch.
        let (m, k, n) = (160, 40, 160);
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 4);
        let mut c = vec![0.0; m * n];
        matmul_slices(&a, &b, &mut c, m, k, n);
        assert_slice_approx_eq(&c, &naive(&a, &b, m, k, n), 1e-3);
    }

    #[test]
    fn at_b_matches_transposed_naive() {
        let (m, k, n) = (6, 11, 4);
        let a_t = rand_vec(k * m, 5); // stored kxm
        let b = rand_vec(k * n, 6);
        // Build A (mxk) explicitly.
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        matmul_at_b_slices(&a_t, &b, &mut c, m, k, n);
        assert_slice_approx_eq(&c, &naive(&a, &b, m, k, n), 1e-4);
    }

    #[test]
    fn a_bt_matches_transposed_naive() {
        let (m, k, n) = (5, 9, 8);
        let a = rand_vec(m * k, 7);
        let b_t = rand_vec(n * k, 8); // stored nxk
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        matmul_a_bt_slices(&a, &b_t, &mut c, m, k, n);
        assert_slice_approx_eq(&c, &naive(&a, &b, m, k, n), 1e-4);
    }

    #[test]
    fn tensor_wrappers() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(matmul(&a, &b).data(), b.data());
        // identity stored transposed is still identity
        assert_eq!(matmul_at_b(&a, &b).data(), b.data());
        let id2 = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul_a_bt(&b, &id2).data(), b.data());
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn zero_sized_edges() {
        // m == 0 produces an empty output without panicking.
        let mut c: Vec<f32> = vec![];
        matmul_slices(&[], &[1.0, 2.0], &mut c, 0, 1, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn explicit_backends_match_runtime_wrapper() {
        // The wrapper dispatches at Kernel::runtime(); both explicit
        // backends must agree with it bit for bit.
        let (m, k, n) = (13, 21, 19);
        let a = rand_vec(m * k, 11);
        let b = rand_vec(k * n, 12);
        let mut via_wrapper = vec![0.0; m * n];
        matmul_slices(&a, &b, &mut via_wrapper, m, k, n);
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut c = vec![0.0; m * n];
            kernel.gemm(&a, &b, &mut c, m, k, n);
            for (x, y) in c.iter().zip(via_wrapper.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{} diverged", kernel.name());
            }
        }
    }
}
