//! Pooling layers: 2×2-style max pooling and global average pooling.
//!
//! The `_with` entry points are the compute-tier path: they take a
//! [`ComputeScratch`] for an explicit [`Kernel`] choice and pooled output
//! buffers, and the hot 2×2 window dispatches through
//! [`Kernel::maxpool2_plane`] / [`Kernel::avgpool2_plane`] (SIMD across
//! output columns, bitwise identical to the scalar scan). The original
//! signatures remain as convenience wrappers over a throwaway scratch.
//!
//! Global average pooling deliberately stays a sequential scalar sum in
//! **both** backends: an 8-lane partial-sum reduction would reassociate
//! the per-channel chain and break the bitwise contract, and the op is a
//! rounding error of the epoch budget.

use crate::{ComputeScratch, Shape, Tensor};

/// Max-pool geometry (square window, stride = window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPoolSpec {
    /// Pooling window height/width (also the stride).
    pub window: usize,
}

impl MaxPoolSpec {
    /// Output spatial size; requires the window to divide the input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h.is_multiple_of(self.window) && w.is_multiple_of(self.window),
            "maxpool window {} must divide input {}x{}",
            self.window,
            h,
            w
        );
        (h / self.window, w / self.window)
    }
}

/// Result of a max-pool forward pass: output plus the winning indices
/// (flat index into the input) needed by the backward pass.
pub struct MaxPoolOut {
    /// Pooled output, `N×C×OH×OW`.
    pub y: Tensor,
    /// For each output element, the flat input index of its maximum.
    pub argmax: Vec<u32>,
}

/// Max-pool forward over an NCHW tensor (throwaway scratch at the
/// runtime backend; layers use [`maxpool2d_forward_with`]).
pub fn maxpool2d_forward(x: &Tensor, spec: &MaxPoolSpec) -> MaxPoolOut {
    maxpool2d_forward_with(&mut ComputeScratch::default(), x, spec)
}

/// Max-pool forward through the compute tier: output and argmax are
/// carved from `scratch`'s pools and appended plane by plane.
pub fn maxpool2d_forward_with(scratch: &mut ComputeScratch, x: &Tensor, spec: &MaxPoolSpec) -> MaxPoolOut {
    let (n, c, h, w) = x.shape().as_nchw();
    let (oh, ow) = spec.out_hw(h, w);
    let kernel = scratch.kernel();
    let mut y = scratch.take(n * c * oh * ow);
    let mut argmax = scratch.take_u32(n * c * oh * ow);
    let xd = x.data();
    let win = spec.window;
    for plane in 0..n * c {
        let in_base = plane * h * w;
        if win == 2 {
            kernel.maxpool2_plane(&xd[in_base..in_base + h * w], h, w, in_base as u32, &mut y, &mut argmax);
            continue;
        }
        // General windows: the scalar scan, appended in the same order.
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ky in 0..win {
                    for kx in 0..win {
                        let idx = in_base + (oy * win + ky) * w + ox * win + kx;
                        if xd[idx] > best {
                            best = xd[idx];
                            best_idx = idx;
                        }
                    }
                }
                y.push(best);
                argmax.push(best_idx as u32);
            }
        }
    }
    let y = Tensor::from_vec([n, c, oh, ow], y).expect("maxpool output size");
    MaxPoolOut { y, argmax }
}

/// Max-pool backward: routes each output gradient to its argmax input.
pub fn maxpool2d_backward(input_shape: &Shape, argmax: &[u32], dy: &Tensor) -> Tensor {
    maxpool2d_backward_with(&mut ComputeScratch::default(), input_shape, argmax, dy)
}

/// [`maxpool2d_backward`] with the gradient buffer drawn from `scratch`.
pub fn maxpool2d_backward_with(
    scratch: &mut ComputeScratch,
    input_shape: &Shape,
    argmax: &[u32],
    dy: &Tensor,
) -> Tensor {
    let mut dxd = scratch.take_zeroed(input_shape.numel());
    for (&idx, &g) in argmax.iter().zip(dy.data().iter()) {
        dxd[idx as usize] += g;
    }
    Tensor::from_vec(input_shape.clone(), dxd).expect("maxpool dx size")
}

/// Global average pooling: `N×C×H×W → N×C`.
pub fn global_avg_pool_forward(x: &Tensor) -> Tensor {
    global_avg_pool_forward_with(&mut ComputeScratch::default(), x)
}

/// [`global_avg_pool_forward`] with the output drawn from `scratch`. The
/// per-channel sum is sequential scalar under every [`Kernel`] — see the
/// module docs.
pub fn global_avg_pool_forward_with(scratch: &mut ComputeScratch, x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().as_nchw();
    let area = (h * w) as f32;
    let mut y = scratch.take(n * c);
    let xd = x.data();
    for plane in 0..n * c {
        let base = plane * h * w;
        let s: f32 = xd[base..base + h * w].iter().sum();
        y.push(s / area);
    }
    Tensor::from_vec([n, c], y).expect("gap output size")
}

/// Global average pooling backward: spreads each `N×C` gradient uniformly
/// over the `H×W` plane.
pub fn global_avg_pool_backward(input_shape: &Shape, dy: &Tensor) -> Tensor {
    global_avg_pool_backward_with(&mut ComputeScratch::default(), input_shape, dy)
}

/// [`global_avg_pool_backward`] with the gradient buffer drawn from
/// `scratch` (a broadcast fill — every element written, no zero-init).
pub fn global_avg_pool_backward_with(scratch: &mut ComputeScratch, input_shape: &Shape, dy: &Tensor) -> Tensor {
    let (n, c, h, w) = input_shape.as_nchw();
    let inv_area = 1.0 / (h * w) as f32;
    let mut dxd = scratch.take(n * c * h * w);
    let dyd = dy.data();
    for plane in 0..n * c {
        let g = dyd[plane] * inv_area;
        dxd.resize(dxd.len() + h * w, g);
    }
    Tensor::from_vec(input_shape.clone(), dxd).expect("gap dx size")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_slice_approx_eq, Kernel};

    #[test]
    fn maxpool_forward_simple() {
        // 1x1x4x4 image with known 2x2 maxima.
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.0, //
                -3.0, -4.0, 0.5, 0.0,
            ],
        )
        .unwrap();
        let out = maxpool2d_forward(&x, &MaxPoolSpec { window: 2 });
        assert_slice_approx_eq(out.y.data(), &[4.0, 8.0, -1.0, 0.5], 1e-6);
        assert_eq!(out.argmax, vec![5, 7, 8, 14]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let out = maxpool2d_forward(&x, &MaxPoolSpec { window: 2 });
        let dy = Tensor::from_vec([1, 1, 1, 1], vec![2.5]).unwrap();
        let dx = maxpool2d_backward(x.shape(), &out.argmax, &dy);
        assert_slice_approx_eq(dx.data(), &[0.0, 2.5, 0.0, 0.0], 1e-6);
    }

    #[test]
    fn maxpool_numerical_gradient() {
        let x = Tensor::randn([2, 3, 4, 4], 1.0, 55);
        let spec = MaxPoolSpec { window: 2 };
        let out = maxpool2d_forward(&x, &spec);
        let dy = Tensor::full(out.y.shape().clone(), 1.0);
        let dx = maxpool2d_backward(x.shape(), &out.argmax, &dy);
        let eps = 1e-3f32;
        for &xi in &[0usize, 10, 47, x.numel() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let num = (maxpool2d_forward(&xp, &spec).y.sum()
                - maxpool2d_forward(&xm, &spec).y.sum())
                / (2.0 * eps as f64);
            assert!(
                (num - dx.data()[xi] as f64).abs() < 1e-2,
                "dx[{xi}]: {num} vs {}",
                dx.data()[xi]
            );
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn maxpool_rejects_nondivisible() {
        let x = Tensor::zeros([1, 1, 5, 4]);
        maxpool2d_forward(&x, &MaxPoolSpec { window: 2 });
    }

    #[test]
    fn maxpool_general_window_matches_window2_composition() {
        // A 4x4 window equals two nested 2x2 pools on monotone data; more
        // usefully here, the window=4 general path must agree with an
        // explicit scan.
        let x = Tensor::randn([2, 2, 4, 4], 1.0, 91);
        let out = maxpool2d_forward(&x, &MaxPoolSpec { window: 4 });
        for plane in 0..4 {
            let base = plane * 16;
            let (mut best, mut bi) = (f32::NEG_INFINITY, 0usize);
            for (off, &v) in x.data()[base..base + 16].iter().enumerate() {
                if v > best {
                    best = v;
                    bi = base + off;
                }
            }
            assert_eq!(out.y.data()[plane], best);
            assert_eq!(out.argmax[plane], bi as u32);
        }
    }

    #[test]
    fn maxpool_backends_bitwise_identical_via_scratch() {
        let x = Tensor::randn([2, 3, 8, 12], 1.0, 17);
        let mut ss = ComputeScratch::new(Kernel::Scalar);
        let mut sv = ComputeScratch::new(Kernel::Simd);
        let spec = MaxPoolSpec { window: 2 };
        let a = maxpool2d_forward_with(&mut ss, &x, &spec);
        let b = maxpool2d_forward_with(&mut sv, &x, &spec);
        assert_eq!(a.argmax, b.argmax);
        for (p, q) in a.y.data().iter().zip(b.y.data().iter()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn gap_forward_backward() {
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0])
            .unwrap();
        let y = global_avg_pool_forward(&x);
        assert_slice_approx_eq(y.data(), &[2.5, 25.0], 1e-6);
        let dy = Tensor::from_vec([1, 2], vec![4.0, 8.0]).unwrap();
        let dx = global_avg_pool_backward(x.shape(), &dy);
        assert_slice_approx_eq(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], 1e-6);
    }

    #[test]
    fn gap_gradient_is_exact_adjoint() {
        // <GAP(x), dy> == <x, GAPᵀ(dy)> for random inputs.
        let x = Tensor::randn([3, 4, 5, 5], 1.0, 77);
        let dy = Tensor::randn([3, 4], 1.0, 78);
        let y = global_avg_pool_forward(&x);
        let dx = global_avg_pool_backward(x.shape(), &dy);
        let lhs: f64 =
            y.data().iter().zip(dy.data().iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        let rhs: f64 =
            x.data().iter().zip(dx.data().iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-4 * lhs.abs().max(1.0));
    }

    #[test]
    fn pooled_paths_are_allocation_free_when_warm() {
        let x = Tensor::randn([2, 2, 6, 6], 1.0, 31);
        let spec = MaxPoolSpec { window: 2 };
        let mut s = ComputeScratch::default();
        for _ in 0..2 {
            let out = maxpool2d_forward_with(&mut s, &x, &spec);
            let dy = Tensor::full(out.y.shape().clone(), 1.0);
            let dx = maxpool2d_backward_with(&mut s, x.shape(), &out.argmax, &dy);
            s.put_u32(out.argmax);
            s.put_tensor(out.y);
            s.put_tensor(dx);
        }
        let warm = s.misses();
        let out = maxpool2d_forward_with(&mut s, &x, &spec);
        let dy = Tensor::full(out.y.shape().clone(), 1.0);
        let dx = maxpool2d_backward_with(&mut s, x.shape(), &out.argmax, &dy);
        s.put_u32(out.argmax);
        s.put_tensor(out.y);
        s.put_tensor(dx);
        assert_eq!(s.misses(), warm, "warm pooling must not grow buffers");
    }
}
