//! Pooling layers: 2×2-style max pooling and global average pooling.

use crate::{Shape, Tensor};

/// Max-pool geometry (square window, stride = window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPoolSpec {
    /// Pooling window height/width (also the stride).
    pub window: usize,
}

impl MaxPoolSpec {
    /// Output spatial size; requires the window to divide the input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h.is_multiple_of(self.window) && w.is_multiple_of(self.window),
            "maxpool window {} must divide input {}x{}",
            self.window,
            h,
            w
        );
        (h / self.window, w / self.window)
    }
}

/// Result of a max-pool forward pass: output plus the winning indices
/// (flat index into the input) needed by the backward pass.
pub struct MaxPoolOut {
    /// Pooled output, `N×C×OH×OW`.
    pub y: Tensor,
    /// For each output element, the flat input index of its maximum.
    pub argmax: Vec<u32>,
}

/// Max-pool forward over an NCHW tensor.
pub fn maxpool2d_forward(x: &Tensor, spec: &MaxPoolSpec) -> MaxPoolOut {
    let (n, c, h, w) = x.shape().as_nchw();
    let (oh, ow) = spec.out_hw(h, w);
    let mut y = Tensor::zeros(Shape::from([n, c, oh, ow]));
    let mut argmax = vec![0u32; n * c * oh * ow];
    let xd = x.data();
    let yd = y.data_mut();
    let win = spec.window;
    for i in 0..n {
        for ch in 0..c {
            let in_base = (i * c + ch) * h * w;
            let out_base = (i * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..win {
                        for kx in 0..win {
                            let iy = oy * win + ky;
                            let ix = ox * win + kx;
                            let idx = in_base + iy * w + ix;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    yd[out_base + oy * ow + ox] = best;
                    argmax[out_base + oy * ow + ox] = best_idx as u32;
                }
            }
        }
    }
    MaxPoolOut { y, argmax }
}

/// Max-pool backward: routes each output gradient to its argmax input.
pub fn maxpool2d_backward(input_shape: &Shape, argmax: &[u32], dy: &Tensor) -> Tensor {
    let mut dx = Tensor::zeros(input_shape.clone());
    let dxd = dx.data_mut();
    for (&idx, &g) in argmax.iter().zip(dy.data().iter()) {
        dxd[idx as usize] += g;
    }
    dx
}

/// Global average pooling: `N×C×H×W → N×C`.
pub fn global_avg_pool_forward(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().as_nchw();
    let area = (h * w) as f32;
    let mut y = Tensor::zeros(Shape::from([n, c]));
    let xd = x.data();
    let yd = y.data_mut();
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let s: f32 = xd[base..base + h * w].iter().sum();
            yd[i * c + ch] = s / area;
        }
    }
    y
}

/// Global average pooling backward: spreads each `N×C` gradient uniformly
/// over the `H×W` plane.
pub fn global_avg_pool_backward(input_shape: &Shape, dy: &Tensor) -> Tensor {
    let (n, c, h, w) = input_shape.as_nchw();
    let inv_area = 1.0 / (h * w) as f32;
    let mut dx = Tensor::zeros(input_shape.clone());
    let dxd = dx.data_mut();
    let dyd = dy.data();
    for i in 0..n {
        for ch in 0..c {
            let g = dyd[i * c + ch] * inv_area;
            let base = (i * c + ch) * h * w;
            for v in &mut dxd[base..base + h * w] {
                *v = g;
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_slice_approx_eq;

    #[test]
    fn maxpool_forward_simple() {
        // 1x1x4x4 image with known 2x2 maxima.
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.0, //
                -3.0, -4.0, 0.5, 0.0,
            ],
        )
        .unwrap();
        let out = maxpool2d_forward(&x, &MaxPoolSpec { window: 2 });
        assert_slice_approx_eq(out.y.data(), &[4.0, 8.0, -1.0, 0.5], 1e-6);
        assert_eq!(out.argmax, vec![5, 7, 8, 14]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let out = maxpool2d_forward(&x, &MaxPoolSpec { window: 2 });
        let dy = Tensor::from_vec([1, 1, 1, 1], vec![2.5]).unwrap();
        let dx = maxpool2d_backward(x.shape(), &out.argmax, &dy);
        assert_slice_approx_eq(dx.data(), &[0.0, 2.5, 0.0, 0.0], 1e-6);
    }

    #[test]
    fn maxpool_numerical_gradient() {
        let x = Tensor::randn([2, 3, 4, 4], 1.0, 55);
        let spec = MaxPoolSpec { window: 2 };
        let out = maxpool2d_forward(&x, &spec);
        let dy = Tensor::full(out.y.shape().clone(), 1.0);
        let dx = maxpool2d_backward(x.shape(), &out.argmax, &dy);
        let eps = 1e-3f32;
        for &xi in &[0usize, 10, 47, x.numel() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let num = (maxpool2d_forward(&xp, &spec).y.sum()
                - maxpool2d_forward(&xm, &spec).y.sum())
                / (2.0 * eps as f64);
            assert!(
                (num - dx.data()[xi] as f64).abs() < 1e-2,
                "dx[{xi}]: {num} vs {}",
                dx.data()[xi]
            );
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn maxpool_rejects_nondivisible() {
        let x = Tensor::zeros([1, 1, 5, 4]);
        maxpool2d_forward(&x, &MaxPoolSpec { window: 2 });
    }

    #[test]
    fn gap_forward_backward() {
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0])
            .unwrap();
        let y = global_avg_pool_forward(&x);
        assert_slice_approx_eq(y.data(), &[2.5, 25.0], 1e-6);
        let dy = Tensor::from_vec([1, 2], vec![4.0, 8.0]).unwrap();
        let dx = global_avg_pool_backward(x.shape(), &dy);
        assert_slice_approx_eq(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], 1e-6);
    }

    #[test]
    fn gap_gradient_is_exact_adjoint() {
        // <GAP(x), dy> == <x, GAPᵀ(dy)> for random inputs.
        let x = Tensor::randn([3, 4, 5, 5], 1.0, 77);
        let dy = Tensor::randn([3, 4], 1.0, 78);
        let y = global_avg_pool_forward(&x);
        let dx = global_avg_pool_backward(x.shape(), &dy);
        let lhs: f64 =
            y.data().iter().zip(dy.data().iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        let rhs: f64 =
            x.data().iter().zip(dx.data().iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-4 * lhs.abs().max(1.0));
    }
}
