//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary inputs.

use dgs_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use dgs_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};
use dgs_tensor::ops::{log_softmax_rows, softmax_rows};
use dgs_tensor::Tensor;
use proptest::prelude::*;

fn tensor2(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::randn([rows, cols], 1.0, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_associative(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, p in 1usize..8, seed in 0u64..100,
    ) {
        let a = tensor2(m, k, seed);
        let b = tensor2(k, n, seed + 1);
        let c = tensor2(n, p, seed + 2);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        for (x, y) in left.data().iter().zip(right.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3 * y.abs().max(1.0));
        }
    }

    /// The transposed kernels agree with explicit transposition:
    /// matmul_at_b(Aᵀ-storage, B) == A·B and matmul_a_bt(A, Bᵀ-storage) == A·B.
    #[test]
    fn transposed_kernels_consistent(
        m in 1usize..7, k in 1usize..7, n in 1usize..7, seed in 0u64..100,
    ) {
        let a = tensor2(m, k, seed);
        let b = tensor2(k, n, seed + 9);
        let reference = matmul(&a, &b);
        // Build Aᵀ stored k×m.
        let mut a_t = Tensor::zeros([k, m]);
        for i in 0..m {
            for j in 0..k {
                *a_t.at_mut(&[j, i]) = a.at(&[i, j]);
            }
        }
        let via_at = matmul_at_b(&a_t, &b);
        // Build Bᵀ stored n×k.
        let mut b_t = Tensor::zeros([n, k]);
        for i in 0..k {
            for j in 0..n {
                *b_t.at_mut(&[j, i]) = b.at(&[i, j]);
            }
        }
        let via_bt = matmul_a_bt(&a, &b_t);
        for ((x, y), z) in reference
            .data()
            .iter()
            .zip(via_at.data().iter())
            .zip(via_bt.data().iter())
        {
            prop_assert!((x - y).abs() < 1e-4 * x.abs().max(1.0));
            prop_assert!((x - z).abs() < 1e-4 * x.abs().max(1.0));
        }
    }

    /// Convolution is linear in the input: conv(x1 + x2) == conv(x1) + conv(x2)
    /// (bias-free).
    #[test]
    fn conv_linear_in_input(seed in 0u64..50) {
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let w = Tensor::randn([spec.weight_len()], 0.5, seed).into_vec();
        let x1 = Tensor::randn([1, 2, 5, 5], 1.0, seed + 1);
        let x2 = Tensor::randn([1, 2, 5, 5], 1.0, seed + 2);
        let mut x_sum = x1.clone();
        x_sum.add_assign(&x2);
        let y_sum = conv2d_forward(&x_sum, &w, &[], &spec);
        let mut y1 = conv2d_forward(&x1, &w, &[], &spec);
        let y2 = conv2d_forward(&x2, &w, &[], &spec);
        y1.add_assign(&y2);
        for (a, b) in y_sum.data().iter().zip(y1.data().iter()) {
            prop_assert!((a - b).abs() < 1e-3 * b.abs().max(1.0));
        }
    }

    /// Conv backward is the exact adjoint of forward:
    /// <conv(x), dy> == <x, conv_backward(dy).dx> for bias-free convs.
    #[test]
    fn conv_backward_is_adjoint(seed in 0u64..50) {
        let spec = Conv2dSpec { in_channels: 2, out_channels: 2, kernel: 3, stride: 2, padding: 1 };
        let w = Tensor::randn([spec.weight_len()], 0.5, seed).into_vec();
        let x = Tensor::randn([2, 2, 6, 6], 1.0, seed + 3);
        let y = conv2d_forward(&x, &w, &[], &spec);
        let dy = Tensor::randn(y.shape().clone(), 1.0, seed + 4);
        let grads = conv2d_backward(&x, &w, &dy, &spec, false);
        let lhs: f64 = y
            .data()
            .iter()
            .zip(dy.data().iter())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(grads.dx.data().iter())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        prop_assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "adjoint identity violated: {} vs {}", lhs, rhs
        );
    }

    /// Softmax rows are probability distributions, invariant to row-wise
    /// constant shifts, and consistent with log-softmax.
    #[test]
    fn softmax_properties(rows in 1usize..6, cols in 2usize..8, shift in -5.0f32..5.0, seed in 0u64..100) {
        let x = tensor2(rows, cols, seed);
        let p = softmax_rows(&x);
        for r in 0..rows {
            let row = &p.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let mut shifted = x.clone();
        shifted.map_inplace(|v| v + shift);
        let p2 = softmax_rows(&shifted);
        for (a, b) in p.data().iter().zip(p2.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        let lp = log_softmax_rows(&x);
        for (a, b) in p.data().iter().zip(lp.data().iter()) {
            prop_assert!((a.ln() - b).abs() < 1e-3);
        }
    }

    /// axpy then axpy with the negated coefficient restores the input.
    #[test]
    fn axpy_inverse(n in 1usize..64, alpha in -3.0f32..3.0, seed in 0u64..100) {
        let mut y = Tensor::randn([n], 1.0, seed);
        let y0 = y.clone();
        let x = Tensor::randn([n], 1.0, seed + 7);
        y.axpy(alpha, &x);
        y.axpy(-alpha, &x);
        for (a, b) in y.data().iter().zip(y0.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4 * b.abs().max(1.0));
        }
    }
}
