//! Property-based tests of the NN substrate: gradient correctness on random
//! architectures/inputs and dataset invariants.

use dgs_nn::activations::Tanh;
use dgs_nn::data::{Dataset, GaussianBlobs, SyntheticVision, TwoSpirals};
use dgs_nn::layer::{Layer, Linear};
use dgs_nn::loss::softmax_cross_entropy;
use dgs_nn::model::Network;
use dgs_tensor::{Shape, Tensor};
use proptest::prelude::*;

/// A smooth Linear/Tanh stack: finite differences are only trustworthy on
/// smooth functions, so the random-architecture property avoids both
/// ChannelNorm (curvature explodes on near-degenerate batches) and ReLU
/// (kinks within the probe interval give legitimate one-sided slopes).
/// Those layers have controlled-input gradient checks in their unit tests.
fn plain_mlp(input_dim: usize, hidden: usize, classes: usize, seed: u64) -> Network {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Linear::new("fc0", input_dim, hidden)),
        Box::new(Tanh::new("tanh0")),
        Box::new(Linear::new("head", hidden, classes)),
    ];
    Network::new(layers, Shape::from([input_dim]), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random MLP geometries: the analytic gradient matches the numerical
    /// gradient of the cross-entropy loss at sampled coordinates.
    #[test]
    fn mlp_gradients_match_numerical(
        input_dim in 2usize..6,
        hidden in 2usize..8,
        classes in 2usize..5,
        batch in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut net = plain_mlp(input_dim, hidden, classes, seed);
        let x = Tensor::randn([batch, input_dim], 1.0, seed ^ 0xABCD);
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        net.train_step(x.clone(), &labels);
        let analytic = net.params().grad().to_vec();

        let eps = 1e-2f32;
        let n = analytic.len();
        for &pi in &[0, n / 3, 2 * n / 3, n - 1] {
            let orig = net.params().data()[pi];
            net.params_mut().data_mut()[pi] = orig + eps;
            let lp = {
                let logits = net.forward(x.clone());
                softmax_cross_entropy(&logits, &labels).0
            };
            net.params_mut().data_mut()[pi] = orig - eps;
            let lm = {
                let logits = net.forward(x.clone());
                softmax_cross_entropy(&logits, &labels).0
            };
            net.params_mut().data_mut()[pi] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            prop_assert!(
                (num - analytic[pi]).abs() <= 3e-2 * num.abs().max(1.0),
                "grad[{}]: numerical {} vs analytic {}", pi, num, analytic[pi]
            );
        }
    }

    /// Datasets: labels are always in range, fills are idempotent, and the
    /// train/validation splits share the task but not the samples.
    #[test]
    fn dataset_contracts(len in 4usize..40, classes in 2usize..6, seed in 0u64..1000) {
        let ds = GaussianBlobs::new(len, 4, classes, 0.5, seed);
        let val = ds.validation(len);
        let n = ds.sample_shape().numel();
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        for i in 0..len.min(8) {
            let la = ds.fill(i, &mut a);
            prop_assert!(la < classes);
            let lb = ds.fill(i, &mut b);
            prop_assert_eq!(la, lb);
            prop_assert_eq!(&a, &b);
            // Validation shares the label layout but not the noise draw.
            let lv = val.fill(i, &mut b);
            prop_assert_eq!(lv, la);
            prop_assert_ne!(&a, &b, "validation sample must differ");
        }
    }

    /// SyntheticVision: deterministic per (seed, index) and pixel values
    /// are bounded (4 unit-amplitude sinusoids + noise).
    #[test]
    fn vision_bounded_and_deterministic(seed in 0u64..200, idx in 0usize..64) {
        let ds = SyntheticVision::new(64, 2, 8, 4, 0.5, seed);
        let n = ds.sample_shape().numel();
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        let la = ds.fill(idx, &mut a);
        let lb = ds.fill(idx, &mut b);
        prop_assert_eq!(la, lb);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| v.abs() < 16.0), "pixels bounded");
    }

    /// TwoSpirals points stay in a bounded disc and labels alternate.
    #[test]
    fn spirals_bounded(seed in 0u64..200) {
        let ds = TwoSpirals::new(32, 0.05, seed);
        let mut buf = [0.0f32; 2];
        for i in 0..32 {
            let label = ds.fill(i, &mut buf);
            prop_assert_eq!(label, i % 2);
            prop_assert!(buf[0].hypot(buf[1]) < 5.0);
        }
    }

    /// Batch assembly preserves per-sample contents and ordering.
    #[test]
    fn batch_matches_fills(seed in 0u64..200) {
        let ds = GaussianBlobs::new(16, 3, 2, 0.4, seed);
        let indices = [3usize, 0, 7, 7];
        let (x, labels) = ds.batch(&indices);
        prop_assert_eq!(x.shape().dims(), &[4usize, 3]);
        let mut buf = [0.0f32; 3];
        for (row, &i) in indices.iter().enumerate() {
            let l = ds.fill(i, &mut buf);
            prop_assert_eq!(labels[row], l);
            prop_assert_eq!(&x.data()[row * 3..(row + 1) * 3], &buf[..]);
        }
    }
}
