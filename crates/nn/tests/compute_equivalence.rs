//! Differential torture suite for the compute tier at the nn level.
//!
//! The `dgs_tensor` crate already proves each kernel bitwise-identical
//! against its scalar twin in isolation; this suite drives the *composed*
//! paths the training loop actually uses — layers, residual blocks, and
//! whole networks — under every backend and asserts the results agree bit
//! for bit on every non-NaN value (infinities, denormals, signed zeros,
//! plateau ties included) with NaN at identical positions. NaN *payload*
//! bits through arithmetic are excluded: LLVM leaves the surviving payload
//! of `fadd`/`fmul` on two NaN operands unspecified (see the accumulation
//! contract in `dgs_tensor::gemm`), so both-NaN pairs compare equal.
//! Data-movement paths (ReLU, pooling) still preserve payloads exactly.
//! The suite also pins the allocation-free steady state of the pooled
//! scratch.

use dgs_nn::layer::{Conv2d, Layer, Linear, MaxPool2d, ReLU};
use dgs_nn::models::{mlp, resnet_lite, tiny_cnn};
use dgs_nn::{ComputeScratch, Kernel};
use dgs_tensor::{Shape, Tensor};

/// Deterministic torture generator: mixes normal values with the IEEE-754
/// special cases the bitwise contract must survive.
fn torture_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..len)
        .map(|_| {
            let r = next();
            match r % 13 {
                0 => f32::NAN,
                1 => f32::from_bits(0x7FC0_1234), // NaN with a payload
                2 => f32::INFINITY,
                3 => f32::NEG_INFINITY,
                4 => 0.0,
                5 => -0.0,
                6 => f32::from_bits(1), // smallest positive denormal
                7 => -f32::MIN_POSITIVE / 2.0,
                8 => 3.25, // plateau value (repeats → max ties)
                _ => ((r >> 16) as i32 % 1000) as f32 / 250.0 - 2.0,
            }
        })
        .collect()
}

/// Bitwise equality for arithmetic outputs: both-NaN pairs compare equal
/// (payloads through `fadd`/`fmul` are compiler-unspecified); everything
/// else must match to the bit.
fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x.is_nan() && y.is_nan() {
            continue;
        }
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit divergence at {i}: {x:?} vs {y:?}");
    }
}

/// Strict bitwise equality — NaN payloads included. For data-movement
/// paths (ReLU, pooling) that copy values without arithmetic.
fn assert_bits_exact(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit divergence at {i}: {x:?} vs {y:?}");
    }
}

#[test]
fn gemm_backends_identical_on_torture_inputs() {
    // Shapes cover the microkernel interior (multiples of 6×16), ragged
    // edges, k = 1 chains, and a product past the parallel threshold.
    for &(m, k, n) in
        &[(1, 1, 1), (6, 8, 16), (7, 9, 17), (13, 1, 5), (48, 32, 64), (160, 24, 160)]
    {
        let a = torture_vec(m * k, 0x5EED_0001);
        let b = torture_vec(k * n, 0x5EED_0002);
        let mut c_scalar = vec![0.0f32; m * n];
        let mut c_simd = vec![0.0f32; m * n];
        Kernel::Scalar.gemm(&a, &b, &mut c_scalar, m, k, n);
        Kernel::Simd.gemm(&a, &b, &mut c_simd, m, k, n);
        assert_bits_eq(&c_scalar, &c_simd, &format!("gemm {m}x{k}x{n}"));

        // Same buffers reinterpreted for the transposed layouts: `a` as a
        // k×m store (Aᵀ·B) and `b` as an n×k store (A·Bᵀ).
        Kernel::Scalar.gemm_at_b(&a, &b, &mut c_scalar, m, k, n);
        Kernel::Simd.gemm_at_b(&a, &b, &mut c_simd, m, k, n);
        assert_bits_eq(&c_scalar, &c_simd, &format!("gemm_at_b {m}x{k}x{n}"));

        Kernel::Scalar.gemm_a_bt(&a, &b, &mut c_scalar, m, k, n);
        Kernel::Simd.gemm_a_bt(&a, &b, &mut c_simd, m, k, n);
        assert_bits_eq(&c_scalar, &c_simd, &format!("gemm_a_bt {m}x{k}x{n}"));
    }
}

#[test]
fn linear_layer_backends_identical() {
    let x = Tensor::from_vec([4, 10], torture_vec(40, 7)).unwrap();
    let dy = Tensor::from_vec([4, 6], torture_vec(24, 8)).unwrap();
    let mut outs = Vec::new();
    for kernel in [Kernel::Scalar, Kernel::Simd] {
        let mut l = Linear::new("fc", 10, 6);
        let mut params = vec![0.0f32; 10 * 6 + 6];
        l.init_params(&mut params, 5);
        let mut s = ComputeScratch::new(kernel);
        let y = l.forward(&params, x.clone(), &mut s);
        let mut grad = vec![0.0f32; params.len()];
        let dx = l.backward(&params, &mut grad, dy.clone(), &mut s);
        outs.push((y, grad, dx));
    }
    assert_bits_eq(outs[0].0.data(), outs[1].0.data(), "linear forward");
    assert_bits_eq(&outs[0].1, &outs[1].1, "linear param grads");
    assert_bits_eq(outs[0].2.data(), outs[1].2.data(), "linear dx");
}

#[test]
fn conv_layer_backends_identical_on_torture_inputs() {
    // Finite weights, torture activations: NaN/Inf propagate through
    // im2col + GEMM identically on every backend.
    let x = Tensor::from_vec([2, 2, 6, 6], torture_vec(2 * 2 * 6 * 6, 11)).unwrap();
    let mut outs = Vec::new();
    for kernel in [Kernel::Scalar, Kernel::Simd] {
        let mut l = Conv2d::new("conv", 2, 3, 3, 1, 1, true);
        let mut params = vec![0.0f32; 3 * 2 * 9 + 3];
        l.init_params(&mut params, 6);
        let mut s = ComputeScratch::new(kernel);
        let y = l.forward(&params, x.clone(), &mut s);
        let dy = Tensor::from_vec(y.shape().clone(), torture_vec(y.numel(), 12)).unwrap();
        let mut grad = vec![0.0f32; params.len()];
        let dx = l.backward(&params, &mut grad, dy, &mut s);
        outs.push((y, grad, dx));
    }
    assert_bits_eq(outs[0].0.data(), outs[1].0.data(), "conv forward");
    assert_bits_eq(&outs[0].1, &outs[1].1, "conv param grads");
    assert_bits_eq(outs[0].2.data(), outs[1].2.data(), "conv dx");
}

#[test]
fn relu_and_maxpool_backends_identical_on_torture_inputs() {
    let x = Tensor::from_vec([2, 3, 8, 8], torture_vec(2 * 3 * 8 * 8, 21)).unwrap();
    let mut outs = Vec::new();
    for kernel in [Kernel::Scalar, Kernel::Simd] {
        let mut s = ComputeScratch::new(kernel);
        let mut relu = ReLU::new("relu");
        let mut pool = MaxPool2d::new("pool", 2);
        let h = relu.forward(&[], x.clone(), &mut s);
        let y = pool.forward(&[], h, &mut s);
        let dy = Tensor::from_vec(y.shape().clone(), torture_vec(y.numel(), 22)).unwrap();
        let dh = pool.backward(&[], &mut [], dy, &mut s);
        let dx = relu.backward(&[], &mut [], dh, &mut s);
        outs.push((y, dx));
    }
    assert_bits_exact(outs[0].0.data(), outs[1].0.data(), "relu+maxpool forward");
    assert_bits_exact(outs[0].1.data(), outs[1].1.data(), "relu+maxpool backward");
}

/// One SGD step on `net`, returning (param bits, grad bits).
fn step_bits(net: &mut dgs_nn::Network, x: &Tensor, labels: &[usize]) -> (Vec<u32>, Vec<u32>) {
    net.train_step(x.clone(), labels);
    let grads: Vec<u32> = net.params().grad().iter().map(|v| v.to_bits()).collect();
    let lr = 0.05f32;
    let g = net.params().grad().to_vec();
    let data = net.params_mut().data_mut();
    for (p, gi) in data.iter_mut().zip(g.iter()) {
        *p -= lr * gi;
    }
    (net.params().data().iter().map(|v| v.to_bits()).collect(), grads)
}

#[test]
fn whole_network_training_identical_across_backends() {
    // mlp exercises Linear/ChannelNorm/ReLU; tiny_cnn adds conv + maxpool;
    // resnet_lite adds residual blocks, projections and global avg pool.
    let builders: Vec<(&str, Box<dyn Fn() -> dgs_nn::Network>)> = vec![
        ("mlp", Box::new(|| mlp(12, &[16, 8], 4, 31))),
        ("tiny_cnn", Box::new(|| tiny_cnn(2, 8, 4, 4, 32))),
        ("resnet_lite", Box::new(|| resnet_lite(1, 8, 3, 4, 33))),
    ];
    for (name, build) in builders {
        let mut net_probe = build();
        let in_shape = {
            let mut dims = vec![6usize];
            dims.extend_from_slice(net_probe.input_shape().dims());
            Shape::new(dims)
        };
        let x = Tensor::randn(in_shape, 1.0, 41);
        let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let _ = net_probe.forward(x.clone());

        let mut results = Vec::new();
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut net = build();
            net.set_kernel(kernel);
            assert_eq!(net.kernel(), kernel);
            let mut last = (Vec::new(), Vec::new());
            for _ in 0..3 {
                last = step_bits(&mut net, &x, &labels);
            }
            results.push(last);
        }
        assert_eq!(results[0].1, results[1].1, "{name}: gradient bits diverged across backends");
        assert_eq!(results[0].0, results[1].0, "{name}: parameter bits diverged across backends");
    }
}

#[test]
fn training_reaches_allocation_free_steady_state() {
    let mut net = tiny_cnn(2, 8, 4, 4, 55);
    let x = Tensor::randn([8, 2, 8, 8], 1.0, 56);
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    // Warm the pools: a few steps populate every buffer class the step
    // needs (forward activations, im2col columns, gradients).
    for _ in 0..3 {
        net.train_step(x.clone(), &labels);
    }
    let warm = net.scratch_misses();
    for _ in 0..5 {
        net.train_step(x.clone(), &labels);
    }
    assert_eq!(
        net.scratch_misses(),
        warm,
        "steady-state training steps must draw every buffer from the pool"
    );
}

#[test]
fn runtime_kernel_honours_env_and_cpu() {
    // Kernel::runtime() is cached process-wide, so rather than mutating the
    // environment mid-process, check the cached choice against the selection
    // rule for whatever DGS_KERNEL this test process was launched with.
    let auto = if Kernel::simd_available() { Kernel::Simd } else { Kernel::Scalar };
    let expected = match std::env::var("DGS_KERNEL").as_deref() {
        Ok("scalar") => Kernel::Scalar,
        Ok("simd") => auto, // falls back to scalar when AVX2 is missing
        _ => auto,
    };
    assert_eq!(Kernel::runtime(), expected);
    // A fresh network picks up the runtime backend by default.
    assert_eq!(ComputeScratch::default().kernel(), expected);
    assert_eq!(tiny_cnn(1, 4, 2, 2, 1).kernel(), expected);
}
