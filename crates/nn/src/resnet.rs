//! Residual blocks — self-contained composite layers.
//!
//! A [`ResidualBlock`] owns its two conv+norm sub-layers and implements the
//! [`Layer`] trait itself, managing the sub-layers' parameter layout within
//! its own flat slice. This keeps the `Network` builder a simple sequence
//! while preserving the residual topology of ResNet-18, which matters for
//! the reproduction: per-layer Top-k then operates over heterogeneous
//! parameter tensors (3×3 convs, 1×1 projections, norm scales) exactly as
//! in the paper's ResNet experiments.

use crate::layer::{ChannelNorm, Conv2d, Layer, ReLU};
use dgs_tensor::rng::derive_seed;
use dgs_tensor::{ComputeScratch, Shape, Tensor};

/// A basic pre-activation-free residual block:
/// `y = relu(norm2(conv2(relu(norm1(conv1(x))))) + proj(x))`
/// where `proj` is identity when geometry allows, else a 1×1 strided conv.
pub struct ResidualBlock {
    name: String,
    conv1: Conv2d,
    norm1: ChannelNorm,
    relu1: ReLU,
    conv2: Conv2d,
    norm2: ChannelNorm,
    /// 1×1 projection for channel/stride changes; `None` = identity skip.
    proj: Option<Conv2d>,
    /// Cached forward state for the final ReLU and the skip path.
    cached_pre_relu: Option<Tensor>,
    cached_input: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a residual block `in_channels → out_channels` with the given
    /// stride on the first conv (stride 2 halves the spatial extent).
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
    ) -> Self {
        let name = name.into();
        let conv1 =
            Conv2d::new(format!("{name}.conv1"), in_channels, out_channels, 3, stride, 1, false);
        let norm1 = ChannelNorm::new(format!("{name}.norm1"), out_channels);
        let relu1 = ReLU::new(format!("{name}.relu1"));
        let conv2 =
            Conv2d::new(format!("{name}.conv2"), out_channels, out_channels, 3, 1, 1, false);
        let norm2 = ChannelNorm::new(format!("{name}.norm2"), out_channels);
        let proj = if in_channels != out_channels || stride != 1 {
            Some(Conv2d::new(
                format!("{name}.proj"),
                in_channels,
                out_channels,
                1,
                stride,
                0,
                false,
            ))
        } else {
            None
        };
        ResidualBlock {
            name,
            conv1,
            norm1,
            relu1,
            conv2,
            norm2,
            proj,
            cached_pre_relu: None,
            cached_input: None,
        }
    }

    /// Sub-layers in forward order, for layout bookkeeping.
    fn sublayers(&self) -> Vec<&dyn Layer> {
        let mut v: Vec<&dyn Layer> =
            vec![&self.conv1, &self.norm1, &self.relu1, &self.conv2, &self.norm2];
        if let Some(p) = &self.proj {
            v.push(p);
        }
        v
    }

    /// `(start, len)` of each sub-layer's window within this block's slice.
    fn sub_windows(&self) -> Vec<(usize, usize)> {
        let mut windows = Vec::new();
        let mut offset = 0usize;
        for l in self.sublayers() {
            let len: usize = l.param_sizes().iter().map(|&(_, n)| n).sum();
            windows.push((offset, len));
            offset += len;
        }
        windows
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        // The block exposes one segment per sub-parameter so the partition
        // (and therefore per-layer Top-k) sees the real layer structure.
        let mut sizes = Vec::new();
        for l in self.sublayers() {
            for (_suffix, len) in l.param_sizes() {
                // Leak-free static naming is impossible here (names are
                // dynamic); use a fixed suffix per slot. The partition's
                // human name comes from the block's name; exact suffixes
                // matter only for debugging.
                sizes.push(("param", len));
            }
        }
        sizes
    }

    fn init_params(&self, params: &mut [f32], seed: u64) {
        let windows = self.sub_windows();
        for (i, (l, &(start, len))) in self.sublayers().into_iter().zip(windows.iter()).enumerate()
        {
            l.init_params(&mut params[start..start + len], derive_seed(seed, i as u64));
        }
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        self.conv1.output_shape(input)
    }

    fn forward(&mut self, params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let windows = self.sub_windows();
        let (c1, n1, _, c2, n2) = (windows[0], windows[1], windows[2], windows[3], windows[4]);
        let h = self.conv1.forward(&params[c1.0..c1.0 + c1.1], x.clone(), scratch);
        let h = self.norm1.forward(&params[n1.0..n1.0 + n1.1], h, scratch);
        let h = self.relu1.forward(&[], h, scratch);
        let h = self.conv2.forward(&params[c2.0..c2.0 + c2.1], h, scratch);
        let mut h = self.norm2.forward(&params[n2.0..n2.0 + n2.1], h, scratch);
        let skip = match &mut self.proj {
            Some(p) => {
                let w = windows[5];
                p.forward(&params[w.0..w.0 + w.1], x.clone(), scratch)
            }
            None => x.clone(),
        };
        h.add_assign(&skip);
        scratch.put_tensor(skip);
        // The pre-activation tensor is cached for the backward gate; the
        // ReLU output itself lives in a pooled buffer.
        let mut yd = scratch.take(h.numel());
        yd.extend_from_slice(h.data());
        scratch.kernel().relu_inplace(&mut yd);
        let shape = h.shape().clone();
        self.cached_pre_relu = Some(h);
        self.cached_input = Some(x);
        Tensor::from_vec(shape, yd).unwrap()
    }

    fn backward(
        &mut self,
        params: &[f32],
        grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let windows = self.sub_windows();
        let pre = self.cached_pre_relu.take().expect("block backward without forward");
        let x = self.cached_input.take().expect("block backward without forward");
        scratch.put_tensor(x);

        // Final ReLU gate (the compute tier's mask: zero where pre ≤ 0).
        let mut d = dy;
        scratch.kernel().relu_grad_mask(pre.data(), d.data_mut());
        scratch.put_tensor(pre);

        // Branch gradients: d flows into both the conv path and the skip.
        let (c1, n1, _, c2, n2) = (windows[0], windows[1], windows[2], windows[3], windows[4]);
        let d_main = {
            let dh = self.norm2.backward(
                &params[n2.0..n2.0 + n2.1],
                &mut grad[n2.0..n2.0 + n2.1],
                d.clone(),
                scratch,
            );
            let dh = self.conv2.backward(
                &params[c2.0..c2.0 + c2.1],
                &mut grad[c2.0..c2.0 + c2.1],
                dh,
                scratch,
            );
            let dh = self.relu1.backward(&[], &mut [], dh, scratch);
            let dh = self.norm1.backward(
                &params[n1.0..n1.0 + n1.1],
                &mut grad[n1.0..n1.0 + n1.1],
                dh,
                scratch,
            );
            self.conv1.backward(
                &params[c1.0..c1.0 + c1.1],
                &mut grad[c1.0..c1.0 + c1.1],
                dh,
                scratch,
            )
        };
        let d_skip = match &mut self.proj {
            Some(p) => {
                let w = windows[5];
                p.backward(&params[w.0..w.0 + w.1], &mut grad[w.0..w.0 + w.1], d, scratch)
            }
            None => d,
        };
        let mut dx = d_main;
        dx.add_assign(&d_skip);
        scratch.put_tensor(d_skip);
        dx
    }

    fn flops(&self, input: &Shape) -> u64 {
        let mid = self.conv1.output_shape(input);
        let mut f = self.conv1.flops(input) + self.norm1.flops(&mid) + self.relu1.flops(&mid);
        f += self.conv2.flops(&mid) + self.norm2.flops(&mid);
        if let Some(p) = &self.proj {
            f += p.flops(input);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_params(layer: &dyn Layer, seed: u64) -> Vec<f32> {
        let n: usize = layer.param_sizes().iter().map(|&(_, l)| l).sum();
        let mut p = vec![0.0f32; n];
        layer.init_params(&mut p, seed);
        p
    }

    fn sc() -> ComputeScratch {
        ComputeScratch::default()
    }

    #[test]
    fn identity_block_shapes() {
        let mut b = ResidualBlock::new("rb", 4, 4, 1);
        assert!(b.proj.is_none());
        let params = alloc_params(&b, 1);
        let x = Tensor::randn([2, 4, 6, 6], 1.0, 2);
        assert_eq!(b.output_shape(x.shape()).dims(), &[2, 4, 6, 6]);
        let y = b.forward(&params, x, &mut sc());
        assert_eq!(y.shape().dims(), &[2, 4, 6, 6]);
        // Output is post-ReLU: non-negative.
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn projection_block_shapes() {
        let mut b = ResidualBlock::new("rb", 4, 8, 2);
        assert!(b.proj.is_some());
        let params = alloc_params(&b, 1);
        let x = Tensor::randn([2, 4, 8, 8], 1.0, 2);
        assert_eq!(b.output_shape(x.shape()).dims(), &[2, 8, 4, 4]);
        let y = b.forward(&params, x, &mut sc());
        assert_eq!(y.shape().dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn block_gradient_check() {
        let mut b = ResidualBlock::new("rb", 2, 2, 1);
        let params = alloc_params(&b, 3);
        let x = Tensor::randn([2, 2, 4, 4], 1.0, 4);

        let y = b.forward(&params, x.clone(), &mut sc());
        let mut grad = vec![0.0f32; params.len()];
        let dx = b.backward(&params, &mut grad, Tensor::full(y.shape().clone(), 1.0), &mut sc());

        let eps = 1e-2f32;
        let loss = |b: &mut ResidualBlock, params: &[f32], x: &Tensor| -> f64 {
            let s = &mut sc();
            let y = b.forward(params, x.clone(), s);
            // Consume cached state so the next forward is clean.
            b.backward(params, &mut vec![0.0; params.len()], Tensor::zeros(y.shape().clone()), s);
            y.sum()
        };
        for &pi in &[0usize, params.len() / 3, params.len() - 1] {
            let mut pp = params.clone();
            pp[pi] += eps;
            let lp = loss(&mut b, &pp, &x);
            let mut pm = params.clone();
            pm[pi] -= eps;
            let lm = loss(&mut b, &pm, &x);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - grad[pi]).abs() < 5e-2 * num.abs().max(1.0),
                "param[{pi}]: numerical {num} vs analytic {}",
                grad[pi]
            );
        }
        for &xi in &[0usize, x.numel() / 2, x.numel() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss(&mut b, &params, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss(&mut b, &params, &xm);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[xi]).abs() < 5e-2 * num.abs().max(1.0),
                "dx[{xi}]: numerical {num} vs analytic {}",
                dx.data()[xi]
            );
        }
    }

    #[test]
    fn projection_block_gradient_check_input() {
        let mut b = ResidualBlock::new("rb", 2, 4, 2);
        let params = alloc_params(&b, 5);
        let x = Tensor::randn([1, 2, 4, 4], 1.0, 6);
        let y = b.forward(&params, x.clone(), &mut sc());
        let mut grad = vec![0.0f32; params.len()];
        let dx = b.backward(&params, &mut grad, Tensor::full(y.shape().clone(), 1.0), &mut sc());
        let eps = 1e-2f32;
        let loss = |b: &mut ResidualBlock, x: &Tensor| -> f64 {
            let s = &mut sc();
            let y = b.forward(&params, x.clone(), s);
            b.backward(&params, &mut vec![0.0; params.len()], Tensor::zeros(y.shape().clone()), s);
            y.sum()
        };
        for &xi in &[0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss(&mut b, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss(&mut b, &xm);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[xi]).abs() < 5e-2 * num.abs().max(1.0),
                "dx[{xi}]: numerical {num} vs analytic {}",
                dx.data()[xi]
            );
        }
    }

    #[test]
    fn flops_positive() {
        let b = ResidualBlock::new("rb", 4, 8, 2);
        assert!(b.flops(&Shape::from([1, 4, 8, 8])) > 0);
    }

    #[test]
    fn init_deterministic() {
        let b = ResidualBlock::new("rb", 2, 4, 1);
        let a = alloc_params(&b, 9);
        let c = alloc_params(&b, 9);
        assert_eq!(a, c);
        let d = alloc_params(&b, 10);
        assert_ne!(a, d);
    }
}
