//! Additional activation layers: Tanh, Sigmoid, LeakyReLU, and 2-D average
//! pooling. These extend the substrate beyond the ReLU-only networks the
//! headline experiments use, so downstream users can build the
//! architectures they need.

use crate::layer::Layer;
use dgs_tensor::{ComputeScratch, Shape, Tensor};

macro_rules! pointwise_layer {
    ($(#[$doc:meta])* $name:ident, $fwd:expr, $bwd:expr) => {
        $(#[$doc])*
        pub struct $name {
            label: String,
            cached_input: Option<Tensor>,
        }

        impl $name {
            /// Creates the layer.
            pub fn new(label: impl Into<String>) -> Self {
                $name { label: label.into(), cached_input: None }
            }
        }

        impl Layer for $name {
            fn name(&self) -> &str {
                &self.label
            }

            fn param_sizes(&self) -> Vec<(&'static str, usize)> {
                Vec::new()
            }

            fn init_params(&self, _params: &mut [f32], _seed: u64) {}

            fn output_shape(&self, input: &Shape) -> Shape {
                input.clone()
            }

            fn forward(
                &mut self,
                _params: &[f32],
                x: Tensor,
                scratch: &mut ComputeScratch,
            ) -> Tensor {
                // Pointwise maps stay scalar under every backend (their
                // transcendental chains have no SIMD twin in the compute
                // tier); only the output buffer comes from the pool.
                let mut y = scratch.take(x.numel());
                let f: fn(f32) -> f32 = $fwd;
                y.extend(x.data().iter().map(|&v| f(v)));
                let shape = x.shape().clone();
                self.cached_input = Some(x);
                Tensor::from_vec(shape, y).unwrap()
            }

            fn backward(
                &mut self,
                _params: &[f32],
                _grad: &mut [f32],
                dy: Tensor,
                scratch: &mut ComputeScratch,
            ) -> Tensor {
                let x = self
                    .cached_input
                    .take()
                    .expect("activation backward without forward");
                let mut dx = dy;
                let df: fn(f32) -> f32 = $bwd;
                for (d, &xi) in dx.data_mut().iter_mut().zip(x.data().iter()) {
                    *d *= df(xi);
                }
                scratch.put_tensor(x);
                dx
            }

            fn flops(&self, input: &Shape) -> u64 {
                input.numel() as u64 * 4
            }
        }
    };
}

pointwise_layer!(
    /// Hyperbolic tangent activation.
    Tanh,
    |v| v.tanh(),
    |v| {
        let t = v.tanh();
        1.0 - t * t
    }
);

pointwise_layer!(
    /// Logistic sigmoid activation.
    Sigmoid,
    |v| 1.0 / (1.0 + (-v).exp()),
    |v| {
        let s = 1.0 / (1.0 + (-v).exp());
        s * (1.0 - s)
    }
);

pointwise_layer!(
    /// Leaky ReLU with slope 0.01 on the negative side.
    LeakyReLU,
    |v| if v > 0.0 { v } else { 0.01 * v },
    |v| if v > 0.0 { 1.0 } else { 0.01 }
);

/// Average pooling with window == stride over NCHW tensors.
pub struct AvgPool2d {
    label: String,
    window: usize,
    cached_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with the given square window.
    pub fn new(label: impl Into<String>, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        AvgPool2d { label: label.into(), window, cached_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        &self.label
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    fn init_params(&self, _params: &mut [f32], _seed: u64) {}

    fn output_shape(&self, input: &Shape) -> Shape {
        let (n, c, h, w) = input.as_nchw();
        assert!(
            h.is_multiple_of(self.window) && w.is_multiple_of(self.window),
            "avgpool window {} must divide input {h}x{w}",
            self.window
        );
        Shape::from([n, c, h / self.window, w / self.window])
    }

    fn forward(&mut self, _params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        let out_shape = self.output_shape(x.shape());
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let win = self.window;
        let inv = 1.0 / (win * win) as f32;
        let mut y = scratch.take(n * c * oh * ow);
        let xd = x.data();
        if win == 2 {
            // The common window dispatches through the compute tier; its
            // chain `((((0+x00)+x01)+x10)+x11) * 0.25` is exactly this
            // loop's (ky, kx) order, so the general path below would
            // produce the same bits.
            let kernel = scratch.kernel();
            for plane in 0..n * c {
                let base = plane * h * w;
                kernel.avgpool2_plane(&xd[base..base + h * w], h, w, &mut y);
            }
        } else {
            for plane in 0..n * c {
                let in_base = plane * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..win {
                            for kx in 0..win {
                                acc += xd[in_base + (oy * win + ky) * w + ox * win + kx];
                            }
                        }
                        y.push(acc * inv);
                    }
                }
            }
        }
        self.cached_shape = Some(x.shape().clone());
        scratch.put_tensor(x);
        Tensor::from_vec(out_shape, y).unwrap()
    }

    fn backward(
        &mut self,
        _params: &[f32],
        _grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let shape = self.cached_shape.take().expect("avgpool backward without forward");
        let (n, c, h, w) = shape.as_nchw();
        let win = self.window;
        let (oh, ow) = (h / win, w / win);
        let inv = 1.0 / (win * win) as f32;
        let mut dxd = scratch.take_zeroed(shape.numel());
        {
            let dyd = dy.data();
            for plane in 0..n * c {
                let in_base = plane * h * w;
                let out_base = plane * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dyd[out_base + oy * ow + ox] * inv;
                        for ky in 0..win {
                            for kx in 0..win {
                                dxd[in_base + (oy * win + ky) * w + ox * win + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        let dx = Tensor::from_vec(shape, dxd).unwrap();
        scratch.put_tensor(dy);
        dx
    }

    fn flops(&self, input: &Shape) -> u64 {
        input.numel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> ComputeScratch {
        ComputeScratch::default()
    }

    fn grad_check_pointwise(layer: &mut dyn Layer, range: (f32, f32)) {
        let s = &mut sc();
        let x = Tensor::rand_uniform([2, 6], range.0, range.1, 7);
        let y = layer.forward(&[], x.clone(), s);
        let dx = layer.backward(&[], &mut [], Tensor::full(y.shape().clone(), 1.0), s);
        let eps = 1e-3f32;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = layer.forward(&[], xp, s).sum();
            layer.backward(&[], &mut [], Tensor::zeros(y.shape().clone()), s);
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = layer.forward(&[], xm, s).sum();
            layer.backward(&[], &mut [], Tensor::zeros(y.shape().clone()), s);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 1e-2 * num.abs().max(1.0),
                "{}[{i}]: numerical {num} vs analytic {}",
                layer.name(),
                dx.data()[i]
            );
        }
    }

    #[test]
    fn tanh_gradients() {
        grad_check_pointwise(&mut Tanh::new("tanh"), (-2.0, 2.0));
    }

    #[test]
    fn sigmoid_gradients() {
        grad_check_pointwise(&mut Sigmoid::new("sigmoid"), (-3.0, 3.0));
    }

    #[test]
    fn leaky_relu_gradients() {
        // Stay away from the kink at 0.
        grad_check_pointwise(&mut LeakyReLU::new("lrelu"), (0.1, 2.0));
        grad_check_pointwise(&mut LeakyReLU::new("lrelu"), (-2.0, -0.1));
    }

    #[test]
    fn tanh_bounds() {
        let mut t = Tanh::new("tanh");
        let x = Tensor::from_vec([3], vec![-100.0, 0.0, 100.0]).unwrap();
        let y = t.forward(&[], x, &mut sc());
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_midpoint() {
        let mut s = Sigmoid::new("sig");
        let y = s.forward(&[], Tensor::zeros([4]), &mut sc());
        assert!(y.data().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn avgpool_forward_known() {
        let mut p = AvgPool2d::new("avg", 2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let y = p.forward(&[], x, &mut sc());
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn avgpool_backward_uniform() {
        let mut p = AvgPool2d::new("avg", 2);
        let s = &mut sc();
        let x = Tensor::randn([2, 3, 4, 4], 1.0, 5);
        let y = p.forward(&[], x.clone(), s);
        let dx = p.backward(&[], &mut [], Tensor::full(y.shape().clone(), 1.0), s);
        // Every input position receives 1/4 of a unit gradient.
        assert!(dx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn avgpool_adjoint_identity() {
        let mut p = AvgPool2d::new("avg", 2);
        let s = &mut sc();
        let x = Tensor::randn([1, 2, 4, 4], 1.0, 9);
        let y = p.forward(&[], x.clone(), s);
        let dy = Tensor::randn(y.shape().clone(), 1.0, 10);
        let dx = p.backward(&[], &mut [], dy.clone(), s);
        let lhs: f64 =
            y.data().iter().zip(dy.data().iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        let rhs: f64 =
            x.data().iter().zip(dx.data().iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-4 * lhs.abs().max(1.0));
    }

    #[test]
    fn avgpool_window2_backends_identical() {
        use dgs_tensor::Kernel;
        let x = Tensor::randn([2, 3, 8, 8], 1.0, 21);
        let mut ys = Vec::new();
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut p = AvgPool2d::new("avg", 2);
            let mut s = ComputeScratch::new(kernel);
            ys.push(p.forward(&[], x.clone(), &mut s));
        }
        for (a, b) in ys[0].data().iter().zip(ys[1].data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "avgpool2 backends diverged");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn avgpool_rejects_nondivisible() {
        let mut p = AvgPool2d::new("avg", 3);
        p.forward(&[], Tensor::zeros([1, 1, 4, 4]), &mut sc());
    }
}
