//! Softmax cross-entropy loss and classification metrics.

use dgs_tensor::ops::log_softmax_rows;
use dgs_tensor::Tensor;

/// Mean softmax cross-entropy over a batch of logits, plus the gradient
/// w.r.t. the logits.
///
/// `logits` is `[batch, classes]`, `labels[i] < classes`. The gradient is
/// `(softmax(logits) − onehot) / batch`, so downstream SGD steps see the
/// *mean* gradient regardless of batch size.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    let (batch, classes) = logits.shape().as_matrix();
    assert_eq!(batch, labels.len(), "labels/batch mismatch");
    let log_probs = log_softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut dlogits = log_probs.clone();
    let inv_batch = 1.0 / batch as f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range ({classes} classes)");
        let row = &mut dlogits.data_mut()[r * classes..(r + 1) * classes];
        loss -= row[label] as f64;
        for v in row.iter_mut() {
            *v = v.exp() * inv_batch; // softmax / batch
        }
        row[label] -= inv_batch;
    }
    (loss / batch as f64, dlogits)
}

/// Number of rows whose argmax equals the label.
pub fn top1_correct(logits: &Tensor, labels: &[usize]) -> usize {
    logits.argmax_rows().iter().zip(labels.iter()).filter(|(p, l)| p == l).count()
}

/// Top-1 accuracy in `[0, 1]`.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    top1_correct(logits, labels) as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_of_uniform_logits_is_log_classes() {
        let logits = Tensor::zeros([4, 10]);
        let labels = vec![0, 3, 5, 9];
        let (loss, _) = softmax_cross_entropy(&logits, &labels);
        assert!((loss - (10.0f64).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_low_loss() {
        let mut logits = Tensor::zeros([2, 3]);
        logits.data_mut()[0] = 20.0; // row 0 -> class 0
        logits.data_mut()[3 + 2] = 20.0; // row 1 -> class 2
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::randn([3, 4], 1.0, 9);
        let labels = vec![1, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-2f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &labels).0
                - softmax_cross_entropy(&lm, &labels).0)
                / (2.0 * eps as f64);
            assert!(
                (num as f32 - grad.data()[i]).abs() < 1e-3,
                "dlogits[{i}]: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::randn([5, 7], 2.0, 10);
        let labels = vec![0, 1, 2, 3, 4];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        for r in 0..5 {
            let s: f32 = grad.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn accuracy_counts() {
        let logits = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        assert_eq!(top1_correct(&logits, &[0, 1, 1]), 2);
        assert!((top1_accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(top1_accuracy(&Tensor::zeros([0, 2]), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        softmax_cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }
}
