//! First-order optimizers over flat parameter vectors.
//!
//! The distributed trainers implement their update rules inline (they *are*
//! the object of study), but a release-grade NN library also needs plain
//! single-node optimizers. All of them operate on `(params, grads)` slices
//! so they compose with [`ParamSet`](crate::param::ParamSet) directly.

/// A stateful first-order optimizer.
pub trait Optimizer: Send {
    /// Applies one update step given the current gradients.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Updates the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Plain SGD: `θ ← θ − η∇`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, weight_decay: 0.0 }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        for (p, &g) in params.iter_mut().zip(grads.iter()) {
            *p -= self.lr * (g + self.weight_decay * *p);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Heavy-ball momentum SGD (the paper's MSGD): `u ← m·u + η∇`, `θ ← θ − u`.
/// With `nesterov`, the lookahead variant: `θ ← θ − (m·u + η∇)` after the
/// velocity update.
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    nesterov: bool,
    velocity: Vec<f32>,
}

impl MomentumSgd {
    /// Creates momentum SGD for `dim` parameters.
    pub fn new(dim: usize, lr: f32, momentum: f32) -> Self {
        MomentumSgd { lr, momentum, weight_decay: 0.0, nesterov: false, velocity: vec![0.0; dim] }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Enables Nesterov lookahead.
    pub fn nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// The velocity buffer (for tests).
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }
}

impl Optimizer for MomentumSgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        assert_eq!(params.len(), self.velocity.len());
        for ((p, u), &g) in params.iter_mut().zip(self.velocity.iter_mut()).zip(grads.iter()) {
            let g = g + self.weight_decay * *p;
            *u = self.momentum * *u + self.lr * g;
            if self.nesterov {
                *p -= self.momentum * *u + self.lr * g;
            } else {
                *p -= *u;
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba): bias-corrected first/second-moment adaptive steps.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl Adam {
    /// Creates Adam with the standard defaults (β₁ 0.9, β₂ 0.999, ε 1e-8).
    pub fn new(dim: usize, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Overrides the moment coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds (coupled) L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, m), v), &g) in
            params.iter_mut().zip(self.m.iter_mut()).zip(self.v.iter_mut()).zip(grads.iter())
        {
            let g = g + self.weight_decay * *p;
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = Σ (x_i − target_i)² with gradient 2(x − target).
    fn optimise(opt: &mut dyn Optimizer, steps: usize) -> Vec<f32> {
        let target = [1.0f32, -2.0, 0.5, 3.0];
        let mut x = vec![0.0f32; 4];
        for _ in 0..steps {
            let grads: Vec<f32> =
                x.iter().zip(target.iter()).map(|(&xi, &t)| 2.0 * (xi - t)).collect();
            opt.step(&mut x, &grads);
        }
        x.iter().zip(target.iter()).map(|(&xi, &t)| (xi - t).abs()).collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let err = optimise(&mut opt, 200);
        assert!(err.iter().all(|&e| e < 1e-3), "{err:?}");
    }

    #[test]
    fn momentum_converges_faster_than_sgd() {
        let mut sgd = Sgd::new(0.02);
        let mut mom = MomentumSgd::new(4, 0.02, 0.9);
        let err_sgd: f32 = optimise(&mut sgd, 50).iter().sum();
        let err_mom: f32 = optimise(&mut mom, 50).iter().sum();
        assert!(err_mom < err_sgd, "momentum should accelerate: {err_mom} vs {err_sgd}");
    }

    #[test]
    fn nesterov_converges() {
        let mut opt = MomentumSgd::new(4, 0.02, 0.9).nesterov();
        let err = optimise(&mut opt, 200);
        assert!(err.iter().all(|&e| e < 1e-2), "{err:?}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(4, 0.3);
        let err = optimise(&mut opt, 300);
        assert!(err.iter().all(|&e| e < 1e-2), "{err:?}");
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        // With a zero task gradient, decay shrinks parameters geometrically.
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        let mut x = vec![1.0f32; 3];
        let grads = vec![0.0f32; 3];
        for _ in 0..10 {
            opt.step(&mut x, &grads);
        }
        assert!(x.iter().all(|&v| v > 0.0 && v < 0.5), "{x:?}");
    }

    #[test]
    fn lr_schedule_hooks() {
        let mut opt = Adam::new(2, 0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        let mut m = MomentumSgd::new(2, 0.1, 0.5);
        m.set_lr(0.2);
        assert_eq!(m.lr(), 0.2);
    }

    #[test]
    fn momentum_matches_msgd_recurrence() {
        // One step by hand: u = m·0 + η·g; θ = θ0 − u.
        let mut opt = MomentumSgd::new(2, 0.1, 0.7);
        let mut x = vec![1.0f32, 2.0];
        opt.step(&mut x, &[1.0, -1.0]);
        assert!((x[0] - 0.9).abs() < 1e-6);
        assert!((x[1] - 2.1).abs() < 1e-6);
        assert!((opt.velocity()[0] - 0.1).abs() < 1e-6);
        // Second step folds in the decayed velocity.
        opt.step(&mut x, &[1.0, -1.0]);
        assert!((opt.velocity()[0] - (0.7 * 0.1 + 0.1)).abs() < 1e-6);
    }
}
