//! Deterministic synthetic datasets.
//!
//! These replace CIFAR-10 and ImageNet per the substitution table in
//! DESIGN.md: the DGS algorithms interact with the *optimisation dynamics*
//! (stochastic minibatch gradients over a non-convex model), not with image
//! pixels per se, so a procedurally generated class-conditional dataset with
//! tunable difficulty preserves everything the paper measures. Every sample
//! is a pure function of `(dataset seed, index)`, so no storage is needed
//! and all workers see identical data across engines and runs.

use dgs_tensor::rng::{derive_seed, sample_standard_normal, seeded};
use dgs_tensor::{Shape, Tensor};
use rand::Rng;

/// Dataset splits: the *task* (class means / prototypes) is a pure function
/// of the task seed, while per-sample randomness additionally depends on the
/// split, so a train and a validation split share the classification problem
/// but never a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training samples.
    Train,
    /// Held-out validation samples.
    Val,
}

impl Split {
    fn salt(self) -> u64 {
        match self {
            Split::Train => 0,
            Split::Val => 1,
        }
    }
}

/// A deterministic, indexable, labelled dataset.
pub trait Dataset: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// True when the dataset has no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-sample feature shape (no batch dimension).
    fn sample_shape(&self) -> Shape;

    /// Number of label classes.
    fn num_classes(&self) -> usize;

    /// Writes sample `index`'s features into `out` (length =
    /// `sample_shape().numel()`) and returns its label.
    fn fill(&self, index: usize, out: &mut [f32]) -> usize;

    /// Materialises a batch `[indices.len(), sample...]` plus labels.
    fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let sshape = self.sample_shape();
        let sample_len = sshape.numel();
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(sshape.dims());
        let mut x = Tensor::zeros(Shape::new(dims));
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            let out = &mut x.data_mut()[row * sample_len..(row + 1) * sample_len];
            labels.push(self.fill(i, out));
        }
        (x, labels)
    }
}

// ---------------------------------------------------------------------------
// GaussianBlobs
// ---------------------------------------------------------------------------

/// Isotropic Gaussian clusters: class means drawn on a sphere, samples =
/// mean + noise. The fastest dataset; used by unit tests and examples.
pub struct GaussianBlobs {
    len: usize,
    dim: usize,
    classes: usize,
    noise: f32,
    means: Vec<f32>, // classes × dim
    seed: u64,
    split: Split,
}

impl GaussianBlobs {
    /// Creates a training-split blobs dataset. `noise` controls class
    /// overlap (≈0.3 separable, ≈1.0 hard).
    pub fn new(len: usize, dim: usize, classes: usize, noise: f32, seed: u64) -> Self {
        GaussianBlobs::with_split(len, dim, classes, noise, seed, Split::Train)
    }

    /// Creates a blobs dataset on a specific split: the class means depend
    /// only on `seed`, the samples on `(seed, split, index)`.
    pub fn with_split(
        len: usize,
        dim: usize,
        classes: usize,
        noise: f32,
        seed: u64,
        split: Split,
    ) -> Self {
        let mut rng = seeded(seed);
        let mut means = vec![0.0f32; classes * dim];
        for c in 0..classes {
            // Unit-norm direction scaled to radius 2.
            let row = &mut means[c * dim..(c + 1) * dim];
            let mut norm = 0.0f32;
            for v in row.iter_mut() {
                *v = sample_standard_normal(&mut rng);
                norm += *v * *v;
            }
            let scale = 2.0 / norm.sqrt().max(1e-6);
            for v in row.iter_mut() {
                *v *= scale;
            }
        }
        GaussianBlobs { len, dim, classes, noise, means, seed, split }
    }

    /// A validation split of the same task with `len` fresh samples.
    pub fn validation(&self, len: usize) -> Self {
        GaussianBlobs::with_split(len, self.dim, self.classes, self.noise, self.seed, Split::Val)
    }
}

impl Dataset for GaussianBlobs {
    fn len(&self) -> usize {
        self.len
    }

    fn sample_shape(&self) -> Shape {
        Shape::from([self.dim])
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn fill(&self, index: usize, out: &mut [f32]) -> usize {
        let label = index % self.classes;
        let sample_seed = derive_seed(self.seed, self.split.salt())
            ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = seeded(sample_seed);
        let mean = &self.means[label * self.dim..(label + 1) * self.dim];
        for (o, &m) in out.iter_mut().zip(mean.iter()) {
            *o = m + self.noise * sample_standard_normal(&mut rng);
        }
        label
    }
}

// ---------------------------------------------------------------------------
// TwoSpirals
// ---------------------------------------------------------------------------

/// The classic two-interleaved-spirals problem: 2-D, 2 classes, genuinely
/// non-linearly separable. Used to verify the substrate can fit non-convex
/// decision boundaries.
pub struct TwoSpirals {
    len: usize,
    noise: f32,
    seed: u64,
    split: Split,
}

impl TwoSpirals {
    /// Creates a training-split two-spirals dataset.
    pub fn new(len: usize, noise: f32, seed: u64) -> Self {
        TwoSpirals { len, noise, seed, split: Split::Train }
    }

    /// A validation split of the same task with `len` fresh samples.
    pub fn validation(&self, len: usize) -> Self {
        TwoSpirals { len, noise: self.noise, seed: self.seed, split: Split::Val }
    }
}

impl Dataset for TwoSpirals {
    fn len(&self) -> usize {
        self.len
    }

    fn sample_shape(&self) -> Shape {
        Shape::from([2])
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn fill(&self, index: usize, out: &mut [f32]) -> usize {
        let label = index % 2;
        let sample_seed = derive_seed(self.seed, self.split.salt())
            ^ (index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut rng = seeded(sample_seed);
        let t = rng.gen_range(0.25f32..3.0) * std::f32::consts::PI;
        let sign = if label == 0 { 1.0f32 } else { -1.0 };
        out[0] = sign * t.cos() * t / 3.0 + self.noise * sample_standard_normal(&mut rng);
        out[1] = sign * t.sin() * t / 3.0 + self.noise * sample_standard_normal(&mut rng);
        label
    }
}

// ---------------------------------------------------------------------------
// SyntheticVision
// ---------------------------------------------------------------------------

/// Procedurally generated class-conditional "images" — the CIFAR-10 /
/// ImageNet stand-in.
///
/// Each class has a prototype image per channel built from a few random 2-D
/// sinusoids (low-frequency structure, like natural-image classes). A sample
/// is its class prototype under a random translation (so the task is not
/// template matching at fixed pixels), plus dense Gaussian noise. Difficulty
/// is controlled by `noise` and the number of classes.
pub struct SyntheticVision {
    len: usize,
    channels: usize,
    hw: usize,
    classes: usize,
    noise: f32,
    max_shift: usize,
    /// Sinusoid banks per (class, channel): (ax, ay, phase, amplitude) × 4.
    waves: Vec<[(f32, f32, f32, f32); 4]>,
    seed: u64,
    split: Split,
}

impl SyntheticVision {
    /// Creates a synthetic vision dataset of `len` samples of
    /// `channels × hw × hw` pixels across `classes` classes.
    pub fn new(
        len: usize,
        channels: usize,
        hw: usize,
        classes: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        SyntheticVision::with_split(len, channels, hw, classes, noise, seed, Split::Train)
    }

    /// Creates a dataset on a specific split: class prototypes depend only
    /// on `seed`, samples on `(seed, split, index)`.
    pub fn with_split(
        len: usize,
        channels: usize,
        hw: usize,
        classes: usize,
        noise: f32,
        seed: u64,
        split: Split,
    ) -> Self {
        let mut rng = seeded(seed);
        let mut waves = Vec::with_capacity(classes * channels);
        for _ in 0..classes * channels {
            let mut bank = [(0.0f32, 0.0f32, 0.0f32, 0.0f32); 4];
            for b in bank.iter_mut() {
                // Low spatial frequencies (0.5..1.5 cycles per image) so a
                // small translation perturbs rather than decorrelates the
                // class signature.
                let fx = rng.gen_range(0.5f32..1.5) * std::f32::consts::TAU / hw as f32;
                let fy = rng.gen_range(0.5f32..1.5) * std::f32::consts::TAU / hw as f32;
                let phase = rng.gen_range(0.0f32..std::f32::consts::TAU);
                let amp = rng.gen_range(0.4f32..1.0);
                *b = (fx, fy, phase, amp);
            }
            waves.push(bank);
        }
        let max_shift = (hw / 8).max(1);
        SyntheticVision { len, channels, hw, classes, noise, max_shift, waves, seed, split }
    }

    /// A validation split of the same task with `len` fresh samples.
    pub fn validation(&self, len: usize) -> Self {
        SyntheticVision::with_split(
            len,
            self.channels,
            self.hw,
            self.classes,
            self.noise,
            self.seed,
            Split::Val,
        )
    }

    /// Small preset standing in for CIFAR-10 (see DESIGN.md): 10 classes of
    /// 3×16×16 images.
    pub fn cifar_like(len: usize, seed: u64) -> Self {
        SyntheticVision::new(len, 3, 16, 10, 0.9, seed)
    }

    /// Large preset standing in for ImageNet: more classes, bigger images.
    pub fn imagenet_like(len: usize, seed: u64) -> Self {
        SyntheticVision::new(len, 3, 24, 40, 1.0, seed)
    }

    fn prototype_at(&self, class: usize, channel: usize, y: f32, x: f32) -> f32 {
        let bank = &self.waves[class * self.channels + channel];
        bank.iter().map(|&(fx, fy, phase, amp)| amp * (fx * x + fy * y + phase).sin()).sum()
    }
}

impl Dataset for SyntheticVision {
    fn len(&self) -> usize {
        self.len
    }

    fn sample_shape(&self) -> Shape {
        Shape::from([self.channels, self.hw, self.hw])
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn fill(&self, index: usize, out: &mut [f32]) -> usize {
        let label = index % self.classes;
        let sample_seed = derive_seed(self.seed, self.split.salt())
            ^ (index as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = seeded(sample_seed);
        let dy = rng.gen_range(0..=2 * self.max_shift) as f32 - self.max_shift as f32;
        let dx = rng.gen_range(0..=2 * self.max_shift) as f32 - self.max_shift as f32;
        let hw = self.hw;
        for c in 0..self.channels {
            let plane = &mut out[c * hw * hw..(c + 1) * hw * hw];
            for y in 0..hw {
                for x in 0..hw {
                    let v = self.prototype_at(label, c, y as f32 + dy, x as f32 + dx);
                    plane[y * hw + x] = v + self.noise * sample_standard_normal(&mut rng);
                }
            }
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_determinism(ds: &dyn Dataset) {
        let n = ds.sample_shape().numel();
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        let la = ds.fill(3, &mut a);
        let lb = ds.fill(3, &mut b);
        assert_eq!(la, lb);
        assert_eq!(a, b);
        let lc = ds.fill(4, &mut b);
        assert!(a != b || la != lc, "different indices should differ");
    }

    #[test]
    fn blobs_basics() {
        let ds = GaussianBlobs::new(100, 8, 4, 0.3, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.num_classes(), 4);
        assert_eq!(ds.sample_shape().dims(), &[8]);
        check_determinism(&ds);
        // Labels cycle through classes.
        let mut buf = vec![0.0f32; 8];
        for i in 0..8 {
            assert_eq!(ds.fill(i, &mut buf), i % 4);
        }
    }

    #[test]
    fn blobs_classes_are_separated() {
        let ds = GaussianBlobs::new(1000, 16, 2, 0.2, 7);
        // Nearest-mean classification on fresh samples should be near-perfect
        // at this noise level.
        let mut buf = vec![0.0f32; 16];
        let mut correct = 0;
        for i in 0..200 {
            let label = ds.fill(i, &mut buf);
            let d0: f32 =
                buf.iter().zip(ds.means[0..16].iter()).map(|(a, b)| (a - b) * (a - b)).sum();
            let d1: f32 =
                buf.iter().zip(ds.means[16..32].iter()).map(|(a, b)| (a - b) * (a - b)).sum();
            let pred = if d0 < d1 { 0 } else { 1 };
            if pred == label {
                correct += 1;
            }
        }
        assert!(correct > 190, "nearest-mean got {correct}/200");
    }

    #[test]
    fn spirals_basics() {
        let ds = TwoSpirals::new(50, 0.02, 2);
        assert_eq!(ds.num_classes(), 2);
        check_determinism(&ds);
        // Points fall in a bounded disc.
        let mut buf = [0.0f32; 2];
        for i in 0..50 {
            ds.fill(i, &mut buf);
            assert!(buf[0].abs() < 5.0 && buf[1].abs() < 5.0);
        }
    }

    #[test]
    fn vision_basics() {
        let ds = SyntheticVision::new(64, 3, 8, 5, 0.5, 3);
        assert_eq!(ds.sample_shape().dims(), &[3, 8, 8]);
        assert_eq!(ds.num_classes(), 5);
        check_determinism(&ds);
    }

    #[test]
    fn vision_class_signal_exceeds_noise() {
        // Same class, different samples should correlate more than
        // different classes: compare mean abs difference.
        let ds = SyntheticVision::new(100, 1, 12, 2, 0.3, 9);
        let n = ds.sample_shape().numel();
        // Average intra- vs inter-class L1 distance over many pairs: the
        // class signal should dominate shift/noise variability.
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        let mut d_same = 0.0f32;
        let mut d_diff = 0.0f32;
        let pairs = 30;
        for p in 0..pairs {
            // indices 4p and 4p+2 share a class; 4p and 4p+1 differ.
            ds.fill(4 * p, &mut a);
            ds.fill(4 * p + 2, &mut b);
            d_same += a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum::<f32>() / n as f32;
            ds.fill(4 * p + 1, &mut b);
            d_diff += a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum::<f32>() / n as f32;
        }
        assert!(
            d_same < d_diff,
            "mean intra-class distance {d_same} should be below inter-class {d_diff}"
        );
    }

    #[test]
    fn batch_assembly() {
        let ds = GaussianBlobs::new(10, 4, 2, 0.1, 11);
        let (x, labels) = ds.batch(&[0, 1, 5]);
        assert_eq!(x.shape().dims(), &[3, 4]);
        assert_eq!(labels, vec![0, 1, 1]);
        // Row 1 equals a direct fill of index 1.
        let mut buf = vec![0.0f32; 4];
        ds.fill(1, &mut buf);
        assert_eq!(&x.data()[4..8], buf.as_slice());
    }

    #[test]
    fn presets_constructible() {
        let c = SyntheticVision::cifar_like(10, 0);
        assert_eq!(c.num_classes(), 10);
        let i = SyntheticVision::imagenet_like(10, 0);
        assert!(i.num_classes() > c.num_classes());
        assert!(i.sample_shape().numel() > c.sample_shape().numel());
    }
}
