//! Seeded minibatch iteration over a [`Dataset`].

use crate::data::Dataset;
use dgs_tensor::rng::{derive_seed, shuffled_indices};
use dgs_tensor::Tensor;
use std::sync::Arc;

/// An endless minibatch stream with per-epoch reshuffling.
///
/// Each worker in a distributed run owns its own `BatchLoader` over the
/// shared dataset with a worker-specific seed, mirroring the paper's setup
/// where every worker samples its own minibatches. Iteration is infinite:
/// when an epoch's permutation is exhausted a new one is drawn, so callers
/// control duration in *iterations*, as the async trainers require.
pub struct BatchLoader {
    dataset: Arc<dyn Dataset>,
    batch_size: usize,
    seed: u64,
    perm: Vec<usize>,
    cursor: usize,
    epoch: u64,
}

impl BatchLoader {
    /// Creates a loader drawing `batch_size`-sized minibatches.
    pub fn new(dataset: Arc<dyn Dataset>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(!dataset.is_empty(), "dataset must not be empty");
        let perm = shuffled_indices(dataset.len(), derive_seed(seed, 0));
        BatchLoader { dataset, batch_size, seed, perm, cursor: 0, epoch: 0 }
    }

    /// The batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches that constitute one pass over the dataset
    /// (rounded up).
    pub fn batches_per_epoch(&self) -> usize {
        self.dataset.len().div_ceil(self.batch_size)
    }

    /// Draws the next minibatch, reshuffling at epoch boundaries.
    pub fn next_batch(&mut self) -> (Tensor, Vec<usize>) {
        let n = self.dataset.len();
        let mut indices = Vec::with_capacity(self.batch_size);
        while indices.len() < self.batch_size {
            if self.cursor == self.perm.len() {
                self.epoch += 1;
                self.perm = shuffled_indices(n, derive_seed(self.seed, self.epoch));
                self.cursor = 0;
            }
            indices.push(self.perm[self.cursor]);
            self.cursor += 1;
        }
        self.dataset.batch(&indices)
    }

    /// Completed epochs (full passes over the permutation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Iterates a dataset once in fixed order (no shuffling) for evaluation.
/// Yields `(batch tensor, labels)` chunks of at most `batch_size`.
pub struct EvalIter<'a> {
    dataset: &'a dyn Dataset,
    batch_size: usize,
    cursor: usize,
}

impl<'a> EvalIter<'a> {
    /// Creates an evaluation iterator.
    pub fn new(dataset: &'a dyn Dataset, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        EvalIter { dataset, batch_size, cursor: 0 }
    }
}

impl Iterator for EvalIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.dataset.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.dataset.len());
        let indices: Vec<usize> = (self.cursor..end).collect();
        self.cursor = end;
        Some(self.dataset.batch(&indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GaussianBlobs;

    fn ds() -> Arc<dyn Dataset> {
        Arc::new(GaussianBlobs::new(10, 4, 2, 0.1, 1))
    }

    #[test]
    fn batches_cycle_through_dataset() {
        let mut loader = BatchLoader::new(ds(), 4, 7);
        assert_eq!(loader.batches_per_epoch(), 3);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let (x, labels) = loader.next_batch();
            assert_eq!(x.shape().dims(), &[4, 4]);
            assert_eq!(labels.len(), 4);
            seen.extend(labels);
        }
        // 12 draws over a 10-sample dataset: first 10 form a permutation.
        assert_eq!(seen.len(), 12);
        assert_eq!(loader.epoch(), 1);
    }

    #[test]
    fn loader_is_deterministic_per_seed() {
        let mut a = BatchLoader::new(ds(), 3, 42);
        let mut b = BatchLoader::new(ds(), 3, 42);
        for _ in 0..5 {
            let (xa, la) = a.next_batch();
            let (xb, lb) = b.next_batch();
            assert_eq!(xa, xb);
            assert_eq!(la, lb);
        }
        let mut c = BatchLoader::new(ds(), 3, 43);
        let (xc, _) = c.next_batch();
        let (xa2, _) = a.next_batch();
        assert_ne!(xc, xa2);
    }

    #[test]
    fn epochs_reshuffle() {
        let mut loader = BatchLoader::new(ds(), 10, 3);
        let (x1, _) = loader.next_batch();
        let (x2, _) = loader.next_batch();
        assert_ne!(x1, x2, "second epoch should be differently shuffled");
    }

    #[test]
    fn eval_iter_covers_everything_once() {
        let d = GaussianBlobs::new(10, 4, 2, 0.1, 1);
        let mut total = 0;
        let mut batches = 0;
        for (x, labels) in EvalIter::new(&d, 4) {
            total += labels.len();
            batches += 1;
            assert_eq!(x.shape().dim(0), labels.len());
        }
        assert_eq!(total, 10);
        assert_eq!(batches, 3); // 4 + 4 + 2
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_rejected() {
        BatchLoader::new(ds(), 0, 1);
    }
}
