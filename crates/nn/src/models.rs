//! Ready-made architectures used by the experiments.

use crate::layer::{ChannelNorm, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, ReLU};
use crate::model::Network;
use crate::resnet::ResidualBlock;
use dgs_tensor::Shape;

/// A multi-layer perceptron `input_dim → hidden... → classes` with ReLU
/// activations and per-layer normalisation. Fast; used by the CIFAR-scale
/// sweeps where dozens of full training runs are required.
pub fn mlp(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Network {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut prev = input_dim;
    for (i, &h) in hidden.iter().enumerate() {
        layers.push(Box::new(Linear::new(format!("fc{i}"), prev, h)));
        layers.push(Box::new(ChannelNorm::new(format!("norm{i}"), h)));
        layers.push(Box::new(ReLU::new(format!("relu{i}"))));
        prev = h;
    }
    layers.push(Box::new(Linear::new("head", prev, classes)));
    Network::new(layers, Shape::from([input_dim]), seed)
}

/// An MLP over flattened `channels × hw × hw` images: a leading
/// [`Flatten`] followed by the [`mlp`] stack. Used by the many-run sweeps
/// where a CNN per run would be too slow.
pub fn mlp_on_images(
    channels: usize,
    hw: usize,
    hidden: &[usize],
    classes: usize,
    seed: u64,
) -> Network {
    let input_dim = channels * hw * hw;
    let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(Flatten::new("flatten"))];
    let mut prev = input_dim;
    for (i, &h) in hidden.iter().enumerate() {
        layers.push(Box::new(Linear::new(format!("fc{i}"), prev, h)));
        layers.push(Box::new(ChannelNorm::new(format!("norm{i}"), h)));
        layers.push(Box::new(ReLU::new(format!("relu{i}"))));
        prev = h;
    }
    layers.push(Box::new(Linear::new("head", prev, classes)));
    Network::new(layers, Shape::from([channels, hw, hw]), seed)
}

/// A small plain CNN: conv-norm-relu ×2 with pooling, then a linear head.
/// Mid-sized; exercises convolution without residual topology.
pub fn tiny_cnn(channels: usize, hw: usize, classes: usize, width: usize, seed: u64) -> Network {
    assert!(hw.is_multiple_of(4), "tiny_cnn needs hw divisible by 4");
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new("conv1", channels, width, 3, 1, 1, false)),
        Box::new(ChannelNorm::new("norm1", width)),
        Box::new(ReLU::new("relu1")),
        Box::new(MaxPool2d::new("pool1", 2)),
        Box::new(Conv2d::new("conv2", width, 2 * width, 3, 1, 1, false)),
        Box::new(ChannelNorm::new("norm2", 2 * width)),
        Box::new(ReLU::new("relu2")),
        Box::new(MaxPool2d::new("pool2", 2)),
        Box::new(Flatten::new("flat")),
        Box::new(Linear::new("head", 2 * width * (hw / 4) * (hw / 4), classes)),
    ];
    Network::new(layers, Shape::from([channels, hw, hw]), seed)
}

/// The ResNet-18 stand-in: a genuine residual CNN sized for CPU training.
///
/// Structure (matching ResNet-18's shape at reduced width/depth):
/// stem conv → 3 stages of residual blocks (stride-2 transitions,
/// doubling width) → global average pool → linear head. With
/// `base_width = 8` and 16×16 inputs this trains in seconds per epoch
/// while preserving the heterogeneous layer mix (3×3 convs, 1×1
/// projections, norm scales, FC head) the per-layer sparsifier sees in
/// the paper.
pub fn resnet_lite(
    channels: usize,
    hw: usize,
    classes: usize,
    base_width: usize,
    seed: u64,
) -> Network {
    let w = base_width;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new("stem", channels, w, 3, 1, 1, false)),
        Box::new(ChannelNorm::new("stem.norm", w)),
        Box::new(ReLU::new("stem.relu")),
        Box::new(ResidualBlock::new("stage1.block1", w, w, 1)),
        Box::new(ResidualBlock::new("stage2.block1", w, 2 * w, 2)),
        Box::new(ResidualBlock::new("stage2.block2", 2 * w, 2 * w, 1)),
        Box::new(ResidualBlock::new("stage3.block1", 2 * w, 4 * w, 2)),
        Box::new(GlobalAvgPool::new("gap")),
        Box::new(Linear::new("head", 4 * w, classes)),
    ];
    Network::new(layers, Shape::from([channels, hw, hw]), seed)
}

/// A deeper residual network with a configurable number of blocks per
/// stage (`blocks = 2` roughly doubles [`resnet_lite`]'s depth). Used by
/// experiments that need a larger parameter count without changing the
/// layer mix.
pub fn resnet_lite_deep(
    channels: usize,
    hw: usize,
    classes: usize,
    base_width: usize,
    blocks_per_stage: usize,
    seed: u64,
) -> Network {
    assert!(blocks_per_stage >= 1, "need at least one block per stage");
    let w = base_width;
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new("stem", channels, w, 3, 1, 1, false)),
        Box::new(ChannelNorm::new("stem.norm", w)),
        Box::new(ReLU::new("stem.relu")),
    ];
    let stages = [(w, w, 1usize), (w, 2 * w, 2), (2 * w, 4 * w, 2)];
    for (si, &(cin, cout, stride)) in stages.iter().enumerate() {
        layers.push(Box::new(ResidualBlock::new(
            format!("stage{}.block0", si + 1),
            cin,
            cout,
            stride,
        )));
        for b in 1..blocks_per_stage {
            layers.push(Box::new(ResidualBlock::new(
                format!("stage{}.block{b}", si + 1),
                cout,
                cout,
                1,
            )));
        }
    }
    layers.push(Box::new(GlobalAvgPool::new("gap")));
    layers.push(Box::new(Linear::new("head", 4 * w, classes)));
    Network::new(layers, Shape::from([channels, hw, hw]), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_tensor::Tensor;

    #[test]
    fn mlp_shapes_and_params() {
        let mut net = mlp(8, &[16, 16], 4, 1);
        let x = Tensor::randn([5, 8], 1.0, 2);
        let y = net.forward(x);
        assert_eq!(y.shape().dims(), &[5, 4]);
        assert!(net.num_params() > 0);
    }

    #[test]
    fn tiny_cnn_shapes() {
        let mut net = tiny_cnn(3, 8, 10, 4, 1);
        let x = Tensor::randn([2, 3, 8, 8], 1.0, 2);
        let y = net.forward(x);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn resnet_lite_shapes() {
        let mut net = resnet_lite(3, 16, 10, 4, 1);
        let x = Tensor::randn([2, 3, 16, 16], 1.0, 2);
        let y = net.forward(x);
        assert_eq!(y.shape().dims(), &[2, 10]);
        // Heterogeneous partition: many segments of differing sizes.
        assert!(net.params().partition().num_segments() > 10);
    }

    #[test]
    fn resnet_lite_trains_on_batch() {
        let mut net = resnet_lite(1, 8, 2, 4, 3);
        let x = Tensor::randn([8, 1, 8, 8], 1.0, 4);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let (first, _) = net.train_step(x.clone(), &labels);
        for _ in 0..30 {
            net.train_step(x.clone(), &labels);
            let grads = net.params().grad().to_vec();
            let data = net.params_mut().data_mut();
            for (p, g) in data.iter_mut().zip(grads.iter()) {
                *p -= 0.05 * g;
            }
        }
        let (last, _) = net.eval_batch(x, &labels);
        assert!(last < first, "resnet_lite should fit one batch: {first} -> {last}");
    }

    #[test]
    fn resnet_lite_deep_scales_depth() {
        let shallow = resnet_lite(3, 8, 4, 4, 1);
        let deep = resnet_lite_deep(3, 8, 4, 4, 2, 1);
        assert!(deep.num_params() > shallow.num_params());
        let mut net = resnet_lite_deep(3, 8, 4, 4, 2, 1);
        let x = Tensor::randn([2, 3, 8, 8], 1.0, 2);
        let y = net.forward(x);
        assert_eq!(y.shape().dims(), &[2, 4]);
    }

    #[test]
    fn models_deterministic_per_seed() {
        let a = resnet_lite(3, 8, 4, 4, 42);
        let b = resnet_lite(3, 8, 4, 4, 42);
        assert_eq!(a.params().data(), b.params().data());
    }
}
