//! Flat parameter storage shared by every layer of a network.

use dgs_sparsify::Partition;

/// A model's trainable state: one flat `data` vector, one parallel flat
/// `grad` vector, and the per-layer [`Partition`] describing which range
/// belongs to which layer parameter.
///
/// Keeping parameters flat makes the distributed-training side of the
/// reproduction trivial: workers and server exchange `&[f32]` slices, and
/// the sparsifiers iterate over the partition exactly as the paper's
/// per-layer loops do.
#[derive(Debug, Clone)]
pub struct ParamSet {
    data: Vec<f32>,
    grad: Vec<f32>,
    partition: Partition,
}

impl ParamSet {
    /// Creates a zero-initialised parameter set covering `partition`.
    pub fn zeros(partition: Partition) -> Self {
        let n = partition.total_len();
        ParamSet { data: vec![0.0; n], grad: vec![0.0; n], partition }
    }

    /// Total number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the model has no parameters.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The layer partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Parameter values, flat.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable parameter values, flat.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Accumulated gradients, flat.
    pub fn grad(&self) -> &[f32] {
        &self.grad
    }

    /// Mutable gradients, flat.
    pub fn grad_mut(&mut self) -> &mut [f32] {
        &mut self.grad
    }

    /// Simultaneous access to a layer's parameters and its gradient slice
    /// (disjoint borrows of the two flat vectors).
    pub fn layer_view_mut(&mut self, seg: usize) -> (&[f32], &mut [f32]) {
        let range = self.partition.segments()[seg].range();
        (&self.data[range.clone()], &mut self.grad[range])
    }

    /// Simultaneous access to an arbitrary `[start, start+len)` window of
    /// the parameter data (shared) and gradient (mutable) vectors. Used by
    /// the network to hand each layer its own multi-segment window.
    pub fn window_view_mut(&mut self, start: usize, len: usize) -> (&[f32], &mut [f32]) {
        (&self.data[start..start + len], &mut self.grad[start..start + len])
    }

    /// Simultaneous full-vector access: parameters shared, gradients
    /// mutable (e.g. weight decay's `∇ += wd·θ`).
    pub fn data_and_grad_mut(&mut self) -> (&[f32], &mut [f32]) {
        (&self.data, &mut self.grad)
    }

    /// Zeroes all gradients (start of a fresh backward pass).
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Copies parameter values from another set (shapes must match).
    pub fn copy_data_from(&mut self, other: &ParamSet) {
        assert_eq!(self.len(), other.len(), "ParamSet size mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Overwrites parameter values from a flat slice.
    pub fn load_data(&mut self, data: &[f32]) {
        assert_eq!(self.data.len(), data.len(), "ParamSet size mismatch");
        self.data.copy_from_slice(data);
    }

    /// Size in bytes of the parameter vector — the paper's
    /// `ParameterMemOfModel` used in the §5.6.2 memory accounting.
    pub fn param_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps() -> ParamSet {
        ParamSet::zeros(Partition::from_layer_sizes([("w", 4), ("b", 2)]))
    }

    #[test]
    fn construction_and_sizes() {
        let p = ps();
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        assert_eq!(p.param_bytes(), 24);
        assert_eq!(p.partition().num_segments(), 2);
    }

    #[test]
    fn layer_view_disjoint_borrow() {
        let mut p = ps();
        p.data_mut()[4] = 3.0;
        let (data, grad) = p.layer_view_mut(1);
        assert_eq!(data, &[3.0, 0.0]);
        grad[0] = 1.5;
        assert_eq!(p.grad()[4], 1.5);
        assert_eq!(p.grad()[0], 0.0);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = ps();
        p.grad_mut().fill(2.0);
        p.zero_grad();
        assert!(p.grad().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn copy_and_load() {
        let mut a = ps();
        let mut b = ps();
        b.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        a.copy_data_from(&b);
        assert_eq!(a.data(), b.data());
        a.load_data(&[0.0; 6]);
        assert!(a.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn load_rejects_wrong_len() {
        ps().load_data(&[0.0; 5]);
    }
}
