#![warn(missing_docs)]

//! # dgs-nn
//!
//! A minimal neural-network library with *manual* backpropagation, built on
//! [`dgs_tensor`]. It is the training substrate that stands in for the
//! paper's PyTorch/CUDA stack: the DGS algorithms exchange flat gradient
//! vectors, so all this crate has to guarantee is that it produces real
//! stochastic gradients for real non-convex optimisation problems, with a
//! per-layer parameter [`Partition`](dgs_sparsify::Partition) the
//! sparsifiers can iterate over.
//!
//! Modules:
//!
//! * [`param`] — [`ParamSet`]: one flat data vector + one flat gradient
//!   vector + the layer partition.
//! * [`layer`] — the [`Layer`](layer::Layer) trait and the concrete layers
//!   (Linear, Conv2d, ChannelNorm, ReLU, pooling, flatten).
//! * [`activations`] — additional activations (Tanh, Sigmoid, LeakyReLU)
//!   and average pooling.
//! * [`checkpoint`] — model weight save/load with a layout fingerprint.
//! * [`optim`] — single-node optimizers (SGD, momentum/Nesterov, Adam).
//! * [`augment`] — deterministic image augmentation (flip + jitter).
//! * [`resnet`] — residual blocks (self-contained composite layers).
//! * [`model`] — [`Network`](model::Network): an ordered layer stack over a
//!   shared `ParamSet`, with forward/backward/flops.
//! * [`models`] — ready-made architectures: `mlp`, `tiny_cnn`,
//!   `resnet_lite` (the ResNet-18 stand-in).
//! * [`loss`] — softmax cross-entropy with gradient, top-1 accuracy.
//! * [`data`] — deterministic synthetic datasets (`SyntheticVision` is the
//!   CIFAR-10 / ImageNet stand-in; see DESIGN.md for the substitution
//!   argument).
//! * [`loader`] — seeded shuffling minibatch iteration.
//! * [`metrics`] — evaluation loops and running averages.
//!
//! Design note: the normalisation layer ([`layer::ChannelNorm`]) always
//! normalises by the statistics of the *current* batch (BatchNorm's training
//! mode). This keeps a model a pure function of its parameter vector — which
//! the server-side model reconstruction `θ_t = θ_0 + M_t` in DGS requires —
//! at the cost of eval-time batch-size sensitivity, which the evaluation
//! loops keep fixed.
//!
//! Compute backend: every layer runs on the [`dgs_tensor`] compute tier
//! through a per-network [`ComputeScratch`] — blocked/SIMD/parallel GEMM,
//! im2col convolution, and pooled buffers. The backend is runtime-detected
//! (override with `DGS_KERNEL=scalar|simd` or
//! [`Network::set_kernel`](model::Network::set_kernel)); all backends are
//! bitwise identical, so the choice affects throughput only, never a
//! single trained bit.

pub mod activations;
pub mod augment;
pub mod checkpoint;
pub mod data;
pub mod layer;
pub mod loader;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod models;
pub mod optim;
pub mod param;
pub mod resnet;

pub use data::{Dataset, GaussianBlobs, SyntheticVision, TwoSpirals};
pub use layer::Layer;
pub use loader::BatchLoader;
pub use loss::{softmax_cross_entropy, top1_accuracy};
pub use model::Network;
pub use param::ParamSet;

pub use dgs_tensor::{ComputeScratch, Kernel};
