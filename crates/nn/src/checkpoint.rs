//! Model weight serialisation: save/load the flat parameter vector with a
//! layout fingerprint so a checkpoint can't be silently loaded into the
//! wrong architecture.

use crate::model::Network;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serialisable snapshot of a model's trainable parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Segment names in partition order — the architecture fingerprint.
    pub layout: Vec<String>,
    /// Segment lengths, parallel to `layout`.
    pub lengths: Vec<usize>,
    /// The flat parameter vector.
    pub data: Vec<f32>,
}

/// Errors from checkpoint I/O and validation.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(String),
    /// Checkpoint does not match the target network's layout.
    LayoutMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse: {e}"),
            CheckpointError::LayoutMismatch(e) => write!(f, "layout mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl ModelCheckpoint {
    /// Captures a network's current parameters.
    pub fn capture(net: &Network) -> Self {
        let part = net.params().partition();
        ModelCheckpoint {
            layout: part.segments().iter().map(|s| s.name.clone()).collect(),
            lengths: part.segments().iter().map(|s| s.len).collect(),
            data: net.params().data().to_vec(),
        }
    }

    /// Loads the parameters into a network with a matching layout.
    pub fn apply(&self, net: &mut Network) -> Result<(), CheckpointError> {
        let part = net.params().partition().clone();
        if part.num_segments() != self.layout.len() {
            return Err(CheckpointError::LayoutMismatch(format!(
                "checkpoint has {} segments, network has {}",
                self.layout.len(),
                part.num_segments()
            )));
        }
        for (seg, (name, &len)) in
            part.segments().iter().zip(self.layout.iter().zip(self.lengths.iter()))
        {
            if &seg.name != name || seg.len != len {
                return Err(CheckpointError::LayoutMismatch(format!(
                    "segment '{}' ({} params) vs checkpoint '{}' ({} params)",
                    seg.name, seg.len, name, len
                )));
            }
        }
        if self.data.len() != net.num_params() {
            return Err(CheckpointError::LayoutMismatch(format!(
                "checkpoint holds {} params, network has {}",
                self.data.len(),
                net.num_params()
            )));
        }
        net.params_mut().load_data(&self.data);
        Ok(())
    }

    /// Writes the checkpoint as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let json =
            serde_json::to_string(self).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads a checkpoint from JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| CheckpointError::Parse(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mlp, resnet_lite};

    #[test]
    fn capture_apply_roundtrip() {
        let a = mlp(6, &[12], 3, 1);
        let ckpt = ModelCheckpoint::capture(&a);
        let mut b = mlp(6, &[12], 3, 99); // different init
        assert_ne!(a.params().data(), b.params().data());
        ckpt.apply(&mut b).unwrap();
        assert_eq!(a.params().data(), b.params().data());
    }

    #[test]
    fn save_load_roundtrip() {
        let net = resnet_lite(1, 8, 2, 4, 7);
        let ckpt = ModelCheckpoint::capture(&net);
        let path = std::env::temp_dir().join("dgs_nn_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let back = ModelCheckpoint::load(&path).unwrap();
        assert_eq!(back.data, ckpt.data);
        assert_eq!(back.layout, ckpt.layout);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_architecture() {
        let a = mlp(6, &[12], 3, 1);
        let ckpt = ModelCheckpoint::capture(&a);
        let mut wrong_width = mlp(6, &[13], 3, 1);
        assert!(matches!(ckpt.apply(&mut wrong_width), Err(CheckpointError::LayoutMismatch(_))));
        let mut wrong_depth = mlp(6, &[12, 12], 3, 1);
        assert!(ckpt.apply(&mut wrong_depth).is_err());
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("dgs_nn_ckpt_garbage.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(ModelCheckpoint::load(&path), Err(CheckpointError::Parse(_))));
        std::fs::remove_file(path).ok();
        assert!(matches!(
            ModelCheckpoint::load("/definitely/not/a/path.json"),
            Err(CheckpointError::Io(_))
        ));
    }
}
