//! Deterministic data augmentation for image datasets.
//!
//! [`Augmented`] wraps any NCHW-shaped [`Dataset`] and applies
//! label-preserving transforms — horizontal flip and additive pixel jitter
//! — keyed by `(seed, index)`, so augmentation stays a pure function and
//! every engine/replay sees identical samples. Virtual repetition
//! (`repeat`) enlarges the index space so one pass covers several distinct
//! augmented views of each underlying sample.

use crate::data::Dataset;
use dgs_tensor::rng::{sample_standard_normal, seeded};
use dgs_tensor::Shape;
use rand::Rng;
use std::sync::Arc;

/// A deterministic augmentation wrapper over an image dataset.
pub struct Augmented {
    inner: Arc<dyn Dataset>,
    repeat: usize,
    flip_p: f64,
    jitter_std: f32,
    seed: u64,
}

impl Augmented {
    /// Wraps `inner` (which must yield rank-3 `C×H×W` samples).
    ///
    /// * `repeat` — virtual dataset enlargement factor (≥ 1).
    /// * `flip_p` — probability of a horizontal flip per view.
    /// * `jitter_std` — std-dev of additive Gaussian pixel jitter.
    pub fn new(
        inner: Arc<dyn Dataset>,
        repeat: usize,
        flip_p: f64,
        jitter_std: f32,
        seed: u64,
    ) -> Self {
        assert!(repeat >= 1, "repeat must be at least 1");
        assert!((0.0..=1.0).contains(&flip_p), "flip_p must be a probability");
        assert_eq!(inner.sample_shape().rank(), 3, "Augmented needs C×H×W samples");
        Augmented { inner, repeat, flip_p, jitter_std, seed }
    }
}

impl Dataset for Augmented {
    fn len(&self) -> usize {
        self.inner.len() * self.repeat
    }

    fn sample_shape(&self) -> Shape {
        self.inner.sample_shape()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn fill(&self, index: usize, out: &mut [f32]) -> usize {
        let base = index % self.inner.len();
        let view = index / self.inner.len();
        let label = self.inner.fill(base, out);
        // View 0 is the raw sample so the un-augmented data stays reachable.
        if view == 0 {
            return label;
        }
        let mut rng = seeded(self.seed ^ (index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let dims = self.sample_shape();
        let (c, h, w) = (dims.dim(0), dims.dim(1), dims.dim(2));
        if rng.gen::<f64>() < self.flip_p {
            for ch in 0..c {
                for y in 0..h {
                    let row = &mut out[(ch * h + y) * w..(ch * h + y + 1) * w];
                    row.reverse();
                }
            }
        }
        if self.jitter_std > 0.0 {
            for v in out.iter_mut() {
                *v += self.jitter_std * sample_standard_normal(&mut rng);
            }
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticVision;

    fn base() -> Arc<dyn Dataset> {
        Arc::new(SyntheticVision::new(16, 2, 6, 4, 0.3, 5))
    }

    #[test]
    fn repeat_enlarges_and_preserves_labels() {
        let inner = base();
        let aug = Augmented::new(Arc::clone(&inner), 3, 0.5, 0.1, 9);
        assert_eq!(aug.len(), 48);
        assert_eq!(aug.num_classes(), inner.num_classes());
        let n = aug.sample_shape().numel();
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        for i in 0..16 {
            let la = aug.fill(i, &mut a); // view 0 == raw
            let lb = inner.fill(i, &mut b);
            assert_eq!(la, lb);
            assert_eq!(a, b, "view 0 must be the raw sample");
            // Later views keep the label but change the pixels.
            let lv = aug.fill(i + 16, &mut b);
            assert_eq!(lv, la);
            assert_ne!(a, b, "augmented view must differ");
        }
    }

    #[test]
    fn deterministic_per_index() {
        let aug = Augmented::new(base(), 2, 0.5, 0.2, 3);
        let n = aug.sample_shape().numel();
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        aug.fill(20, &mut a);
        aug.fill(20, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn flip_only_reverses_rows() {
        // flip_p = 1, jitter 0: the augmented view is exactly the mirror.
        let inner = base();
        let aug = Augmented::new(Arc::clone(&inner), 2, 1.0, 0.0, 7);
        let dims = aug.sample_shape();
        let (c, h, w) = (dims.dim(0), dims.dim(1), dims.dim(2));
        let n = dims.numel();
        let mut raw = vec![0.0f32; n];
        let mut flipped = vec![0.0f32; n];
        inner.fill(4, &mut raw);
        aug.fill(4 + 16, &mut flipped);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(
                        flipped[(ch * h + y) * w + x],
                        raw[(ch * h + y) * w + (w - 1 - x)],
                        "mirror mismatch at ({ch},{y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "C×H×W")]
    fn rejects_flat_datasets() {
        let flat: Arc<dyn Dataset> = Arc::new(crate::data::GaussianBlobs::new(8, 4, 2, 0.3, 1));
        Augmented::new(flat, 2, 0.5, 0.1, 1);
    }
}
