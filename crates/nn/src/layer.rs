//! The [`Layer`] trait and concrete layers with manual backward passes.
//!
//! Each layer declares its parameter sub-segments at construction time; the
//! [`Network`](crate::model::Network) builder lays them out consecutively in
//! one flat [`ParamSet`](crate::param::ParamSet). During forward/backward a
//! layer receives only *its own* slice of the flat data and gradient
//! vectors, so layers are independent of global layout.
//!
//! Every forward/backward also receives the network's [`ComputeScratch`]:
//! it carries the explicit [`Kernel`](dgs_tensor::Kernel) backend every
//! GEMM/conv/pool/activation dispatches through, plus the buffer pools
//! that make the steady-state training step allocation-free (outputs,
//! im2col columns, gradient buffers and cached activations are all
//! recycled through it).

use dgs_tensor::conv::{conv2d_backward_with, conv2d_forward_with, Conv2dSpec};
use dgs_tensor::pool::{
    global_avg_pool_backward_with, global_avg_pool_forward_with, maxpool2d_backward_with,
    maxpool2d_forward_with, MaxPoolSpec,
};
use dgs_tensor::rng::{fill_normal, seeded};
use dgs_tensor::{ComputeScratch, Shape, Tensor};

/// A differentiable network layer with externally owned parameters.
///
/// Contract: `forward` caches whatever `backward` needs; `backward` must be
/// called at most once per `forward`, with `dy` matching the last output
/// shape, and *accumulates* into its gradient slice (callers zero the flat
/// grad vector once per step).
pub trait Layer: Send {
    /// Diagnostic name, also used to label partition segments.
    fn name(&self) -> &str;

    /// `(suffix, len)` of each parameter segment, e.g. `[("weight", 64),
    /// ("bias", 8)]`. Empty for parameter-free layers.
    fn param_sizes(&self) -> Vec<(&'static str, usize)>;

    /// Writes initial parameter values into this layer's flat slice.
    fn init_params(&self, params: &mut [f32], seed: u64);

    /// Shape of the output for a given input shape (batch included).
    fn output_shape(&self, input: &Shape) -> Shape;

    /// Forward pass; `params` is this layer's slice of the flat vector and
    /// `scratch` supplies the compute backend and pooled buffers.
    fn forward(&mut self, params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor;

    /// Backward pass; accumulates into `grad` (this layer's slice) and
    /// returns the gradient w.r.t. the layer input.
    fn backward(
        &mut self,
        params: &[f32],
        grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor;

    /// Estimated multiply-accumulate count for a forward+backward pass at
    /// batch size `batch`; feeds the DES compute-time model.
    fn flops(&self, input: &Shape) -> u64;
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = x·Wᵀ + b` with `W: out×in` (row-major).
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates an `in_features → out_features` linear layer.
    pub fn new(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        Linear { name: name.into(), in_features, out_features, cached_input: None }
    }

    fn weight_len(&self) -> usize {
        self.in_features * self.out_features
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        vec![("weight", self.weight_len()), ("bias", self.out_features)]
    }

    fn init_params(&self, params: &mut [f32], seed: u64) {
        // Kaiming-style: std = sqrt(2 / fan_in); biases zero.
        let std = (2.0 / self.in_features as f32).sqrt();
        let (w, b) = params.split_at_mut(self.weight_len());
        let mut rng = seeded(seed);
        fill_normal(&mut rng, w, 0.0, std);
        b.fill(0.0);
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        let (n, d) = input.as_matrix();
        assert_eq!(d, self.in_features, "linear {} input dim", self.name);
        Shape::from([n, self.out_features])
    }

    fn forward(&mut self, params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let (n, d) = x.shape().as_matrix();
        assert_eq!(d, self.in_features, "linear {} input dim", self.name);
        let w = &params[..self.weight_len()];
        let b = &params[self.weight_len()..];
        // y = x (n×in) · Wᵀ (in×out); W is stored out×in row-major, so the
        // A·Bᵀ kernel reads it straight off the flat parameter slice — no
        // transpose copy, no `w.to_vec()`.
        let mut y = scratch.take_zeroed(n * self.out_features);
        scratch.kernel().gemm_a_bt(x.data(), w, &mut y, n, self.in_features, self.out_features);
        for row in y.chunks_mut(self.out_features) {
            for (v, &bi) in row.iter_mut().zip(b.iter()) {
                *v += bi;
            }
        }
        self.cached_input = Some(x);
        Tensor::from_vec([n, self.out_features], y).unwrap()
    }

    fn backward(
        &mut self,
        params: &[f32],
        grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let x = self.cached_input.take().expect("linear backward without forward");
        let w = &params[..self.weight_len()];
        let (n, _) = dy.shape().as_matrix();
        // dW = dYᵀ·X  (out×n · n×in): use Aᵀ·B with A = dY stored n×out.
        let mut dw = scratch.take_zeroed(self.weight_len());
        scratch.kernel().gemm_at_b(
            dy.data(),
            x.data(),
            &mut dw,
            self.out_features,
            n,
            self.in_features,
        );
        let (gw, gb) = grad.split_at_mut(self.weight_len());
        for (g, &v) in gw.iter_mut().zip(dw.iter()) {
            *g += v;
        }
        scratch.put(dw);
        for r in 0..n {
            let row = &dy.data()[r * self.out_features..(r + 1) * self.out_features];
            for (g, &v) in gb.iter_mut().zip(row.iter()) {
                *g += v;
            }
        }
        // dX = dY (n×out) · W (out×in)
        let mut dxd = scratch.take_zeroed(n * self.in_features);
        scratch.kernel().gemm(dy.data(), w, &mut dxd, n, self.out_features, self.in_features);
        scratch.put_tensor(x);
        scratch.put_tensor(dy);
        Tensor::from_vec([n, self.in_features], dxd).unwrap()
    }

    fn flops(&self, input: &Shape) -> u64 {
        let (n, _) = input.as_matrix();
        // forward + two backward matmuls.
        (6 * n * self.in_features * self.out_features) as u64
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution layer over NCHW tensors (square kernel).
pub struct Conv2d {
    name: String,
    spec: Conv2dSpec,
    with_bias: bool,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        with_bias: bool,
    ) -> Self {
        Conv2d {
            name: name.into(),
            spec: Conv2dSpec { in_channels, out_channels, kernel, stride, padding },
            with_bias,
            cached_input: None,
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        let mut v = vec![("weight", self.spec.weight_len())];
        if self.with_bias {
            v.push(("bias", self.spec.out_channels));
        }
        v
    }

    fn init_params(&self, params: &mut [f32], seed: u64) {
        let fan_in = self.spec.in_channels * self.spec.kernel * self.spec.kernel;
        let std = (2.0 / fan_in as f32).sqrt();
        let wl = self.spec.weight_len();
        let mut rng = seeded(seed);
        fill_normal(&mut rng, &mut params[..wl], 0.0, std);
        if self.with_bias {
            params[wl..].fill(0.0);
        }
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        let (n, c, h, w) = input.as_nchw();
        assert_eq!(c, self.spec.in_channels, "conv {} input channels", self.name);
        let (oh, ow) = self.spec.out_hw(h, w);
        Shape::from([n, self.spec.out_channels, oh, ow])
    }

    fn forward(&mut self, params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let wl = self.spec.weight_len();
        let (w, b) = params.split_at(wl);
        let y =
            conv2d_forward_with(scratch, &x, w, if self.with_bias { b } else { &[] }, &self.spec);
        self.cached_input = Some(x);
        y
    }

    fn backward(
        &mut self,
        params: &[f32],
        grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let x = self.cached_input.take().expect("conv backward without forward");
        let wl = self.spec.weight_len();
        let w = &params[..wl];
        let grads = conv2d_backward_with(scratch, &x, w, &dy, &self.spec, self.with_bias);
        let (gw, gb) = grad.split_at_mut(wl);
        for (g, &v) in gw.iter_mut().zip(grads.dweight.iter()) {
            *g += v;
        }
        for (g, &v) in gb.iter_mut().zip(grads.dbias.iter()) {
            *g += v;
        }
        scratch.put(grads.dweight);
        scratch.put(grads.dbias);
        scratch.put_tensor(x);
        scratch.put_tensor(dy);
        grads.dx
    }

    fn flops(&self, input: &Shape) -> u64 {
        let (n, _, h, w) = input.as_nchw();
        3 * self.spec.flops(n, h, w)
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Elementwise ReLU.
pub struct ReLU {
    name: String,
    cached_input: Option<Tensor>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        ReLU { name: name.into(), cached_input: None }
    }
}

impl Layer for ReLU {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    fn init_params(&self, _params: &mut [f32], _seed: u64) {}

    fn output_shape(&self, input: &Shape) -> Shape {
        input.clone()
    }

    fn forward(&mut self, _params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let mut y = scratch.take(x.numel());
        y.extend_from_slice(x.data());
        scratch.kernel().relu_inplace(&mut y);
        let shape = x.shape().clone();
        self.cached_input = Some(x);
        Tensor::from_vec(shape, y).unwrap()
    }

    fn backward(
        &mut self,
        _params: &[f32],
        _grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let x = self.cached_input.take().expect("relu backward without forward");
        let mut dx = dy;
        scratch.kernel().relu_grad_mask(x.data(), dx.data_mut());
        scratch.put_tensor(x);
        dx
    }

    fn flops(&self, input: &Shape) -> u64 {
        input.numel() as u64
    }
}

// ---------------------------------------------------------------------------
// ChannelNorm (BatchNorm that always uses batch statistics)
// ---------------------------------------------------------------------------

/// Per-channel normalisation with learnable scale/shift.
///
/// Normalises every channel by the mean/variance of the *current batch*
/// (BatchNorm's training behaviour) in both train and eval. This keeps the
/// model a pure function of its parameters — required for the server-side
/// model reconstruction `θ_t = θ_0 + M_t` — see the crate docs.
pub struct ChannelNorm {
    name: String,
    channels: usize,
    eps: f32,
    // Caches for backward.
    cached: Option<NormCache>,
}

struct NormCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Shape,
}

impl ChannelNorm {
    /// Creates a normalisation layer over `channels` channels of an NCHW
    /// tensor (or the feature dim of an N×C tensor).
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        ChannelNorm { name: name.into(), channels, eps: 1e-5, cached: None }
    }

    /// For each channel, the list of flat element offsets is implied by the
    /// layout; this iterates `(channel, flat_index)` pairs.
    fn for_each_channel(shape: &Shape, channels: usize, mut f: impl FnMut(usize, usize)) {
        match shape.rank() {
            2 => {
                let (n, c) = shape.as_matrix();
                assert_eq!(c, channels);
                for i in 0..n {
                    for ch in 0..c {
                        f(ch, i * c + ch);
                    }
                }
            }
            4 => {
                let (n, c, h, w) = shape.as_nchw();
                assert_eq!(c, channels);
                for i in 0..n {
                    for ch in 0..c {
                        let base = (i * c + ch) * h * w;
                        for p in 0..h * w {
                            f(ch, base + p);
                        }
                    }
                }
            }
            r => panic!("ChannelNorm supports rank 2 or 4 inputs, got rank {r}"),
        }
    }

    fn counts_per_channel(shape: &Shape, channels: usize) -> f32 {
        (shape.numel() / channels) as f32
    }
}

impl Layer for ChannelNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        vec![("gamma", self.channels), ("beta", self.channels)]
    }

    fn init_params(&self, params: &mut [f32], _seed: u64) {
        let (g, b) = params.split_at_mut(self.channels);
        g.fill(1.0);
        b.fill(0.0);
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        input.clone()
    }

    fn forward(&mut self, params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let c = self.channels;
        let (gamma, beta) = params.split_at(c);
        let count = Self::counts_per_channel(x.shape(), c);
        let mut mean = vec![0.0f32; c];
        Self::for_each_channel(x.shape(), c, |ch, i| mean[ch] += x.data()[i]);
        for m in mean.iter_mut() {
            *m /= count;
        }
        let mut var = vec![0.0f32; c];
        Self::for_each_channel(x.shape(), c, |ch, i| {
            let d = x.data()[i] - mean[ch];
            var[ch] += d * d;
        });
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v / count + self.eps).sqrt()).collect();
        // Normalise in place — the input tensor becomes the cached x̂, so
        // the forward needs only one pooled buffer (for y) and no clones.
        let shape = x.shape().clone();
        let mut x_hat = x;
        {
            let xh = x_hat.data_mut();
            Self::for_each_channel(&shape, c, |ch, i| {
                xh[i] = (xh[i] - mean[ch]) * inv_std[ch];
            });
        }
        let mut yd = scratch.take(shape.numel());
        yd.extend_from_slice(x_hat.data());
        Self::for_each_channel(&shape, c, |ch, i| {
            yd[i] = yd[i] * gamma[ch] + beta[ch];
        });
        self.cached = Some(NormCache { x_hat, inv_std, input_shape: shape.clone() });
        Tensor::from_vec(shape, yd).unwrap()
    }

    fn backward(
        &mut self,
        params: &[f32],
        grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let cache = self.cached.take().expect("norm backward without forward");
        let c = self.channels;
        let gamma = &params[..c];
        let count = Self::counts_per_channel(&cache.input_shape, c);

        // Parameter grads.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        Self::for_each_channel(&cache.input_shape, c, |ch, i| {
            dgamma[ch] += dy.data()[i] * cache.x_hat.data()[i];
            dbeta[ch] += dy.data()[i];
        });
        let (gg, gb) = grad.split_at_mut(c);
        for (g, &v) in gg.iter_mut().zip(dgamma.iter()) {
            *g += v;
        }
        for (g, &v) in gb.iter_mut().zip(dbeta.iter()) {
            *g += v;
        }

        // Input grad (standard batch-norm backward):
        // dx = (γ·inv_std/count) · (count·dy − Σdy − x̂·Σ(dy·x̂))
        let mut dxd = scratch.take_zeroed(cache.input_shape.numel());
        Self::for_each_channel(&cache.input_shape, c, |ch, i| {
            let g = gamma[ch] * cache.inv_std[ch] / count;
            dxd[i] = g * (count * dy.data()[i] - dbeta[ch] - cache.x_hat.data()[i] * dgamma[ch]);
        });
        let dx = Tensor::from_vec(cache.input_shape.clone(), dxd).unwrap();
        scratch.put_tensor(cache.x_hat);
        scratch.put_tensor(dy);
        dx
    }

    fn flops(&self, input: &Shape) -> u64 {
        (input.numel() * 8) as u64
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d / GlobalAvgPool / Flatten
// ---------------------------------------------------------------------------

/// Max pooling with window == stride.
pub struct MaxPool2d {
    name: String,
    spec: MaxPoolSpec,
    cached: Option<(Shape, Vec<u32>)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window.
    pub fn new(name: impl Into<String>, window: usize) -> Self {
        MaxPool2d { name: name.into(), spec: MaxPoolSpec { window }, cached: None }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    fn init_params(&self, _params: &mut [f32], _seed: u64) {}

    fn output_shape(&self, input: &Shape) -> Shape {
        let (n, c, h, w) = input.as_nchw();
        let (oh, ow) = self.spec.out_hw(h, w);
        Shape::from([n, c, oh, ow])
    }

    fn forward(&mut self, _params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let out = maxpool2d_forward_with(scratch, &x, &self.spec);
        self.cached = Some((x.shape().clone(), out.argmax));
        scratch.put_tensor(x);
        out.y
    }

    fn backward(
        &mut self,
        _params: &[f32],
        _grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let (shape, argmax) = self.cached.take().expect("pool backward without forward");
        let dx = maxpool2d_backward_with(scratch, &shape, &argmax, &dy);
        scratch.put_u32(argmax);
        scratch.put_tensor(dy);
        dx
    }

    fn flops(&self, input: &Shape) -> u64 {
        input.numel() as u64
    }
}

/// Global average pooling `N×C×H×W → N×C`.
pub struct GlobalAvgPool {
    name: String,
    cached_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool { name: name.into(), cached_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    fn init_params(&self, _params: &mut [f32], _seed: u64) {}

    fn output_shape(&self, input: &Shape) -> Shape {
        let (n, c, _, _) = input.as_nchw();
        Shape::from([n, c])
    }

    fn forward(&mut self, _params: &[f32], x: Tensor, scratch: &mut ComputeScratch) -> Tensor {
        let y = global_avg_pool_forward_with(scratch, &x);
        self.cached_shape = Some(x.shape().clone());
        scratch.put_tensor(x);
        y
    }

    fn backward(
        &mut self,
        _params: &[f32],
        _grad: &mut [f32],
        dy: Tensor,
        scratch: &mut ComputeScratch,
    ) -> Tensor {
        let shape = self.cached_shape.take().expect("gap backward without forward");
        let dx = global_avg_pool_backward_with(scratch, &shape, &dy);
        scratch.put_tensor(dy);
        dx
    }

    fn flops(&self, input: &Shape) -> u64 {
        input.numel() as u64
    }
}

/// Flattens `N×C×H×W → N×(C·H·W)`.
pub struct Flatten {
    name: String,
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten { name: name.into(), cached_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_sizes(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }

    fn init_params(&self, _params: &mut [f32], _seed: u64) {}

    fn output_shape(&self, input: &Shape) -> Shape {
        let n = input.dim(0);
        Shape::from([n, input.numel() / n])
    }

    fn forward(&mut self, _params: &[f32], x: Tensor, _scratch: &mut ComputeScratch) -> Tensor {
        let shape = x.shape().clone();
        let n = shape.dim(0);
        let flat = shape.numel() / n;
        self.cached_shape = Some(shape);
        x.reshape([n, flat]).unwrap()
    }

    fn backward(
        &mut self,
        _params: &[f32],
        _grad: &mut [f32],
        dy: Tensor,
        _scratch: &mut ComputeScratch,
    ) -> Tensor {
        let shape = self.cached_shape.take().expect("flatten backward without forward");
        dy.reshape(shape).unwrap()
    }

    fn flops(&self, _input: &Shape) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_tensor::assert_slice_approx_eq;

    fn alloc_params(layer: &dyn Layer, seed: u64) -> Vec<f32> {
        let n: usize = layer.param_sizes().iter().map(|&(_, l)| l).sum();
        let mut p = vec![0.0f32; n];
        layer.init_params(&mut p, seed);
        p
    }

    fn sc() -> ComputeScratch {
        ComputeScratch::default()
    }

    /// Numerical-vs-analytic gradient check driving a layer through a
    /// sum-of-outputs loss.
    fn grad_check(layer: &mut dyn Layer, x: &Tensor, params: &[f32], tol: f32) {
        let s = &mut sc();
        let y = layer.forward(params, x.clone(), s);
        let dy = Tensor::full(y.shape().clone(), 1.0);
        let mut grad = vec![0.0f32; params.len()];
        let dx = layer.backward(params, &mut grad, dy, s);
        let eps = 1e-2f32;

        // Parameter gradients on a sample of coordinates.
        let sample: Vec<usize> =
            if params.is_empty() { vec![] } else { vec![0, params.len() / 2, params.len() - 1] };
        for &pi in &sample {
            let mut pp = params.to_vec();
            pp[pi] += eps;
            let lp = layer.forward(&pp, x.clone(), s).sum();
            layer.backward(&pp, &mut vec![0.0; params.len()], Tensor::zeros(y.shape().clone()), s);
            let mut pm = params.to_vec();
            pm[pi] -= eps;
            let lm = layer.forward(&pm, x.clone(), s).sum();
            layer.backward(&pm, &mut vec![0.0; params.len()], Tensor::zeros(y.shape().clone()), s);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - grad[pi]).abs() <= tol * num.abs().max(1.0),
                "param grad [{pi}] numerical {num} vs analytic {}",
                grad[pi]
            );
        }
        // Input gradients on a sample of coordinates.
        for &xi in &[0usize, x.numel() / 2, x.numel() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = layer.forward(params, xp, s).sum();
            layer.backward(
                params,
                &mut vec![0.0; params.len()],
                Tensor::zeros(y.shape().clone()),
                s,
            );
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = layer.forward(params, xm, s).sum();
            layer.backward(
                params,
                &mut vec![0.0; params.len()],
                Tensor::zeros(y.shape().clone()),
                s,
            );
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[xi]).abs() <= tol * num.abs().max(1.0),
                "input grad [{xi}] numerical {num} vs analytic {}",
                dx.data()[xi]
            );
        }
    }

    #[test]
    fn linear_forward_known_values() {
        let mut l = Linear::new("fc", 2, 3);
        // W = [[1,0],[0,1],[1,1]], b = [0.5, -0.5, 0]
        let params = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5, 0.0];
        let x = Tensor::from_vec([1, 2], vec![2.0, 3.0]).unwrap();
        let y = l.forward(&params, x, &mut sc());
        assert_slice_approx_eq(y.data(), &[2.5, 2.5, 5.0], 1e-6);
    }

    #[test]
    fn linear_grad_check() {
        let mut l = Linear::new("fc", 5, 4);
        let params = alloc_params(&l, 1);
        let x = Tensor::randn([3, 5], 1.0, 2);
        grad_check(&mut l, &x, &params, 2e-2);
    }

    #[test]
    fn linear_grad_accumulates() {
        let mut l = Linear::new("fc", 2, 2);
        let params = alloc_params(&l, 1);
        let x = Tensor::randn([2, 2], 1.0, 3);
        let mut grad = vec![0.0f32; params.len()];
        let s = &mut sc();
        let y = l.forward(&params, x.clone(), s);
        l.backward(&params, &mut grad, Tensor::full(y.shape().clone(), 1.0), s);
        let first = grad.clone();
        let y = l.forward(&params, x, s);
        l.backward(&params, &mut grad, Tensor::full(y.shape().clone(), 1.0), s);
        for (a, b) in grad.iter().zip(first.iter()) {
            assert!((a - 2.0 * b).abs() < 1e-5, "grad should double: {a} vs {b}");
        }
    }

    #[test]
    fn conv_layer_grad_check() {
        let mut l = Conv2d::new("conv", 2, 3, 3, 1, 1, true);
        let params = alloc_params(&l, 4);
        let x = Tensor::randn([2, 2, 5, 5], 1.0, 5);
        grad_check(&mut l, &x, &params, 3e-2);
    }

    #[test]
    fn relu_layer_roundtrip() {
        let mut l = ReLU::new("relu");
        let s = &mut sc();
        let x = Tensor::from_vec([1, 4], vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = l.forward(&[], x, s);
        assert_slice_approx_eq(y.data(), &[0.0, 2.0, 0.0, 4.0], 1e-6);
        let dx = l.backward(&[], &mut [], Tensor::full([1, 4], 1.0), s);
        assert_slice_approx_eq(dx.data(), &[0.0, 1.0, 0.0, 1.0], 1e-6);
    }

    #[test]
    fn channelnorm_normalises() {
        let mut l = ChannelNorm::new("norm", 2);
        let params = alloc_params(&l, 0);
        let x = Tensor::randn([8, 2], 3.0, 6);
        let y = l.forward(&params, x, &mut sc());
        // Each channel of the output should have ~zero mean, ~unit variance.
        for ch in 0..2 {
            let vals: Vec<f32> = (0..8).map(|i| y.data()[i * 2 + ch]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 8.0;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn channelnorm_grad_check_2d() {
        let mut l = ChannelNorm::new("norm", 3);
        let mut params = alloc_params(&l, 0);
        // Non-trivial gamma/beta so parameter grads are exercised.
        params.copy_from_slice(&[1.5, 0.5, 2.0, 0.1, -0.2, 0.3]);
        let x = Tensor::randn([6, 3], 1.0, 7);
        grad_check(&mut l, &x, &params, 3e-2);
    }

    #[test]
    fn channelnorm_grad_check_4d() {
        let mut l = ChannelNorm::new("norm", 2);
        let params = alloc_params(&l, 0);
        let x = Tensor::randn([2, 2, 3, 3], 1.0, 8);
        grad_check(&mut l, &x, &params, 3e-2);
    }

    #[test]
    fn maxpool_layer_shapes() {
        let mut l = MaxPool2d::new("pool", 2);
        let s = &mut sc();
        let x = Tensor::randn([2, 3, 8, 8], 1.0, 9);
        assert_eq!(l.output_shape(x.shape()).dims(), &[2, 3, 4, 4]);
        let y = l.forward(&[], x.clone(), s);
        assert_eq!(y.shape().dims(), &[2, 3, 4, 4]);
        let dx = l.backward(&[], &mut [], Tensor::full(y.shape().clone(), 1.0), s);
        assert_eq!(dx.shape(), x.shape());
        // Each 2x2 window routes exactly one gradient.
        let total: f64 = dx.sum();
        assert!((total - (2 * 3 * 4 * 4) as f64).abs() < 1e-3);
    }

    #[test]
    fn gap_and_flatten_shapes() {
        let mut g = GlobalAvgPool::new("gap");
        let s = &mut sc();
        let x = Tensor::randn([2, 5, 4, 4], 1.0, 10);
        let y = g.forward(&[], x.clone(), s);
        assert_eq!(y.shape().dims(), &[2, 5]);
        let dx = g.backward(&[], &mut [], Tensor::full([2, 5], 1.0), s);
        assert_eq!(dx.shape(), x.shape());

        let mut f = Flatten::new("flat");
        let y = f.forward(&[], x.clone(), s);
        assert_eq!(y.shape().dims(), &[2, 80]);
        let dx = f.backward(&[], &mut [], y, s);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let l = Linear::new("fc", 10, 10);
        let mut a = vec![0.0f32; 110];
        let mut b = vec![0.0f32; 110];
        l.init_params(&mut a, 42);
        l.init_params(&mut b, 42);
        assert_eq!(a, b);
        l.init_params(&mut b, 43);
        assert_ne!(a, b);
    }

    #[test]
    fn flops_nonzero_for_compute_layers() {
        let l = Linear::new("fc", 8, 8);
        assert!(l.flops(&Shape::from([4, 8])) > 0);
        let c = Conv2d::new("conv", 3, 8, 3, 1, 1, true);
        assert!(c.flops(&Shape::from([4, 3, 16, 16])) > 0);
    }
}
