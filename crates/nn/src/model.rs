//! [`Network`]: an ordered layer stack over one flat [`ParamSet`].

use crate::layer::Layer;
use crate::param::ParamSet;
use dgs_sparsify::Partition;
use dgs_tensor::rng::derive_seed;
use dgs_tensor::{ComputeScratch, Kernel, Shape, Tensor};

/// A feed-forward network: layers applied in sequence, parameters stored in
/// one flat vector partitioned per layer parameter.
///
/// The network owns a [`ComputeScratch`]: every layer's GEMM/conv/pool
/// dispatches through its [`Kernel`] (runtime-detected by default,
/// overridable via [`Network::set_kernel`]), and intermediate buffers are
/// recycled through its pools so steady-state training steps allocate
/// nothing. Backends are bitwise identical, so swapping the kernel never
/// changes a single trained bit.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    params: ParamSet,
    input_shape: Shape,
    flops_per_sample: u64,
    scratch: ComputeScratch,
}

impl Network {
    /// Builds a network from layers, laying parameters out consecutively
    /// and initialising them deterministically from `seed`.
    ///
    /// `input_shape` is the *per-sample* shape (no batch dimension); it is
    /// used to validate layer chaining and to compute the flops estimate.
    pub fn new(layers: Vec<Box<dyn Layer>>, input_shape: Shape, seed: u64) -> Self {
        // Lay out partition segments: one per (layer, param) pair.
        let mut sizes: Vec<(String, usize)> = Vec::new();
        for layer in &layers {
            for (suffix, len) in layer.param_sizes() {
                sizes.push((format!("{}.{}", layer.name(), suffix), len));
            }
        }
        let partition = Partition::from_layer_sizes(sizes);
        let mut params = ParamSet::zeros(partition);

        // Initialise each layer's full slice with a per-layer derived seed.
        let mut seg = 0usize;
        {
            let part = params.partition().clone();
            let data = params.data_mut();
            for (li, layer) in layers.iter().enumerate() {
                let n_params: usize = layer.param_sizes().iter().map(|&(_, l)| l).sum();
                if n_params == 0 {
                    continue;
                }
                let start = part.segments()[seg].offset;
                layer.init_params(&mut data[start..start + n_params], derive_seed(seed, li as u64));
                seg += layer.param_sizes().len();
            }
        }

        // Shape-check the chain with a batch-1 probe and total the flops.
        let mut shape = {
            let mut dims = vec![1usize];
            dims.extend_from_slice(input_shape.dims());
            Shape::new(dims)
        };
        let mut flops = 0u64;
        for layer in &layers {
            flops += layer.flops(&shape);
            shape = layer.output_shape(&shape);
        }

        Network {
            layers,
            params,
            input_shape,
            flops_per_sample: flops,
            scratch: ComputeScratch::default(),
        }
    }

    /// Per-sample input shape (no batch dimension).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Pins the compute backend every layer dispatches through. All
    /// backends are bitwise identical, so this changes speed, never bits.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.scratch.set_kernel(kernel);
    }

    /// The compute backend currently in use.
    pub fn kernel(&self) -> Kernel {
        self.scratch.kernel()
    }

    /// Pool-miss count of the owned scratch: stops growing once the
    /// training loop reaches its allocation-free steady state (asserted by
    /// the compute-equivalence suite).
    pub fn scratch_misses(&self) -> u64 {
        self.scratch.misses()
    }

    /// The flat parameter set.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the flat parameter set.
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Estimated forward+backward multiply-accumulates per *sample*; the
    /// discrete-event simulator multiplies by batch size and divides by a
    /// worker's flop/s rating to obtain compute time.
    pub fn flops_per_sample(&self) -> u64 {
        self.flops_per_sample
    }

    /// Each layer's `(start, len)` window in the flat parameter vector.
    fn layer_windows(&self) -> Vec<(usize, usize)> {
        let part = self.params.partition();
        let mut windows = Vec::with_capacity(self.layers.len());
        let mut seg = 0usize;
        for layer in &self.layers {
            let n_segs = layer.param_sizes().len();
            if n_segs == 0 {
                windows.push((0usize, 0usize));
            } else {
                let start = part.segments()[seg].offset;
                let last = &part.segments()[seg + n_segs - 1];
                windows.push((start, last.offset + last.len - start));
            }
            seg += n_segs;
        }
        windows
    }

    /// Forward pass over a batch. `x` must have shape `[batch, input...]`.
    pub fn forward(&mut self, x: Tensor) -> Tensor {
        let windows = self.layer_windows();
        // Field-level split borrow: layers and scratch mutably, params shared.
        let Network { layers, params, scratch, .. } = self;
        let data = params.data();
        let mut cur = x;
        for (layer, &(start, len)) in layers.iter_mut().zip(windows.iter()) {
            cur = layer.forward(&data[start..start + len], cur, scratch);
        }
        cur
    }

    /// Backward pass from the loss gradient w.r.t. the network output.
    /// Accumulates into the flat gradient vector (call
    /// [`ParamSet::zero_grad`] first for a fresh step).
    pub fn backward(&mut self, dy: Tensor) {
        let windows = self.layer_windows();
        let Network { layers, params, scratch, .. } = self;
        let mut cur = dy;
        for (layer, &(start, len)) in layers.iter_mut().zip(windows.iter()).rev() {
            let (p, g) = params.window_view_mut(start, len);
            cur = layer.backward(p, g, cur, scratch);
        }
        // The input gradient of the first layer has no consumer; recycle it.
        scratch.put_tensor(cur);
    }

    /// Convenience: zero grads, forward, softmax cross-entropy, backward.
    /// Returns `(mean loss, number of top-1 correct)`.
    pub fn train_step(&mut self, x: Tensor, labels: &[usize]) -> (f64, usize) {
        self.params.zero_grad();
        let logits = self.forward(x);
        let correct = crate::loss::top1_correct(&logits, labels);
        let (loss, dlogits) = crate::loss::softmax_cross_entropy(&logits, labels);
        self.backward(dlogits);
        (loss, correct)
    }

    /// Forward-only evaluation returning `(mean loss, top-1 correct)`.
    pub fn eval_batch(&mut self, x: Tensor, labels: &[usize]) -> (f64, usize) {
        let logits = self.forward(x);
        let correct = crate::loss::top1_correct(&logits, labels);
        let (loss, _) = crate::loss::softmax_cross_entropy(&logits, labels);
        (loss, correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, ReLU};

    fn tiny_net(seed: u64) -> Network {
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Linear::new("fc1", 4, 8)),
            Box::new(ReLU::new("relu1")),
            Box::new(Linear::new("fc2", 8, 3)),
        ];
        Network::new(layers, Shape::from([4]), seed)
    }

    #[test]
    fn partition_layout() {
        let net = tiny_net(0);
        let names: Vec<&str> =
            net.params().partition().segments().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn deterministic_init() {
        let a = tiny_net(7);
        let b = tiny_net(7);
        assert_eq!(a.params().data(), b.params().data());
        let c = tiny_net(8);
        assert_ne!(a.params().data(), c.params().data());
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_net(1);
        let x = Tensor::randn([5, 4], 1.0, 2);
        let y = net.forward(x);
        assert_eq!(y.shape().dims(), &[5, 3]);
    }

    #[test]
    fn full_network_gradient_check() {
        let mut net = tiny_net(3);
        let x = Tensor::randn([4, 4], 1.0, 4);
        let labels = vec![0usize, 1, 2, 0];
        net.train_step(x.clone(), &labels);
        let analytic = net.params().grad().to_vec();

        let eps = 1e-2f32;
        let loss_at = |net: &mut Network, x: &Tensor| -> f64 {
            let logits = net.forward(x.clone());
            crate::loss::softmax_cross_entropy(&logits, &labels).0
        };
        for &pi in &[0usize, 10, 40, analytic.len() - 1] {
            let orig = net.params().data()[pi];
            net.params_mut().data_mut()[pi] = orig + eps;
            let lp = loss_at(&mut net, &x);
            net.params_mut().data_mut()[pi] = orig - eps;
            let lm = loss_at(&mut net, &x);
            net.params_mut().data_mut()[pi] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - analytic[pi]).abs() < 2e-2 * num.abs().max(1.0),
                "grad[{pi}] numerical {num} vs analytic {}",
                analytic[pi]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = tiny_net(5);
        let x = Tensor::randn([16, 4], 1.0, 6);
        let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();
        let (first_loss, _) = net.train_step(x.clone(), &labels);
        // Plain SGD steps.
        for _ in 0..100 {
            let (_, _) = net.train_step(x.clone(), &labels);
            let grads = net.params().grad().to_vec();
            let data = net.params_mut().data_mut();
            for (p, g) in data.iter_mut().zip(grads.iter()) {
                *p -= 0.1 * g;
            }
        }
        let (last_loss, correct) = net.eval_batch(x, &labels);
        assert!(last_loss < first_loss * 0.5, "loss should drop: {first_loss} -> {last_loss}");
        assert!(correct >= 11, "should mostly memorise the batch, got {correct}/16");
    }

    #[test]
    fn flops_estimate_positive() {
        let net = tiny_net(0);
        assert!(net.flops_per_sample() > 0);
    }
}
