//! Evaluation loops and running statistics.

use crate::data::Dataset;
use crate::loader::EvalIter;
use crate::model::Network;
use serde::{Deserialize, Serialize};

/// Result of one full validation pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Mean cross-entropy loss over the validation set.
    pub loss: f64,
    /// Top-1 accuracy in `[0, 1]`.
    pub top1: f64,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// Evaluates a network over an entire dataset in fixed-size batches.
///
/// A fixed `batch_size` matters because [`ChannelNorm`](crate::layer::ChannelNorm)
/// normalises by batch statistics; all experiments use the same evaluation
/// batch size so numbers are comparable across methods.
pub fn evaluate(net: &mut Network, dataset: &dyn Dataset, batch_size: usize) -> EvalResult {
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut samples = 0usize;
    for (x, labels) in EvalIter::new(dataset, batch_size) {
        let n = labels.len();
        let (loss, c) = net.eval_batch(x, &labels);
        total_loss += loss * n as f64;
        correct += c;
        samples += n;
    }
    EvalResult {
        loss: if samples > 0 { total_loss / samples as f64 } else { 0.0 },
        top1: if samples > 0 { correct as f64 / samples as f64 } else { 0.0 },
        samples,
    }
}

/// A confusion matrix over `classes` labels: `counts[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` labels.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Records one `(true label, predicted label)` pair.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.classes && pred < self.classes, "label out of range");
        self.counts[truth * self.classes + pred] += 1;
    }

    /// The count at `(truth, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.classes + pred]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total); 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|c| self.get(c, c)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (diagonal / row sum); `None` for unseen classes.
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        (0..self.classes)
            .map(|c| {
                let row: u64 = (0..self.classes).map(|p| self.get(c, p)).sum();
                if row == 0 {
                    None
                } else {
                    Some(self.get(c, c) as f64 / row as f64)
                }
            })
            .collect()
    }
}

/// Evaluates a network and additionally builds the confusion matrix —
/// per-class diagnostics the scalar [`evaluate`] summary hides.
pub fn evaluate_confusion(
    net: &mut Network,
    dataset: &dyn Dataset,
    batch_size: usize,
) -> (EvalResult, ConfusionMatrix) {
    let mut cm = ConfusionMatrix::new(dataset.num_classes());
    let mut total_loss = 0.0f64;
    let mut samples = 0usize;
    for (x, labels) in EvalIter::new(dataset, batch_size) {
        let n = labels.len();
        let logits = net.forward(x);
        let preds = logits.argmax_rows();
        for (&t, &p) in labels.iter().zip(preds.iter()) {
            cm.record(t, p);
        }
        let (loss, _) = crate::loss::softmax_cross_entropy(&logits, &labels);
        total_loss += loss * n as f64;
        samples += n;
    }
    let result = EvalResult {
        loss: if samples > 0 { total_loss / samples as f64 } else { 0.0 },
        top1: cm.accuracy(),
        samples,
    };
    (result, cm)
}

/// Streaming mean of a scalar series (loss curves etc.).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = RunningMean::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GaussianBlobs;
    use crate::layer::{Layer, Linear};
    use dgs_tensor::Shape;

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        m.push(2.0);
        m.push(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.count(), 2);
        m.reset();
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn evaluate_runs_over_whole_set() {
        let ds = GaussianBlobs::new(25, 4, 2, 0.2, 3);
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(Linear::new("fc", 4, 2))];
        let mut net = Network::new(layers, Shape::from([4]), 1);
        let res = evaluate(&mut net, &ds, 8);
        assert_eq!(res.samples, 25);
        assert!(res.loss > 0.0);
        assert!((0.0..=1.0).contains(&res.top1));
    }

    #[test]
    fn confusion_matrix_counts_and_recall() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        cm.record(2, 2);
        assert_eq!(cm.total(), 5);
        assert_eq!(cm.get(0, 1), 1);
        assert!((cm.accuracy() - 0.8).abs() < 1e-9);
        let recall = cm.per_class_recall();
        assert_eq!(recall[0], Some(0.5));
        assert_eq!(recall[1], Some(1.0));
        assert_eq!(recall[2], Some(1.0));
        let empty = ConfusionMatrix::new(2);
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.per_class_recall(), vec![None, None]);
    }

    #[test]
    fn evaluate_confusion_agrees_with_evaluate() {
        let ds = GaussianBlobs::new(30, 4, 3, 0.2, 3);
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(Linear::new("fc", 4, 3))];
        let mut net = Network::new(layers, Shape::from([4]), 1);
        let plain = evaluate(&mut net, &ds, 8);
        let (res, cm) = evaluate_confusion(&mut net, &ds, 8);
        assert_eq!(res.samples, plain.samples);
        assert!((res.top1 - plain.top1).abs() < 1e-12);
        assert_eq!(cm.total() as usize, plain.samples);
    }

    #[test]
    fn evaluate_is_deterministic() {
        let ds = GaussianBlobs::new(16, 4, 2, 0.2, 3);
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(Linear::new("fc", 4, 2))];
        let mut net = Network::new(layers, Shape::from([4]), 1);
        let a = evaluate(&mut net, &ds, 4);
        let b = evaluate(&mut net, &ds, 4);
        assert_eq!(a, b);
    }
}
