#![warn(missing_docs)]

//! # dgs-core
//!
//! The paper's contribution: **Dual-Way Gradient Sparsification (DGS)** for
//! asynchronous parameter-server training, plus every baseline it is
//! evaluated against.
//!
//! * [`protocol`] — the worker↔server messages with byte-exact wire sizes.
//! * [`config`] — experiment configuration ([`TrainConfig`]), learning-rate
//!   schedules, DGC warm-up ramps.
//! * [`method`] — the five training methods and their technique matrix
//!   (paper Table 5).
//! * [`compress`] — worker-side update construction: dense (ASGD), Top-k
//!   with residual accumulation (GD-async, Alg. 1), DGC's momentum
//!   correction + factor masking, and **SAMomentum** (DGS, Alg. 3 /
//!   Eq. 14-16).
//! * [`server`] — the **Model-Difference-Tracking** server (Alg. 2 /
//!   Eq. 1-6): update accumulator `M`, per-worker delivered vectors `v_k`,
//!   difference `G = M − v_k`, optional secondary compression, plus the
//!   dense-model downlink that vanilla ASGD uses.
//! * [`shard`] — the lock-striped sharded server: the same Alg. 2 state
//!   split along partition segments behind per-shard locks, bitwise
//!   identical on the wire to [`server`] (see `DESIGN.md` §"Sharded
//!   server").
//! * [`cluster`] — the wire-serialisable partition map a multi-process
//!   span-server cluster agrees on at handshake time.
//! * [`update_log`] — the bounded applied-update log behind the server's
//!   O(nnz) downlink construction (see `DESIGN.md` §"Server hot path").
//! * [`worker`] — a training worker: model + data loader + compressor,
//!   usable by both execution engines.
//! * [`trainer`] — orchestration: single-node MSGD, the real-thread
//!   asynchronous cluster, and the deterministic DES cluster.
//! * [`curves`] — training-curve records serialised for EXPERIMENTS.md.
//! * [`memory`] — §5.6.2 memory accounting.

/// Below this many model coordinates the per-segment hot paths (server
/// reply construction, worker uplink selection) run sequentially instead of
/// fanning segments out to rayon — same threshold idiom as
/// `dgs_tensor::matmul`.
pub(crate) const PAR_THRESHOLD: usize = 16 * 1024;

pub mod cluster;
pub mod compress;
pub mod config;
pub mod curves;
pub mod memory;
pub mod method;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod trainer;
pub mod update_log;
pub mod worker;

pub use cluster::{ClusterLayout, SpanInfo};
pub use config::{LrSchedule, TrainConfig};
pub use curves::{CurvePoint, RunResult};
pub use method::Method;
pub use protocol::{DownMsg, UpMsg};
pub use server::MdtServer;
pub use shard::ShardedMdtServer;
pub use worker::TrainWorker;
