//! Deterministic arrival schedules and the sequential scheduled trainer.
//!
//! The real-thread engine races workers against each other, so its update
//! arrival order — and therefore the trained model — varies run to run.
//! That nondeterminism makes it useless as a reference for transport
//! testing: "did the wire change the result?" cannot be answered when the
//! result changes by itself.
//!
//! A [`Schedule`] pins the arrival order. [`train_scheduled`] then drives
//! the *same* server logic and workers the threaded engine uses, but
//! sequentially in schedule order, making the entire run a pure function
//! of `(config, model seed, schedule)`. `dgs_net::runtime::train_loopback`
//! replays the identical schedule with every message round-tripped
//! through the wire codec; bitwise-equal final models prove the encoding
//! is lossless (the `transport_equivalence` integration test).

use crate::config::TrainConfig;
use crate::curves::RunResult;
use crate::trainer::threaded::build_participants;
use crate::trainer::ModelBuilder;
use dgs_nn::data::Dataset;
use std::sync::Arc;
use std::time::Instant;

/// A fixed update-arrival order: element `i` is the worker whose update
/// the server processes `i`-th. Every worker appears exactly
/// `iters`-times; per-worker order is inherently sequential (a worker
/// cannot send update `n+1` before receiving reply `n`), so any
/// interleaving of the multiset is a valid asynchronous execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    order: Vec<usize>,
    workers: usize,
}

impl Schedule {
    /// Strict round-robin arrival: `0, 1, …, W−1, 0, 1, …`.
    pub fn round_robin(workers: usize, iters: usize) -> Self {
        assert!(workers > 0, "schedule needs at least one worker");
        let order = (0..workers * iters).map(|i| i % workers).collect();
        Schedule { order, workers }
    }

    /// Seeded pseudo-random interleaving: each slot picks uniformly among
    /// the updates still owed, so staleness patterns vary with `seed`
    /// while per-worker counts stay exact. xorshift64* keeps it
    /// dependency-free and reproducible across platforms.
    pub fn interleaved(workers: usize, iters: usize, seed: u64) -> Self {
        assert!(workers > 0, "schedule needs at least one worker");
        let mut remaining = vec![iters; workers];
        let mut left = workers * iters;
        let mut state = seed | 1;
        let mut order = Vec::with_capacity(left);
        while left > 0 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let mut pick = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % left;
            for (k, rem) in remaining.iter_mut().enumerate() {
                if pick < *rem {
                    order.push(k);
                    *rem -= 1;
                    left -= 1;
                    break;
                }
                pick -= *rem;
            }
        }
        Schedule { order, workers }
    }

    /// The arrival order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of workers the schedule covers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total updates scheduled.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no updates are scheduled.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Updates scheduled for one worker.
    pub fn count_for(&self, worker: usize) -> usize {
        self.order.iter().filter(|&&w| w == worker).count()
    }
}

/// A finished scheduled run: the usual run record plus the final model
/// states, exposed so differential tests can compare them bitwise.
pub struct ScheduledRun {
    /// Curves, traffic, staleness — same record the other engines produce.
    pub result: RunResult,
    /// Server's final global model `θ_0 + M`.
    pub server_model: Vec<f32>,
    /// Each worker's final local model.
    pub worker_models: Vec<Vec<f32>>,
}

/// Builds a full-length schedule for `cfg` (each worker appears
/// `cfg.iters_per_worker` times) with the given arrival seed;
/// `seed = None` gives round-robin.
pub fn schedule_for(cfg: &TrainConfig, dataset_len: usize, seed: Option<u64>) -> Schedule {
    let iters = cfg.iters_per_worker(dataset_len);
    match seed {
        None => Schedule::round_robin(cfg.workers, iters),
        Some(s) => Schedule::interleaved(cfg.workers, iters, s),
    }
}

/// Trains with a pinned arrival order: the same participants as
/// [`crate::trainer::train_async`], driven sequentially, so the run is
/// fully deterministic.
pub fn train_scheduled(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    schedule: &Schedule,
) -> ScheduledRun {
    assert_eq!(schedule.workers(), cfg.workers, "schedule/config worker count mismatch");
    let iters = cfg.iters_per_worker(train.len());
    for k in 0..cfg.workers {
        assert_eq!(
            schedule.count_for(k),
            iters,
            "schedule must give worker {k} exactly {iters} updates"
        );
    }
    let (mut logic, mut workers) = build_participants(cfg, build_model, &train, &val, 50.0);
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let start = Instant::now();
    for &k in schedule.order() {
        let up = workers[k].local_step();
        let reply = logic.process(k, up);
        workers[k].apply_reply(reply);
    }
    let server_model = logic.server().current_model();
    let worker_models = workers.iter().map(|w| w.model_params().to_vec()).collect();
    let result = logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    ScheduledRun { result, server_model, worker_models }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LrSchedule;
    use crate::method::Method;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;

    fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
        let blobs = GaussianBlobs::new(192, 8, 4, 0.3, 1);
        let val = Arc::new(blobs.validation(96));
        (Arc::new(blobs), val)
    }

    fn quick_cfg(method: Method, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::paper_default(method, workers, 4);
        cfg.batch_per_worker = 16;
        cfg.lr = LrSchedule::paper_default(0.05, 4);
        cfg.sparsity_ratio = 0.05;
        cfg.evals = 2;
        cfg
    }

    #[test]
    fn round_robin_counts_exact() {
        let s = Schedule::round_robin(3, 5);
        assert_eq!(s.len(), 15);
        for k in 0..3 {
            assert_eq!(s.count_for(k), 5);
        }
        assert_eq!(&s.order()[..4], &[0, 1, 2, 0]);
    }

    #[test]
    fn interleaved_counts_exact_and_seed_sensitive() {
        let a = Schedule::interleaved(4, 10, 7);
        let b = Schedule::interleaved(4, 10, 8);
        let a2 = Schedule::interleaved(4, 10, 7);
        assert_eq!(a, a2, "same seed must reproduce");
        assert_ne!(a, b, "different seeds should interleave differently");
        for k in 0..4 {
            assert_eq!(a.count_for(k), 10);
            assert_eq!(b.count_for(k), 10);
        }
    }

    #[test]
    fn scheduled_run_is_deterministic() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 3);
        let build = || mlp(8, &[16], 4, 42);
        let schedule = schedule_for(&cfg, train.len(), Some(5));
        let a = train_scheduled(&cfg, &build, Arc::clone(&train), Arc::clone(&val), &schedule);
        let b = train_scheduled(&cfg, &build, train, val, &schedule);
        assert_eq!(a.server_model, b.server_model, "same schedule must be bit-reproducible");
        assert_eq!(a.worker_models, b.worker_models);
        assert_eq!(a.result.bytes_up, b.result.bytes_up);
        assert_eq!(a.result.bytes_down, b.result.bytes_down);
    }

    #[test]
    fn arrival_order_changes_the_run() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 3);
        let build = || mlp(8, &[16], 4, 42);
        let rr = schedule_for(&cfg, train.len(), None);
        let mixed = schedule_for(&cfg, train.len(), Some(11));
        assert_ne!(rr, mixed);
        let a = train_scheduled(&cfg, &build, Arc::clone(&train), Arc::clone(&val), &rr);
        let b = train_scheduled(&cfg, &build, train, val, &mixed);
        // Different staleness pattern ⇒ different trajectories. (Equality
        // here would mean the schedule isn't actually reaching the server.)
        assert_ne!(a.server_model, b.server_model);
    }

    #[test]
    fn scheduled_learns_like_the_threaded_engine() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 2);
        let build = || mlp(8, &[16], 4, 42);
        let schedule = schedule_for(&cfg, train.len(), Some(3));
        let run = train_scheduled(&cfg, &build, train, val, &schedule);
        assert!(run.result.final_acc > 0.7, "acc {}", run.result.final_acc);
        assert!(run.result.bytes_up > 0 && run.result.bytes_down > 0);
        assert_eq!(run.worker_models.len(), 2);
    }

    #[test]
    #[should_panic(expected = "worker count mismatch")]
    fn schedule_worker_mismatch_rejected() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 2);
        let build = || mlp(8, &[16], 4, 42);
        let schedule = Schedule::round_robin(3, 4);
        train_scheduled(&cfg, &build, train, val, &schedule);
    }
}
