//! Synchronous data-parallel SGD (SSGD) — the training mode the paper's
//! introduction argues *against*, included so the motivation is
//! reproducible: under worker lag the barrier makes every round as slow as
//! the slowest worker, which is exactly what ASGD/DGS remove.
//!
//! Two compression variants:
//!
//! * [`SyncCompression::Dense`] — classic synchronous momentum SGD: the
//!   server averages dense `η∇` from all workers and applies one momentum
//!   update (paper Eq. 7).
//! * [`SyncCompression::TopK`] — synchronous Gradient Dropping (Aji &
//!   Heafield): each worker keeps a residual, sends its per-layer Top-k,
//!   the server averages the sparse updates. This is the *original*
//!   setting of GD/DGC before the paper ports them to asynchrony.
//!
//! Virtual time models the synchronisation barrier explicitly: each round
//! costs `max_k(compute_k)` plus the (shared-NIC serialised) gather and
//! broadcast transfer times plus aggregation. Worker lag is injected via
//! [`StragglerModel`].

use crate::compress::{Compressor, GradientDroppingCompressor, StepCtx};
use crate::config::TrainConfig;
use crate::curves::{CurvePoint, RunResult};
use crate::protocol::{UpPayload, HEADER_BYTES};
use crate::trainer::des::DesParams;
use crate::trainer::ModelBuilder;
use dgs_nn::data::Dataset;
use dgs_nn::loader::BatchLoader;
use dgs_nn::metrics::evaluate;
use dgs_psim::StragglerModel;
use dgs_tensor::rng::derive_seed;
use std::sync::Arc;

/// Uplink compression used by the synchronous trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncCompression {
    /// Dense gradient exchange (classic SSGD).
    Dense,
    /// Per-layer Top-k with residual accumulation (synchronous GD).
    TopK {
        /// Keep ratio (e.g. 0.01 for 99% sparsity).
        ratio: f64,
    },
}

/// Trains synchronously: every round, all workers compute a gradient on
/// the *same* model, the server aggregates, everyone advances together.
///
/// Uses `cfg` for batch size, epochs, learning rate, momentum, and seed;
/// `cfg.method` is ignored (this trainer *is* the method). Virtual time
/// uses `params`'s network/compute models plus the straggler model.
pub fn train_ssgd(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    compression: SyncCompression,
    params: DesParams,
    stragglers: &StragglerModel,
) -> RunResult {
    let start = std::time::Instant::now();
    let workers = cfg.workers.max(1);
    let dataset_len = train.len();
    // Match the async budget: total samples = epochs × dataset_len.
    let rounds = cfg.iters_per_worker(dataset_len);
    let eval_every = (rounds / cfg.evals.max(1)).max(1);

    // One model per worker is unnecessary in sync mode: everyone holds the
    // same parameters. Keep one global model plus per-worker loaders and
    // (for Top-k) per-worker residual compressors.
    let mut net = build_model();
    let dim = net.num_params();
    let partition = net.params().partition().clone();
    let mut loaders: Vec<BatchLoader> = (0..workers)
        .map(|k| {
            BatchLoader::new(
                Arc::clone(&train),
                cfg.batch_per_worker,
                derive_seed(cfg.seed, 1000 + k as u64),
            )
        })
        .collect();
    let mut topk_state: Vec<GradientDroppingCompressor> = match compression {
        SyncCompression::Dense => Vec::new(),
        SyncCompression::TopK { .. } => {
            (0..workers).map(|_| GradientDroppingCompressor::new(dim)).collect()
        }
    };

    let mut velocity = vec![0.0f32; dim];
    let momentum = cfg.momentum;
    let flops_per_iter = net.flops_per_sample() as f64 * cfg.batch_per_worker as f64;
    let base_compute = flops_per_iter / (params.worker_gflops * 1e9);

    let mut vtime = 0.0f64;
    let mut bytes_up = 0u64;
    let mut bytes_down = 0u64;
    let mut curve = Vec::new();
    let mut loss_sum = 0.0f64;
    let mut loss_n = 0u64;

    for round in 0..rounds {
        let epoch = cfg.epoch_of_iter(round, dataset_len);
        let lr = cfg.lr.lr_at(epoch);

        // Gather phase: every worker computes on the same model.
        let mut agg = vec![0.0f32; dim];
        let mut round_up_bytes = 0usize;
        let mut max_compute = 0.0f64;
        for k in 0..workers {
            let (x, labels) = loaders[k].next_batch();
            let (loss, _) = net.train_step(x, &labels);
            loss_sum += loss;
            loss_n += 1;
            max_compute = max_compute.max(base_compute * stragglers.multiplier(k, round as u64));
            match compression {
                SyncCompression::Dense => {
                    for (a, &g) in agg.iter_mut().zip(net.params().grad().iter()) {
                        *a += lr * g;
                    }
                    round_up_bytes += HEADER_BYTES + 4 * dim;
                }
                SyncCompression::TopK { ratio } => {
                    let payload = topk_state[k].compress(
                        net.params().grad(),
                        &partition,
                        StepCtx { lr, ratio },
                    );
                    if let UpPayload::Sparse(update) = payload {
                        round_up_bytes += HEADER_BYTES + update.wire_bytes();
                        update.apply_add(&mut agg, &partition, 1.0);
                    }
                }
            }
        }
        let inv_n = 1.0 / workers as f32;

        // Apply phase: one global update.
        match compression {
            SyncCompression::Dense => {
                let data = net.params_mut().data_mut();
                for ((p, u), &g) in data.iter_mut().zip(velocity.iter_mut()).zip(agg.iter()) {
                    *u = momentum * *u + g * inv_n;
                    *p -= *u;
                }
            }
            SyncCompression::TopK { .. } => {
                // Synchronous GD applies the averaged sparse update without
                // momentum (Aji & Heafield).
                let data = net.params_mut().data_mut();
                for (p, &g) in data.iter_mut().zip(agg.iter()) {
                    *p -= g * inv_n;
                }
            }
        }

        // Broadcast phase: in MDT terms the sync server ships the averaged
        // update (sparse methods: union of contributions) to everyone.
        let down_per_worker = match compression {
            SyncCompression::Dense => HEADER_BYTES + 4 * dim,
            SyncCompression::TopK { .. } => {
                let nnz = agg.iter().filter(|&&v| v != 0.0).count();
                HEADER_BYTES + 4 + 8 * nnz
            }
        };
        bytes_up += round_up_bytes as u64;
        bytes_down += (down_per_worker * workers) as u64;

        // Barrier timing: slowest compute, then serialised gather and
        // broadcast on the shared server NIC, then aggregation.
        let gather_time: f64 = if params.shared_server_link {
            (round_up_bytes as f64 * 8.0) / params.network.bandwidth_bps + params.network.latency_s
        } else {
            ((round_up_bytes as f64 / workers as f64) * 8.0) / params.network.bandwidth_bps
                + params.network.latency_s
        };
        let broadcast_time: f64 = if params.shared_server_link {
            ((down_per_worker * workers) as f64 * 8.0) / params.network.bandwidth_bps
                + params.network.latency_s
        } else {
            (down_per_worker as f64 * 8.0) / params.network.bandwidth_bps + params.network.latency_s
        };
        vtime += max_compute + gather_time + params.server_cost.time_for(dim) + broadcast_time;

        if (round + 1) % eval_every == 0 || round + 1 == rounds {
            let res = evaluate(&mut net, val.as_ref(), cfg.eval_batch);
            curve.push(CurvePoint {
                epoch: epoch + 1,
                updates: (round + 1) as u64,
                train_loss: if loss_n > 0 { loss_sum / loss_n as f64 } else { 0.0 },
                val_loss: res.loss,
                val_acc: res.top1,
                virtual_time: vtime,
                bytes_up,
                bytes_down,
            });
            loss_sum = 0.0;
            loss_n = 0;
        }
    }

    let last = curve.last().copied();
    RunResult {
        config: cfg.clone(),
        final_acc: last.map(|p| p.val_acc).unwrap_or(0.0),
        final_loss: last.map(|p| p.val_loss).unwrap_or(0.0),
        bytes_up,
        bytes_down,
        virtual_time: vtime,
        wall_secs: start.elapsed().as_secs_f64(),
        mean_staleness: 0.0, // synchronous: no stale gradients by construction
        max_staleness: 0,
        server_tracking_bytes: 0,
        worker_aux_bytes: match compression {
            SyncCompression::Dense => 0,
            SyncCompression::TopK { .. } => dim * 4,
        },
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LrSchedule;
    use crate::method::Method;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;

    fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
        let blobs = GaussianBlobs::new(192, 8, 4, 0.3, 3);
        let val = Arc::new(blobs.validation(96));
        (Arc::new(blobs), val)
    }

    fn cfg(workers: usize) -> TrainConfig {
        let mut c = TrainConfig::paper_default(Method::Msgd, 1, 6);
        c.workers = workers;
        c.batch_per_worker = 8;
        c.lr = LrSchedule::paper_default(0.05, 6);
        c.momentum = 0.5;
        c.seed = 9;
        c.evals = 3;
        c
    }

    fn build() -> dgs_nn::model::Network {
        mlp(8, &[24], 4, 11)
    }

    #[test]
    fn ssgd_dense_learns() {
        let (train, val) = datasets();
        let res = train_ssgd(
            &cfg(4),
            &build,
            train,
            val,
            SyncCompression::Dense,
            DesParams::ten_gbps(),
            &StragglerModel::none(),
        );
        assert!(res.final_acc > 0.85, "acc {}", res.final_acc);
        assert_eq!(res.mean_staleness, 0.0);
        assert!(res.virtual_time > 0.0);
    }

    #[test]
    fn ssgd_topk_learns_and_sends_less() {
        let (train, val) = datasets();
        let dense = train_ssgd(
            &cfg(4),
            &build,
            Arc::clone(&train),
            Arc::clone(&val),
            SyncCompression::Dense,
            DesParams::ten_gbps(),
            &StragglerModel::none(),
        );
        let sparse = train_ssgd(
            &cfg(4),
            &build,
            train,
            val,
            SyncCompression::TopK { ratio: 0.1 },
            DesParams::ten_gbps(),
            &StragglerModel::none(),
        );
        assert!(sparse.final_acc > 0.75, "acc {}", sparse.final_acc);
        assert!(
            sparse.bytes_up * 3 < dense.bytes_up,
            "Top-k should shrink uplink: {} vs {}",
            sparse.bytes_up,
            dense.bytes_up
        );
    }

    #[test]
    fn straggler_slows_sync_rounds() {
        let (train, val) = datasets();
        // Compute-bound regime (slow workers, fast network) so the barrier
        // cost is visible; transfer-bound regimes dilute the straggler.
        let params = DesParams {
            network: dgs_psim::NetworkModel::infinite(),
            worker_gflops: 0.05,
            ..DesParams::ten_gbps()
        };
        let fair = train_ssgd(
            &cfg(4),
            &build,
            Arc::clone(&train),
            Arc::clone(&val),
            SyncCompression::Dense,
            params,
            &StragglerModel::none(),
        );
        let lagged = train_ssgd(
            &cfg(4),
            &build,
            train,
            val,
            SyncCompression::Dense,
            params,
            &StragglerModel::one_slow(8.0),
        );
        // One 8x straggler inflates the barrier every round.
        assert!(
            lagged.virtual_time > 2.0 * fair.virtual_time,
            "straggler should dominate the barrier: {} vs {}",
            lagged.virtual_time,
            fair.virtual_time
        );
        // Accuracy is unaffected (synchronisation hides lag, costs time).
        assert!((lagged.final_acc - fair.final_acc).abs() < 1e-9);
    }

    #[test]
    fn ssgd_deterministic() {
        let run = || {
            let (train, val) = datasets();
            train_ssgd(
                &cfg(3),
                &build,
                train,
                val,
                SyncCompression::TopK { ratio: 0.2 },
                DesParams::one_gbps(),
                &StragglerModel::jitter(0.2, 5),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_acc, b.final_acc);
        assert_eq!(a.virtual_time, b.virtual_time);
        assert_eq!(a.bytes_up, b.bytes_up);
    }
}
