//! Discrete-event-simulated asynchronous training.
//!
//! Wraps the same [`AsyncServerLogic`] / [`TrainWorker`] pair used by the
//! thread engine in the [`dgs_psim::des`] traits, adding the cost models
//! the virtual clock needs: worker compute time (flops / rated GFLOP/s)
//! and server processing time (per-update base cost plus a per-coordinate
//! cost). Used for the paper's wall-clock experiments (Figs. 5 and 6),
//! where the quantity of interest is virtual time, not host time.

use crate::config::TrainConfig;
use crate::curves::RunResult;
use crate::protocol::{DownMsg, UpMsg};
use crate::trainer::threaded::{build_participants, AsyncServerLogic};
use crate::trainer::ModelBuilder;
use crate::worker::TrainWorker;
use dgs_nn::data::Dataset;
use dgs_psim::des::{run_des_budget, Budget, DesNetwork, DesServer, DesWorker};
use dgs_psim::NetworkModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Server processing cost: seconds per update handled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerCostModel {
    /// Fixed per-update cost in seconds.
    pub base_s: f64,
    /// Additional cost per update coordinate (applies the scatter-add).
    pub per_coord_s: f64,
}

impl Default for ServerCostModel {
    fn default() -> Self {
        // ~50 µs dispatch plus 1 ns per touched coordinate — a fast server.
        ServerCostModel { base_s: 50e-6, per_coord_s: 1e-9 }
    }
}

impl ServerCostModel {
    /// Processing time for an update carrying `nnz` coordinates.
    pub fn time_for(&self, nnz: usize) -> f64 {
        self.base_s + self.per_coord_s * nnz as f64
    }
}

/// Parameters of a DES run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesParams {
    /// Worker↔server link model.
    pub network: NetworkModel,
    /// Model the server NIC as a shared full-duplex channel (the paper's
    /// physical topology; the source of ASGD's scaling collapse).
    pub shared_server_link: bool,
    /// Rated worker compute throughput in GFLOP/s. Calibrated so the
    /// compute:communication ratio at our model sizes matches the paper's
    /// V100 + ResNet-18 regime (see EXPERIMENTS.md §Calibration).
    pub worker_gflops: f64,
    /// Server processing cost model.
    pub server_cost: ServerCostModel,
}

impl DesParams {
    /// The paper's 10 Gbps cluster with a V100-class (relative) worker.
    pub fn ten_gbps() -> Self {
        DesParams {
            network: NetworkModel::ten_gbps(),
            shared_server_link: true,
            worker_gflops: 5.0,
            server_cost: ServerCostModel::default(),
        }
    }

    /// The throttled 1 Gbps setting of Figs. 5-6.
    pub fn one_gbps() -> Self {
        DesParams { network: NetworkModel::one_gbps(), ..DesParams::ten_gbps() }
    }

    /// The [`DesNetwork`] this configuration describes.
    pub fn des_network(&self) -> DesNetwork {
        DesNetwork { model: self.network, shared_server_link: self.shared_server_link }
    }
}

struct DesServerAdapter {
    logic: AsyncServerLogic,
    cost: ServerCostModel,
}

impl DesServer for DesServerAdapter {
    type Up = UpMsg;
    type Down = DownMsg;

    fn handle(&mut self, worker: usize, _seq: u64, vtime: f64, up: UpMsg) -> (DownMsg, usize, f64) {
        let nnz = up.payload.nnz();
        self.logic.vtime = vtime;
        let reply = self.logic.process(worker, up);
        let bytes = reply.wire_bytes();
        (reply, bytes, self.cost.time_for(nnz))
    }
}

impl DesWorker for TrainWorker {
    type Up = UpMsg;
    type Down = DownMsg;

    fn compute(&mut self) -> (UpMsg, usize, f64) {
        let up = self.local_step();
        let bytes = up.wire_bytes();
        (up, bytes, self.compute_secs())
    }

    fn apply(&mut self, down: DownMsg) {
        self.apply_reply(down);
    }
}

/// Trains under the discrete-event simulator and returns the run record
/// (with `virtual_time` populated on every curve point).
pub fn train_des(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    params: DesParams,
) -> RunResult {
    train_des_stragglers(cfg, build_model, train, val, params, &dgs_psim::StragglerModel::none())
}

/// [`train_des`] with a worker-lag model: each worker's modelled compute
/// time is multiplied by `stragglers.multiplier(worker, iter)`. Used for
/// the straggler ablation that reproduces the paper's §1 motivation.
pub fn train_des_stragglers(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    params: DesParams,
    stragglers: &dgs_psim::StragglerModel,
) -> RunResult {
    let start = std::time::Instant::now();
    let (logic, mut workers) =
        build_participants(cfg, build_model, &train, &val, params.worker_gflops);
    for w in workers.iter_mut() {
        w.set_stragglers(stragglers.clone());
    }
    let iters = cfg.iters_per_worker(train.len());
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let mut adapter = DesServerAdapter { logic, cost: params.server_cost };
    // With a lag model, consume the budget first-come first-served so fast
    // workers pick up the straggler's slack — the asynchronous cluster's
    // actual behaviour. The uniform case keeps per-worker quotas, which is
    // equivalent there and preserves fig. 6's fixed-work protocol.
    let budget = if stragglers.is_none() {
        Budget::PerWorker(iters)
    } else {
        Budget::Total(iters.saturating_mul(cfg.workers))
    };
    let report = run_des_budget(&mut adapter, &mut workers, budget, params.des_network());
    let mut result =
        adapter.logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux);
    result.virtual_time = report.total_time;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;

    fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
        let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 1);
        let val = Arc::new(blobs.validation(64));
        (Arc::new(blobs), val)
    }

    fn quick_cfg(method: Method, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::paper_default(method, workers, 4);
        cfg.batch_per_worker = 16;
        cfg.lr = crate::config::LrSchedule::paper_default(0.05, 4);
        cfg.sparsity_ratio = 0.05;
        cfg.evals = 4;
        cfg
    }

    #[test]
    fn des_produces_virtual_time_curve() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 2);
        let build = || mlp(8, &[16], 4, 5);
        let result = train_des(&cfg, &build, train, val, DesParams::ten_gbps());
        assert!(result.virtual_time > 0.0);
        // Curve points carry increasing virtual time.
        let times: Vec<f64> = result.curve.iter().map(|p| p.virtual_time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert!(result.final_acc > 0.5);
    }

    #[test]
    fn des_is_deterministic() {
        let run = || {
            let (train, val) = datasets();
            let cfg = quick_cfg(Method::Dgs, 3);
            let build = || mlp(8, &[16], 4, 5);
            train_des(&cfg, &build, train, val, DesParams::one_gbps())
        };
        let a = run();
        let b = run();
        assert_eq!(a.virtual_time, b.virtual_time);
        assert_eq!(a.bytes_up, b.bytes_up);
        assert_eq!(a.final_acc, b.final_acc);
        for (pa, pb) in a.curve.iter().zip(b.curve.iter()) {
            assert_eq!(pa.train_loss, pb.train_loss);
            assert_eq!(pa.virtual_time, pb.virtual_time);
        }
    }

    #[test]
    fn dgs_faster_than_asgd_on_slow_network() {
        // The Fig. 5 phenomenon in miniature: at 1 Gbps-relative scale the
        // dense model downlink throttles ASGD while DGS's sparse traffic
        // keeps the pipeline busy. Use a bigger model so transfers dominate.
        let (train, val) = datasets();
        let build = || mlp(8, &[256, 256], 4, 5);
        // Slow link to make communication the bottleneck at this model size.
        let params = DesParams { network: NetworkModel::new(0.05, 50.0), ..DesParams::ten_gbps() };
        let dgs = train_des(
            &quick_cfg(Method::Dgs, 2),
            &build,
            Arc::clone(&train),
            Arc::clone(&val),
            params,
        );
        let asgd = train_des(&quick_cfg(Method::Asgd, 2), &build, train, val, params);
        assert!(
            dgs.virtual_time * 3.0 < asgd.virtual_time,
            "DGS {}s vs ASGD {}s",
            dgs.virtual_time,
            asgd.virtual_time
        );
    }

    #[test]
    fn faster_network_reduces_virtual_time() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Asgd, 2);
        let build = || mlp(8, &[128], 4, 5);
        let slow = train_des(
            &cfg,
            &build,
            Arc::clone(&train),
            Arc::clone(&val),
            DesParams { network: NetworkModel::new(0.1, 50.0), ..DesParams::ten_gbps() },
        );
        let fast = train_des(&cfg, &build, train, val, DesParams::ten_gbps());
        assert!(fast.virtual_time < slow.virtual_time);
    }
}
