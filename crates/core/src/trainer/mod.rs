//! Training orchestration over the three execution modes.
//!
//! * [`single`] — single-node momentum SGD (the paper's MSGD baseline).
//! * [`threaded`] — real-thread asynchronous parameter-server training
//!   (accuracy experiments: Figs. 2-4, Tables 2-4).
//! * [`des`] — deterministic discrete-event simulation with a modelled
//!   network (wall-clock experiments: Figs. 5-6).
//! * [`sync`] — synchronous SSGD with an explicit barrier and straggler
//!   model (the paper's motivating comparison, §1).
//! * [`schedule`] — deterministic arrival schedules and the sequential
//!   scheduled driver, the reference side of the transport differential
//!   tests (`dgs-net`).
//! * [`sharded`] — concurrent (`&self`) server logic over the
//!   lock-striped [`ShardedMdtServer`](crate::shard::ShardedMdtServer),
//!   used by the cross-process transport to scale with cores.
//!
//! All engines produce the same [`RunResult`](crate::curves::RunResult) so
//! the experiment harness and plots treat them uniformly.

pub mod des;
pub mod schedule;
pub mod sharded;
pub mod single;
pub mod sync;
pub mod threaded;

pub use des::{train_des, train_des_stragglers, DesParams, ServerCostModel};
pub use schedule::{schedule_for, train_scheduled, Schedule, ScheduledRun};
pub use sharded::{build_sharded_participants, ShardedServerLogic};
pub use single::train_msgd;
pub use sync::{train_ssgd, SyncCompression};
pub use threaded::{build_participants, train_async, AsyncServerLogic};

use dgs_nn::model::Network;

/// Builds a fresh, identically initialised model. All participants of a run
/// call this with the same captured seed so they agree on `θ_0`.
pub type ModelBuilder<'a> = &'a (dyn Fn() -> Network + Sync);
