//! Single-node momentum SGD — the paper's MSGD accuracy baseline (Eq. 7
//! with one worker): `u ← m·u + η∇`, `θ ← θ − u`.

use crate::config::TrainConfig;
use crate::curves::{CurvePoint, RunResult};
use crate::method::Method;
use dgs_nn::data::Dataset;
use dgs_nn::loader::BatchLoader;
use dgs_nn::metrics::evaluate;
use dgs_nn::model::Network;
use dgs_tensor::rng::derive_seed;
use std::sync::Arc;

/// Trains a model with single-node momentum SGD.
///
/// Iteration budget matches the distributed runs: `epochs × dataset_len /
/// batch` total minibatches, evaluated `cfg.evals` times along the way.
pub fn train_msgd(
    mut net: Network,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
    cfg: &TrainConfig,
) -> RunResult {
    assert_eq!(cfg.method, Method::Msgd, "train_msgd requires Method::Msgd");
    let start = std::time::Instant::now();
    let dataset_len = train.len();
    let mut loader = BatchLoader::new(train, cfg.batch_per_worker, derive_seed(cfg.seed, 1000));
    let iters = cfg.iters_per_worker(dataset_len);
    let eval_every = (iters / cfg.evals.max(1)).max(1);

    let mut velocity = vec![0.0f32; net.num_params()];
    let momentum = cfg.momentum;
    let mut curve = Vec::new();
    let mut loss_sum = 0.0f64;
    let mut loss_n = 0u64;

    for iter in 0..iters {
        let epoch = cfg.epoch_of_iter(iter, dataset_len);
        let lr = cfg.lr.lr_at(epoch);
        let (x, labels) = loader.next_batch();
        let (loss, _) = net.train_step(x, &labels);
        loss_sum += loss;
        loss_n += 1;

        {
            let grads = net.params().grad().to_vec();
            let wd = cfg.weight_decay;
            let data = net.params_mut().data_mut();
            for ((p, u), &g) in data.iter_mut().zip(velocity.iter_mut()).zip(grads.iter()) {
                *u = momentum * *u + lr * (g + wd * *p);
                *p -= *u;
            }
        }

        if (iter + 1) % eval_every == 0 || iter + 1 == iters {
            let res = evaluate(&mut net, val.as_ref(), cfg.eval_batch);
            curve.push(CurvePoint {
                epoch: epoch + 1,
                updates: (iter + 1) as u64,
                train_loss: if loss_n > 0 { loss_sum / loss_n as f64 } else { 0.0 },
                val_loss: res.loss,
                val_acc: res.top1,
                virtual_time: 0.0,
                bytes_up: 0,
                bytes_down: 0,
            });
            loss_sum = 0.0;
            loss_n = 0;
        }
    }

    let last = curve.last().copied().unwrap_or(CurvePoint {
        epoch: 0,
        updates: 0,
        train_loss: 0.0,
        val_loss: 0.0,
        val_acc: 0.0,
        virtual_time: 0.0,
        bytes_up: 0,
        bytes_down: 0,
    });
    RunResult {
        config: cfg.clone(),
        curve,
        final_acc: last.val_acc,
        final_loss: last.val_loss,
        bytes_up: 0,
        bytes_down: 0,
        virtual_time: 0.0,
        wall_secs: start.elapsed().as_secs_f64(),
        mean_staleness: 0.0,
        max_staleness: 0,
        server_tracking_bytes: 0,
        worker_aux_bytes: net.num_params() * 4, // the velocity buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;

    #[test]
    fn msgd_learns_blobs() {
        let blobs = GaussianBlobs::new(256, 8, 4, 0.3, 1);
        let val: Arc<dyn Dataset> = Arc::new(blobs.validation(128));
        let train: Arc<dyn Dataset> = Arc::new(blobs);
        let mut cfg = TrainConfig::paper_default(Method::Msgd, 1, 10);
        cfg.batch_per_worker = 16;
        cfg.lr = crate::config::LrSchedule::paper_default(0.05, 10);
        cfg.evals = 5;
        let net = mlp(8, &[32], 4, 3);
        let result = train_msgd(net, train, val, &cfg);
        assert_eq!(result.curve.len(), 5);
        assert!(
            result.final_acc > 0.9,
            "MSGD should solve well-separated blobs, got {}",
            result.final_acc
        );
        // Losses should broadly decrease.
        assert!(result.curve.last().unwrap().train_loss < result.curve[0].train_loss);
    }

    #[test]
    fn msgd_deterministic() {
        let mk = || {
            let blobs = GaussianBlobs::new(64, 4, 2, 0.3, 1);
            let val: Arc<dyn Dataset> = Arc::new(blobs.validation(32));
            let train: Arc<dyn Dataset> = Arc::new(blobs);
            let mut cfg = TrainConfig::paper_default(Method::Msgd, 1, 3);
            cfg.batch_per_worker = 8;
            train_msgd(mlp(4, &[8], 2, 3), train, val, &cfg)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.final_acc, b.final_acc);
        assert_eq!(a.curve.len(), b.curve.len());
        for (pa, pb) in a.curve.iter().zip(b.curve.iter()) {
            assert_eq!(pa.train_loss, pb.train_loss);
        }
    }

    #[test]
    #[should_panic(expected = "requires Method::Msgd")]
    fn rejects_other_methods() {
        let train: Arc<dyn Dataset> = Arc::new(GaussianBlobs::new(16, 4, 2, 0.3, 1));
        let val = Arc::clone(&train);
        let cfg = TrainConfig::paper_default(Method::Dgs, 2, 1);
        train_msgd(mlp(4, &[4], 2, 0), train, val, &cfg);
    }
}
