//! Real-thread asynchronous parameter-server training.
//!
//! Builds the [`MdtServer`] and one [`TrainWorker`] per worker, runs them on
//! the [`dgs_psim::thread_engine`], and collects curves/traffic/staleness
//! into a [`RunResult`]. Evaluation happens on the server thread from the
//! reconstructed global model `θ_0 + M` — workers never pause for it.

use crate::config::TrainConfig;
use crate::curves::{CurvePoint, RunResult};
use crate::method::Method;
use crate::protocol::{DownMsg, UpMsg};
use crate::server::{Downlink, MdtServer};
use crate::trainer::ModelBuilder;
use crate::worker::TrainWorker;
use dgs_nn::data::Dataset;
use dgs_nn::metrics::evaluate;
use dgs_nn::model::Network;
use dgs_psim::thread_engine::{run_cluster, ServerLogic, WorkerLogic};
use std::sync::Arc;

/// Server logic shared by every execution engine: MDT server plus curve
/// recording and traffic accounting. The thread engine and the DES drive
/// it in-process; `dgs-net` wraps it in an `UpdateHandler` to serve
/// loopback and TCP transports.
pub struct AsyncServerLogic {
    pub(crate) server: MdtServer,
    eval_net: Network,
    val: Arc<dyn Dataset>,
    cfg: TrainConfig,
    eval_every: u64,
    total_updates: u64,
    updates_per_epoch: u64,
    pub(crate) curve: Vec<CurvePoint>,
    loss_sum: f64,
    loss_n: u64,
    pub(crate) bytes_up: u64,
    pub(crate) bytes_down: u64,
    /// Virtual-time hook: the DES sets this before delegating.
    pub(crate) vtime: f64,
}

impl AsyncServerLogic {
    /// Wraps a built server with eval/traffic recording. `total_updates`
    /// sets the evaluation cadence.
    pub fn new(
        server: MdtServer,
        eval_net: Network,
        val: Arc<dyn Dataset>,
        cfg: TrainConfig,
        total_updates: u64,
    ) -> Self {
        let eval_every = (total_updates / cfg.evals.max(1) as u64).max(1);
        let updates_per_epoch = (total_updates / cfg.epochs.max(1) as u64).max(1);
        AsyncServerLogic {
            server,
            eval_net,
            val,
            cfg,
            eval_every,
            total_updates,
            updates_per_epoch,
            curve: Vec::new(),
            loss_sum: 0.0,
            loss_n: 0,
            bytes_up: 0,
            bytes_down: 0,
            vtime: 0.0,
        }
    }

    /// Core handling shared by every engine: accounts the traffic, applies
    /// the update, records curve points on the eval cadence.
    pub fn process(&mut self, worker: usize, req: UpMsg) -> DownMsg {
        self.bytes_up += req.wire_bytes() as u64;
        self.loss_sum += req.train_loss;
        self.loss_n += 1;
        let reply = self.server.handle_update(worker, &req);
        self.bytes_down += reply.wire_bytes() as u64;

        let t = self.server.timestamp();
        if t.is_multiple_of(self.eval_every) || t == self.total_updates {
            let model = self.server.current_model();
            self.eval_net.params_mut().load_data(&model);
            let res = evaluate(&mut self.eval_net, self.val.as_ref(), self.cfg.eval_batch);
            self.curve.push(CurvePoint {
                epoch: (t / self.updates_per_epoch) as usize,
                updates: t,
                train_loss: if self.loss_n > 0 { self.loss_sum / self.loss_n as f64 } else { 0.0 },
                val_loss: res.loss,
                val_acc: res.top1,
                virtual_time: self.vtime,
                bytes_up: self.bytes_up,
                bytes_down: self.bytes_down,
            });
            self.loss_sum = 0.0;
            self.loss_n = 0;
        }
        reply
    }

    /// Recovery for a worker whose reply was lost (see
    /// [`MdtServer::resync_worker`]); the dense reply is charged to the
    /// downlink like any other data message.
    pub fn resync(&mut self, worker: usize) -> DownMsg {
        let reply = self.server.resync_worker(worker);
        self.bytes_down += reply.wire_bytes() as u64;
        reply
    }

    /// The wrapped MDT server.
    pub fn server(&self) -> &MdtServer {
        &self.server
    }

    /// Accumulated (uplink, downlink) data bytes.
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_up, self.bytes_down)
    }

    /// Finalises the run record.
    pub fn into_result(
        self,
        cfg: TrainConfig,
        wall_secs: f64,
        worker_aux_bytes: usize,
    ) -> RunResult {
        let last = self.curve.last().copied();
        RunResult {
            config: cfg,
            final_acc: last.map(|p| p.val_acc).unwrap_or(0.0),
            final_loss: last.map(|p| p.val_loss).unwrap_or(0.0),
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
            virtual_time: last.map(|p| p.virtual_time).unwrap_or(0.0),
            wall_secs,
            mean_staleness: self.server.staleness().mean(),
            max_staleness: self.server.staleness().max(),
            server_tracking_bytes: self.server.memory_report().tracking_bytes,
            worker_aux_bytes,
            curve: self.curve,
        }
    }
}

impl ServerLogic for AsyncServerLogic {
    type Request = UpMsg;
    type Reply = DownMsg;

    fn handle(&mut self, worker: usize, _seq: u64, req: UpMsg) -> DownMsg {
        self.process(worker, req)
    }

    fn request_bytes(req: &UpMsg) -> usize {
        req.wire_bytes()
    }

    fn reply_bytes(reply: &DownMsg) -> usize {
        reply.wire_bytes()
    }
}

impl WorkerLogic for TrainWorker {
    type Request = UpMsg;
    type Reply = DownMsg;

    fn step(&mut self, _iter: usize) -> UpMsg {
        self.local_step()
    }

    fn apply(&mut self, reply: DownMsg) {
        self.apply_reply(reply);
    }
}

/// Assembles server + workers for a config. Shared by the thread engine,
/// the DES, the scheduled driver, and the cross-process runtime.
pub fn build_participants(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: &Arc<dyn Dataset>,
    val: &Arc<dyn Dataset>,
    worker_gflops: f64,
) -> (AsyncServerLogic, Vec<TrainWorker>) {
    assert_ne!(cfg.method, Method::Msgd, "MSGD uses train_msgd");
    let net0 = build_model();
    let partition = net0.params().partition().clone();
    let theta0 = net0.params().data().to_vec();
    let secondary = if cfg.secondary_compression { Some(cfg.sparsity_ratio) } else { None };
    let downlink = Downlink::for_method(cfg.method, secondary);
    let mut server = MdtServer::new(theta0.clone(), partition, cfg.workers, downlink);
    if cfg.staleness_damping > 0.0 {
        server.set_damping(crate::server::StalenessDamping { alpha: cfg.staleness_damping });
    }
    if cfg.server_log_nnz > 0 {
        server.set_log_capacity(cfg.server_log_nnz);
    }
    if cfg.server_dense_scan {
        server.set_diff_strategy(crate::server::DiffStrategy::DenseScan);
    }

    let workers: Vec<TrainWorker> = (0..cfg.workers)
        .map(|k| {
            let net = build_model();
            // All workers must agree on θ_0 with the server.
            assert_eq!(net.params().data(), theta0.as_slice(), "builder must be deterministic");
            TrainWorker::new(k, net, Arc::clone(train), cfg.clone(), worker_gflops)
        })
        .collect();

    let iters = cfg.iters_per_worker(train.len());
    let total_updates = (iters * cfg.workers) as u64;
    let logic =
        AsyncServerLogic::new(server, build_model(), Arc::clone(val), cfg.clone(), total_updates);
    (logic, workers)
}

/// Trains asynchronously on real threads and returns the run record.
pub fn train_async(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: Arc<dyn Dataset>,
    val: Arc<dyn Dataset>,
) -> RunResult {
    let (logic, workers) = build_participants(cfg, build_model, &train, &val, 50.0);
    let iters = cfg.iters_per_worker(train.len());
    let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
    let report = run_cluster(logic, workers, iters);
    report.server.into_result(cfg.clone(), report.wall_secs, worker_aux)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;

    fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
        let blobs = GaussianBlobs::new(256, 8, 4, 0.3, 1);
        let val = Arc::new(blobs.validation(128));
        (Arc::new(blobs), val)
    }

    fn quick_cfg(method: Method, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::paper_default(method, workers, 6);
        cfg.batch_per_worker = 16;
        cfg.lr = crate::config::LrSchedule::paper_default(0.05, 6);
        cfg.sparsity_ratio = 0.05;
        cfg.evals = 3;
        cfg
    }

    #[test]
    fn dgs_trains_async_on_threads() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 3);
        let build = || mlp(8, &[32], 4, 99);
        let result = train_async(&cfg, &build, train, val);
        assert_eq!(result.curve.len(), 3);
        assert!(result.final_acc > 0.85, "DGS should solve blobs, got {}", result.final_acc);
        assert!(result.bytes_up > 0 && result.bytes_down > 0);
        // Sparse in both directions: far less than dense traffic.
        let net = build();
        let dense_round = 4 * net.num_params() as u64;
        let updates = result.curve.last().unwrap().updates;
        assert!(
            result.bytes_up < updates * dense_round / 4,
            "uplink should be sparse: {} vs dense {}",
            result.bytes_up,
            updates * dense_round
        );
    }

    #[test]
    fn asgd_downlink_is_dense_and_heavier_than_dgs() {
        let (train, val) = datasets();
        let build = || mlp(8, &[32], 4, 99);
        let asgd =
            train_async(&quick_cfg(Method::Asgd, 3), &build, Arc::clone(&train), Arc::clone(&val));
        let dgs = train_async(&quick_cfg(Method::Dgs, 3), &build, train, val);
        // At this tiny model size headers blunt the ratio; on realistic
        // models the ratio is orders of magnitude (see the bench crate).
        assert!(
            asgd.total_bytes() > 3 * dgs.total_bytes(),
            "ASGD {} vs DGS {}",
            asgd.total_bytes(),
            dgs.total_bytes()
        );
    }

    #[test]
    fn all_async_methods_complete_and_learn() {
        let (train, val) = datasets();
        let build = || mlp(8, &[32], 4, 99);
        for method in Method::ASYNC {
            let result =
                train_async(&quick_cfg(method, 2), &build, Arc::clone(&train), Arc::clone(&val));
            assert!(result.final_acc > 0.6, "{method} accuracy too low: {}", result.final_acc);
            assert!(result.mean_staleness >= 0.0);
        }
    }

    #[test]
    fn staleness_observed_with_multiple_workers() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 4);
        let build = || mlp(8, &[16], 4, 99);
        let result = train_async(&cfg, &build, train, val);
        // With 4 racing workers some updates must be stale.
        assert!(result.max_staleness > 0, "expected nonzero staleness");
    }

    #[test]
    fn memory_accounting_exposed() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 2);
        let build = || mlp(8, &[16], 4, 99);
        let result = train_async(&cfg, &build, train, val);
        let model_bytes = build().num_params() * 4;
        assert_eq!(result.server_tracking_bytes, 2 * model_bytes);
        assert_eq!(result.worker_aux_bytes, model_bytes); // SAMomentum u
    }
}
