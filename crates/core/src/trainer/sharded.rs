//! Shared-state server logic over the lock-striped [`ShardedMdtServer`].
//!
//! [`AsyncServerLogic`](crate::trainer::threaded::AsyncServerLogic) is a
//! `&mut self` state machine: every transport wraps it in one big lock, so
//! decode → MDT apply → secondary compression → **full validation eval** →
//! encode all serialize, and at 4+ workers the server is a sequential
//! bottleneck. [`ShardedServerLogic`] is the `&self` counterpart built for
//! concurrent callers: MDT state lives behind the sharded server's striped
//! locks, and the only logic-level lock is a small telemetry mutex
//! (byte/loss counters, the eval net, the training curve) that is never
//! held across shard work. Evaluation — the single most expensive item in
//! the old critical section — runs on the telemetry lock only, so workers
//! keep streaming updates through the shards while one thread evaluates.
//!
//! Lock discipline: shard/front locks and the telemetry lock are never
//! held at the same time (`process` finishes `handle_update_timed`, then
//! accounts; `current_model` snapshots before the eval lock is taken), so
//! there is no lock-order cycle. The eval cadence fires exactly once per
//! eligible timestamp because [`ShardedMdtServer::handle_update_timed`]
//! hands each update a unique global tick. Under concurrency, curve points
//! can be *recorded* out of timestamp order; `into_result` sorts the curve
//! by update count, which is the order the single-lock logic produces.

use crate::config::TrainConfig;
use crate::curves::{CurvePoint, RunResult};
use crate::method::Method;
use crate::protocol::{DownMsg, UpMsg};
use crate::server::Downlink;
use crate::shard::ShardedMdtServer;
use crate::trainer::ModelBuilder;
use crate::worker::TrainWorker;
use dgs_nn::data::Dataset;
use dgs_nn::metrics::evaluate;
use dgs_nn::model::Network;
use std::sync::{Arc, Mutex, MutexGuard};

/// Everything `process` touches besides MDT state: traffic/loss counters
/// and the evaluation pipeline. One short-lived lock, disjoint from the
/// shard locks.
struct Telemetry {
    eval_net: Network,
    val: Arc<dyn Dataset>,
    cfg: TrainConfig,
    eval_every: u64,
    total_updates: u64,
    updates_per_epoch: u64,
    curve: Vec<CurvePoint>,
    loss_sum: f64,
    loss_n: u64,
    bytes_up: u64,
    bytes_down: u64,
}

/// Concurrent (`&self`) server logic: the sharded MDT server plus curve
/// recording and traffic accounting. `dgs-net` serves it to many
/// connection threads at once without a global critical section.
pub struct ShardedServerLogic {
    server: ShardedMdtServer,
    telemetry: Mutex<Telemetry>,
}

impl ShardedServerLogic {
    /// Wraps a built sharded server with eval/traffic recording.
    /// `total_updates` sets the evaluation cadence, mirroring
    /// [`AsyncServerLogic::new`](crate::trainer::threaded::AsyncServerLogic::new).
    pub fn new(
        server: ShardedMdtServer,
        eval_net: Network,
        val: Arc<dyn Dataset>,
        cfg: TrainConfig,
        total_updates: u64,
    ) -> Self {
        let eval_every = (total_updates / cfg.evals.max(1) as u64).max(1);
        let updates_per_epoch = (total_updates / cfg.epochs.max(1) as u64).max(1);
        ShardedServerLogic {
            server,
            telemetry: Mutex::new(Telemetry {
                eval_net,
                val,
                cfg,
                eval_every,
                total_updates,
                updates_per_epoch,
                curve: Vec::new(),
                loss_sum: 0.0,
                loss_n: 0,
                bytes_up: 0,
                bytes_down: 0,
            }),
        }
    }

    /// Locks the telemetry counters. A lock poisoned by a panicking
    /// eval is recovered rather than propagated — the counters stay
    /// additive across a torn eval, and [`Self::into_result`] already
    /// recovers the same way — so a wire-path resync never inherits a
    /// panic from a sibling's eval.
    fn lock_telemetry(&self) -> MutexGuard<'_, Telemetry> {
        self.telemetry.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Applies one update and produces the reply; same accounting as the
    /// single-lock logic, with only the counters behind a lock.
    pub fn process(&self, worker: usize, req: UpMsg) -> DownMsg {
        let up_bytes = req.wire_bytes() as u64;
        let train_loss = req.train_loss;
        let (reply, t) = self.server.handle_update_timed(worker, &req);
        let down_bytes = reply.wire_bytes() as u64;
        let eval_due = {
            let mut tel = self.lock_telemetry();
            tel.bytes_up += up_bytes;
            tel.bytes_down += down_bytes;
            tel.loss_sum += train_loss;
            tel.loss_n += 1;
            t.is_multiple_of(tel.eval_every) || t == tel.total_updates
        };
        if eval_due {
            // Snapshot the model before taking the telemetry lock so shard
            // locks and the telemetry lock are never nested.
            let model = self.server.current_model();
            let mut tel = self.lock_telemetry();
            let tel = &mut *tel;
            tel.eval_net.params_mut().load_data(&model);
            let res = evaluate(&mut tel.eval_net, tel.val.as_ref(), tel.cfg.eval_batch);
            tel.curve.push(CurvePoint {
                epoch: (t / tel.updates_per_epoch) as usize,
                updates: t,
                train_loss: if tel.loss_n > 0 { tel.loss_sum / tel.loss_n as f64 } else { 0.0 },
                val_loss: res.loss,
                val_acc: res.top1,
                virtual_time: 0.0,
                bytes_up: tel.bytes_up,
                bytes_down: tel.bytes_down,
            });
            tel.loss_sum = 0.0;
            tel.loss_n = 0;
        }
        reply
    }

    /// Recovery for a worker whose reply was lost; the dense reply is
    /// charged to the downlink like any other data message.
    pub fn resync(&self, worker: usize) -> DownMsg {
        let reply = self.server.resync_worker(worker);
        self.lock_telemetry().bytes_down += reply.wire_bytes() as u64;
        reply
    }

    /// The wrapped sharded server.
    pub fn server(&self) -> &ShardedMdtServer {
        &self.server
    }

    /// Accumulated (uplink, downlink) data bytes.
    pub fn traffic(&self) -> (u64, u64) {
        let tel = self.lock_telemetry();
        (tel.bytes_up, tel.bytes_down)
    }

    /// Finalises the run record; the curve is sorted by update count
    /// because concurrent evals may record out of order.
    pub fn into_result(self, cfg: TrainConfig, wall_secs: f64, worker_aux_bytes: usize) -> RunResult {
        let staleness = self.server.staleness();
        let tracking = self.server.memory_report().tracking_bytes;
        let mut tel = self.telemetry.into_inner().unwrap_or_else(|e| e.into_inner());
        tel.curve.sort_by_key(|p| p.updates);
        let last = tel.curve.last().copied();
        RunResult {
            config: cfg,
            final_acc: last.map(|p| p.val_acc).unwrap_or(0.0),
            final_loss: last.map(|p| p.val_loss).unwrap_or(0.0),
            bytes_up: tel.bytes_up,
            bytes_down: tel.bytes_down,
            virtual_time: last.map(|p| p.virtual_time).unwrap_or(0.0),
            wall_secs,
            mean_staleness: staleness.mean(),
            max_staleness: staleness.max(),
            server_tracking_bytes: tracking,
            worker_aux_bytes,
            curve: tel.curve,
        }
    }
}

/// Assembles a sharded server + workers for a config — the lock-striped
/// twin of [`build_participants`](crate::trainer::threaded::build_participants).
/// `shards` caps the stripe count (clamped to the layer count; `1` yields
/// a single-stripe server, useful as a like-for-like baseline).
pub fn build_sharded_participants(
    cfg: &TrainConfig,
    build_model: ModelBuilder<'_>,
    train: &Arc<dyn Dataset>,
    val: &Arc<dyn Dataset>,
    worker_gflops: f64,
    shards: usize,
) -> (ShardedServerLogic, Vec<TrainWorker>) {
    assert_ne!(cfg.method, Method::Msgd, "MSGD uses train_msgd");
    let net0 = build_model();
    let partition = net0.params().partition().clone();
    let theta0 = net0.params().data().to_vec();
    let secondary = if cfg.secondary_compression { Some(cfg.sparsity_ratio) } else { None };
    let downlink = Downlink::for_method(cfg.method, secondary);
    let mut server =
        ShardedMdtServer::new(theta0.clone(), partition, cfg.workers, downlink, shards);
    if cfg.staleness_damping > 0.0 {
        server.set_damping(crate::server::StalenessDamping { alpha: cfg.staleness_damping });
    }
    if cfg.server_log_nnz > 0 {
        server.set_log_capacity(cfg.server_log_nnz);
    }
    if cfg.server_dense_scan {
        server.set_diff_strategy(crate::server::DiffStrategy::DenseScan);
    }

    let workers: Vec<TrainWorker> = (0..cfg.workers)
        .map(|k| {
            let net = build_model();
            assert_eq!(net.params().data(), theta0.as_slice(), "builder must be deterministic");
            TrainWorker::new(k, net, Arc::clone(train), cfg.clone(), worker_gflops)
        })
        .collect();

    let iters = cfg.iters_per_worker(train.len());
    let total_updates = (iters * cfg.workers) as u64;
    let logic =
        ShardedServerLogic::new(server, build_model(), Arc::clone(val), cfg.clone(), total_updates);
    (logic, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::threaded::build_participants;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;
    use std::thread;

    fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
        let blobs = GaussianBlobs::new(256, 8, 4, 0.3, 1);
        let val = Arc::new(blobs.validation(128));
        (Arc::new(blobs), val)
    }

    fn quick_cfg(method: Method, workers: usize) -> TrainConfig {
        let mut cfg = TrainConfig::paper_default(method, workers, 6);
        cfg.batch_per_worker = 16;
        cfg.lr = crate::config::LrSchedule::paper_default(0.05, 6);
        cfg.sparsity_ratio = 0.05;
        cfg.evals = 3;
        cfg
    }

    /// Sequential replay: driving the sharded logic and the single-lock
    /// logic through the same worker round-robin must produce identical
    /// traffic counters and bitwise-identical reply streams.
    #[test]
    fn sharded_logic_matches_single_lock_logic_sequentially() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 3);
        let build = || mlp(8, &[16], 4, 99);
        let (mut single, mut workers_a) = build_participants(&cfg, &build, &train, &val, 50.0);
        let (sharded, mut workers_b) = build_sharded_participants(&cfg, &build, &train, &val, 50.0, 4);
        for round in 0..12 {
            let w = round % 3;
            let req_a = workers_a[w].local_step();
            let req_b = workers_b[w].local_step();
            assert_eq!(req_a.wire_bytes(), req_b.wire_bytes(), "round {round}: uplinks diverge");
            let ra = single.process(w, req_a);
            let rb = sharded.process(w, req_b);
            assert_eq!(ra.wire_bytes(), rb.wire_bytes(), "round {round}: downlinks diverge");
            match (&ra, &rb) {
                (DownMsg::SparseDiff(a), DownMsg::SparseDiff(b)) => {
                    assert_eq!(a.encode(), b.encode(), "round {round}: payloads diverge");
                }
                _ => panic!("expected sparse diffs"),
            }
            workers_a[w].apply_reply(ra);
            workers_b[w].apply_reply(rb);
        }
        assert_eq!(single.traffic(), sharded.traffic(), "byte counters diverge");
        assert_eq!(
            single.server().current_model(),
            sharded.server().current_model(),
            "models diverge"
        );
    }

    /// Concurrent smoke: real threads drive workers against the `&self`
    /// logic; the run must complete, account every update, and produce a
    /// usable result record.
    #[test]
    fn sharded_logic_trains_concurrently() {
        let (train, val) = datasets();
        let cfg = quick_cfg(Method::Dgs, 3);
        let build = || mlp(8, &[16], 4, 99);
        let (logic, workers) = build_sharded_participants(&cfg, &build, &train, &val, 50.0, 4);
        let iters = cfg.iters_per_worker(train.len());
        let logic = Arc::new(logic);
        thread::scope(|scope| {
            for (w, mut worker) in workers.into_iter().enumerate() {
                let logic = Arc::clone(&logic);
                scope.spawn(move || {
                    for _ in 0..iters {
                        let req = worker.local_step();
                        let reply = logic.process(w, req);
                        worker.apply_reply(reply);
                    }
                });
            }
        });
        let logic = Arc::into_inner(logic).expect("all worker threads joined");
        let total = (iters * cfg.workers) as u64;
        assert_eq!(logic.server().timestamp(), total);
        let result = logic.into_result(cfg, 0.0, 0);
        assert_eq!(result.curve.last().map(|p| p.updates), Some(total));
        assert!(result.curve.windows(2).all(|w| w[0].updates < w[1].updates), "curve unsorted");
        assert!(result.final_acc > 0.6, "sharded run should learn, got {}", result.final_acc);
        assert!(result.bytes_up > 0 && result.bytes_down > 0);
    }
}
